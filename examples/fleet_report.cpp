// fleet_report: the §3 datacenter analysis as a reusable report.
//
// Usage: fleet_report [num_jobs]
//
// Draws a synthetic fleet of ML training jobs (the generative model
// behind Figs. 3-4), then prints the analysis a capacity team would
// read: the Next-latency distribution, the hardware-vs-software
// bottleneck split (§3.2), and the estimated fraction of fleet time
// wasted waiting on input — the paper's "between 1-10% of the fleet is
// waiting on input data at any point in time".
#include <cstdio>
#include <cstdlib>

#include "src/fleet/fleet_sim.h"
#include "src/util/table.h"

using namespace plumber;

int main(int argc, char** argv) {
  FleetModelOptions options;
  if (argc > 1) options.num_jobs = std::atoll(argv[1]);

  const std::vector<FleetJob> jobs = SimulateFleet(options);
  const FleetSummary summary = SummarizeFleet(jobs);

  std::printf("== Input-bound job fractions (%lld jobs) ==\n",
              static_cast<long long>(summary.num_jobs));
  Table latency({"Next latency >", "fraction of jobs", "paper"});
  latency.AddRow({"50us", Table::Num(summary.frac_above_50us, 3), "0.92"});
  latency.AddRow({"1ms", Table::Num(summary.frac_above_1ms, 3), "0.62"});
  latency.AddRow({"100ms", Table::Num(summary.frac_above_100ms, 3), "0.16"});
  latency.Print();

  // Bottleneck classification (§3.2): an input-bound job on a
  // saturated host has a hardware bottleneck; input-bound on an idle
  // host points at software (or I/O misconfiguration).
  int input_bound = 0, hardware = 0, software = 0;
  double wasted = 0;
  // Nominal accelerator step: the paper's TPUv3-8 ResNet-50 reference,
  // ~120ms per minibatch.
  const double kStepSeconds = 0.120;
  for (const auto& job : jobs) {
    wasted += job.next_latency_s / (job.next_latency_s + kStepSeconds);
    if (job.next_latency_s <= 1e-3) continue;
    ++input_bound;
    if (job.cpu_utilization > 0.8 || job.membw_utilization > 0.8) {
      ++hardware;
    } else {
      ++software;
    }
  }
  wasted /= jobs.size();

  std::printf("\n== Bottleneck split among input-bound (>1ms) jobs ==\n");
  std::printf("  input-bound:        %d (%.0f%% of fleet)\n", input_bound,
              100.0 * input_bound / jobs.size());
  std::printf("  hardware-saturated: %d (%.0f%% of input-bound)\n", hardware,
              input_bound ? 100.0 * hardware / input_bound : 0.0);
  std::printf("  software/IO-bound:  %d (%.0f%% of input-bound)\n", software,
              input_bound ? 100.0 * software / input_bound : 0.0);

  std::printf("\n== Utilization of severely input-bound jobs (>=100ms) ==\n");
  std::printf("  mean CPU: %.0f%% (paper ~11%%), mean mem-bw: %.0f%% "
              "(paper ~18%%)\n",
              100 * summary.slow_mean_cpu, 100 * summary.slow_mean_membw);

  std::printf(
      "\nEstimated fleet time waiting on input: %.1f%%\n"
      "(paper: 'between 1-10%% of the fleet is waiting on input data')\n",
      100.0 * wasted);
  return 0;
}
