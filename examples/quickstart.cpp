// Quickstart: build a small input pipeline, run it, let Plumber find
// and remove the bottleneck — the library's "one line of code" flow,
// written entirely against the unified Session/Flow API.
//
//   1. Describe the environment on a Session (data files + UDFs).
//   2. Declare the pipeline fluently (files -> decode -> shuffle+repeat
//      -> crop -> batch) and measure it misconfigured (parallelism 1).
//   3. flow.Optimize() — one call — and measure the rewritten program.
#include <cstdio>

#include "src/core/plumber.h"

using namespace plumber;

int main() {
  // -- Environment: 8 record files of 200 x 1KB records, an expensive
  // decode (6x amplification), and a cheap random crop.
  Session session;
  session.machine().num_cores = 8;
  session.machine().memory_bytes = 64 << 20;
  if (!session.CreateRecordFiles("train/part-", 8, 200, 1024).ok()) return 1;
  UdfSpec decode;
  decode.name = "decode";
  decode.cost_ns_per_element = 400e3;  // 400us per record
  decode.size_ratio = 6.0;
  (void)session.RegisterUdf(decode);
  UdfSpec crop;
  crop.name = "crop";
  crop.cost_ns_per_element = 40e3;
  crop.size_ratio = 0.5;
  crop.accesses_random_seed = true;  // random augmentation: uncacheable
  (void)session.RegisterUdf(crop);

  // -- Declare the pipeline (Figure 1 of the paper, in C++).
  const Flow flow = session.Files("train/")
                        .Interleave(4)
                        .Map("decode").Named("decode")
                        .ShuffleAndRepeat(128)
                        .Map("crop").Named("crop")
                        .Batch(16);

  // -- Run the misconfigured pipeline.
  RunOptions window;
  window.max_seconds = 0.5;
  const auto before = flow.Run(window);
  if (!before.ok()) {
    std::printf("run failed: %s\n", before.status().ToString().c_str());
    return 1;
  }
  std::printf("misconfigured: %.1f minibatches/s (next latency %.2f ms)\n",
              before->batches_per_second,
              before->mean_next_latency_seconds * 1e3);

  // -- One call to Plumber.
  const auto optimized = flow.Optimize();
  if (!optimized.ok()) {
    std::printf("optimize failed: %s\n",
                optimized.status().ToString().c_str());
    return 1;
  }
  for (const auto& line : optimized->log) {
    std::printf("  plumber: %s\n", line.c_str());
  }

  // -- Run the rewritten program (same signature, faster). Warm up one
  // window first so the injected cache reaches steady state.
  RunOptions warm = window;
  warm.warmup_seconds = 0.5;
  const auto after = optimized->Run(warm);
  if (!after.ok()) {
    std::printf("run failed: %s\n", after.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized:     %.1f minibatches/s (%.1fx speedup)\n",
              after->batches_per_second,
              before->batches_per_second > 0
                  ? after->batches_per_second / before->batches_per_second
                  : 0.0);
  // Job timing from the async executor every run goes through:
  // admission wait (zero here — the job ran alone) vs execution.
  std::printf("job timing: queued %.1f ms, executed %.2f s\n",
              after->queue_seconds * 1e3, after->wall_seconds);
  std::printf("LP predicted upper bound: %.1f minibatches/s\n",
              optimized->plan.predicted_rate);
  // The optimized program must beat the misconfigured one (this example
  // doubles as a CI smoke test for the unified API).
  return after->batches_per_second > before->batches_per_second ? 0 : 1;
}
