// Quickstart: build a small input pipeline, run it, let Plumber find
// and remove the bottleneck — the library's "one line of code" flow.
//
//   1. Declare a pipeline program with GraphBuilder (files -> decode ->
//      shuffle+repeat -> batch).
//   2. Run it misconfigured (parallelism 1) and measure throughput.
//   3. Hand it to PlumberOptimizer and run the rewritten program.
#include <cstdio>

#include "src/core/plumber.h"

using namespace plumber;

int main() {
  // -- Synthetic training data: 8 record files of 200 x 1KB records.
  SimFilesystem fs;
  for (int f = 0; f < 8; ++f) {
    std::vector<uint64_t> sizes(200, 1024);
    if (!fs.CreateRecordFile("train/part-" + std::to_string(f), f + 1,
                             std::move(sizes))
             .ok()) {
      return 1;
    }
  }

  // -- UDFs: an expensive decode (6x amplification) and a cheap crop.
  UdfRegistry udfs;
  UdfSpec decode;
  decode.name = "decode";
  decode.cost_ns_per_element = 400e3;  // 400us per record
  decode.size_ratio = 6.0;
  (void)udfs.Register(decode);
  UdfSpec crop;
  crop.name = "crop";
  crop.cost_ns_per_element = 40e3;
  crop.size_ratio = 0.5;
  crop.accesses_random_seed = true;  // random augmentation: uncacheable
  (void)udfs.Register(crop);

  // -- Declare the pipeline (Figure 1 of the paper, in C++).
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "train/"), 4, 1);
  n = b.Map("decode", n, "decode");
  n = b.ShuffleAndRepeat("shuffle_repeat", n, 128);
  n = b.Map("crop", n, "crop");
  n = b.Batch("batch", n, 16);
  GraphDef graph = std::move(b.Build(n)).value();

  PipelineOptions popts;
  popts.fs = &fs;
  popts.udfs = &udfs;

  // -- Run the misconfigured pipeline.
  RunOptions ropts;
  ropts.max_seconds = 0.5;
  auto naive = std::move(Pipeline::Create(graph, popts)).value();
  const RunResult before = RunPipeline(*naive, ropts);
  naive->Cancel();
  std::printf("misconfigured: %.1f minibatches/s (next latency %.2f ms)\n",
              before.batches_per_second,
              before.mean_next_latency_seconds * 1e3);

  // -- One call to Plumber.
  OptimizeOptions oopts;
  oopts.machine = MachineSpec::SetupA();
  oopts.machine.num_cores = 8;
  oopts.machine.memory_bytes = 64 << 20;
  oopts.pipeline_options = popts;
  PlumberOptimizer optimizer(oopts);
  auto result = optimizer.Optimize(graph);
  if (!result.ok()) {
    std::printf("optimize failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const auto& line : result->log) std::printf("  plumber: %s\n",
                                                   line.c_str());

  // -- Run the rewritten program (same signature, faster). Warm up one
  // window first so the injected cache reaches steady state.
  auto tuned = std::move(Pipeline::Create(result->graph, popts)).value();
  auto iterator = std::move(tuned->MakeIterator()).value();
  RunOptions warmup;
  warmup.max_seconds = 0.5;
  RunIterator(iterator.get(), warmup);
  const RunResult after = RunIterator(iterator.get(), ropts);
  tuned->Cancel();
  std::printf("optimized:     %.1f minibatches/s (%.1fx speedup)\n",
              after.batches_per_second,
              before.batches_per_second > 0
                  ? after.batches_per_second / before.batches_per_second
                  : 0.0);
  std::printf("LP predicted upper bound: %.1f minibatches/s\n",
              result->plan.predicted_rate);
  return 0;
}
