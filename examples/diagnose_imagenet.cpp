// Interactive-style diagnosis of the ResNet/ImageNet pipeline: trace
// it, print the per-Dataset resource-accounted rates (paper Fig. 5),
// the bottleneck ranking, the LP allocation, and the cache candidates.
// This is the "tracer as explain-plan" use of Plumber.
#include <cstdio>

#include "src/core/plumber.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

using namespace plumber;

int main() {
  auto workload = std::move(MakeWorkload("resnet18")).value();
  const MachineSpec machine = MachineSpec::SetupA();
  Session session = MakeWorkloadSession(machine);

  auto model_or = session.FromGraph(workload.graph).Diagnose(0.5);
  if (!model_or.ok()) {
    std::printf("diagnose failed: %s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const PipelineModel& model = *model_or;

  std::printf("observed rate: %.2f minibatches/s over %.2fs\n\n",
              model.observed_rate(), model.wall_seconds());

  Table table({"dataset", "op", "visit ratio", "mb/s/core (Ri)",
               "cores used", "bytes/elem", "cardinality", "cacheable"});
  for (const auto& node : model.nodes()) {
    table.AddRow({node.name, node.op, Table::Num(node.visit_ratio, 1),
                  node.rate_per_core > 0 ? Table::Num(node.rate_per_core, 1)
                                         : "-",
                  Table::Num(node.observed_cores, 3),
                  Table::Num(node.bytes_per_element, 0),
                  node.cardinality >= 0 ? Table::Num(node.cardinality, 0)
                                        : "inf/unknown",
                  node.cacheable ? "yes" : "no"});
  }
  table.Print();

  std::printf("\nbottleneck ranking (slowest first):\n");
  int rank = 1;
  for (const auto& name : model.RankBottlenecks()) {
    const NodeModel* node = model.Find(name);
    std::printf("  %d. %s  (capacity %.1f mb/s at parallelism %d)\n",
                rank++, name.c_str(),
                node->rate_per_core * node->parallelism, node->parallelism);
  }

  const LpPlan plan = PlanAllocation(model);
  std::printf("\nLP allocation (%d cores): predicted max %.1f mb/s, "
              "bottleneck=%s\n",
              machine.num_cores, plan.predicted_rate,
              plan.bottleneck.c_str());
  for (const auto& [node, theta] : plan.theta) {
    std::printf("  theta[%s] = %.2f cores", node.c_str(), theta);
    auto it = plan.parallelism.find(node);
    if (it != plan.parallelism.end()) {
      std::printf("  -> set parallelism %d", it->second);
    }
    std::printf("\n");
  }

  std::printf("\ncache candidates (root-first):\n");
  CachePlanOptions copts;
  copts.memory_bytes = machine.memory_bytes;
  const CacheDecision cache = PlanCache(model, copts);
  for (const auto& candidate : cache.candidates) {
    std::printf("  %-12s %12.0f bytes  %s\n", candidate.node.c_str(),
                candidate.materialized_bytes,
                candidate.fits ? "fits" : "too big");
  }
  if (cache.feasible) {
    std::printf("decision: cache after %s\n", cache.node.c_str());
  } else {
    std::printf("decision: no cache fits in %.0f MB\n",
                machine.memory_bytes / 1e6);
  }

  // Run the full optimizer and report what each scheduled pass decided
  // (the structured PassReports; batch appended to show the engine
  // autotuner's reasoning alongside the paper's three rewrites).
  const std::string schedule = std::string(kDefaultPassSchedule) + ",batch";
  auto optimized = session.FromGraph(workload.graph).OptimizeWith(schedule);
  if (!optimized.ok()) {
    std::printf("\noptimize failed: %s\n",
                optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("\noptimizer passes (schedule \"%s\"):\n", schedule.c_str());
  Table passes({"#", "pass", "traced mb/s", "rewrote", "decision"});
  int index = 1;
  for (const PassReport& report : optimized->pass_reports) {
    passes.AddRow({std::to_string(index++), report.pass,
                   report.traced_rate > 0 ? Table::Num(report.traced_rate, 1)
                                          : "-",
                   report.changed ? "yes" : "no", report.summary});
  }
  passes.Print();
  std::printf("final traced rate: %.2f minibatches/s\n",
              optimized->traced_rate);
  return 0;
}
