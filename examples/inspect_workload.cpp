// inspect_workload: a diagnosis walk-through for any built-in workload.
//
// Usage: inspect_workload [workload]   (default: resnet_linear)
//
// Demonstrates the full Plumber loop on one workload:
//   1. run the Plumber optimizer on every signature-equivalent variant,
//   2. print the optimizer's decisions (LP allocation, prefetch buffer,
//      cache placement) and its pass log,
//   3. measure the optimized pipelines against the naive and heuristic
//      configurations,
//   4. print a traced per-node breakdown of the heuristic configuration
//      so the bottleneck is visible in the raw statistics.
//
// This is the programmatic equivalent of the paper's "what is my
// pipeline doing and what would Plumber change" workflow (§4.1).
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "src/core/plumber.h"
#include "src/pipeline/ops.h"
#include "src/tuners/tuner.h"
#include "src/workloads/datagen.h"
#include "src/workloads/workloads.h"

using namespace plumber;

namespace {

double Measure(const Workload& workload, const GraphDef& graph,
               const MachineSpec& machine, const char* label) {
  StorageDevice device(workload.storage);
  WorkloadEnv env(&device);
  auto pipeline_or = Pipeline::Create(
      graph, env.MakePipelineOptions(machine.cpu_scale, machine.memory_bytes));
  if (!pipeline_or.ok()) return 0;
  auto iterator = std::move((*pipeline_or)->MakeIterator()).value();
  RunOptions warmup;
  warmup.max_seconds = 1.2;
  warmup.model_step_seconds = workload.ModelStepSeconds();
  RunIterator(iterator.get(), warmup);
  RunOptions ropts;
  ropts.max_seconds = 0.8;
  ropts.model_step_seconds = workload.ModelStepSeconds();
  const RunResult result = RunIterator(iterator.get(), ropts);
  (*pipeline_or)->Cancel();
  std::printf("  %-24s %8.1f minibatches/s\n", label,
              result.batches_per_second);
  return result.batches_per_second;
}

void PrintTunedNodes(const GraphDef& graph) {
  for (const auto& node : graph.nodes()) {
    const long long par = node.GetInt(kAttrParallelism, 1);
    const long long buf = node.GetInt(kAttrBufferSize, 0);
    if (par > 1 || node.op == "cache" || node.op == "prefetch") {
      std::printf("    %-22s op=%-16s parallelism=%-3lld buffer=%lld\n",
                  node.name.c_str(), node.op.c_str(), par, buf);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "resnet_linear";
  auto workload_or = MakeWorkload(name);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "unknown workload %s; available:", name.c_str());
    for (const auto& n : AllWorkloadNames()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  Workload workload = std::move(workload_or).value();
  MachineSpec machine = MachineSpec::SetupC(kMemoryScale);
  machine.num_cores = std::min(
      96, static_cast<int>(std::thread::hardware_concurrency()));

  std::printf("workload=%s cores=%d memory=%.1fMB model_step=%.2fms\n",
              name.c_str(), machine.num_cores, machine.memory_bytes / 1e6,
              workload.ModelStepSeconds() * 1e3);

  // Optimize every pick_best variant and show the decisions.
  for (size_t v = 0; v < workload.variants.size(); ++v) {
    StorageDevice device(workload.storage);
    WorkloadEnv env(&device);
    OptimizeOptions options;
    options.machine = machine;
    options.pipeline_options =
        env.MakePipelineOptions(machine.cpu_scale, machine.memory_bytes);
    options.trace_seconds = 0.25;
    options.evaluate_warmup_seconds = 0.8;
    options.lp_options.disk_bandwidth = workload.storage.max_bandwidth;
    PlumberOptimizer optimizer(options);
    auto result = optimizer.Optimize(workload.variants[v]);
    if (!result.ok()) {
      std::printf("variant %zu: optimization failed: %s\n", v,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("variant %zu: LP rate=%.1f cache=%s\n", v,
                result->plan.predicted_rate,
                result->cache.feasible ? result->cache.node.c_str() : "none");
    for (const auto& line : result->log) std::printf("    %s\n", line.c_str());
    PrintTunedNodes(result->graph);
    Measure(workload, result->graph, machine,
            ("plumber variant " + std::to_string(v)).c_str());
  }

  Measure(workload, NaiveConfiguration(workload.graph), machine, "naive");
  Measure(workload, HeuristicConfiguration(workload.graph, machine.num_cores),
          machine, "heuristic");

  // Traced per-node breakdown of the heuristic configuration: the raw
  // statistics Plumber's analysis layer consumes.
  StorageDevice device(workload.storage);
  WorkloadEnv env(&device);
  auto pipeline = std::move(Pipeline::Create(
                                HeuristicConfiguration(workload.graph,
                                                       machine.num_cores),
                                env.MakePipelineOptions(machine.cpu_scale)))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 0.5;
  topts.machine = machine;
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  std::printf("heuristic trace: %.1f minibatches/s over %.2fs\n",
              trace.observed_rate, trace.wall_seconds);
  for (const auto& st : trace.stats) {
    if (st.elements_produced == 0) continue;
    std::printf("  %-22s %-18s par=%-3d produced=%-8llu cpu_us/el=%-8.1f"
                " bytes/el=%.0f\n",
                st.name.c_str(), st.op.c_str(), st.parallelism,
                static_cast<unsigned long long>(st.elements_produced),
                st.cpu_ns / 1e3 / st.elements_produced,
                static_cast<double>(st.bytes_produced) / st.elements_produced);
  }
  return 0;
}
