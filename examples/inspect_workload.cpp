// inspect_workload: a diagnosis walk-through for any built-in workload.
//
// Usage: inspect_workload [workload]   (default: resnet_linear)
//
// Demonstrates the full Plumber loop on one workload:
//   1. run the Plumber optimizer on every signature-equivalent variant,
//   2. print the optimizer's decisions (LP allocation, prefetch buffer,
//      cache placement) and its pass log,
//   3. measure the optimized pipelines against the naive and heuristic
//      configurations,
//   4. print a traced per-node breakdown of the heuristic configuration
//      so the bottleneck is visible in the raw statistics.
//
// This is the programmatic equivalent of the paper's "what is my
// pipeline doing and what would Plumber change" workflow (§4.1).
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "src/core/plumber.h"
#include "src/pipeline/ops.h"
#include "src/tuners/tuner.h"
#include "src/workloads/datagen.h"
#include "src/workloads/workloads.h"

using namespace plumber;

namespace {

double Measure(const Workload& workload, const GraphDef& graph,
               const MachineSpec& machine, const char* label) {
  // Fresh session per measurement: fresh I/O accounting, cold caches.
  Session session = MakeWorkloadSession(machine, workload.storage);
  RunOptions window;
  window.warmup_seconds = 1.2;
  window.max_seconds = 0.8;
  window.model_step_seconds = workload.ModelStepSeconds();
  const auto report = session.FromGraph(graph).Run(window);
  const double rate = report.ok() ? report->batches_per_second : 0;
  std::printf("  %-24s %8.1f minibatches/s\n", label, rate);
  return rate;
}

void PrintTunedNodes(const GraphDef& graph) {
  for (const auto& node : graph.nodes()) {
    const long long par = node.GetInt(kAttrParallelism, 1);
    const long long buf = node.GetInt(kAttrBufferSize, 0);
    if (par > 1 || node.op == "cache" || node.op == "prefetch") {
      std::printf("    %-22s op=%-16s parallelism=%-3lld buffer=%lld\n",
                  node.name.c_str(), node.op.c_str(), par, buf);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "resnet_linear";
  auto workload_or = MakeWorkload(name);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "unknown workload %s; available:", name.c_str());
    for (const auto& n : AllWorkloadNames()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  Workload workload = std::move(workload_or).value();
  MachineSpec machine = MachineSpec::SetupC(kMemoryScale);
  machine.num_cores = std::min(
      96, static_cast<int>(std::thread::hardware_concurrency()));

  std::printf("workload=%s cores=%d memory=%.1fMB model_step=%.2fms\n",
              name.c_str(), machine.num_cores, machine.memory_bytes / 1e6,
              workload.ModelStepSeconds() * 1e3);

  // Optimize every pick_best variant and show the decisions.
  for (size_t v = 0; v < workload.variants.size(); ++v) {
    Session session = MakeWorkloadSession(machine, workload.storage);
    OptimizeOptions options;
    options.trace_seconds = 0.25;
    options.evaluate_warmup_seconds = 0.8;
    options.lp_options.disk_bandwidth = workload.storage.max_bandwidth;
    auto result =
        session.FromGraph(workload.variants[v]).Optimize(options);
    if (!result.ok()) {
      std::printf("variant %zu: optimization failed: %s\n", v,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("variant %zu: LP rate=%.1f cache=%s\n", v,
                result->plan.predicted_rate,
                result->cache.feasible ? result->cache.node.c_str() : "none");
    for (const auto& line : result->log) std::printf("    %s\n", line.c_str());
    const GraphDef tuned = std::move(result->Graph()).value();
    PrintTunedNodes(tuned);
    Measure(workload, tuned, machine,
            ("plumber variant " + std::to_string(v)).c_str());
  }

  Measure(workload, NaiveConfiguration(workload.graph), machine, "naive");
  Measure(workload, HeuristicConfiguration(workload.graph, machine.num_cores),
          machine, "heuristic");

  // Traced per-node breakdown of the heuristic configuration: the raw
  // statistics Plumber's analysis layer consumes.
  Session session = MakeWorkloadSession(machine, workload.storage);
  const TraceSnapshot trace =
      std::move(session
                    .FromGraph(HeuristicConfiguration(workload.graph,
                                                      machine.num_cores))
                    .Trace(0.5))
          .value();
  std::printf("heuristic trace: %.1f minibatches/s over %.2fs\n",
              trace.observed_rate, trace.wall_seconds);
  for (const auto& st : trace.stats) {
    if (st.elements_produced == 0) continue;
    std::printf("  %-22s %-18s par=%-3d produced=%-8llu cpu_us/el=%-8.1f"
                " bytes/el=%.0f\n",
                st.name.c_str(), st.op.c_str(), st.parallelism,
                static_cast<unsigned long long>(st.elements_produced),
                st.cpu_ns / 1e3 / st.elements_produced,
                static_cast<double>(st.bytes_produced) / st.elements_produced);
  }
  return 0;
}
