// Diagnoses an I/O-bound pipeline: profiles the training directory's
// parallelism -> bandwidth curve (the fio-equivalent), feeds it to the
// LP, and reports whether the pipeline is disk- or compute-bound and
// the minimal read parallelism that sustains peak rate (paper §4.3
// "Disk" + §5.2).
#include <cstdio>

#include "src/core/plumber.h"
#include "src/io/io_profiler.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

using namespace plumber;

int main() {
  // A throttled "cloud" store: 8 MB/s aggregate, 1 MB/s per stream —
  // single-stream readers leave 7/8 of the bandwidth on the table.
  auto workload = std::move(MakeWorkload("resnet18")).value();
  Session session = MakeWorkloadSession(MachineSpec::SetupA(),
                                        DeviceSpec::CloudStorage(8e6, 1e6));

  // 1. Profile the training directory like fio would.
  IoProfileOptions popts;
  popts.parallelism_levels = {1, 2, 4, 8, 12};
  popts.seconds_per_probe = 0.15;
  const IoProfileResult profile =
      ProfileReadBandwidth(&session.fs(), workload.dataset_prefix, popts);
  std::printf("parallelism -> bandwidth curve: %s\n",
              profile.parallelism_to_bandwidth.ToString().c_str());
  std::printf("max bandwidth %.1f MB/s, saturating parallelism ~%.0f\n\n",
              profile.max_bandwidth / 1e6, profile.min_parallelism_for_max);
  session.storage()->ResetCounters();
  session.fs().ClearReadLog();

  // 2. Trace the pipeline and solve the LP with the disk constraint.
  auto model_or = session.FromGraph(workload.graph).Diagnose(0.4);
  if (!model_or.ok()) {
    std::printf("diagnose failed: %s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const PipelineModel& model = *model_or;

  LpPlanOptions lp;
  lp.disk_bandwidth = profile.max_bandwidth;
  lp.io_curve = profile.parallelism_to_bandwidth;
  const LpPlan plan = PlanAllocation(model, lp);

  Table table({"quantity", "value"});
  table.AddRow({"I/O cost (bytes/minibatch)",
                Table::Num(model.DiskBytesPerMinibatch(), 0)});
  table.AddRow({"CPU-bound rate (mb/s)", Table::Num(plan.cpu_bound_rate, 1)});
  table.AddRow({"disk-bound rate (mb/s)",
                Table::Num(plan.disk_bound_rate, 1)});
  table.AddRow({"predicted rate (mb/s)", Table::Num(plan.predicted_rate, 1)});
  table.AddRow({"binding resource", plan.disk_limited ? "disk" : "CPU"});
  table.AddRow({"suggested read parallelism",
                std::to_string(plan.suggested_io_parallelism)});
  table.Print();
  return 0;
}
