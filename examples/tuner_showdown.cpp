// Compares the four tuning policies on one workload: Naive, HEURISTIC,
// AUTOTUNE (M/M/1/k + hill climbing), and Plumber (LP + prefetch +
// cache), all through the unified Session/Flow API.
// Usage: tuner_showdown [workload] (default multibox_ssd).
#include <cstdio>
#include <string>

#include "src/core/plumber.h"
#include "src/tuners/autotune.h"
#include "src/tuners/tuner.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

using namespace plumber;

namespace {

double Measure(Session& session, const GraphDef& graph) {
  RunOptions window;
  window.max_seconds = 0.5;
  // Warm up one stretch first so any cache is filled.
  window.warmup_seconds = 0.5;
  const auto report = session.FromGraph(graph).Run(window);
  return report.ok() ? report->batches_per_second : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "multibox_ssd";
  auto workload_or = MakeWorkload(name);
  if (!workload_or.ok()) {
    std::printf("unknown workload %s; options:", name.c_str());
    for (const auto& w : AllWorkloadNames()) std::printf(" %s", w.c_str());
    std::printf("\n");
    return 1;
  }
  auto workload = std::move(workload_or).value();
  MachineSpec machine = MachineSpec::SetupA();
  machine.memory_bytes = 32 << 20;  // generous scaled budget
  Session session = MakeWorkloadSession(machine);

  Table table({"policy", "minibatches/s", "speedup vs naive"});

  const double naive = Measure(session, NaiveConfiguration(workload.graph));
  table.AddRow({"naive (parallelism=1)", Table::Num(naive, 1), "1.0"});

  const double heuristic = Measure(
      session, HeuristicConfiguration(workload.graph, machine.num_cores));
  table.AddRow({"heuristic (all cores)", Table::Num(heuristic, 1),
                Table::Num(heuristic / naive, 1)});

  {
    auto model_or =
        session.FromGraph(NaiveConfiguration(workload.graph)).Diagnose(0.25);
    if (model_or.ok()) {
      AutotuneOptions aopts;
      aopts.max_parallelism = machine.num_cores;
      auto autotuned =
          std::move(AutotuneConfiguration(workload.graph, *model_or, aopts))
              .value();
      const double rate = Measure(session, autotuned.graph);
      table.AddRow({"autotune (M/M/1/k)", Table::Num(rate, 1),
                    Table::Num(rate / naive, 1)});
    }
  }

  {
    auto result = session.FromGraph(workload.graph).Optimize();
    if (result.ok()) {
      auto graph = result->Graph();
      const double rate = graph.ok() ? Measure(session, *graph) : 0;
      std::string label = "plumber (LP+prefetch+cache)";
      if (result->cache.feasible) {
        label += " [cache@" + result->cache.node + "]";
      }
      table.AddRow({label, Table::Num(rate, 1), Table::Num(rate / naive, 1)});
    }
  }

  std::printf("workload: %s on %s (%d cores)\n", name.c_str(),
              machine.name.c_str(), machine.num_cores);
  table.Print();
  return 0;
}
