// Compares the four tuning policies on one workload: Naive, HEURISTIC,
// AUTOTUNE (M/M/1/k + hill climbing), and Plumber (LP + prefetch +
// cache). Usage: tuner_showdown [workload] (default multibox_ssd).
#include <cstdio>
#include <string>

#include "src/core/plumber.h"
#include "src/tuners/autotune.h"
#include "src/tuners/tuner.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

using namespace plumber;

namespace {

double Measure(WorkloadEnv& env, const GraphDef& graph,
               const MachineSpec& machine, uint64_t memory = 0) {
  PipelineOptions popts = env.MakePipelineOptions(machine.cpu_scale, memory);
  auto pipeline_or = Pipeline::Create(graph, popts);
  if (!pipeline_or.ok()) return 0;
  RunOptions ropts;
  ropts.max_seconds = 0.5;
  // Warm up one stretch first so any cache is filled.
  auto iterator = std::move((*pipeline_or)->MakeIterator()).value();
  RunOptions warm;
  warm.max_seconds = 0.5;
  RunIterator(iterator.get(), warm);
  const RunResult result = RunIterator(iterator.get(), ropts);
  (*pipeline_or)->Cancel();
  return result.batches_per_second;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "multibox_ssd";
  auto workload_or = MakeWorkload(name);
  if (!workload_or.ok()) {
    std::printf("unknown workload %s; options:", name.c_str());
    for (const auto& w : AllWorkloadNames()) std::printf(" %s", w.c_str());
    std::printf("\n");
    return 1;
  }
  auto workload = std::move(workload_or).value();
  MachineSpec machine = MachineSpec::SetupA();

  WorkloadEnv env;
  Table table({"policy", "minibatches/s", "speedup vs naive"});

  const double naive =
      Measure(env, NaiveConfiguration(workload.graph), machine);
  table.AddRow({"naive (parallelism=1)", Table::Num(naive, 1), "1.0"});

  const double heuristic = Measure(
      env, HeuristicConfiguration(workload.graph, machine.num_cores),
      machine);
  table.AddRow({"heuristic (all cores)", Table::Num(heuristic, 1),
                Table::Num(heuristic / naive, 1)});

  {
    auto pipeline = std::move(Pipeline::Create(
                                  NaiveConfiguration(workload.graph),
                                  env.MakePipelineOptions(machine.cpu_scale)))
                        .value();
    TraceOptions topts;
    topts.trace_seconds = 0.25;
    topts.machine = machine;
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
    AutotuneOptions aopts;
    aopts.max_parallelism = machine.num_cores;
    auto autotuned =
        std::move(AutotuneConfiguration(workload.graph, model, aopts))
            .value();
    const double rate = Measure(env, autotuned.graph, machine);
    table.AddRow({"autotune (M/M/1/k)", Table::Num(rate, 1),
                  Table::Num(rate / naive, 1)});
  }

  {
    OptimizeOptions oopts;
    oopts.machine = machine;
    oopts.machine.memory_bytes = 32 << 20;  // generous scaled budget
    oopts.pipeline_options = env.MakePipelineOptions(
        machine.cpu_scale, oopts.machine.memory_bytes);
    PlumberOptimizer optimizer(oopts);
    auto result = optimizer.Optimize(workload.graph);
    if (result.ok()) {
      const double rate = Measure(env, result->graph, machine,
                                  oopts.machine.memory_bytes);
      std::string label = "plumber (LP+prefetch+cache)";
      if (result->cache.feasible) {
        label += " [cache@" + result->cache.node + "]";
      }
      table.AddRow({label, Table::Num(rate, 1),
                    Table::Num(rate / naive, 1)});
    }
  }

  std::printf("workload: %s on %s (%d cores)\n", name.c_str(),
              machine.name.c_str(), machine.num_cores);
  table.Print();
  return 0;
}
