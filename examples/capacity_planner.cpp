// capacity_planner: provision the smallest machine for a target rate.
//
// Usage: capacity_planner [workload] [target_minibatches_per_sec]
//
// Demonstrates the provisioning extension (paper §4.1 future work):
//   1. trace the workload's pipeline once on the local machine,
//   2. print the roofline report (compute + I/O roofs, headroom),
//   3. compute the minimal resource vector for the target rate, with
//      and without caching,
//   4. pick the cheapest machine from a small synthetic cloud catalog,
//   5. show the memory/disk cache-tier dispatch for two machine shapes.
#include <cstdio>
#include <string>

#include "src/core/plumber.h"
#include "src/tuners/tuner.h"
#include "src/workloads/datagen.h"
#include "src/workloads/workloads.h"

using namespace plumber;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const double target = argc > 2 ? std::atof(argv[2]) : 200.0;

  auto workload_or = MakeWorkload(name);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
    return 1;
  }
  Workload workload = std::move(workload_or).value();
  Session session =
      MakeWorkloadSession(MachineSpec::SetupA(), workload.storage);

  // 1. Trace the naive pipeline.
  auto model_or =
      session.FromGraph(NaiveConfiguration(workload.graph)).Diagnose(0.5);
  if (!model_or.ok()) {
    std::fprintf(stderr, "diagnose failed: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const PipelineModel& model = *model_or;

  // 2. Roofline report.
  const RooflineReport roofline =
      BuildRoofline(model, workload.storage.max_bandwidth);
  std::printf("%s", roofline.ToString().c_str());

  // 3. Minimal resources for the target rate.
  ProvisionRequest request;
  request.target_rate = target;
  request.headroom = 1.1;
  for (const bool allow_cache : {false, true}) {
    request.allow_cache = allow_cache;
    const ProvisionPlan plan = PlanProvision(model, request);
    std::printf("\nprovision target=%.0f mb/s (%s):\n", target,
                allow_cache ? "cache allowed" : "no cache");
    if (!plan.feasible) {
      std::printf("  infeasible: %s\n", plan.infeasible_reason.c_str());
      continue;
    }
    std::printf("  cores=%.2f  disk_bw=%.2f MB/s  memory=%.2f MB%s%s\n",
                plan.cores_needed, plan.disk_bandwidth_needed / 1e6,
                plan.memory_needed / 1e6,
                plan.uses_cache ? "  cache at " : "",
                plan.uses_cache ? plan.cache_node.c_str() : "");
  }

  // 4. Cheapest machine from a synthetic catalog (prices arbitrary).
  const std::vector<MachineOffer> catalog = {
      {"c2-standard-4", 4, 16ull << 20, 50e6, 0.21},
      {"c2-standard-16", 16, 64ull << 20, 100e6, 0.84},
      {"c2-standard-60", 60, 240ull << 20, 200e6, 3.14},
      {"m1-megamem-96", 96, 1434ull << 20, 400e6, 10.67},
  };
  ProvisionRequest pick = request;
  pick.allow_cache = true;
  const CatalogChoice choice = PickCheapestMachine(model, pick, catalog);
  std::printf("\ncheapest machine for %.0f mb/s: ", target);
  if (choice.feasible) {
    std::printf("%s ($%.2f/h)%s%s\n", choice.offer.name.c_str(),
                choice.cost_per_hour,
                choice.plan.uses_cache ? ", cache at " : "",
                choice.plan.uses_cache ? choice.plan.cache_node.c_str() : "");
  } else {
    std::printf("none in catalog\n");
  }

  // 5. Cache-tier dispatch on two machine shapes.
  struct Shape {
    const char* label;
    TieredCachePlanOptions options;
  };
  TieredCachePlanOptions big_ram;
  big_ram.memory_bytes = 64ull << 20;
  big_ram.disk_free_bytes = 256ull << 20;
  big_ram.disk_read_bandwidth = 100e6;
  TieredCachePlanOptions small_ram = big_ram;
  small_ram.memory_bytes = 1 << 20;
  for (const Shape& shape :
       {Shape{"64MB RAM + scratch SSD", big_ram},
        Shape{"1MB RAM + scratch SSD", small_ram}}) {
    const TieredCacheDecision decision =
        PlanCacheTiered(model, shape.options);
    std::printf("cache tier on %-24s -> %s%s%s\n", shape.label,
                CacheTierName(decision.tier),
                decision.feasible ? " at " : "",
                decision.feasible ? decision.node.c_str() : "");
  }
  return 0;
}
