#include "src/io/token_bucket.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/cpu_timer.h"

namespace plumber {
namespace {

TEST(TokenBucketTest, UnlimitedNeverBlocks) {
  TokenBucket bucket(0);
  EXPECT_TRUE(bucket.unlimited());
  const int64_t t0 = WallNanos();
  for (int i = 0; i < 1000; ++i) bucket.Acquire(1e9);
  EXPECT_LT(WallNanos() - t0, 100'000'000);  // well under 100ms
}

TEST(TokenBucketTest, BurstServesImmediately) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/1000);
  const int64_t t0 = WallNanos();
  bucket.Acquire(500);
  EXPECT_LT(WallNanos() - t0, 50'000'000);
}

TEST(TokenBucketTest, RateLimitsSustainedThroughput) {
  TokenBucket bucket(/*rate=*/100000, /*burst=*/1000);
  const int64_t t0 = WallNanos();
  double acquired = 0;
  // Ask for 20k tokens beyond the burst: should take ~0.2s at 100k/s.
  while (acquired < 21000) {
    bucket.Acquire(1000);
    acquired += 1000;
  }
  const double elapsed = (WallNanos() - t0) * 1e-9;
  EXPECT_GT(elapsed, 0.1);
  EXPECT_LT(elapsed, 0.6);
}

TEST(TokenBucketTest, TryAcquireDoesNotBlock) {
  TokenBucket bucket(/*rate=*/10, /*burst=*/10);
  EXPECT_TRUE(bucket.TryAcquire(10));
  EXPECT_FALSE(bucket.TryAcquire(10));  // drained
}

TEST(TokenBucketTest, SetRateTakesEffect) {
  TokenBucket bucket(/*rate=*/100, /*burst=*/1);
  bucket.SetRate(1e9);
  const int64_t t0 = WallNanos();
  bucket.Acquire(1e6);
  EXPECT_LT((WallNanos() - t0) * 1e-9, 0.5);
}

TEST(TokenBucketTest, ConcurrentAcquiresConserveRate) {
  TokenBucket bucket(/*rate=*/200000, /*burst=*/2000);
  std::vector<std::thread> threads;
  std::atomic<double> total{0};
  const int64_t t0 = WallNanos();
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        bucket.Acquire(1000);
        double cur = total.load();
        while (!total.compare_exchange_weak(cur, cur + 1000)) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = (WallNanos() - t0) * 1e-9;
  // 40k tokens at 200k/s with a 2k burst: at least ~0.15s.
  EXPECT_GT(elapsed, 0.1);
  EXPECT_EQ(total.load(), 40000);
}

}  // namespace
}  // namespace plumber
