#include "src/fleet/fleet_sim.h"

#include <gtest/gtest.h>

namespace plumber {
namespace {

std::vector<FleetJob> SmallFleet() {
  FleetModelOptions options;
  options.num_jobs = 50000;
  return SimulateFleet(options);
}

TEST(FleetSimTest, Deterministic) {
  FleetModelOptions options;
  options.num_jobs = 100;
  const auto a = SimulateFleet(options);
  const auto b = SimulateFleet(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].next_latency_s, b[i].next_latency_s);
  }
}

TEST(FleetSimTest, QuantilesMatchPaperBands) {
  // Paper Fig. 3: 92% > 50us, 62% > 1ms, 16% > 100ms.
  const auto summary = SummarizeFleet(SmallFleet());
  EXPECT_NEAR(summary.frac_above_50us, 0.92, 0.04);
  EXPECT_NEAR(summary.frac_above_1ms, 0.62, 0.05);
  EXPECT_NEAR(summary.frac_above_100ms, 0.16, 0.03);
}

TEST(FleetSimTest, SlowJobsUnderutilizeHost) {
  // Paper Fig. 4: jobs >=100ms average ~11% CPU and ~18% memory
  // bandwidth, and use less than the 50us-100ms band.
  const auto summary = SummarizeFleet(SmallFleet());
  EXPECT_NEAR(summary.slow_mean_cpu, 0.11, 0.05);
  EXPECT_NEAR(summary.slow_mean_membw, 0.18, 0.06);
  EXPECT_LT(summary.slow_mean_cpu, summary.mid_mean_cpu);
  EXPECT_LT(summary.slow_mean_cpu, 0.20);
}

TEST(FleetSimTest, UtilizationsAreValidFractions) {
  for (const auto& job : SmallFleet()) {
    EXPECT_GT(job.next_latency_s, 0);
    EXPECT_GE(job.cpu_utilization, 0);
    EXPECT_LE(job.cpu_utilization, 1);
    EXPECT_GE(job.membw_utilization, 0);
    EXPECT_LE(job.membw_utilization, 1);
  }
}

TEST(FleetSimTest, CdfIsMonotone) {
  const auto jobs = SmallFleet();
  const auto cdf =
      FleetLatencyCdf(jobs, {1e-5, 5e-5, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_GT(cdf.back().second, 0.95);
}

TEST(FleetSimTest, SummaryOfEmptyFleet) {
  const FleetSummary s = SummarizeFleet({});
  EXPECT_EQ(s.num_jobs, 0);
  EXPECT_EQ(s.frac_above_1ms, 0);
}

}  // namespace
}  // namespace plumber
