// Tests for the tracer and the operational model (visit ratios,
// resource-accounted rates, cardinality/materialization, cacheability).
#include "src/core/model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/tracer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

// Builds: interleave -> map(double_size) -> filter(keep_all) ->
// batch(5) and traces a full epoch.
struct TracedChain {
  std::unique_ptr<PipelineTestEnv> env;  // heap: pipeline keeps pointers
  std::unique_ptr<Pipeline> pipeline;
  TraceSnapshot trace;
  std::unique_ptr<PipelineModel> model_holder;
  PipelineModel& model() { return *model_holder; }

  static TracedChain Make() {
    TracedChain t;
    t.env = std::make_unique<PipelineTestEnv>(/*num_files=*/4,
                                              /*records_per_file=*/25,
                                              /*record_bytes=*/64);
    GraphBuilder b;
    auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
    n = b.Map("double", n, "double_size");
    n = b.Filter("keep", n, "keep_all");
    n = b.Batch("batch", n, 5);
    auto graph = std::move(b.Build(n)).value();
    t.pipeline =
        std::move(Pipeline::Create(std::move(graph), t.env->Options()))
            .value();
    TraceOptions topts;
    topts.trace_seconds = 5.0;  // generous; ends at end-of-data
    topts.machine = MachineSpec::SetupA();
    t.trace = CaptureTrace(*t.pipeline, topts);
    t.model_holder = std::make_unique<PipelineModel>(
        std::move(PipelineModel::Build(t.trace, &t.env->udfs)).value());
    return t;
  }
};

TEST(TracerTest, CapturesRootCompletionsAndGraph) {
  auto t = TracedChain::Make();
  EXPECT_EQ(t.trace.root_completions, 20u);  // 100 records / batch 5
  EXPECT_EQ(t.trace.graph.output(), "batch");
  EXPECT_NE(t.trace.FindStats("double"), nullptr);
  EXPECT_EQ(t.trace.FindStats("nope"), nullptr);
  EXPECT_EQ(t.trace.files_per_prefix.at("data/"), 4u);
}

TEST(TracerTest, SerializeContainsProgramAndStats) {
  auto t = TracedChain::Make();
  const std::string dump = t.trace.Serialize();
  EXPECT_NE(dump.find("node interleave"), std::string::npos);
  EXPECT_NE(dump.find("stat batch"), std::string::npos);
  EXPECT_NE(dump.find("file data/f0"), std::string::npos);
}

TEST(ModelTest, VisitRatiosFollowBatchAndUnitOps) {
  auto t = TracedChain::Make();
  EXPECT_DOUBLE_EQ(t.model().Find("batch")->visit_ratio, 1.0);
  // 5 elements enter the batch per minibatch.
  EXPECT_NEAR(t.model().Find("keep")->visit_ratio, 5.0, 1e-9);
  EXPECT_NEAR(t.model().Find("double")->visit_ratio, 5.0, 1e-9);
  EXPECT_NEAR(t.model().Find("interleave")->visit_ratio, 5.0, 1e-9);
}

TEST(ModelTest, BytesPerElementTracksSizeRatio) {
  auto t = TracedChain::Make();
  EXPECT_NEAR(t.model().Find("interleave")->bytes_per_element, 64.0, 1e-9);
  EXPECT_NEAR(t.model().Find("double")->bytes_per_element, 128.0, 1e-9);
  // Batch of 5 doubled elements.
  EXPECT_NEAR(t.model().Find("batch")->bytes_per_element, 640.0, 1e-9);
}

TEST(ModelTest, CardinalityEstimatesMatchGroundTruth) {
  auto t = TracedChain::Make();
  // 100 records total; batch divides by 5.
  EXPECT_NEAR(t.model().Find("interleave")->cardinality, 100.0, 5.0);
  EXPECT_NEAR(t.model().Find("double")->cardinality, 100.0, 5.0);
  EXPECT_NEAR(t.model().Find("batch")->cardinality, 20.0, 1.0);
}

TEST(ModelTest, MaterializedBytesPropagate) {
  auto t = TracedChain::Make();
  // Source: ~100 x (64+framing) disk bytes -> payload-only materializes
  // 100 x 64 at the interleave output.
  EXPECT_NEAR(t.model().Find("interleave")->materialized_bytes, 6400.0, 500.0);
  EXPECT_NEAR(t.model().Find("double")->materialized_bytes, 12800.0, 1000.0);
}

TEST(ModelTest, SourceSizeEstimateExactWhenFullyRead) {
  auto t = TracedChain::Make();
  const auto estimates = t.model().EstimateSourceSizes();
  ASSERT_EQ(estimates.count("data/"), 1u);
  const auto& est = estimates.at("data/");
  EXPECT_EQ(est.files_seen, 4u);
  EXPECT_EQ(est.files_total, 4u);
  const double truth = 100.0 * (64 + kRecordFramingBytes);
  EXPECT_NEAR(est.estimated_bytes, truth, 1.0);
}

TEST(ModelTest, SubsampledSourceEstimateRescales) {
  // Trace only a fraction of the dataset (stop after a few batches) and
  // check the m/n-rescaled estimate still lands near the truth.
  PipelineTestEnv env(/*num_files=*/16, /*records_per_file=*/25,
                      /*record_bytes=*/64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Batch("batch", n, 5);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 5.0;
  topts.max_batches = 10;  // reads ~2 of 16 files
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  const auto est = model.EstimateSourceSizes().at("data/");
  EXPECT_LT(est.files_seen, 16u);
  EXPECT_GT(est.files_seen, 0u);
  const double truth = 16 * 25 * (64.0 + kRecordFramingBytes);
  EXPECT_NEAR(est.estimated_bytes, truth, 0.15 * truth);
}

TEST(ModelTest, RandomUdfTaintsDownstreamOnly) {
  PipelineTestEnv env(2, 20, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("pre", n, "double_size");
  n = b.Map("aug", n, "rand_aug");
  n = b.Map("post", n, "noop");
  n = b.Batch("batch", n, 5);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 5.0;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  EXPECT_FALSE(model.Find("pre")->random_tainted);
  EXPECT_TRUE(model.Find("pre")->cacheable);
  EXPECT_TRUE(model.Find("aug")->random_tainted);
  EXPECT_FALSE(model.Find("aug")->cacheable);
  EXPECT_TRUE(model.Find("post")->random_tainted);
  EXPECT_FALSE(model.Find("post")->cacheable);
  EXPECT_FALSE(model.Find("batch")->cacheable);
}

TEST(ModelTest, InfiniteRepeatPoisonsCardinality) {
  PipelineTestEnv env(2, 20, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "noop");
  n = b.ShuffleAndRepeat("sr", n, 8);
  n = b.Batch("batch", n, 5);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 0.2;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  // Below the repeat: finite and cacheable. At/above: infinite.
  EXPECT_TRUE(model.Find("m")->cacheable);
  EXPECT_EQ(model.Find("sr")->cardinality, kModelInfinite);
  EXPECT_EQ(model.Find("batch")->cardinality, kModelInfinite);
  EXPECT_FALSE(model.Find("batch")->cacheable);
}

TEST(ModelTest, BelowCacheNodesAreFree) {
  PipelineTestEnv env(2, 20, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("expensive", n, "slow");
  n = b.Cache("cache", n);
  n = b.Repeat("repeat", n, -1);
  n = b.Batch("batch", n, 5);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 0.4;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  EXPECT_TRUE(model.Find("expensive")->below_cache);
  EXPECT_TRUE(model.Find("interleave")->below_cache);
  EXPECT_FALSE(model.Find("batch")->below_cache);
  // LP stages must exclude the freed subtree.
  for (const auto& stage : model.LpStages()) {
    EXPECT_NE(stage.name, "expensive");
    EXPECT_NE(stage.name, "interleave");
  }
}

TEST(ModelTest, RatesIdentifyTheExpensiveStage) {
  // Retried: rate_per_core comes from the wall-derived virtual-CPU
  // clock, so preemption by co-scheduled tests (ctest -j on a small
  // host) inflates the expensive stage's measured cost; see
  // EventuallyTrue. The threshold itself stays put.
  EXPECT_TRUE(testing_util::EventuallyTrue([] {
    PipelineTestEnv env(4, 50, 64);
    GraphBuilder b;
    auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
    n = b.Map("cheap", n, "noop");
    n = b.Map("expensive", n, "slow");  // 200us/element
    n = b.Batch("batch", n, 5);
    auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                               env.Options()))
                        .value();
    TraceOptions topts;
    topts.trace_seconds = 5.0;
    topts.machine = MachineSpec::SetupA();
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
    const NodeModel* expensive = model.Find("expensive");
    if (expensive == nullptr || expensive->cpu_seconds <= 0) return false;
    // 200us x 5 elements/minibatch -> ~1000 minibatches/sec/core.
    if (std::abs(expensive->rate_per_core - 1000.0) > 400.0) return false;
    // Bottleneck ranking puts the expensive parallelizable stage first.
    const auto ranking = model.RankBottlenecks();
    return !ranking.empty() && ranking.front() == "expensive";
  }));
}

TEST(ModelTest, DiskBytesPerMinibatch) {
  auto t = TracedChain::Make();
  // 5 records of (64 + framing) bytes per minibatch.
  EXPECT_NEAR(t.model().DiskBytesPerMinibatch(),
              5.0 * (64 + kRecordFramingBytes), 10.0);
}

}  // namespace
}  // namespace plumber
