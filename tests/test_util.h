// Shared helpers for pipeline-level tests.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/pipeline/graph_builder.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/runner.h"
#include "src/util/channel.h"

namespace plumber {
namespace testing_util {

// A self-contained environment: filesystem with `num_files` record
// files of `records_per_file` x `record_bytes` under "data/", plus a
// UDF registry with a few standard test UDFs:
//   noop          1:1, negligible cost
//   double_size   ratio 2.0
//   slow          200us/element
//   rand_aug      randomized
//   keep_half     filter with keep_fraction 0.5
//   keep_all      filter with keep_fraction 1.0
struct PipelineTestEnv {
  SimFilesystem fs;
  UdfRegistry udfs;

  explicit PipelineTestEnv(int num_files = 4, int records_per_file = 25,
                           uint64_t record_bytes = 64) {
    for (int f = 0; f < num_files; ++f) {
      std::vector<uint64_t> sizes(records_per_file, record_bytes);
      EXPECT_TRUE(fs.CreateRecordFile("data/f" + std::to_string(f), f + 1,
                                      std::move(sizes))
                      .ok());
    }
    auto add = [&](UdfSpec spec) {
      EXPECT_TRUE(udfs.Register(std::move(spec)).ok());
    };
    UdfSpec noop;
    noop.name = "noop";
    add(noop);
    UdfSpec double_size;
    double_size.name = "double_size";
    double_size.size_ratio = 2.0;
    add(double_size);
    UdfSpec slow;
    slow.name = "slow";
    slow.cost_ns_per_element = 200e3;
    add(slow);
    UdfSpec rand_aug;
    rand_aug.name = "rand_aug";
    rand_aug.accesses_random_seed = true;
    add(rand_aug);
    UdfSpec keep_half;
    keep_half.name = "keep_half";
    keep_half.keep_fraction = 0.5;
    add(keep_half);
    UdfSpec keep_all;
    keep_all.name = "keep_all";
    add(keep_all);
  }

  PipelineOptions Options(uint64_t memory_budget = 0) {
    PipelineOptions options;
    options.fs = &fs;
    options.udfs = &udfs;
    options.memory_budget_bytes = memory_budget;
    return options;
  }

  int total_records() const {
    int total = 0;
    for (const auto& name : fs.List("data/")) {
      total += static_cast<int>(fs.FindMeta(name)->NumRecords());
    }
    return total;
  }
};

// Retries a timing-sensitive check, returning true as soon as one
// attempt passes. Wall-clock rate comparisons are legitimate contracts
// but a single sample can lose to scheduler noise on shared CI hosts;
// retrying the whole measurement keeps the threshold intact (never
// weaken the threshold itself to make a test pass).
template <typename Fn>
inline bool EventuallyTrue(Fn&& check, int attempts = 3) {
  for (int i = 0; i < attempts; ++i) {
    if (check()) return true;
  }
  return false;
}

// Drains up to `limit` elements from a pipeline (0 = until end).
inline std::vector<Element> Drain(Pipeline& pipeline, int64_t limit = 0) {
  std::vector<Element> out;
  auto it_or = pipeline.MakeIterator();
  EXPECT_TRUE(it_or.ok()) << it_or.status();
  if (!it_or.ok()) return out;
  auto iterator = std::move(it_or).value();
  Element e;
  bool end = false;
  while (limit == 0 || static_cast<int64_t>(out.size()) < limit) {
    const Status s = iterator->GetNext(&e, &end);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok() || end) break;
    out.push_back(std::move(e));
  }
  return out;
}

// Sorted multiset of element byte sizes — an order-insensitive
// fingerprint for comparing pipeline outputs.
inline std::vector<size_t> SizeFingerprint(const std::vector<Element>& v) {
  std::vector<size_t> sizes;
  sizes.reserve(v.size());
  for (const auto& e : v) sizes.push_back(e.TotalBytes());
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

// Byte-exact element-for-element comparison (not just a fingerprint).
inline void ExpectIdenticalOutput(const std::vector<Element>& a,
                                  const std::vector<Element>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].components.size(), b[i].components.size()) << "elem " << i;
    for (size_t c = 0; c < a[i].components.size(); ++c) {
      ASSERT_EQ(a[i].components[c], b[i].components[c])
          << "elem " << i << " component " << c;
    }
  }
}

// ---------------------------------------------------- channel stress
// Shared by bounded_queue_test and the channel conformance suite; run
// under TSan in CI. Pass producers = consumers = 1 for SPSC channels.

// Each producer pushes `per_producer` distinct values in mixed batch
// sizes (including above capacity); `consumers` threads drain in
// batches. Every pushed value must arrive exactly once.
inline void ChannelStressExactlyOnce(Channel<int>& channel, int producers,
                                     int consumers, int per_producer) {
  std::vector<std::thread> producer_threads;
  for (int p = 0; p < producers; ++p) {
    producer_threads.emplace_back([&channel, p, per_producer] {
      std::vector<int> batch;
      for (int i = 0; i < per_producer; ++i) {
        batch.push_back(p * per_producer + i);
        // Mix of batch sizes, including ones above capacity.
        if (batch.size() == static_cast<size_t>(1 + (i % 53))) {
          ASSERT_TRUE(channel.PushBatch(std::move(batch)));
          batch.clear();
        }
      }
      ASSERT_TRUE(channel.PushBatch(std::move(batch)));
    });
  }
  std::mutex mu;
  std::vector<int> seen;
  std::atomic<int> remaining{producers * per_producer};
  std::vector<std::thread> consumer_threads;
  for (int c = 0; c < consumers; ++c) {
    consumer_threads.emplace_back([&] {
      std::vector<int> out;
      while (remaining.load() > 0) {
        out.clear();
        const size_t n = channel.PopBatch(16, &out);
        if (n == 0) break;  // cancelled
        remaining.fetch_sub(static_cast<int>(n));
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(seen.end(), out.begin(), out.end());
      }
    });
  }
  for (auto& t : producer_threads) t.join();
  // Wake consumers that may be blocked on an empty, fully-drained
  // channel.
  while (remaining.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  channel.Cancel();
  for (auto& t : consumer_threads) t.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(producers * per_producer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < producers * per_producer; ++i) {
    ASSERT_EQ(seen[i], i);
  }
}

// Rounds of producers and consumers racing a Cancel against a fresh
// channel from `make`: must neither deadlock nor duplicate items —
// values popped form a contiguous prefix of each producer's stream
// (only the batch in flight at cancellation may be dropped).
inline void ChannelStressRacingCancellation(
    const std::function<std::unique_ptr<Channel<int>>()>& make, int producers,
    int consumers, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    auto channel = make();
    std::atomic<bool> stop{false};
    std::vector<std::thread> producer_threads;
    for (int p = 0; p < producers; ++p) {
      producer_threads.emplace_back([&channel, &stop, p] {
        int next = p * 1000000;
        while (!stop.load()) {
          std::vector<int> batch;
          for (int i = 0; i < 5; ++i) batch.push_back(next++);
          if (!channel->PushBatch(std::move(batch))) return;
        }
      });
    }
    std::mutex mu;
    std::vector<int> seen;
    std::vector<std::thread> consumer_threads;
    for (int c = 0; c < consumers; ++c) {
      consumer_threads.emplace_back([&] {
        std::vector<int> out;
        for (;;) {
          out.clear();
          if (channel->PopBatch(7, &out) == 0) return;
          std::lock_guard<std::mutex> lock(mu);
          seen.insert(seen.end(), out.begin(), out.end());
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop = true;
    channel->Cancel();
    for (auto& t : producer_threads) t.join();
    for (auto& t : consumer_threads) t.join();
    std::vector<std::vector<int>> streams(producers);
    for (int v : seen) streams[v / 1000000].push_back(v);
    for (int p = 0; p < producers; ++p) {
      std::sort(streams[p].begin(), streams[p].end());
      for (size_t i = 0; i < streams[p].size(); ++i) {
        ASSERT_EQ(streams[p][i], p * 1000000 + static_cast<int>(i));
      }
    }
  }
}

}  // namespace testing_util
}  // namespace plumber
