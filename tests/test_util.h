// Shared helpers for pipeline-level tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/graph_builder.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/runner.h"

namespace plumber {
namespace testing_util {

// A self-contained environment: filesystem with `num_files` record
// files of `records_per_file` x `record_bytes` under "data/", plus a
// UDF registry with a few standard test UDFs:
//   noop          1:1, negligible cost
//   double_size   ratio 2.0
//   slow          200us/element
//   rand_aug      randomized
//   keep_half     filter with keep_fraction 0.5
//   keep_all      filter with keep_fraction 1.0
struct PipelineTestEnv {
  SimFilesystem fs;
  UdfRegistry udfs;

  explicit PipelineTestEnv(int num_files = 4, int records_per_file = 25,
                           uint64_t record_bytes = 64) {
    for (int f = 0; f < num_files; ++f) {
      std::vector<uint64_t> sizes(records_per_file, record_bytes);
      EXPECT_TRUE(fs.CreateRecordFile("data/f" + std::to_string(f), f + 1,
                                      std::move(sizes))
                      .ok());
    }
    auto add = [&](UdfSpec spec) {
      EXPECT_TRUE(udfs.Register(std::move(spec)).ok());
    };
    UdfSpec noop;
    noop.name = "noop";
    add(noop);
    UdfSpec double_size;
    double_size.name = "double_size";
    double_size.size_ratio = 2.0;
    add(double_size);
    UdfSpec slow;
    slow.name = "slow";
    slow.cost_ns_per_element = 200e3;
    add(slow);
    UdfSpec rand_aug;
    rand_aug.name = "rand_aug";
    rand_aug.accesses_random_seed = true;
    add(rand_aug);
    UdfSpec keep_half;
    keep_half.name = "keep_half";
    keep_half.keep_fraction = 0.5;
    add(keep_half);
    UdfSpec keep_all;
    keep_all.name = "keep_all";
    add(keep_all);
  }

  PipelineOptions Options(uint64_t memory_budget = 0) {
    PipelineOptions options;
    options.fs = &fs;
    options.udfs = &udfs;
    options.memory_budget_bytes = memory_budget;
    return options;
  }

  int total_records() const {
    int total = 0;
    for (const auto& name : fs.List("data/")) {
      total += static_cast<int>(fs.FindMeta(name)->NumRecords());
    }
    return total;
  }
};

// Retries a timing-sensitive check, returning true as soon as one
// attempt passes. Wall-clock rate comparisons are legitimate contracts
// but a single sample can lose to scheduler noise on shared CI hosts;
// retrying the whole measurement keeps the threshold intact (never
// weaken the threshold itself to make a test pass).
template <typename Fn>
inline bool EventuallyTrue(Fn&& check, int attempts = 3) {
  for (int i = 0; i < attempts; ++i) {
    if (check()) return true;
  }
  return false;
}

// Drains up to `limit` elements from a pipeline (0 = until end).
inline std::vector<Element> Drain(Pipeline& pipeline, int64_t limit = 0) {
  std::vector<Element> out;
  auto it_or = pipeline.MakeIterator();
  EXPECT_TRUE(it_or.ok()) << it_or.status();
  if (!it_or.ok()) return out;
  auto iterator = std::move(it_or).value();
  Element e;
  bool end = false;
  while (limit == 0 || static_cast<int64_t>(out.size()) < limit) {
    const Status s = iterator->GetNext(&e, &end);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok() || end) break;
    out.push_back(std::move(e));
  }
  return out;
}

// Sorted multiset of element byte sizes — an order-insensitive
// fingerprint for comparing pipeline outputs.
inline std::vector<size_t> SizeFingerprint(const std::vector<Element>& v) {
  std::vector<size_t> sizes;
  sizes.reserve(v.size());
  for (const auto& e : v) sizes.push_back(e.TotalBytes());
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

}  // namespace testing_util
}  // namespace plumber
