// Fleet runtime tests: dispatch policies (round-robin, least-loaded,
// locality), cross-host work stealing, shutdown with queued jobs, and
// the FleetSession trace-replay front door.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "src/api/fleet_session.h"
#include "src/net/network_device.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace fleet {
namespace {

bool PollUntil(const std::function<bool()>& cond, double seconds = 20) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

// A fleet of small identical hosts sharing one registered UDF.
std::unique_ptr<FleetSession> MakeFleet(int hosts, DispatchPolicy policy,
                                        bool stealing,
                                        double cost_ns = 1e6) {
  FleetSessionOptions options;
  for (int h = 0; h < hosts; ++h) {
    MachineSpec machine;
    machine.num_cores = 4;
    machine.name = "host" + std::to_string(h);
    options.hosts.push_back(machine);
  }
  options.fleet.policy = policy;
  options.fleet.work_stealing = stealing;
  auto fleet = std::make_unique<FleetSession>(std::move(options));
  UdfSpec work;
  work.name = "work";
  work.cost_ns_per_element = cost_ns;
  EXPECT_TRUE(fleet->RegisterUdf(work).ok());
  return fleet;
}

GraphDef WorkGraph(int64_t elements, int parallelism = 2) {
  GraphDef graph;
  NodeDef src;
  src.name = "src";
  src.op = "range";
  src.attrs[kAttrCount] = AttrValue(elements);
  EXPECT_TRUE(graph.AddNode(std::move(src)).ok());
  NodeDef work;
  work.name = "work";
  work.op = "map";
  work.inputs = {"src"};
  work.attrs[kAttrUdf] = AttrValue("work");
  work.attrs[kAttrParallelism] = AttrValue(parallelism);
  EXPECT_TRUE(graph.AddNode(std::move(work)).ok());
  graph.SetOutput("work");
  return graph;
}

TEST(FleetRuntimeTest, RoundRobinSpreadsJobsAcrossHosts) {
  auto fleet = MakeFleet(4, DispatchPolicy::kRoundRobin,
                         /*stealing=*/false, /*cost_ns=*/1e5);
  std::vector<FleetJobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(fleet->Submit(WorkGraph(20)));
  }
  std::vector<int> per_host(4, 0);
  for (FleetJobHandle& handle : handles) {
    ASSERT_TRUE(handle.Wait().ok());
    const FleetJobStats stats = handle.Stats();
    ASSERT_GE(stats.host, 0);
    ASSERT_LT(stats.host, 4);
    ++per_host[stats.host];
    EXPECT_EQ(stats.elements, 20);
    EXPECT_GT(stats.completion_s, 0);
  }
  for (int h = 0; h < 4; ++h) EXPECT_EQ(per_host[h], 2) << "host " << h;
  EXPECT_EQ(fleet->runtime().steal_count(), 0);
}

TEST(FleetRuntimeTest, LeastLoadedAvoidsBusyHost) {
  auto fleet = MakeFleet(2, DispatchPolicy::kLeastLoaded,
                         /*stealing=*/false);
  // Occupy host 0 with pinned long jobs (least-loaded ignores pins,
  // so seed the imbalance through the runtime's locality plumbing:
  // submit them first — with equal load ties go to host 0).
  std::vector<FleetJobHandle> blockers;
  for (int i = 0; i < 3; ++i) {
    blockers.push_back(fleet->Submit(WorkGraph(400, 1)));
  }
  ASSERT_TRUE(PollUntil([&] {
    const FleetHostLoad load = fleet->runtime().HostLoad(0);
    return load.executor.running_jobs > 0;
  }));
  // New short jobs must land on the emptier host 1.
  FleetJobHandle probe = fleet->Submit(WorkGraph(10));
  ASSERT_TRUE(probe.Wait().ok());
  EXPECT_EQ(probe.Stats().host, 1);
  for (FleetJobHandle& handle : blockers) ASSERT_TRUE(handle.Wait().ok());
}

TEST(FleetRuntimeTest, LocalityPinRoutesToPinnedHost) {
  auto fleet = MakeFleet(3, DispatchPolicy::kLocality,
                         /*stealing=*/false, /*cost_ns=*/1e5);
  std::vector<FleetJobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    FleetJobOptions options;
    options.pinned_host = i % 3;
    handles.push_back(fleet->Submit(WorkGraph(10), options));
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(handles[i].Wait().ok());
    EXPECT_EQ(handles[i].Stats().host, i % 3) << "job " << i;
    EXPECT_FALSE(handles[i].Stats().stolen);
  }
}

TEST(FleetRuntimeTest, WorkStealingRebalancesPinnedBacklog) {
  // Everything pinned to host 0: without stealing host 1 would idle;
  // with stealing it must take over part of the backlog.
  auto fleet = MakeFleet(2, DispatchPolicy::kLocality,
                         /*stealing=*/true);
  std::vector<FleetJobHandle> handles;
  for (int i = 0; i < 12; ++i) {
    FleetJobOptions options;
    options.pinned_host = 0;
    handles.push_back(fleet->Submit(WorkGraph(40), options));
  }
  int stolen = 0, on_host1 = 0;
  for (FleetJobHandle& handle : handles) {
    ASSERT_TRUE(handle.Wait().ok());
    const FleetJobStats stats = handle.Stats();
    if (stats.stolen) ++stolen;
    if (stats.host == 1) ++on_host1;
  }
  EXPECT_GT(stolen, 0);
  EXPECT_EQ(stolen, on_host1);  // only steals move a pinned job
  EXPECT_EQ(fleet->runtime().steal_count(), stolen);
}

TEST(FleetRuntimeTest, StealMigrationChargesTransferThroughBothNics) {
  // Same pinned-backlog shape as the stealing test, but the hosts have
  // real NICs: every migration must charge the serialized program
  // through the victim's and the thief's device, byte for byte.
  FleetSessionOptions options;
  for (int h = 0; h < 2; ++h) {
    MachineSpec machine;
    machine.num_cores = 4;
    machine.name = "host" + std::to_string(h);
    machine.nic = NicSpec::TokenBucketLimit(50e6);
    options.hosts.push_back(machine);
  }
  options.fleet.policy = DispatchPolicy::kLocality;
  options.fleet.work_stealing = true;
  FleetSession fleet(std::move(options));
  UdfSpec work;
  work.name = "work";
  work.cost_ns_per_element = 1e6;
  ASSERT_TRUE(fleet.RegisterUdf(work).ok());

  const uint64_t payload = WorkGraph(40).Serialize().size();
  ASSERT_GT(payload, 0u);
  std::vector<FleetJobHandle> handles;
  for (int i = 0; i < 12; ++i) {
    FleetJobOptions jopts;
    jopts.pinned_host = 0;
    handles.push_back(fleet.Submit(WorkGraph(40), jopts));
  }
  uint64_t stolen = 0;
  for (FleetJobHandle& handle : handles) {
    ASSERT_TRUE(handle.Wait().ok());
    const FleetJobStats stats = handle.Stats();
    if (stats.stolen) {
      ++stolen;
      EXPECT_EQ(stats.transfer_bytes, payload);
    } else {
      EXPECT_EQ(stats.transfer_bytes, 0u);
    }
  }
  ASSERT_GT(stolen, 0u);
  // Fleet-wide total and the two endpoint NICs agree exactly: these
  // jobs move no other bytes, so migration is the only NIC traffic.
  EXPECT_EQ(fleet.runtime().transfer_bytes(), stolen * payload);
  EXPECT_EQ(fleet.runtime().host_nic(0)->total_bytes(), stolen * payload);
  EXPECT_EQ(fleet.runtime().host_nic(1)->total_bytes(), stolen * payload);
  EXPECT_EQ(fleet.runtime().host_nic(0)->total_transfers(), stolen);
  EXPECT_EQ(fleet.runtime().host_nic(1)->total_transfers(), stolen);
}

TEST(FleetRuntimeTest, ShutdownFailsUndispatchedJobsCleanly) {
  std::vector<FleetJobHandle> handles;
  {
    auto fleet = MakeFleet(1, DispatchPolicy::kRoundRobin,
                           /*stealing=*/false);
    // Far more jobs than one 2-concurrent host drains instantly; the
    // tail is still fleet-queued when the runtime dies.
    for (int i = 0; i < 30; ++i) {
      handles.push_back(fleet->Submit(WorkGraph(200)));
    }
  }
  int cancelled = 0;
  for (FleetJobHandle& handle : handles) {
    if (!handle.Wait().ok()) ++cancelled;
  }
  // Shutdown must surface as an error on the undispatched tail, and
  // Wait must not hang on any handle (reaching here proves it).
  EXPECT_GT(cancelled, 0);
}

TEST(FleetRuntimeTest, ReplaySmallTraceReportsSaneFleetMetrics) {
  auto fleet = MakeFleet(2, DispatchPolicy::kLeastLoaded,
                         /*stealing=*/true);
  ArrivalTrace trace;
  trace.classes.push_back({"light", 0.8, 2e5, 2, 8});
  trace.classes.push_back({"heavy", 0.2, 2e6, 2, 16});
  PoissonTraceOptions options;
  options.seed = 5;
  options.num_jobs = 30;
  options.mean_interarrival_s = 0.005;
  trace = MakePoissonTrace(trace.classes, options);

  auto report = fleet->Replay(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_jobs, 30);
  EXPECT_EQ(report->num_hosts, 2);
  EXPECT_EQ(report->failed_jobs, 0);
  EXPECT_GT(report->makespan_s, 0);
  EXPECT_GT(report->p50_completion_s, 0);
  EXPECT_LE(report->p50_completion_s, report->p95_completion_s);
  EXPECT_LE(report->p95_completion_s, report->p99_completion_s);
  EXPECT_LE(report->p50_queue_s, report->p50_completion_s);
  ASSERT_EQ(report->host_utilization.size(), 2u);
  for (double util : report->host_utilization) {
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
  }
  EXPECT_GT(report->mean_utilization, 0.0);
  EXPECT_FALSE(report->ToString().empty());
}

TEST(FleetRuntimeTest, SloAwareDispatchCarriesClassAndReportsByClass) {
  auto fleet = MakeFleet(2, DispatchPolicy::kSloAware,
                         /*stealing=*/false, /*cost_ns=*/2e5);
  // A directly submitted job carries its SLO class into the fleet
  // stats (the kSloAware dispatcher routes on it).
  FleetJobOptions inter_opts;
  inter_opts.job.slo = runtime::SloClass::kInteractive;
  inter_opts.job.priority = 2.0;
  FleetJobHandle probe = fleet->Submit(WorkGraph(10), inter_opts);
  ASSERT_TRUE(probe.Wait().ok());
  EXPECT_EQ(probe.Stats().slo, runtime::SloClass::kInteractive);
  EXPECT_GE(probe.Stats().host, 0);

  // Replay of a mixed-class trace: the report breaks latencies out per
  // class, tier order first, covering every replayed job exactly once.
  ArrivalTrace trace;
  TraceJobClass rpc;
  rpc.name = "rpc";
  rpc.weight = 1.0;
  rpc.cost_ns = 2e5;
  rpc.parallelism = 2;
  rpc.mean_elements = 6;
  rpc.slo = runtime::SloClass::kInteractive;
  TraceJobClass bulk;
  bulk.name = "bulk";
  bulk.weight = 1.0;
  bulk.cost_ns = 2e5;
  bulk.parallelism = 2;
  bulk.mean_elements = 12;  // slo defaults to kBatch
  PoissonTraceOptions options;
  options.seed = 7;
  options.num_jobs = 24;
  options.mean_interarrival_s = 0.005;
  trace = MakePoissonTrace({rpc, bulk}, options);

  auto report = fleet->Replay(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->failed_jobs, 0);
  ASSERT_FALSE(report->by_class.empty());
  int64_t jobs_covered = 0;
  for (const FleetClassLatency& c : report->by_class) {
    jobs_covered += c.num_jobs;
    EXPECT_GT(c.num_jobs, 0);
    EXPECT_LE(c.p50_completion_s, c.p95_completion_s);
    EXPECT_LE(c.p50_queue_s, c.p95_queue_s);
  }
  EXPECT_EQ(jobs_covered, report->num_jobs);
  if (report->by_class.size() == 2) {
    // Tier order: interactive before batch.
    EXPECT_EQ(report->by_class[0].slo, runtime::SloClass::kInteractive);
    EXPECT_EQ(report->by_class[1].slo, runtime::SloClass::kBatch);
    EXPECT_NE(report->ToString().find("interactive"), std::string::npos);
  }
}

TEST(FleetRuntimeTest, ReplayWithoutArrivalsDrainsBacklog) {
  auto fleet = MakeFleet(2, DispatchPolicy::kLeastLoaded,
                         /*stealing=*/true, /*cost_ns=*/1e5);
  ArrivalTrace trace;
  trace.classes.push_back({"c", 1.0, 1e5, 2, 8});
  PoissonTraceOptions options;
  options.seed = 3;
  options.num_jobs = 16;
  trace = MakePoissonTrace(trace.classes, options);
  TraceReplayOptions replay;
  replay.respect_arrivals = false;  // pure backlog drain
  auto report = fleet->Replay(trace, replay);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_jobs, 16);
  EXPECT_EQ(report->failed_jobs, 0);
}

}  // namespace
}  // namespace fleet
}  // namespace plumber
