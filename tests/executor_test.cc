// Executor lifecycle and multi-tenant arbitration tests: concurrent
// Submit, mid-run Cancel, handles outliving their Session, fairness
// under maximin re-planning, queueing under a concurrency cap, and the
// multi-job planner's water-filling itself.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "src/core/multi_job_planner.h"
#include "src/core/plumber.h"
#include "src/pipeline/ops.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

// Polls a condition until it holds or the deadline passes. Executor
// scheduling is asynchronous (50ms ticks), so state assertions poll.
bool PollUntil(const std::function<bool()>& cond, double seconds = 20) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

Session MakeSession(int num_cores, int max_concurrent = 0) {
  SessionOptions so;
  so.machine.num_cores = num_cores;
  so.max_concurrent_jobs = max_concurrent;
  Session session(std::move(so));
  EXPECT_TRUE(session.CreateRecordFiles("train/part-", 4, 50, 64).ok());
  UdfSpec work;
  work.name = "work";
  work.cost_ns_per_element = 1e6;  // 1ms: modeled occupancy, kTimed
  EXPECT_TRUE(session.RegisterUdf(work).ok());
  UdfSpec fast;
  fast.name = "fast";
  fast.size_ratio = 2.0;
  EXPECT_TRUE(session.RegisterUdf(fast).ok());
  return session;
}

int LiveParallelism(const JobHandle& job, const std::string& node) {
  for (const auto& s : job.Progress().node_stats) {
    if (s.name == node) return s.parallelism;
  }
  return -1;
}

TEST(ExecutorTest, SubmitWaitMatchesBlockingRunReport) {
  // Flow::Run is Submit + Wait; both must match the low-level
  // single-tenant reference (same pipeline machinery, same counters).
  Session session = MakeSession(8);
  const Flow flow = session.Files("train/")
                        .Interleave(2)
                        .Map("fast", 4).Named("m")
                        .Batch(10);
  RunOptions window;
  window.max_batches = 1000;  // finite input: runs to the end

  PipelineOptions popts = session.MakePipelineOptions();
  auto reference =
      std::move(Pipeline::Create(std::move(flow.Graph()).value(), popts))
          .value();
  const RunResult low_level = RunPipeline(*reference, window);
  ASSERT_TRUE(low_level.status.ok());
  ASSERT_TRUE(low_level.reached_end);

  const auto via_run = flow.Run(window);
  ASSERT_TRUE(via_run.ok()) << via_run.status();
  JobHandle handle = session.Submit(flow, JobOptions{window, "explicit"});
  const auto via_submit = handle.Wait();
  ASSERT_TRUE(via_submit.ok()) << via_submit.status();
  EXPECT_EQ(handle.phase(), JobPhase::kDone);
  EXPECT_EQ(handle.name(), "explicit");

  for (const RunReport* report : {&*via_run, &*via_submit}) {
    EXPECT_TRUE(report->status.ok());
    EXPECT_TRUE(report->reached_end);
    EXPECT_EQ(report->batches, low_level.batches);
    EXPECT_EQ(report->elements, low_level.examples);
    EXPECT_GT(report->bytes_produced, 0u);
    EXPECT_GE(report->queue_seconds, 0.0);
    const IteratorStatsSnapshot* map = report->FindNode("m");
    ASSERT_NE(map, nullptr);
    // A job running alone is never arbitrated: configured knob stands.
    EXPECT_EQ(map->parallelism, 4);
    EXPECT_EQ(map->elements_produced, 200u);
  }
}

TEST(ExecutorTest, ConcurrentSubmitAllJobsComplete) {
  Session session = MakeSession(8);
  RunOptions window;
  window.max_batches = 2000;
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 4; ++i) {
    // Heterogeneous mix: two expensive, two cheap pipelines.
    Flow flow = i % 2 == 0
                    ? session.Range(60).Map("work", 2).Named("m")
                    : session.Files("train/").Interleave(2).Map("fast", 2);
    jobs.push_back(session.Submit(flow, JobOptions{window, ""}));
  }
  int64_t total_elements = 0;
  for (JobHandle& job : jobs) {
    const auto report = job.Wait();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(job.phase(), JobPhase::kDone);
    EXPECT_TRUE(report->reached_end);
    total_elements += report->elements;
  }
  EXPECT_EQ(total_elements, 60 + 60 + 200 + 200);
}

TEST(ExecutorTest, MidRunCancelStopsPromptly) {
  Session session = MakeSession(8);
  RunOptions window;
  window.max_seconds = 60;  // failsafe; the test cancels long before
  JobHandle job =
      session.Submit(session.Range(1 << 30).Map("work", 2), JobOptions{window, ""});
  ASSERT_TRUE(PollUntil([&] { return job.Progress().batches > 0; }));
  EXPECT_EQ(job.phase(), JobPhase::kRunning);
  const auto t0 = std::chrono::steady_clock::now();
  job.Cancel();
  const auto report = job.Wait();
  const double cancel_latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(job.phase(), JobPhase::kCancelled);
  // Cooperative cancel is a clean outcome: partial counts stand.
  EXPECT_TRUE(report->status.ok());
  EXPECT_GT(report->batches, 0);
  EXPECT_FALSE(report->reached_end);
  EXPECT_LT(cancel_latency, 30.0);
}

TEST(ExecutorTest, HandleOutlivesSession) {
  JobHandle job;
  {
    Session session = MakeSession(4);
    RunOptions window;
    window.max_seconds = 60;
    job = session.Submit(session.Range(1 << 30).Map("work", 2),
                         JobOptions{window, ""});
    ASSERT_TRUE(PollUntil([&] { return job.Progress().batches > 0; }));
  }  // Session destroyed; the handle keeps the environment alive.
  EXPECT_EQ(job.phase(), JobPhase::kRunning);
  EXPECT_GT(job.Progress().batches, 0);
  job.Cancel();
  const auto report = job.Wait();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(job.phase(), JobPhase::kCancelled);
}

TEST(ExecutorTest, MaximinReplanningIsFairAndRestores) {
  // Three identical jobs demanding 8 workers each on an 8-core
  // machine: the maximin split grants each the same share (no job
  // starves), and the last survivor gets its configured knob back.
  Session session = MakeSession(8);
  RunOptions window;
  window.max_seconds = 60;
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(session.Submit(
        session.Range(1 << 30).Map("work", 8).Named("m"),
        JobOptions{window, ""}));
  }
  // All three arbitrated to the fair share: floor(8/3) = 2 workers.
  ASSERT_TRUE(PollUntil([&] {
    for (JobHandle& job : jobs) {
      if (LiveParallelism(job, "m") != 2) return false;
    }
    return true;
  })) << LiveParallelism(jobs[0], "m") << " "
      << LiveParallelism(jobs[1], "m") << " "
      << LiveParallelism(jobs[2], "m");
  // No job starves under the split: every job keeps making progress.
  std::vector<int64_t> before;
  for (JobHandle& job : jobs) before.push_back(job.Progress().batches);
  ASSERT_TRUE(PollUntil([&] {
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].Progress().batches <= before[i]) return false;
    }
    return true;
  }));
  // Departures hand cores back: cancel two, the survivor grows to its
  // configured 8 workers (target cleared, pool resized in place).
  jobs[0].Cancel();
  jobs[1].Cancel();
  ASSERT_TRUE(PollUntil([&] { return LiveParallelism(jobs[2], "m") == 8; }));
  jobs[2].Cancel();
  for (JobHandle& job : jobs) {
    const auto report = job.Wait();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(job.phase(), JobPhase::kCancelled);
    EXPECT_GT(report->batches, 0);
  }
}

TEST(ExecutorTest, ConcurrencyCapQueuesAndReportsQueueSeconds) {
  Session session = MakeSession(8, /*max_concurrent=*/1);
  RunOptions window;
  window.max_batches = 150;
  const Flow flow = session.Range(150).Map("work", 2);
  JobHandle first = session.Submit(flow, JobOptions{window, ""});
  JobHandle second = session.Submit(flow, JobOptions{window, ""});
  const auto r1 = first.Wait();
  const auto r2 = second.Wait();
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  // 150 elements at 1ms/2 workers ~ 75ms of run time for the first
  // job; the second waited for all of it.
  EXPECT_GT(r2->queue_seconds, r1->queue_seconds);
  EXPECT_GT(r2->queue_seconds, 0.03);
}

TEST(ExecutorTest, CancelWhileQueuedNeverRuns) {
  Session session = MakeSession(8, /*max_concurrent=*/1);
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(1 << 30).Map("work", 2),
                                     JobOptions{window, ""});
  ASSERT_TRUE(PollUntil([&] { return blocker.Progress().batches > 0; }));
  JobHandle queued = session.Submit(session.Range(100).Map("fast", 2),
                                    JobOptions{window, ""});
  EXPECT_EQ(queued.phase(), JobPhase::kQueued);
  queued.Cancel();
  const auto report = queued.Wait();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued.phase(), JobPhase::kCancelled);
  // queue_seconds freezes at the terminal timestamp for a job that
  // never ran; it must not keep growing with wall time.
  const double q1 = queued.Progress().queue_seconds;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_DOUBLE_EQ(queued.Progress().queue_seconds, q1);
  blocker.Cancel();
  (void)blocker.Wait();
}

TEST(ExecutorTest, SubmitErrorsSurfaceThroughHandle) {
  Session session = MakeSession(4);
  // Unknown UDF: instantiation fails at admission, Wait reports it.
  RunOptions window;
  window.max_batches = 10;
  JobHandle bad = session.Submit(session.Range(10).Map("nope", 2),
                                 JobOptions{window, ""});
  const auto report = bad.Wait();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(bad.phase(), JobPhase::kFailed);
  // An unbound flow fails at Submit itself.
  JobHandle unbound = Flow().Submit();
  EXPECT_FALSE(unbound.status().ok());
  EXPECT_FALSE(unbound.Wait().ok());
  // A flow from a different session is rejected.
  Session other = MakeSession(4);
  JobHandle foreign = session.Submit(other.Range(5), JobOptions{window, ""});
  EXPECT_FALSE(foreign.Wait().ok());
}

TEST(ExecutorTest, GovernorRetargetingPreservesDeterministicOutput) {
  // Element-for-element identity while worker pools grow and shrink
  // mid-run: resize history must never leak into results.
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  // "slow" (200us modeled) keeps the drain in flight long enough to
  // overlap dozens of retargets.
  n = b.Map("m", n, "slow", 4, /*deterministic=*/true);
  n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
  const GraphDef graph = std::move(b.Build(n)).value();

  auto reference =
      std::move(Pipeline::Create(graph, env.Options())).value();
  const auto expected = Drain(*reference);
  ASSERT_FALSE(expected.empty());

  PipelineOptions options = env.Options();
  options.governor = std::make_shared<ParallelismGovernor>();
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int target = 1;
    while (!stop.load()) {
      options.governor->SetTarget("m", target);
      target = target % 6 + 1;  // sweep 1..6, above and below configured
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const auto resized = Drain(*pipeline);
  stop.store(true);
  flipper.join();
  ASSERT_EQ(expected.size(), resized.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].components, resized[i].components) << "elem " << i;
  }
}

TEST(MultiJobPlannerTest, EqualJobsSplitEvenly) {
  std::vector<JobDemand> demands;
  for (int i = 0; i < 2; ++i) {
    JobDemand d;
    d.job_id = "j" + std::to_string(i);
    MaxMinStage stage;
    stage.name = "m";
    stage.rate_per_core = 1.0;
    d.stages.push_back(stage);
    d.max_parallelism["m"] = 8;
    demands.push_back(std::move(d));
  }
  const MultiJobPlan plan = PlanMultiJobAllocation(demands, 8);
  EXPECT_NEAR(plan.fair_rate, 4.0, 1e-9);
  ASSERT_EQ(plan.jobs.size(), 2u);
  for (const auto& [id, job_plan] : plan.jobs) {
    EXPECT_EQ(job_plan.parallelism.at("m"), 4) << id;
  }
}

TEST(MultiJobPlannerTest, CappedJobReleasesSurplus) {
  JobDemand small;
  small.job_id = "small";
  small.stages.push_back({"m", 1.0, false});
  small.max_parallelism["m"] = 2;  // configured knob caps its grant
  JobDemand big;
  big.job_id = "big";
  big.stages.push_back({"m", 1.0, false});
  big.max_parallelism["m"] = 16;
  const MultiJobPlan plan = PlanMultiJobAllocation({small, big}, 8);
  EXPECT_EQ(plan.jobs.at("small").parallelism.at("m"), 2);
  EXPECT_EQ(plan.jobs.at("big").parallelism.at("m"), 6);
}

TEST(MultiJobPlannerTest, RateAwareSplitEqualizesJobRates) {
  // Job "slow" needs 1 core per unit rate, "quick" 0.5: maximin gives
  // both the same rate, so slow gets twice the cores.
  JobDemand slow;
  slow.job_id = "slow";
  slow.stages.push_back({"m", 1.0, false});
  JobDemand quick;
  quick.job_id = "quick";
  quick.stages.push_back({"m", 2.0, false});
  const MultiJobPlan plan = PlanMultiJobAllocation({slow, quick}, 9);
  EXPECT_NEAR(plan.fair_rate, 6.0, 1e-9);
  EXPECT_NEAR(plan.jobs.at("slow").theta.at("m"), 6.0, 1e-9);
  EXPECT_NEAR(plan.jobs.at("quick").theta.at("m"), 3.0, 1e-9);
}

TEST(MultiJobPlannerTest, NoJobStarvesUnderOversubscription) {
  // 12 single-stage jobs on 4 cores: integer grants floor at one
  // worker each — arbitration throttles, it never stops a job.
  std::vector<JobDemand> demands;
  for (int i = 0; i < 12; ++i) {
    JobDemand d;
    d.job_id = "j" + std::to_string(i);
    d.stages.push_back({"m", 1.0, false});
    d.max_parallelism["m"] = 4;
    demands.push_back(std::move(d));
  }
  const MultiJobPlan plan = PlanMultiJobAllocation(demands, 4);
  for (const auto& [id, job_plan] : plan.jobs) {
    EXPECT_GE(job_plan.parallelism.at("m"), 1) << id;
  }
}

TEST(ExecutorTest, LoadSnapshotTracksQueueRunningAndGrants) {
  // The fleet dispatcher's signal: queue depth, running set, and the
  // live jobs' granted cores in one consistent view.
  PipelineTestEnv env;
  MachineSpec machine;
  machine.num_cores = 8;
  runtime::ExecutorOptions eopts;
  eopts.max_concurrent_jobs = 1;  // force the second submit to queue
  runtime::Executor executor([&] { return env.Options(); },
                             [&] { return machine; }, eopts);

  const runtime::ExecutorLoadSnapshot idle = executor.LoadSnapshot();
  EXPECT_EQ(idle.queued_jobs, 0);
  EXPECT_EQ(idle.running_jobs, 0);
  EXPECT_EQ(idle.granted_cores, 0);

  GraphDef graph;
  NodeDef src;
  src.name = "src";
  src.op = "range";
  src.attrs[kAttrCount] = AttrValue(int64_t{-1});  // run until cancelled
  ASSERT_TRUE(graph.AddNode(std::move(src)).ok());
  NodeDef work;
  work.name = "work";
  work.op = "map";
  work.inputs = {"src"};
  work.attrs[kAttrUdf] = AttrValue("slow");
  work.attrs[kAttrParallelism] = AttrValue(3);
  ASSERT_TRUE(graph.AddNode(std::move(work)).ok());
  graph.SetOutput("work");

  runtime::JobOptions jopts;
  jopts.run.max_seconds = 30;
  runtime::JobPtr first = executor.Submit(graph, jopts);
  runtime::JobPtr second = executor.Submit(graph, jopts);
  ASSERT_TRUE(PollUntil([&] {
    const runtime::ExecutorLoadSnapshot s = executor.LoadSnapshot();
    return s.running_jobs == 1 && s.queued_jobs == 1;
  }));
  // One live job, never arbitrated (it runs alone): granted cores are
  // its configured knob.
  const runtime::ExecutorLoadSnapshot busy = executor.LoadSnapshot();
  EXPECT_EQ(busy.granted_cores, 3.0);

  first->Cancel();
  second->Cancel();
  first->Wait();
  second->Wait();
  ASSERT_TRUE(PollUntil([&] {
    const runtime::ExecutorLoadSnapshot s = executor.LoadSnapshot();
    return s.queued_jobs == 0 && s.running_jobs == 0;
  }));
}

TEST(MultiJobPlannerTest, TracedRatesYieldUnequalShares) {
  // Two jobs with identical topology but 4x different measured stage
  // rates: the heavy job (fewer minibatches/sec/core) must win more
  // cores than the light one, which the uniform fallback cannot see.
  const auto make_graph = [](double rate) {
    GraphDef graph;
    NodeDef src;
    src.name = "src";
    src.op = "range";
    src.attrs[kAttrCount] = AttrValue(int64_t{1000});
    EXPECT_TRUE(graph.AddNode(std::move(src)).ok());
    NodeDef work;
    work.name = "work";
    work.op = "map";
    work.inputs = {"src"};
    work.attrs[kAttrUdf] = AttrValue("noop");
    work.attrs[kAttrParallelism] = AttrValue(8);
    EXPECT_TRUE(graph.AddNode(std::move(work)).ok());
    graph.SetOutput("work");
    EXPECT_TRUE(rewriter::SetTracedRate(&graph, "work", rate).ok());
    return graph;
  };
  const GraphDef heavy = make_graph(25.0);   // slow stage: costly cores
  const GraphDef light = make_graph(100.0);  // 4x faster per core

  const JobDemand heavy_demand = DemandFromGraph("heavy", heavy);
  ASSERT_EQ(heavy_demand.stages.size(), 1u);
  EXPECT_EQ(heavy_demand.stages[0].name, "work");
  EXPECT_NEAR(heavy_demand.stages[0].rate_per_core, 25.0, 1e-12);
  EXPECT_FALSE(heavy_demand.stages[0].sequential);
  EXPECT_EQ(heavy_demand.max_parallelism.at("work"), 8);

  const MultiJobPlan plan = PlanMultiJobAllocation(
      {heavy_demand, DemandFromGraph("light", light)}, 10);
  // Maximin equalizes job rates: X/25 + X/100 = 10 -> X = 200, so
  // heavy gets 8 cores (its cap) and light 2.
  EXPECT_GT(plan.jobs.at("heavy").theta.at("work"),
            plan.jobs.at("light").theta.at("work"));
  EXPECT_EQ(plan.jobs.at("heavy").parallelism.at("work"), 8);
  EXPECT_EQ(plan.jobs.at("light").parallelism.at("work"), 2);
}

TEST(MultiJobPlannerTest, TracedSequentialStageCapsAndUntracedFallback) {
  // A stamped non-tunable node becomes a sequential rate cap; a graph
  // with no stamps keeps the exact uniform fallback.
  GraphDef graph;
  NodeDef src;
  src.name = "src";
  src.op = "range";
  src.attrs[kAttrCount] = AttrValue(int64_t{1000});
  ASSERT_TRUE(graph.AddNode(std::move(src)).ok());
  NodeDef work;
  work.name = "work";
  work.op = "map";
  work.inputs = {"src"};
  work.attrs[kAttrUdf] = AttrValue("noop");
  work.attrs[kAttrParallelism] = AttrValue(4);
  ASSERT_TRUE(graph.AddNode(std::move(work)).ok());
  NodeDef sink;
  sink.name = "sink";
  sink.op = "batch";
  sink.inputs = {"work"};
  sink.attrs[kAttrBatchSize] = AttrValue(8);
  ASSERT_TRUE(graph.AddNode(std::move(sink)).ok());
  graph.SetOutput("sink");

  const JobDemand untraced = DemandFromGraph("u", graph);
  ASSERT_EQ(untraced.stages.size(), 1u);
  EXPECT_NEAR(untraced.stages[0].rate_per_core, 1.0, 1e-12);

  ASSERT_TRUE(rewriter::SetTracedRate(&graph, "work", 50.0).ok());
  ASSERT_TRUE(rewriter::SetTracedRate(&graph, "sink", 30.0).ok());
  const JobDemand traced = DemandFromGraph("t", graph);
  ASSERT_EQ(traced.stages.size(), 2u);
  bool saw_sequential_sink = false;
  for (const MaxMinStage& stage : traced.stages) {
    if (stage.name == "sink") {
      saw_sequential_sink = stage.sequential;
      EXPECT_NEAR(stage.rate_per_core, 30.0, 1e-12);
    }
  }
  EXPECT_TRUE(saw_sequential_sink);
  // The sequential sink (rate 30) caps the job below what its map
  // could reach on a big budget.
  const MultiJobPlan plan = PlanMultiJobAllocation({traced}, 64);
  EXPECT_LE(plan.jobs.at("t").predicted_rate, 30.0 + 1e-9);
}

TEST(MultiJobPlannerTest, OptimizerStampsTracedRatesOnRealSchedule) {
  // End to end: a real pass schedule leaves measured rates in the
  // returned graph; the empty schedule stays byte-identical (covered
  // by passes_test) and therefore unstamped.
  PipelineTestEnv env;
  OptimizeOptions options;
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.schedule = "parallelism";
  options.trace_seconds = 0.05;
  PlumberOptimizer optimizer(options);
  GraphBuilder builder;
  const std::string files = builder.FileList("files", "data/f");
  const std::string records = builder.TfRecord("records", files);
  const std::string mapped = builder.Map("mapped", records, "slow", 1);
  const std::string root = builder.Prefetch("root", mapped, 2);
  auto graph_or = builder.Build(root);
  ASSERT_TRUE(graph_or.ok());
  auto result = optimizer.Optimize(*graph_or);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(rewriter::GetTracedRate(result->graph, mapped), 0.0);
}

TEST(MultiJobPlannerTest, SequentialStageCapsJobRate) {
  JobDemand capped;
  capped.job_id = "capped";
  capped.stages.push_back({"m", 10.0, false});
  capped.stages.push_back({"seq", 3.0, true});  // rate ceiling 3
  JobDemand free_job;
  free_job.job_id = "free";
  free_job.stages.push_back({"m", 1.0, false});
  const MultiJobPlan plan = PlanMultiJobAllocation({capped, free_job}, 8);
  // capped runs at 3 (0.3 cores for its map); free takes the rest.
  EXPECT_GT(plan.jobs.at("free").theta.at("m"),
            plan.jobs.at("capped").theta.at("m"));
  EXPECT_LE(plan.jobs.at("capped").predicted_rate, 3.0 + 1e-9);
}

}  // namespace
}  // namespace plumber
