// Per-operator correctness tests for the pipeline engine.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

std::unique_ptr<Pipeline> MakePipeline(PipelineTestEnv& env, GraphDef graph,
                                       uint64_t memory_budget = 0) {
  auto p = Pipeline::Create(std::move(graph), env.Options(memory_budget));
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(RangeOpTest, ProducesCountElements) {
  PipelineTestEnv env;
  GraphBuilder b;
  auto graph = std::move(b.Build(b.Range("r", 10))).value();
  auto pipeline = MakePipeline(env, graph);
  const auto elements = Drain(*pipeline);
  ASSERT_EQ(elements.size(), 10u);
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ(elements[i].sequence, i);
    EXPECT_EQ(elements[i].TotalBytes(), sizeof(int64_t));
  }
}

TEST(FileListOpTest, YieldsAllFilenames) {
  PipelineTestEnv env(/*num_files=*/3);
  GraphBuilder b;
  auto graph = std::move(b.Build(b.FileList("files", "data/"))).value();
  auto pipeline = MakePipeline(env, graph);
  const auto elements = Drain(*pipeline);
  ASSERT_EQ(elements.size(), 3u);
  std::set<std::string> names;
  for (const auto& e : elements) {
    names.emplace(e.components[0].begin(), e.components[0].end());
  }
  EXPECT_TRUE(names.count("data/f0"));
  EXPECT_TRUE(names.count("data/f2"));
}

TEST(TfRecordOpTest, ReadsEveryRecordOnce) {
  PipelineTestEnv env(/*num_files=*/3, /*records_per_file=*/10);
  GraphBuilder b;
  auto graph =
      std::move(b.Build(b.TfRecord("rec", b.FileList("files", "data/"))))
          .value();
  auto pipeline = MakePipeline(env, graph);
  const auto elements = Drain(*pipeline);
  EXPECT_EQ(elements.size(), 30u);
  for (const auto& e : elements) EXPECT_EQ(e.TotalBytes(), 64u);
}

TEST(InterleaveOpTest, SequentialReadsAllRecords) {
  PipelineTestEnv env(/*num_files=*/4, /*records_per_file=*/7);
  GraphBuilder b;
  auto graph = std::move(b.Build(b.Interleave(
                             "il", b.FileList("files", "data/"), 2, 1)))
                   .value();
  auto pipeline = MakePipeline(env, graph);
  EXPECT_EQ(Drain(*pipeline).size(), 28u);
}

TEST(InterleaveOpTest, SequentialRoundRobinsAcrossFiles) {
  // Two files with distinct record sizes: cycle_length 2 and block 1
  // must alternate between them.
  PipelineTestEnv env(0);
  ASSERT_TRUE(env.fs.CreateRecordFile("mix/a", 1, {10, 10, 10}).ok());
  ASSERT_TRUE(env.fs.CreateRecordFile("mix/b", 2, {20, 20, 20}).ok());
  GraphBuilder b;
  auto graph = std::move(b.Build(b.Interleave(
                             "il", b.FileList("files", "mix/"), 2, 1)))
                   .value();
  auto pipeline = MakePipeline(env, graph);
  const auto elements = Drain(*pipeline);
  ASSERT_EQ(elements.size(), 6u);
  EXPECT_EQ(elements[0].TotalBytes(), 10u);
  EXPECT_EQ(elements[1].TotalBytes(), 20u);
  EXPECT_EQ(elements[2].TotalBytes(), 10u);
  EXPECT_EQ(elements[3].TotalBytes(), 20u);
}

class InterleaveParallelismTest : public ::testing::TestWithParam<int> {};

TEST_P(InterleaveParallelismTest, ParallelReadsAllRecordsExactlyOnce) {
  PipelineTestEnv env(/*num_files=*/6, /*records_per_file=*/11);
  GraphBuilder b;
  auto graph = std::move(b.Build(b.Interleave("il",
                                              b.FileList("files", "data/"),
                                              4, GetParam())))
                   .value();
  auto pipeline = MakePipeline(env, graph);
  EXPECT_EQ(Drain(*pipeline).size(), 66u);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, InterleaveParallelismTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(MapOpTest, SequentialAppliesSizeRatio) {
  PipelineTestEnv env(2, 5, 100);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "double_size");
  auto graph = std::move(b.Build(n)).value();
  auto pipeline = MakePipeline(env, graph);
  const auto elements = Drain(*pipeline);
  ASSERT_EQ(elements.size(), 10u);
  for (const auto& e : elements) EXPECT_EQ(e.TotalBytes(), 200u);
}

class ParallelMapTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMapTest, ParallelMatchesSequentialOutput) {
  PipelineTestEnv env(2, 20, 50);
  auto build = [&](int parallelism, bool deterministic) {
    GraphBuilder b;
    auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
    n = b.Map("m", n, "double_size", parallelism, deterministic);
    return std::move(b.Build(n)).value();
  };
  auto seq_pipeline = MakePipeline(env, build(1, true));
  const auto seq = Drain(*seq_pipeline);
  auto par_pipeline = MakePipeline(env, build(GetParam(), true));
  const auto par = Drain(*par_pipeline);
  ASSERT_EQ(seq.size(), par.size());
  // Deterministic parallel map preserves order and content exactly.
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].components, par[i].components) << "at " << i;
  }
}

TEST_P(ParallelMapTest, NonDeterministicSameMultiset) {
  PipelineTestEnv env(2, 20, 50);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "double_size", GetParam(), /*deterministic=*/false);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  const auto elements = Drain(*pipeline);
  EXPECT_EQ(elements.size(), 40u);
  for (const auto& e : elements) EXPECT_EQ(e.TotalBytes(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ParallelMapTest,
                         ::testing::Values(2, 4, 7));

TEST(FilterOpTest, KeepAllPassesEverything) {
  PipelineTestEnv env(2, 10);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Filter("f", n, "keep_all");
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline).size(), 20u);
}

TEST(FilterOpTest, KeepHalfDropsRoughlyHalf) {
  PipelineTestEnv env(4, 100);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Filter("f", n, "keep_half");
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  const size_t kept = Drain(*pipeline).size();
  EXPECT_GT(kept, 120u);
  EXPECT_LT(kept, 280u);
}

TEST(ShuffleOpTest, OutputIsPermutationOfInput) {
  PipelineTestEnv env(2, 30, 32);
  auto build = [&](bool shuffled) {
    GraphBuilder b;
    auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
    if (shuffled) n = b.Shuffle("s", n, 16);
    return std::move(b.Build(n)).value();
  };
  auto plain_pipeline = MakePipeline(env, build(false));
  auto shuffled_pipeline = MakePipeline(env, build(true));
  const auto plain = Drain(*plain_pipeline);
  const auto shuffled = Drain(*shuffled_pipeline);
  ASSERT_EQ(plain.size(), shuffled.size());
  // Same multiset of sequences, different order.
  std::multiset<uint64_t> a, c;
  bool any_moved = false;
  for (size_t i = 0; i < plain.size(); ++i) {
    a.insert(plain[i].sequence);
    c.insert(shuffled[i].sequence);
    any_moved |= plain[i].sequence != shuffled[i].sequence;
  }
  EXPECT_EQ(a, c);
  EXPECT_TRUE(any_moved);
}

TEST(ShuffleOpTest, DeterministicForSameSeed) {
  PipelineTestEnv env(2, 20, 32);
  auto build = [&]() {
    GraphBuilder b;
    auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
    n = b.Shuffle("s", n, 8, /*seed=*/33);
    return std::move(b.Build(n)).value();
  };
  auto p1 = MakePipeline(env, build());
  auto p2 = MakePipeline(env, build());
  const auto a = Drain(*p1);
  const auto b2 = Drain(*p2);
  ASSERT_EQ(a.size(), b2.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b2[i].sequence);
  }
}

TEST(RepeatOpTest, FiniteCountMultiplies) {
  PipelineTestEnv env(2, 5);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Repeat("r", n, 3);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline).size(), 30u);
}

TEST(RepeatOpTest, InfiniteKeepsProducing) {
  PipelineTestEnv env(1, 4);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Repeat("r", n, -1);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline, 100).size(), 100u);
}

TEST(ShuffleAndRepeatOpTest, InfiniteProducesBeyondOneEpoch) {
  PipelineTestEnv env(2, 10);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.ShuffleAndRepeat("sr", n, 8);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline, 75).size(), 75u);
}

TEST(ShuffleAndRepeatOpTest, FiniteCountStops) {
  PipelineTestEnv env(2, 10);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.ShuffleAndRepeat("sr", n, 8, /*count=*/2);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline).size(), 40u);
}

TEST(TakeSkipOpTest, TakeLimits) {
  PipelineTestEnv env(2, 10);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Take("t", n, 7);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline).size(), 7u);
}

TEST(TakeSkipOpTest, SkipDrops) {
  PipelineTestEnv env(2, 10);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Skip("s", n, 15);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline).size(), 5u);
}

TEST(BatchOpTest, GroupsComponentsAndDropsRemainder) {
  PipelineTestEnv env(2, 10, 30);  // 20 records
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Batch("batch", n, 8, /*drop_remainder=*/true);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  const auto batches = Drain(*pipeline);
  ASSERT_EQ(batches.size(), 2u);  // 20/8 = 2 full batches
  for (const auto& batch : batches) {
    EXPECT_EQ(batch.components.size(), 8u);
    EXPECT_EQ(batch.TotalBytes(), 8 * 30u);
  }
}

TEST(BatchOpTest, KeepRemainder) {
  PipelineTestEnv env(2, 10, 30);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Batch("batch", n, 8, /*drop_remainder=*/false);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  const auto batches = Drain(*pipeline);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches.back().components.size(), 4u);
}

TEST(PrefetchOpTest, PassesThroughAllElements) {
  PipelineTestEnv env(2, 25);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Prefetch("p", n, 4);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  EXPECT_EQ(Drain(*pipeline).size(), 50u);
}

TEST(PrefetchOpTest, EarlyDestructionDoesNotHang) {
  PipelineTestEnv env(2, 1000);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Prefetch("p", n, 8);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
  iterator.reset();  // must join the prefetch thread cleanly
}

TEST(CacheOpTest, SecondEpochServesIdenticalElements) {
  PipelineTestEnv env(2, 10, 40);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Cache("c", n);
  n = b.Repeat("r", n, 2);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  const auto elements = Drain(*pipeline);
  ASSERT_EQ(elements.size(), 40u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(elements[i].components, elements[i + 20].components);
  }
}

TEST(CacheOpTest, SecondEpochAvoidsStorageReads) {
  PipelineTestEnv env(2, 10, 40);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Cache("c", n);
  n = b.Repeat("r", n, 3);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  Drain(*pipeline);
  // Only one epoch of bytes should have been read from storage.
  const uint64_t expected =
      20 * (40 + kRecordFramingBytes);
  EXPECT_EQ(env.fs.total_bytes_read(), expected);
}

TEST(CacheOpTest, BudgetViolationFails) {
  PipelineTestEnv env(2, 10, 40);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Cache("c", n);
  auto pipeline =
      MakePipeline(env, std::move(b.Build(n)).value(), /*budget=*/100);
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  Status status = OkStatus();
  for (int i = 0; i < 10 && status.ok() && !end; ++i) {
    status = iterator->GetNext(&e, &end);
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(PipelineTest, CancellationStopsIteration) {
  PipelineTestEnv env(2, 10);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Repeat("r", n, -1);
  auto pipeline = MakePipeline(env, std::move(b.Build(n)).value());
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
  pipeline->Cancel();
  EXPECT_EQ(iterator->GetNext(&e, &end).code(), StatusCode::kCancelled);
}

TEST(PipelineTest, UnknownOpRejectedAtCreate) {
  PipelineTestEnv env;
  GraphDef g;
  NodeDef bogus;
  bogus.name = "x";
  bogus.op = "frobnicate";
  ASSERT_TRUE(g.AddNode(bogus).ok());
  g.SetOutput("x");
  EXPECT_EQ(Pipeline::Create(std::move(g), env.Options()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(PipelineTest, MissingUdfRejectedAtCreate) {
  PipelineTestEnv env;
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "no_such_udf");
  EXPECT_EQ(Pipeline::Create(std::move(b.Build(n)).value(), env.Options())
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace plumber
