#include "src/tuners/tuner.h"

#include <gtest/gtest.h>

#include "src/core/rewriter.h"
#include "src/core/tracer.h"
#include "src/tuners/autotune.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

GraphDef TwoMapGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("cheap", n, "noop");
  n = b.Map("expensive", n, "slow");
  n = b.Batch("batch", n, 5);
  return std::move(b.Build(n)).value();
}

PipelineModel TraceModel(PipelineTestEnv& env, const GraphDef& graph,
                         double seconds = 0.5) {
  auto pipeline =
      std::move(Pipeline::Create(graph, env.Options())).value();
  TraceOptions topts;
  topts.trace_seconds = seconds;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  return std::move(PipelineModel::Build(trace, &env.udfs)).value();
}

TEST(NaiveConfigTest, ResetsParallelismAndAddsPrefetch) {
  GraphDef g = TwoMapGraph();
  ASSERT_TRUE(rewriter::SetParallelism(&g, "expensive", 8).ok());
  const GraphDef naive = NaiveConfiguration(g);
  EXPECT_EQ(*rewriter::GetParallelism(naive, "expensive"), 1);
  EXPECT_EQ(naive.FindNode(naive.output())->op, "prefetch");
}

TEST(NaiveConfigTest, WithoutPrefetch) {
  const GraphDef naive =
      NaiveConfiguration(TwoMapGraph(), /*with_prefetch=*/false);
  EXPECT_NE(naive.FindNode(naive.output())->op, "prefetch");
}

TEST(HeuristicConfigTest, SetsEveryKnobToCores) {
  const GraphDef heuristic = HeuristicConfiguration(TwoMapGraph(), 16);
  EXPECT_EQ(*rewriter::GetParallelism(heuristic, "cheap"), 16);
  EXPECT_EQ(*rewriter::GetParallelism(heuristic, "expensive"), 16);
  EXPECT_EQ(*rewriter::GetParallelism(heuristic, "interleave"), 16);
}

TEST(PlumberStepTunerTest, ParallelizesTheBottleneck) {
  PipelineTestEnv env(4, 50, 64);
  const GraphDef g = TwoMapGraph();
  const PipelineModel model = TraceModel(env, g);
  auto tuner = MakePlumberStepTuner();
  TunerContext ctx;
  ctx.model = &model;
  ctx.machine = MachineSpec::SetupA();
  auto next = tuner->Step(g, ctx);
  ASSERT_TRUE(next.ok());
  // The 200us/element map is the bottleneck: it gets the +1.
  EXPECT_EQ(*rewriter::GetParallelism(*next, "expensive"), 2);
  EXPECT_EQ(*rewriter::GetParallelism(*next, "cheap"), 1);
}

TEST(PlumberStepTunerTest, RespectsCoreCap) {
  PipelineTestEnv env(4, 50, 64);
  GraphDef g = TwoMapGraph();
  MachineSpec tiny = MachineSpec::SetupA();
  tiny.num_cores = 2;
  ASSERT_TRUE(rewriter::SetParallelism(&g, "expensive", 2).ok());
  const PipelineModel model = TraceModel(env, g);
  auto tuner = MakePlumberStepTuner();
  TunerContext ctx;
  ctx.model = &model;
  ctx.machine = tiny;
  auto next = tuner->Step(g, ctx);
  ASSERT_TRUE(next.ok());
  // expensive is at the cap; the step must go elsewhere (or nowhere).
  EXPECT_EQ(*rewriter::GetParallelism(*next, "expensive"), 2);
}

TEST(PlumberStepTunerTest, NeedsModel) {
  auto tuner = MakePlumberStepTuner();
  TunerContext ctx;
  EXPECT_FALSE(tuner->Step(TwoMapGraph(), ctx).ok());
}

TEST(RandomWalkTunerTest, IncrementsExactlyOneKnob) {
  Rng rng(5);
  auto tuner = MakeRandomWalkTuner();
  TunerContext ctx;
  ctx.machine = MachineSpec::SetupA();
  ctx.rng = &rng;
  const GraphDef g = TwoMapGraph();
  auto next = tuner->Step(g, ctx);
  ASSERT_TRUE(next.ok());
  int total_before = 0, total_after = 0;
  for (const auto& node : rewriter::TunableNodes(g)) {
    total_before += *rewriter::GetParallelism(g, node);
    total_after += *rewriter::GetParallelism(*next, node);
  }
  EXPECT_EQ(total_after, total_before + 1);
}

TEST(LocalEstimateTest, PredictsAtLeastObserved) {
  PipelineTestEnv env(4, 50, 64);
  const PipelineModel model = TraceModel(env, TwoMapGraph());
  EXPECT_GE(LocalEstimateMaxRate(model), model.observed_rate() * 0.5);
}

TEST(AutotuneTest, LatencyDecreasesWithParallelism) {
  PipelineTestEnv env(4, 50, 64);
  const PipelineModel model = TraceModel(env, TwoMapGraph());
  std::map<std::string, int> p1{{"expensive", 1}};
  std::map<std::string, int> p8{{"expensive", 8}};
  EXPECT_GT(AutotuneEstimateLatency(model, p1),
            AutotuneEstimateLatency(model, p8));
}

TEST(AutotuneTest, EstimateIsUnboundedInParallelism) {
  // The paper's core criticism: the latency model can be driven toward
  // zero, so the implied rate grows without resource limits.
  PipelineTestEnv env(4, 50, 64);
  const PipelineModel model = TraceModel(env, TwoMapGraph());
  std::map<std::string, int> extreme;
  for (const auto& node : model.nodes()) extreme[node.name] = 10000;
  const double latency = AutotuneEstimateLatency(model, extreme);
  const double rate = 1.0 / latency;
  // Far beyond anything 16 cores could deliver for a 200us/element map.
  EXPECT_GT(rate, 10000.0);
}

TEST(AutotuneTest, HillClimbingAllocatesMostToBottleneck) {
  PipelineTestEnv env(4, 50, 64);
  const GraphDef g = TwoMapGraph();
  const PipelineModel model = TraceModel(env, g);
  AutotuneOptions options;
  options.max_parallelism = 16;
  auto result = AutotuneConfiguration(g, model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->parallelism.at("expensive"),
            result->parallelism.at("cheap"));
  EXPECT_GT(result->parallelism.at("expensive"), 4);
  EXPECT_GT(result->predicted_rate, 0);
  // The chosen parallelism is applied to the returned graph.
  EXPECT_EQ(*rewriter::GetParallelism(result->graph, "expensive"),
            result->parallelism.at("expensive"));
}

TEST(AutotuneTest, RespectsPerKnobCap) {
  PipelineTestEnv env(4, 50, 64);
  const GraphDef g = TwoMapGraph();
  const PipelineModel model = TraceModel(env, g);
  AutotuneOptions options;
  options.max_parallelism = 4;
  auto result = AutotuneConfiguration(g, model, options);
  ASSERT_TRUE(result.ok());
  for (const auto& [knob, value] : result->parallelism) {
    EXPECT_LE(value, 4) << knob;
  }
}

}  // namespace
}  // namespace plumber
