// NetworkDevice unit tests: byte-exact counters, bandwidth pacing via
// the token bucket, per-transfer latency, and the NicSpec presets.
#include "src/net/network_device.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/cpu_timer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::EventuallyTrue;

TEST(NicSpecTest, PresetsHaveExpectedShapes) {
  EXPECT_EQ(NicSpec::Unlimited().max_bandwidth, 0);
  EXPECT_EQ(NicSpec::Unlimited().latency_s, 0);
  EXPECT_DOUBLE_EQ(NicSpec::Gigabit().max_bandwidth, 125e6);
  EXPECT_GT(NicSpec::Gigabit().latency_s, 0);
  EXPECT_DOUBLE_EQ(NicSpec::TenGigabit().max_bandwidth, 1.25e9);
  EXPECT_DOUBLE_EQ(NicSpec::TokenBucketLimit(5e6).max_bandwidth, 5e6);
  EXPECT_EQ(NicSpec::TokenBucketLimit(5e6).latency_s, 0);
}

TEST(NetworkDeviceTest, CountersAreByteExact) {
  NetworkDevice nic(NicSpec::Unlimited());
  const std::vector<uint64_t> sizes = {1, 64, 1500, 9000, 123457};
  uint64_t expected = 0;
  for (uint64_t bytes : sizes) {
    nic.Transfer(bytes);
    expected += bytes;
  }
  EXPECT_EQ(nic.total_bytes(), expected);
  EXPECT_EQ(nic.total_transfers(), sizes.size());
  nic.ResetCounters();
  EXPECT_EQ(nic.total_bytes(), 0u);
  EXPECT_EQ(nic.total_transfers(), 0u);
}

TEST(NetworkDeviceTest, CountersAreByteExactUnderConcurrency) {
  NetworkDevice nic(NicSpec::Unlimited());
  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&nic, t] {
      for (int i = 0; i < kTransfersPerThread; ++i) {
        nic.Transfer(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Sum over threads of thread_count * (t+1).
  uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += static_cast<uint64_t>(kTransfersPerThread) * (t + 1);
  }
  EXPECT_EQ(nic.total_bytes(), expected);
  EXPECT_EQ(nic.total_transfers(),
            static_cast<uint64_t>(kThreads) * kTransfersPerThread);
}

TEST(NetworkDeviceTest, BandwidthPacesTransfers) {
  // 10 MB/s: moving 1 MB beyond the burst allowance must take close to
  // the modeled wire time. The burst is 2% of bandwidth (20ms worth),
  // so transfer well past it.
  const double bandwidth = 10e6;
  NetworkDevice nic(NicSpec::TokenBucketLimit(bandwidth));
  const uint64_t total = 1 << 20;  // 1 MiB
  const double modeled_s = total / bandwidth;
  EXPECT_TRUE(EventuallyTrue([&] {
    const int64_t t0 = WallNanos();
    for (int i = 0; i < 16; ++i) nic.Transfer(total / 16);
    const double took_s = (WallNanos() - t0) * 1e-9;
    // The burst bucket forgives up to 20ms of the wire time.
    return took_s >= modeled_s - 0.03;
  }));
  EXPECT_EQ(nic.total_bytes(), total);
}

TEST(NetworkDeviceTest, LatencyChargedPerTransfer) {
  NicSpec spec = NicSpec::Unlimited();
  spec.latency_s = 5e-3;
  NetworkDevice nic(spec);
  EXPECT_TRUE(EventuallyTrue([&] {
    const int64_t t0 = WallNanos();
    for (int i = 0; i < 4; ++i) nic.Transfer(1);
    const double took_s = (WallNanos() - t0) * 1e-9;
    return took_s >= 4 * 5e-3 - 1e-3;
  }));
}

TEST(NetworkDeviceTest, SetBandwidthRetargetsTheBucket) {
  NetworkDevice nic(NicSpec::TokenBucketLimit(1e6));
  nic.SetBandwidth(0);  // unlimited now
  const int64_t t0 = WallNanos();
  nic.Transfer(100 << 20);  // would take >100s at 1 MB/s
  EXPECT_LT((WallNanos() - t0) * 1e-9, 5.0);
}

}  // namespace
}  // namespace plumber
