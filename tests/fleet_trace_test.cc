// Arrival-trace format and generator tests: serialize/parse round
// trip, malformed-line rejection with line numbers, and seeded-RNG
// determinism of the Poisson and bursty processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/fleet/arrival_trace.h"

namespace plumber {
namespace fleet {
namespace {

ArrivalTrace SmallTrace() {
  ArrivalTrace trace;
  trace.classes.push_back({"light", 0.7, 5.5e4, 2, 12.25});
  trace.classes.push_back({"heavy", 0.3, 3.0e6, 4, 40});
  trace.events.push_back({0.0, 0, 10, -1});
  trace.events.push_back({0.125, 1, 55, 2});
  trace.events.push_back({1.5, 0, 1, 0});
  return trace;
}

TEST(ArrivalTraceTest, SerializeParseRoundTrip) {
  const ArrivalTrace trace = SmallTrace();
  const std::string text = trace.Serialize();
  auto parsed = ArrivalTrace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Full-precision doubles make the round trip an exact identity.
  EXPECT_EQ(parsed->Serialize(), text);
  ASSERT_EQ(parsed->classes.size(), 2u);
  EXPECT_EQ(parsed->classes[1].name, "heavy");
  EXPECT_EQ(parsed->classes[1].parallelism, 4);
  ASSERT_EQ(parsed->events.size(), 3u);
  EXPECT_EQ(parsed->events[1].elements, 55);
  EXPECT_EQ(parsed->events[1].pinned_host, 2);
  EXPECT_EQ(parsed->events[0].pinned_host, -1);
}

TEST(ArrivalTraceTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "plumber_arrival_trace v1\n"
      "# a comment\n"
      "\n"
      "class c 1 1000 1 4  # trailing comment\n"
      "event 0.5 0 3 -1\n";
  auto parsed = ArrivalTrace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->classes.size(), 1u);
  EXPECT_EQ(parsed->events.size(), 1u);
}

TEST(ArrivalTraceTest, MalformedLinesRejectWithLineNumbers) {
  const auto expect_error_at = [](const std::string& text, int line) {
    auto parsed = ArrivalTrace::Parse(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_NE(parsed.status().message().find(
                  "line " + std::to_string(line)),
              std::string::npos)
        << parsed.status().ToString();
  };
  // Missing header.
  expect_error_at("class c 1 1000 1 4\n", 1);
  // Wrong field count on line 3.
  expect_error_at(
      "plumber_arrival_trace v1\nclass c 1 1000 1 4\nevent 0.5 0\n", 3);
  // Unparseable number on line 2.
  expect_error_at("plumber_arrival_trace v1\nclass c 1 xyz 1 4\n", 2);
  // Class index out of range on line 3.
  expect_error_at(
      "plumber_arrival_trace v1\nclass c 1 1000 1 4\nevent 0.5 7 3 -1\n", 3);
  // Arrivals must be nondecreasing (line 4).
  expect_error_at(
      "plumber_arrival_trace v1\nclass c 1 1000 1 4\n"
      "event 1.0 0 3 -1\nevent 0.5 0 3 -1\n",
      4);
  // Unknown directive on line 2.
  expect_error_at("plumber_arrival_trace v1\nbogus 1 2 3\n", 2);
  // Empty input.
  EXPECT_FALSE(ArrivalTrace::Parse("").ok());
}

TEST(ArrivalTraceTest, SloAndPriorityRoundTripWithBackCompat) {
  ArrivalTrace trace;
  TraceJobClass rpc;
  rpc.name = "rpc";
  rpc.weight = 0.5;
  rpc.cost_ns = 2e5;
  rpc.parallelism = 4;
  rpc.mean_elements = 8;
  rpc.slo = runtime::SloClass::kInteractive;
  rpc.priority = 2.5;
  trace.classes.push_back(rpc);
  trace.classes.push_back({"bulk", 0.5, 1e6, 2, 32});  // class defaults
  trace.events.push_back({0.0, 0, 4, -1});
  const std::string text = trace.Serialize();
  // Serialize always writes the 7-field class line (slo by name).
  EXPECT_NE(text.find("interactive"), std::string::npos);
  EXPECT_NE(text.find("batch"), std::string::npos);
  auto parsed = ArrivalTrace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->classes[0].slo, runtime::SloClass::kInteractive);
  EXPECT_EQ(parsed->classes[0].priority, 2.5);
  EXPECT_EQ(parsed->classes[1].slo, runtime::SloClass::kBatch);
  EXPECT_EQ(parsed->classes[1].priority, 1.0);

  // Pre-SLO 5-field class lines still parse, with the batch defaults.
  auto legacy = ArrivalTrace::Parse(
      "plumber_arrival_trace v1\n"
      "class c 1 1000 1 4\n"
      "event 0.5 0 3 -1\n");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->classes[0].slo, runtime::SloClass::kBatch);
  EXPECT_EQ(legacy->classes[0].priority, 1.0);

  // An unknown SLO token and a non-positive priority both reject with
  // the offending line number.
  for (const char* bad :
       {"plumber_arrival_trace v1\nclass c 1 1000 1 4 turbo 1\n",
        "plumber_arrival_trace v1\nclass c 1 1000 1 4 batch 0\n"}) {
    auto rejected = ArrivalTrace::Parse(bad);
    ASSERT_FALSE(rejected.ok()) << bad;
    EXPECT_NE(rejected.status().message().find("line 2"), std::string::npos)
        << rejected.status().ToString();
  }
}

TEST(ArrivalTraceTest, PoissonTraceIsSeedDeterministic) {
  PoissonTraceOptions options;
  options.seed = 99;
  options.num_jobs = 500;
  options.pin_fraction = 0.25;
  options.num_hosts = 4;
  const ArrivalTrace a = MakePoissonTrace(CalibratedJobClasses(), options);
  const ArrivalTrace b = MakePoissonTrace(CalibratedJobClasses(), options);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  options.seed = 100;
  const ArrivalTrace c = MakePoissonTrace(CalibratedJobClasses(), options);
  EXPECT_NE(a.Serialize(), c.Serialize());

  ASSERT_EQ(a.events.size(), 500u);
  int pinned = 0;
  double last = 0;
  for (const ArrivalEvent& e : a.events) {
    EXPECT_GE(e.arrival_s, last);
    last = e.arrival_s;
    EXPECT_GE(e.elements, 1);
    if (e.pinned_host >= 0) {
      ++pinned;
      EXPECT_LT(e.pinned_host, 4);
    }
  }
  // ~25% of 500 jobs pinned; generous determinism-safe band.
  EXPECT_GT(pinned, 60);
  EXPECT_LT(pinned, 200);
}

TEST(ArrivalTraceTest, BurstyTraceIsSeedDeterministicAndBursty) {
  BurstyTraceOptions options;
  options.seed = 7;
  options.num_jobs = 400;
  options.burst_interarrival_s = 0.001;
  options.idle_gap_s = 0.5;
  options.mean_burst_len = 25;
  const ArrivalTrace a = MakeBurstyTrace(CalibratedJobClasses(), options);
  const ArrivalTrace b = MakeBurstyTrace(CalibratedJobClasses(), options);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  ASSERT_EQ(a.events.size(), 400u);

  // On/off structure: the biggest interarrival gap (an idle period)
  // dwarfs the median (inside a burst).
  std::vector<double> gaps;
  for (size_t i = 1; i < a.events.size(); ++i) {
    gaps.push_back(a.events[i].arrival_s - a.events[i - 1].arrival_s);
  }
  std::sort(gaps.begin(), gaps.end());
  const double median = gaps[gaps.size() / 2];
  const double max_gap = gaps.back();
  EXPECT_GT(max_gap, 20 * median);
}

TEST(ArrivalTraceTest, CalibratedClassesMatchFleetMixture) {
  const std::vector<TraceJobClass> classes = CalibratedJobClasses();
  ASSERT_EQ(classes.size(), 4u);
  double total_weight = 0;
  for (const TraceJobClass& c : classes) total_weight += c.weight;
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
  // Costs span the fleet's latency decades in order.
  for (size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GT(classes[i].cost_ns, classes[i - 1].cost_ns);
  }
  // The dominant class is the software bottleneck (paper: 46%).
  EXPECT_EQ(classes[2].name, "software_bottleneck");
  EXPECT_NEAR(classes[2].weight, 0.46, 1e-9);
}

}  // namespace
}  // namespace fleet
}  // namespace plumber
