// Tests for the unified Session/Flow API: Flow-built graphs must be
// node-for-node identical to equivalent GraphBuilder graphs, auto-names
// must be collision-proof, serialized programs must round-trip over
// every op the Flow API can emit, and Run/Optimize must report
// plausible rates.
#include "src/api/session.h"

#include <gtest/gtest.h>

#include "src/core/rewriter.h"
#include "src/pipeline/graph_builder.h"
#include "src/pipeline/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

// A session mirroring PipelineTestEnv: 4 record files of 50 x 64B under
// "data/", plus the standard test UDFs.
Session MakeTestSession(int num_cores = 8) {
  SessionOptions options;
  options.machine = MachineSpec::SetupA();
  options.machine.num_cores = num_cores;
  Session session(std::move(options));
  EXPECT_TRUE(session.CreateRecordFiles("data/f", 4, 50, 64).ok());
  UdfSpec noop;
  noop.name = "noop";
  EXPECT_TRUE(session.RegisterUdf(noop).ok());
  UdfSpec slow;
  slow.name = "slow";
  slow.cost_ns_per_element = 200e3;
  EXPECT_TRUE(session.RegisterUdf(slow).ok());
  UdfSpec rand_aug;
  rand_aug.name = "rand_aug";
  rand_aug.accesses_random_seed = true;
  EXPECT_TRUE(session.RegisterUdf(rand_aug).ok());
  UdfSpec keep_half;
  keep_half.name = "keep_half";
  keep_half.keep_fraction = 0.5;
  EXPECT_TRUE(session.RegisterUdf(keep_half).ok());
  return session;
}

TEST(FlowTest, MatchesGraphBuilderNodeForNode) {
  Session session = MakeTestSession();
  const Flow flow = session.Files("data/")
                        .Interleave(2, 1)
                        .Map("slow")
                        .ShuffleAndRepeat(16)
                        .Batch(5);
  auto flow_graph = flow.Graph();
  ASSERT_TRUE(flow_graph.ok()) << flow_graph.status();

  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("file_list", "data/"), 2, 1);
  n = b.Map("map", n, "slow");
  n = b.ShuffleAndRepeat("shuffle_and_repeat", n, 16);
  n = b.Batch("batch", n, 5);
  auto built = b.Build(n);
  ASSERT_TRUE(built.ok()) << built.status();

  EXPECT_EQ(flow_graph->Serialize(), built->Serialize());
}

TEST(FlowTest, ZipOfBranchedFlowsMatchesGraphBuilder) {
  Session session = MakeTestSession();
  // Two branches off a shared prefix: the prefix must be unified, the
  // colliding auto-names ("map") must be renamed apart.
  const Flow base = session.Files("data/").TfRecord();
  const Flow left = base.Map("noop");
  const Flow right = base.Map("slow");
  const Flow zipped = Flow::Zip({left, right}).Batch(3);
  auto flow_graph = zipped.Graph();
  ASSERT_TRUE(flow_graph.ok()) << flow_graph.status();

  GraphBuilder b;
  auto records = b.TfRecord("tfrecord", b.FileList("file_list", "data/"));
  auto l = b.Map("map", records, "noop");
  auto r = b.Map("map_1", records, "slow");
  auto z = b.Zip("zip", {l, r});
  auto built = b.Build(b.Batch("batch", z, 3));
  ASSERT_TRUE(built.ok()) << built.status();

  EXPECT_EQ(flow_graph->Serialize(), built->Serialize());
}

TEST(FlowTest, ConcatenateMergesIndependentFlows) {
  Session session = MakeTestSession();
  const Flow a = session.Range(10).Map("noop");
  const Flow b = session.Range(20).Map("noop");
  const Flow cat = Flow::Concatenate({a, b});
  auto graph = cat.Graph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  // Distinct sources with identical auto-names must both survive.
  ASSERT_NE(graph->FindNode("range"), nullptr);
  ASSERT_NE(graph->FindNode("range_1"), nullptr);
  EXPECT_EQ(graph->FindNode("range")->GetInt(kAttrCount), 10);
  EXPECT_EQ(graph->FindNode("range_1")->GetInt(kAttrCount), 20);
  const NodeDef* root = graph->FindNode(graph->output());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, "concatenate");
  EXPECT_EQ(root->inputs, (std::vector<std::string>{"map", "map_1"}));
}

TEST(FlowTest, AutoNamesNeverCollide) {
  Session session = MakeTestSession();
  Flow flow = session.Range(100);
  for (int i = 0; i < 5; ++i) flow = flow.Map("noop");
  auto graph = flow.Graph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_TRUE(graph->Validate().ok());
  EXPECT_EQ(graph->nodes().size(), 6u);
  EXPECT_NE(graph->FindNode("map_4"), nullptr);
}

TEST(FlowTest, NamedRejectsCollisions) {
  Session session = MakeTestSession();
  const Flow flow = session.Range(10).Map("noop").Map("noop");
  const Flow renamed = flow.Named("map");  // "map" is already taken
  EXPECT_EQ(renamed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(renamed.Graph().ok());
  // A fresh name works and becomes the output node.
  const Flow ok = flow.Named("augment");
  auto graph = ok.Graph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->output(), "augment");
}

TEST(FlowTest, ZipAcrossSessionsFails) {
  Session a = MakeTestSession();
  Session b = MakeTestSession();
  const Flow zipped = Flow::Zip({a.Range(5), b.Range(5)});
  EXPECT_EQ(zipped.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowTest, UnboundFlowReportsFailedPrecondition) {
  const Flow flow;
  EXPECT_EQ(flow.Graph().status().code(), StatusCode::kFailedPrecondition);
  RunOptions window;
  window.max_batches = 1;
  EXPECT_FALSE(flow.Run(window).ok());
}

TEST(FlowTest, FromGraphRequiresOutput) {
  Session session = MakeTestSession();
  EXPECT_EQ(session.FromGraph(GraphDef()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, BuildRejectsDuplicateNodeNames) {
  // Regression: duplicates used to be silently dropped by the builder
  // (the add was asserted away in release builds), yielding a graph
  // missing the second definition. Build() must fail loudly instead.
  GraphBuilder b;
  b.Range("src", 5);
  b.Map("stage", "src", "noop");
  b.Map("stage", "stage", "slow");  // duplicate name
  auto built = b.Build("stage");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

// Serialize/Parse round-trip over every op the Flow API can emit, with
// randomized parameters and random Zip/Concatenate branching.
TEST(FlowTest, SerializeParseRoundTripCoversEveryFlowOp) {
  Session session = MakeTestSession();

  // One deterministic program containing every operator at least once.
  const Flow records = session.Files("data/").TfRecord().Cache();
  const Flow images = session.Files("data/")
                          .Interleave(2, 2, 3)
                          .Map("slow", 4, false)
                          .SequentialMap("noop")
                          .Filter("keep_half")
                          .Shuffle(32, 5);
  const Flow counters = session.Range(1000).Skip(3).Take(500).Repeat(2);
  const Flow all = Flow::Zip({Flow::Concatenate({records, counters}), images})
                       .ShuffleAndRepeat(64, -1, 9)
                       .MapAndBatch("noop", 4, 2, false)
                       .Batch(2, true)
                       .Prefetch(8);
  auto graph = all.Graph();
  ASSERT_TRUE(graph.ok()) << graph.status();
  auto reparsed = GraphDef::Parse(graph->Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->Serialize(), graph->Serialize());

  // Property: random chains with random parameters round-trip exactly.
  Rng rng(20260728);
  for (int iter = 0; iter < 40; ++iter) {
    auto random_chain = [&]() {
      Flow flow = rng.Bernoulli(0.5)
                      ? session.Files("data/").TfRecord()
                      : session.Range(rng.UniformRange(1, 1 << 20));
      const int length = static_cast<int>(rng.UniformRange(1, 6));
      for (int i = 0; i < length; ++i) {
        switch (rng.UniformInt(12)) {
          case 0: flow = flow.Map("noop", rng.UniformRange(1, 16)); break;
          case 1: flow = flow.SequentialMap("rand_aug"); break;
          case 2: flow = flow.Filter("keep_half"); break;
          case 3: flow = flow.Shuffle(rng.UniformRange(1, 1024)); break;
          case 4:
            flow = flow.ShuffleAndRepeat(rng.UniformRange(1, 1024),
                                         rng.UniformRange(-1, 8));
            break;
          case 5: flow = flow.Repeat(rng.UniformRange(-1, 8)); break;
          case 6: flow = flow.Take(rng.UniformRange(1, 1 << 16)); break;
          case 7: flow = flow.Skip(rng.UniformRange(0, 1 << 16)); break;
          case 8: flow = flow.Batch(rng.UniformRange(1, 512)); break;
          case 9: flow = flow.Prefetch(rng.UniformRange(1, 64)); break;
          case 10: flow = flow.Cache(); break;
          default:
            flow = flow.MapAndBatch("noop", rng.UniformRange(1, 64),
                                    rng.UniformRange(1, 8));
            break;
        }
      }
      return flow;
    };
    Flow flow = random_chain();
    if (rng.Bernoulli(0.4)) {
      const std::vector<Flow> branches = {flow, random_chain()};
      flow = rng.Bernoulli(0.5) ? Flow::Zip(branches)
                                : Flow::Concatenate(branches);
    }
    auto g = flow.Graph();
    ASSERT_TRUE(g.ok()) << g.status();
    auto rt = GraphDef::Parse(g->Serialize());
    ASSERT_TRUE(rt.ok()) << rt.status() << "\n" << g->Serialize();
    EXPECT_EQ(rt->Serialize(), g->Serialize());
    EXPECT_EQ(rt->output(), g->output());
  }
}

TEST(FlowTest, RunReportsPlausibleRates) {
  Session session = MakeTestSession();
  const Flow flow = session.Files("data/")
                        .Interleave(2, 1)
                        .Map("noop")
                        .ShuffleAndRepeat(8)
                        .Batch(5);
  RunOptions window;
  window.max_seconds = 0.3;
  auto report = flow.Run(window);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->status.ok());
  EXPECT_GT(report->batches, 0);
  EXPECT_EQ(report->elements, report->batches * 5);
  EXPECT_GT(report->bytes_produced, 0u);
  EXPECT_GT(report->wall_seconds, 0);
  EXPECT_GT(report->batches_per_second, 0);
  EXPECT_GT(report->elements_per_second, report->batches_per_second);
  EXPECT_FALSE(report->node_stats.empty());
  const IteratorStatsSnapshot* batch = report->FindNode("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->elements_produced, static_cast<uint64_t>(report->batches));
}

TEST(FlowTest, OptimizeSpeedsUpMisconfiguredFlow) {
  Session session = MakeTestSession(8);
  ASSERT_TRUE(session.CreateRecordFiles("big/f", 4, 200, 64).ok());
  // 200us/element at parallelism 1: exactly the misconfigured starting
  // point of the paper's evaluation.
  const Flow flow = session.Files("big/")
                        .Interleave(2, 1)
                        .Map("slow")
                        .ShuffleAndRepeat(16)
                        .Batch(5);
  auto optimized = flow.Optimize();
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_GT(optimized->plan.predicted_rate, 0);
  auto tuned_graph = optimized->Graph();
  ASSERT_TRUE(tuned_graph.ok());
  // Root must now be a prefetch (the optimizer's injected root).
  EXPECT_EQ(tuned_graph->FindNode(tuned_graph->output())->op, "prefetch");

  RunOptions window;
  window.max_seconds = 0.4;
  double naive = 0, tuned = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    const auto naive_report = flow.Run(window);
    naive = naive_report.ok() ? naive_report->batches_per_second : 0;
    const auto tuned_report = optimized->Run(window);
    tuned = tuned_report.ok() ? tuned_report->batches_per_second : 0;
    return naive > 0 && tuned > naive * 2;
  })) << "tuned=" << tuned << " naive=" << naive;
}

TEST(FlowTest, OptimizeWithRunsTheGivenScheduleAndReports) {
  Session session = MakeTestSession(8);
  ASSERT_TRUE(session.CreateRecordFiles("big/f", 4, 200, 64).ok());
  const Flow flow = session.Files("big/")
                        .Interleave(2, 1)
                        .Map("slow")
                        .ShuffleAndRepeat(16)
                        .Batch(5);
  auto optimized = flow.OptimizeWith("parallelism,prefetch");
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  ASSERT_EQ(optimized->pass_reports.size(), 2u);
  EXPECT_EQ(optimized->pass_reports[0].pass, "parallelism");
  EXPECT_EQ(optimized->pass_reports[1].pass, "prefetch");
  EXPECT_GT(optimized->pass_reports[0].plan.predicted_rate, 0);
  auto graph = optimized->Graph();
  ASSERT_TRUE(graph.ok());
  // No cache pass in this schedule, so no cache node appears.
  EXPECT_FALSE(rewriter::HasOp(*graph, "cache"));
  EXPECT_EQ(graph->FindNode(graph->output())->op, "prefetch");

  auto bogus = flow.OptimizeWith("parallelism,bogus");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);

  // An explicitly empty schedule is the no-op baseline (trace only),
  // not the legacy-derived default schedule.
  auto noop = flow.OptimizeWith("");
  ASSERT_TRUE(noop.ok()) << noop.status();
  EXPECT_TRUE(noop->pass_reports.empty());
  EXPECT_GT(noop->traced_rate, 0);
  auto noop_graph = noop->Graph();
  ASSERT_TRUE(noop_graph.ok());
  EXPECT_EQ(noop_graph->Serialize(), flow.Graph()->Serialize());
}

TEST(FlowTest, RunWithWarmupReportsOnlyTheMeasuredWindow) {
  Session session = MakeTestSession();
  const Flow flow = session.Files("data/")
                        .Interleave(2, 1)
                        .Map("noop")
                        .ShuffleAndRepeat(8)
                        .Batch(5);
  RunOptions window;
  window.warmup_seconds = 0.15;
  window.max_seconds = 0.15;
  auto report = flow.Run(window);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->batches, 0);
  // Node counters must cover the measured window only, not the warmup:
  // the root's production count equals the reported batch count.
  const IteratorStatsSnapshot* batch = report->FindNode("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->elements_produced, static_cast<uint64_t>(report->batches));
}

TEST(FlowTest, FlowsSurviveSessionMove) {
  Session session = MakeTestSession();
  const Flow flow = session.Range(50).Batch(5);
  const Session moved = std::move(session);
  RunOptions window;
  window.max_batches = 5;
  auto report = flow.Run(window);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->batches, 5);
}

TEST(SessionTest, MemoryBudgetOverrideBoundsOptimizerPlanning) {
  SessionOptions so;
  so.machine.memory_bytes = 64 << 20;
  so.memory_budget_bytes = 1 << 20;
  Session session(std::move(so));
  // The cap flows into both the planner budget (machine.memory_bytes)
  // and the runtime cache budget, so Optimize and Run agree.
  OptimizeOptions oopts;
  session.ApplyTo(&oopts);
  EXPECT_EQ(oopts.machine.memory_bytes, 1u << 20);
  EXPECT_EQ(oopts.MakePipelineOptions().memory_budget_bytes, 1u << 20);
  EXPECT_EQ(session.MakePipelineOptions().memory_budget_bytes, 1u << 20);
}

TEST(SessionTest, IsTheSingleSourceOfTruthForEnvironment) {
  SessionOptions so;
  so.machine.cpu_scale = 1.5;
  so.machine.memory_bytes = 123;
  so.seed = 7;
  so.work_model = CpuWorkModel::kPhysical;
  Session session(std::move(so));

  const PipelineOptions popts = session.MakePipelineOptions();
  EXPECT_EQ(popts.fs, &session.fs());
  EXPECT_EQ(popts.udfs, &session.udfs());
  EXPECT_EQ(popts.cpu_scale, 1.5);
  EXPECT_EQ(popts.seed, 7u);
  EXPECT_EQ(popts.work_model, CpuWorkModel::kPhysical);
  // Cache budget falls back to the machine's memory.
  EXPECT_EQ(popts.memory_budget_bytes, 123u);

  // Environment fields of OptimizeOptions are overwritten wholesale.
  OptimizeOptions oopts;
  oopts.seed = 999;
  oopts.machine.cpu_scale = 9.0;
  oopts.trace_seconds = 0.125;  // tuning knob: preserved
  session.ApplyTo(&oopts);
  EXPECT_EQ(oopts.fs, &session.fs());
  EXPECT_EQ(oopts.udfs, &session.udfs());
  EXPECT_EQ(oopts.seed, 7u);
  EXPECT_EQ(oopts.machine.cpu_scale, 1.5);
  EXPECT_EQ(oopts.trace_seconds, 0.125);
  // And the optimizer derives PipelineOptions from those in one place.
  const PipelineOptions derived = oopts.MakePipelineOptions();
  EXPECT_EQ(derived.cpu_scale, 1.5);
  EXPECT_EQ(derived.seed, 7u);
  EXPECT_EQ(derived.memory_budget_bytes, 123u);
}

}  // namespace
}  // namespace plumber
