// Planner tests on hand-constructed trace snapshots with exact numbers.
#include "src/core/planner.h"

#include <gtest/gtest.h>

#include "src/pipeline/ops.h"

namespace plumber {
namespace {

struct SyntheticNode {
  std::string name;
  std::string op;
  uint64_t completions;
  double cpu_seconds;
  uint64_t bytes_produced = 0;
  uint64_t bytes_read = 0;
  int parallelism = 1;
  std::string udf;
};

// Builds a linear chain trace: nodes[0] is the source, nodes.back() the
// root. Wall time 1s.
TraceSnapshot MakeChainTrace(std::vector<SyntheticNode> nodes,
                             const MachineSpec& machine) {
  TraceSnapshot trace;
  trace.machine = machine;
  trace.wall_seconds = 1.0;
  std::string prev;
  for (const auto& n : nodes) {
    NodeDef def;
    def.name = n.name;
    def.op = n.op;
    if (!prev.empty()) def.inputs = {prev};
    if (!n.udf.empty()) def.attrs[kAttrUdf] = AttrValue(n.udf);
    EXPECT_TRUE(trace.graph.AddNode(def).ok());
    prev = n.name;

    IteratorStatsSnapshot s;
    s.name = n.name;
    s.op = n.op;
    s.elements_produced = n.completions;
    s.bytes_produced = n.bytes_produced;
    s.bytes_read = n.bytes_read;
    s.cpu_ns = static_cast<int64_t>(n.cpu_seconds * 1e9);
    s.parallelism = n.parallelism;
    s.udf_name = n.udf;
    trace.stats.push_back(s);
  }
  trace.graph.SetOutput(prev);
  trace.root_completions = nodes.back().completions;
  trace.observed_rate = static_cast<double>(trace.root_completions);
  return trace;
}

// Chain: interleave (source, light) -> map decode (heavy) -> batch(10).
// Over the 1s window: 1000 elements, 100 minibatches.
TraceSnapshot StandardTrace(const MachineSpec& machine) {
  return MakeChainTrace(
      {
          {"source", "interleave", 1000, 0.05, 64000, 80000, 1},
          {"decode", "map", 1000, 0.60, 384000, 0, 1, "decode"},
          {"batch", "batch", 100, 0.01, 384000, 0, 1},
      },
      machine);
}

UdfRegistry EmptyUdfs() {
  UdfRegistry udfs;
  UdfSpec decode;
  decode.name = "decode";
  EXPECT_TRUE(udfs.Register(decode).ok());
  return udfs;
}

TEST(LpPlanTest, CpuBoundPredictionMatchesWaterFilling) {
  const auto udfs = EmptyUdfs();
  auto model = std::move(PipelineModel::Build(StandardTrace(
                             MachineSpec::SetupA()), &udfs))
                   .value();
  // Rates (minibatches/s/core): source = (1000/0.05)/10 = 2000;
  // decode = (1000/0.60)/10 = 166.7; batch = 100/0.01/1 = 10000.
  // Water filling over 16 cores: X = 16 / (1/2000 + 1/166.7 + 1/10000).
  const LpPlan plan = PlanAllocation(model);
  const double expected = 16.0 / (1 / 2000.0 + 0.6 / 100.0 + 1 / 10000.0);
  EXPECT_NEAR(plan.predicted_rate, expected, expected * 0.02);
  EXPECT_EQ(plan.bottleneck, "decode");
  EXPECT_FALSE(plan.disk_limited);
  // Batch is sequential (no knob): theta <= 1.
  EXPECT_LE(plan.theta.at("batch"), 1.0 + 1e-9);
  // Parallelism suggestions only for tunable ops.
  EXPECT_TRUE(plan.parallelism.count("decode"));
  EXPECT_FALSE(plan.parallelism.count("batch"));
  EXPECT_GE(plan.parallelism.at("decode"), 10);
}

TEST(LpPlanTest, SimplexAgreesWithClosedForm) {
  const auto udfs = EmptyUdfs();
  auto model = std::move(PipelineModel::Build(StandardTrace(
                             MachineSpec::SetupA()), &udfs))
                   .value();
  LpPlanOptions closed_opts, simplex_opts;
  simplex_opts.use_simplex = true;
  const LpPlan a = PlanAllocation(model, closed_opts);
  const LpPlan b = PlanAllocation(model, simplex_opts);
  EXPECT_NEAR(a.predicted_rate, b.predicted_rate,
              1e-4 * a.predicted_rate);
}

TEST(LpPlanTest, DiskConstraintCapsRate) {
  const auto udfs = EmptyUdfs();
  auto model = std::move(PipelineModel::Build(StandardTrace(
                             MachineSpec::SetupA()), &udfs))
                   .value();
  // Disk demand: 80000 bytes / 100 minibatches = 800 bytes/minibatch.
  LpPlanOptions options;
  options.disk_bandwidth = 8000;  // -> cap at 10 minibatches/sec
  const LpPlan plan = PlanAllocation(model, options);
  EXPECT_TRUE(plan.disk_limited);
  EXPECT_NEAR(plan.predicted_rate, 10.0, 1e-6);
  EXPECT_NEAR(plan.disk_bound_rate, 10.0, 1e-6);
  EXPECT_GT(plan.cpu_bound_rate, plan.predicted_rate);
}

TEST(LpPlanTest, IoCurveSuggestsMinimalParallelism) {
  const auto udfs = EmptyUdfs();
  auto model = std::move(PipelineModel::Build(StandardTrace(
                             MachineSpec::SetupA()), &udfs))
                   .value();
  LpPlanOptions options;
  options.disk_bandwidth = 1e9;  // unconstrained
  options.io_curve.AddPoint(1, 100000);
  options.io_curve.AddPoint(2, 200000);
  options.io_curve.AddPoint(4, 400000);
  const LpPlan plan = PlanAllocation(model, options);
  // Required bandwidth = rate * 800 bytes; with rate ~2400 that's
  // ~1.9MB/s — beyond the curve, so the suggestion clamps to max.
  EXPECT_GE(plan.suggested_io_parallelism, 4);
}

TEST(LpPlanTest, MoreCoresRaiseCpuBound) {
  const auto udfs = EmptyUdfs();
  auto model_a = std::move(PipelineModel::Build(StandardTrace(
                               MachineSpec::SetupA()), &udfs))
                     .value();
  auto model_c = std::move(PipelineModel::Build(StandardTrace(
                               MachineSpec::SetupC()), &udfs))
                     .value();
  EXPECT_GT(PlanAllocation(model_c).predicted_rate,
            PlanAllocation(model_a).predicted_rate * 3);
}

// ---- Cache planning -------------------------------------------------

TraceSnapshot CacheTrace(const MachineSpec& machine) {
  // source(1000 el, 100B each) -> decode(1000 el, 600B each) ->
  // random augment -> batch(10). Finite (no repeat).
  TraceSnapshot trace = MakeChainTrace(
      {
          {"source", "interleave", 1000, 0.02, 100000, 110000, 1},
          {"decode", "map", 1000, 0.50, 600000, 0, 1, "decode"},
          {"augment", "map", 1000, 0.05, 600000, 0, 1, "augment"},
          {"batch", "batch", 100, 0.01, 600000, 0, 1},
      },
      machine);
  // One fully-read source file backs cardinality estimation.
  trace.read_log["data/f0"] = FileReadEntry{110000, 110000, true};
  trace.files_per_prefix["data/"] = 1;
  return trace;
}

UdfRegistry CacheUdfs() {
  UdfRegistry udfs;
  UdfSpec decode;
  decode.name = "decode";
  EXPECT_TRUE(udfs.Register(decode).ok());
  UdfSpec augment;
  augment.name = "augment";
  augment.accesses_random_seed = true;
  EXPECT_TRUE(udfs.Register(augment).ok());
  return udfs;
}

TEST(CachePlanTest, PicksClosestCacheableNodeThatFits) {
  const auto udfs = CacheUdfs();
  auto model = std::move(
                   PipelineModel::Build(CacheTrace(MachineSpec::SetupA()),
                                        &udfs))
                   .value();
  // augment and batch are random-tainted; decode (600KB) and source
  // (100KB) are cacheable. With a 1MB budget the decode output wins.
  CachePlanOptions options;
  options.memory_bytes = 1 << 20;
  const CacheDecision decision = PlanCache(model, options);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.node, "decode");
  EXPECT_NEAR(decision.materialized_bytes, 600000, 60000);
}

TEST(CachePlanTest, FallsBackToSourceWhenDecodedTooBig) {
  const auto udfs = CacheUdfs();
  auto model = std::move(
                   PipelineModel::Build(CacheTrace(MachineSpec::SetupA()),
                                        &udfs))
                   .value();
  CachePlanOptions options;
  options.memory_bytes = 200000;  // decode (600KB) won't fit; source will
  const CacheDecision decision = PlanCache(model, options);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.node, "source");
}

TEST(CachePlanTest, InfeasibleWhenNothingFits) {
  const auto udfs = CacheUdfs();
  auto model = std::move(
                   PipelineModel::Build(CacheTrace(MachineSpec::SetupA()),
                                        &udfs))
                   .value();
  CachePlanOptions options;
  options.memory_bytes = 10;
  const CacheDecision decision = PlanCache(model, options);
  EXPECT_FALSE(decision.feasible);
  EXPECT_FALSE(decision.candidates.empty());
}

TEST(CachePlanTest, SafetyFactorShrinksBudget) {
  const auto udfs = CacheUdfs();
  auto model = std::move(
                   PipelineModel::Build(CacheTrace(MachineSpec::SetupA()),
                                        &udfs))
                   .value();
  CachePlanOptions options;
  options.memory_bytes = 650000;  // decode fits without safety factor
  options.safety_factor = 0.5;    // but not with it
  const CacheDecision decision = PlanCache(model, options);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.node, "source");
}

TEST(CachePlanTest, EnumerationAgreesOnChains) {
  const auto udfs = CacheUdfs();
  auto model = std::move(
                   PipelineModel::Build(CacheTrace(MachineSpec::SetupA()),
                                        &udfs))
                   .value();
  CachePlanOptions options;
  options.memory_bytes = 1 << 20;
  const CacheDecision greedy = PlanCache(model, options);
  const CacheDecision enumerated = PlanCacheByEnumeration(model, options);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(enumerated.feasible);
  EXPECT_EQ(greedy.node, enumerated.node);
}

TEST(CachePlanTest, PredictedRateImprovesWithCache) {
  const auto udfs = CacheUdfs();
  auto model = std::move(
                   PipelineModel::Build(CacheTrace(MachineSpec::SetupA()),
                                        &udfs))
                   .value();
  const double base = PlanAllocation(model).predicted_rate;
  const double cached = PredictedRateWithCacheAt(model, "decode");
  EXPECT_GT(cached, base);
}

// ---- Prefetch planning ----------------------------------------------

TEST(PrefetchPlanTest, InjectsWhenRootIsNotPrefetch) {
  const auto udfs = EmptyUdfs();
  auto model = std::move(PipelineModel::Build(StandardTrace(
                             MachineSpec::SetupA()), &udfs))
                   .value();
  const PrefetchDecision decision = PlanPrefetch(model);
  EXPECT_TRUE(decision.inject_root);
  EXPECT_GE(decision.root_buffer, 2);
  // 0.66 cores used of 16 -> high idleness.
  EXPECT_GT(decision.pipeline_idleness, 0.8);
}

}  // namespace
}  // namespace plumber
