#include "src/pipeline/graph_def.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace plumber {
namespace {

NodeDef MakeNode(const std::string& name, const std::string& op,
                 std::vector<std::string> inputs = {}) {
  NodeDef n;
  n.name = name;
  n.op = op;
  n.inputs = std::move(inputs);
  return n;
}

GraphDef Chain() {
  GraphDef g;
  EXPECT_TRUE(g.AddNode(MakeNode("src", "range")).ok());
  EXPECT_TRUE(g.AddNode(MakeNode("mid", "map", {"src"})).ok());
  EXPECT_TRUE(g.AddNode(MakeNode("root", "batch", {"mid"})).ok());
  g.SetOutput("root");
  return g;
}

TEST(AttrValueTest, TypedAccessors) {
  EXPECT_EQ(AttrValue(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(AttrValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(AttrValue(true).AsBool(), true);
  EXPECT_EQ(AttrValue("hi").AsString(), "hi");
  // Cross-type coercions.
  EXPECT_EQ(AttrValue(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(AttrValue(2.9).AsInt(), 2);
  EXPECT_EQ(AttrValue(int64_t{1}).AsBool(), true);
  // Fallbacks.
  EXPECT_EQ(AttrValue("x").AsInt(42), 42);
}

TEST(AttrValueTest, SerializeParseRoundTrip) {
  for (const AttrValue& v :
       {AttrValue(int64_t{-7}), AttrValue(3.14159), AttrValue(true),
        AttrValue(false), AttrValue("hello world")}) {
    auto parsed = AttrValue::Parse(v.Serialize());
    ASSERT_TRUE(parsed.ok()) << v.Serialize();
    EXPECT_EQ(parsed->Serialize(), v.Serialize());
  }
}

TEST(GraphDefTest, AddAndFind) {
  GraphDef g = Chain();
  EXPECT_NE(g.FindNode("src"), nullptr);
  EXPECT_EQ(g.FindNode("nope"), nullptr);
  EXPECT_EQ(g.FindNode("mid")->inputs[0], "src");
}

TEST(GraphDefTest, DuplicateNameRejected) {
  GraphDef g = Chain();
  EXPECT_EQ(g.AddNode(MakeNode("src", "range")).code(),
            StatusCode::kAlreadyExists);
}

TEST(GraphDefTest, ValidateCatchesMissingInput) {
  GraphDef g;
  ASSERT_TRUE(g.AddNode(MakeNode("a", "map", {"ghost"})).ok());
  g.SetOutput("a");
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphDefTest, ValidateCatchesMissingOutput) {
  GraphDef g;
  ASSERT_TRUE(g.AddNode(MakeNode("a", "range")).ok());
  EXPECT_FALSE(g.Validate().ok());  // no output set
  g.SetOutput("ghost");
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphDefTest, TopologicalOrderChildrenFirst) {
  GraphDef g = Chain();
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<std::string>{"src", "mid", "root"}));
}

TEST(GraphDefTest, TopologicalOrderDetectsCycle) {
  GraphDef g;
  ASSERT_TRUE(g.AddNode(MakeNode("a", "map", {"b"})).ok());
  ASSERT_TRUE(g.AddNode(MakeNode("b", "map", {"a"})).ok());
  g.SetOutput("a");
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(GraphDefTest, ConsumersLookup) {
  GraphDef g = Chain();
  EXPECT_EQ(g.Consumers("src"), std::vector<std::string>{"mid"});
  EXPECT_EQ(g.Consumers("root").size(), 0u);
}

TEST(GraphDefTest, InsertAfterRedirectsConsumers) {
  GraphDef g = Chain();
  ASSERT_TRUE(g.InsertAfter("mid", MakeNode("cache", "cache")).ok());
  EXPECT_EQ(g.FindNode("cache")->inputs, std::vector<std::string>{"mid"});
  EXPECT_EQ(g.FindNode("root")->inputs, std::vector<std::string>{"cache"});
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphDefTest, InsertAfterRootUpdatesOutput) {
  GraphDef g = Chain();
  ASSERT_TRUE(g.InsertAfter("root", MakeNode("prefetch", "prefetch")).ok());
  EXPECT_EQ(g.output(), "prefetch");
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphDefTest, InsertAfterMissingNodeFails) {
  GraphDef g = Chain();
  EXPECT_FALSE(g.InsertAfter("ghost", MakeNode("x", "cache")).ok());
}

TEST(GraphDefTest, RemoveNodeReconnects) {
  GraphDef g = Chain();
  ASSERT_TRUE(g.RemoveNode("mid").ok());
  EXPECT_EQ(g.FindNode("root")->inputs, std::vector<std::string>{"src"});
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphDefTest, RemoveSourceFails) {
  GraphDef g = Chain();
  EXPECT_FALSE(g.RemoveNode("src").ok());
}

TEST(GraphDefTest, UniqueNameAvoidsCollisions) {
  GraphDef g = Chain();
  EXPECT_EQ(g.UniqueName("fresh"), "fresh");
  EXPECT_EQ(g.UniqueName("mid"), "mid_1");
}

TEST(GraphDefTest, SerializeParseRoundTrip) {
  GraphDef g = Chain();
  NodeDef* mid = g.MutableNode("mid");
  mid->attrs["parallelism"] = AttrValue(int64_t{4});
  mid->attrs["udf"] = AttrValue("decode");
  mid->attrs["deterministic"] = AttrValue(true);
  mid->attrs["scale"] = AttrValue(1.25);
  auto parsed = GraphDef::Parse(g.Serialize());
  ASSERT_TRUE(parsed.ok()) << g.Serialize();
  EXPECT_EQ(parsed->Serialize(), g.Serialize());
  EXPECT_EQ(parsed->FindNode("mid")->GetInt("parallelism"), 4);
  EXPECT_EQ(parsed->FindNode("mid")->GetString("udf"), "decode");
  EXPECT_EQ(parsed->FindNode("mid")->GetDouble("scale"), 1.25);
}

TEST(GraphDefTest, ParseRejectsGarbage) {
  EXPECT_FALSE(GraphDef::Parse("whatever this is").ok());
  EXPECT_FALSE(GraphDef::Parse("node a map\n").ok());  // unterminated
  EXPECT_FALSE(GraphDef::Parse("input x\n").ok());     // outside node
}

// Property: random chains round-trip through text serialization.
class GraphRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphRoundTripTest, SerializeParseIdentity) {
  Rng rng(GetParam() * 31 + 5);
  GraphDef g;
  const int n = 2 + static_cast<int>(rng.UniformInt(8));
  std::string prev;
  for (int i = 0; i < n; ++i) {
    NodeDef node = MakeNode("n" + std::to_string(i),
                            i == 0 ? "range" : "map",
                            i == 0 ? std::vector<std::string>{}
                                   : std::vector<std::string>{prev});
    if (rng.Bernoulli(0.5)) {
      node.attrs["parallelism"] =
          AttrValue(static_cast<int64_t>(1 + rng.UniformInt(64)));
    }
    if (rng.Bernoulli(0.5)) {
      node.attrs["ratio"] = AttrValue(rng.UniformDouble() * 10);
    }
    if (rng.Bernoulli(0.3)) {
      node.attrs["flag"] = AttrValue(rng.Bernoulli(0.5));
    }
    ASSERT_TRUE(g.AddNode(std::move(node)).ok());
    prev = "n" + std::to_string(i);
  }
  g.SetOutput(prev);
  auto parsed = GraphDef::Parse(g.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Serialize(), g.Serialize());
  auto order = parsed->TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), static_cast<size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, GraphRoundTripTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace plumber
