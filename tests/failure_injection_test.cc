// Failure-injection suite: the engine and the optimizer must degrade
// with clear errors, not hangs or crashes, when the world misbehaves —
// cancellation mid-flight, memory budgets blown by a cache, missing
// data, malformed programs, unknown UDFs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/optimizer.h"
#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

GraphDef InfiniteGraph(const std::string& udf = "noop") {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
  n = b.Map("work", n, udf, /*parallelism=*/4);
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  n = b.Prefetch("prefetch", n, 4);
  return std::move(b.Build(n)).value();
}

TEST(FailureInjectionTest, CancelUnblocksConsumerOnInfinitePipeline) {
  PipelineTestEnv env(4, 50, 64);
  auto pipeline =
      std::move(Pipeline::Create(InfiniteGraph("slow"), env.Options()))
          .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    Element e;
    bool end = false;
    // Drain until cancellation surfaces as end-of-stream or an error.
    while (iterator->GetNext(&e, &end).ok() && !end) {
    }
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  pipeline->Cancel();
  for (int i = 0; i < 400 && !done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done.load()) << "consumer still blocked 4s after Cancel()";
  if (!done.load()) consumer.detach();  // avoid hanging the suite
  else consumer.join();
}

TEST(FailureInjectionTest, CancelDuringDestructionIsSafe) {
  // Destroying a parallel pipeline while workers are mid-element must
  // join cleanly (no deadlock, no use-after-free under ASAN).
  PipelineTestEnv env(4, 50, 64);
  for (int round = 0; round < 5; ++round) {
    auto pipeline =
        std::move(Pipeline::Create(InfiniteGraph("slow"), env.Options()))
            .value();
    auto iterator = std::move(pipeline->MakeIterator()).value();
    Element e;
    bool end = false;
    ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
    pipeline->Cancel();
    // iterator + pipeline destroyed here with workers in flight.
  }
}

TEST(FailureInjectionTest, CacheOverBudgetSurfacesResourceExhausted) {
  PipelineTestEnv env(4, 50, 64);
  GraphDef graph = InfiniteGraph();
  ASSERT_TRUE(rewriter::InjectCache(&graph, "work").ok());
  PipelineOptions options = env.Options(/*memory_budget=*/256);
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  Status status = OkStatus();
  for (int i = 0; i < 10000 && status.ok() && !end; ++i) {
    status = iterator->GetNext(&e, &end);
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
}

TEST(FailureInjectionTest, MissingFilePrefixEndsImmediately) {
  PipelineTestEnv env(4, 50, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "nonexistent/"),
                        2, 1);
  n = b.Batch("batch", n, 5, /*drop_remainder=*/false);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
  EXPECT_TRUE(end);
}

TEST(FailureInjectionTest, UnknownUdfFailsAtInstantiation) {
  PipelineTestEnv env(4, 50, 64);
  GraphDef graph = InfiniteGraph("no_such_udf");
  auto pipeline = Pipeline::Create(graph, env.Options());
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNotFound)
      << pipeline.status();
}

TEST(FailureInjectionTest, UnknownOpFailsAtInstantiation) {
  PipelineTestEnv env(4, 50, 64);
  GraphDef graph;
  NodeDef node;
  node.name = "mystery";
  node.op = "quantum_shuffle";
  ASSERT_TRUE(graph.AddNode(node).ok());
  graph.SetOutput("mystery");
  auto pipeline = Pipeline::Create(graph, env.Options());
  EXPECT_FALSE(pipeline.ok());
}

TEST(FailureInjectionTest, DanglingInputFailsValidation) {
  GraphDef graph;
  NodeDef node;
  node.name = "batch";
  node.op = "batch";
  node.inputs = {"ghost"};
  ASSERT_TRUE(graph.AddNode(node).ok());
  graph.SetOutput("batch");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(FailureInjectionTest, OptimizerSurvivesUntraceablePipeline) {
  // A pipeline over a missing prefix produces an empty trace; the
  // optimizer must return a usable (if unoptimized) result or a clean
  // error — never crash.
  PipelineTestEnv env(4, 50, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "nonexistent/"),
                        2, 1);
  n = b.Repeat("repeat", n);
  n = b.Batch("batch", n, 5);
  GraphDef graph = std::move(b.Build(n)).value();

  OptimizeOptions options;
  options.machine = MachineSpec::SetupA();
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.trace_seconds = 0.05;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(graph);
  if (result.ok()) {
    EXPECT_TRUE(result->graph.Validate().ok());
  }
}

TEST(FailureInjectionTest, RewriterRejectsUnknownNodes) {
  GraphDef graph = InfiniteGraph();
  EXPECT_FALSE(rewriter::SetParallelism(&graph, "ghost", 4).ok());
  EXPECT_FALSE(rewriter::InjectCache(&graph, "ghost").ok());
  EXPECT_FALSE(rewriter::GetParallelism(graph, "ghost").ok());
}

TEST(FailureInjectionTest, ZeroRecordFileIsHandled) {
  PipelineTestEnv env(1, 1, 16);
  // Overwrite with an empty record file.
  ASSERT_TRUE(env.fs.CreateRecordFile("empty/f0", 1, {}).ok());
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "empty/"), 2, 1);
  n = b.Batch("batch", n, 4, /*drop_remainder=*/false);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
  EXPECT_TRUE(end);
}

}  // namespace
}  // namespace plumber
