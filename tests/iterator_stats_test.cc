// Tests for producer-attributed CPU accounting and the stats registry.
#include "src/pipeline/iterator_stats.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/util/busy_work.h"
#include "src/util/cpu_timer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

TEST(IteratorStatsTest, CountersAccumulate) {
  IteratorStats s("node", "map");
  s.RecordProduced(100);
  s.RecordProduced(50);
  s.RecordConsumed();
  s.AddCpuNanos(1000);
  s.AddBytesRead(7);
  EXPECT_EQ(s.elements_produced(), 2u);
  EXPECT_EQ(s.bytes_produced(), 150u);
  EXPECT_EQ(s.elements_consumed(), 1u);
  EXPECT_EQ(s.cpu_ns(), 1000);
  EXPECT_EQ(s.bytes_read(), 7u);
  s.Reset();
  EXPECT_EQ(s.elements_produced(), 0u);
  EXPECT_EQ(s.cpu_ns(), 0);
}

TEST(IteratorStatsTest, NegativeCpuIgnored) {
  IteratorStats s("node", "map");
  s.AddCpuNanos(-100);
  EXPECT_EQ(s.cpu_ns(), 0);
}

TEST(StatsRegistryTest, GetOrCreateIsIdempotent) {
  StatsRegistry reg;
  IteratorStats* a = reg.GetOrCreate("x", "map");
  IteratorStats* b = reg.GetOrCreate("x", "map");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.Find("x"), a);
  EXPECT_EQ(reg.Find("y"), nullptr);
}

TEST(StatsRegistryTest, SnapshotCopiesCounters) {
  StatsRegistry reg;
  IteratorStats* s = reg.GetOrCreate("x", "map");
  s->RecordProduced(10);
  s->SetParallelism(3);
  s->SetUdfName("decode");
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "x");
  EXPECT_EQ(snap[0].op, "map");
  EXPECT_EQ(snap[0].elements_produced, 1u);
  EXPECT_EQ(snap[0].bytes_produced, 10u);
  EXPECT_EQ(snap[0].parallelism, 3);
  EXPECT_EQ(snap[0].udf_name, "decode");
}

TEST(CpuAccountingTest, ChargesWorkToActiveScope) {
  // The contract is attribution, not absolute nanoseconds: a spin-rate
  // calibration taken under scheduler pressure (e.g. parallel TSan CI)
  // shortens every burn proportionally, so assert the 4:6 parent:child
  // split instead of wall-clock amounts. Retried for transient noise.
  EXPECT_TRUE(testing_util::EventuallyTrue([] {
    IteratorStats parent("parent", "map"), child("child", "source");
    {
      CpuAccountingScope outer(&parent);
      BurnCpuNanos(3'000'000);  // 3ms charged to parent
      {
        CpuAccountingScope inner(&child);
        BurnCpuNanos(6'000'000);  // 6ms charged to child
      }
      BurnCpuNanos(1'000'000);  // 1ms more to parent
    }
    // Parent ~40% of total, child ~60%; attribution must not leak
    // child work into parent ("timers stop when calling into
    // children").
    const double total =
        static_cast<double>(parent.cpu_ns() + child.cpu_ns());
    if (total <= 0) return false;
    const double parent_share = parent.cpu_ns() / total;
    return parent_share > 0.15 && parent_share < 0.65 &&
           child.cpu_ns() > parent.cpu_ns();
  }));
}

TEST(CpuAccountingTest, BlockedTimeNotCharged) {
  IteratorStats s("node", "source");
  {
    CpuAccountingScope scope(&s);
    BlockedRegion blocked;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // 50ms of declared-blocked sleep must not appear as CPU.
  EXPECT_LT(s.cpu_ns(), 10'000'000);
}

TEST(CpuAccountingTest, SleepWithoutBlockedMarkerIsCharged) {
  // Contrast case: an undeclared sleep counts as (virtual) CPU. This
  // documents the contract: all engine blocking sites must declare.
  IteratorStats s("node", "source");
  {
    CpuAccountingScope scope(&s);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_GT(s.cpu_ns(), 20'000'000);
}

TEST(CpuAccountingTest, IndependentAcrossThreads) {
  // Same-calibration burns on two threads must charge similar amounts
  // to their own stats (no cross-thread leakage). Ratio-based for the
  // same calibration-under-load reason as above.
  EXPECT_TRUE(testing_util::EventuallyTrue([] {
    IteratorStats a("a", "map"), b("b", "map");
    std::thread t1([&] {
      CpuAccountingScope scope(&a);
      BurnCpuNanos(5'000'000);
    });
    std::thread t2([&] {
      CpuAccountingScope scope(&b);
      BurnCpuNanos(5'000'000);
    });
    t1.join();
    t2.join();
    if (a.cpu_ns() <= 0 || b.cpu_ns() <= 0) return false;
    const double ratio = static_cast<double>(a.cpu_ns()) / b.cpu_ns();
    return ratio > 0.25 && ratio < 4.0;
  }));
}

TEST(CpuAccountingTest, UnscopedWorkChargedToNobody) {
  IteratorStats s("node", "map");
  BurnCpuNanos(2'000'000);  // no scope active
  { CpuAccountingScope scope(&s); }
  // Entering a scope after unscoped work must not back-charge it.
  EXPECT_LT(s.cpu_ns(), 1'000'000);
}

}  // namespace
}  // namespace plumber
