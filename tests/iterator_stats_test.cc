// Tests for producer-attributed CPU accounting and the stats registry.
#include "src/pipeline/iterator_stats.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/util/busy_work.h"
#include "src/util/cpu_timer.h"

namespace plumber {
namespace {

TEST(IteratorStatsTest, CountersAccumulate) {
  IteratorStats s("node", "map");
  s.RecordProduced(100);
  s.RecordProduced(50);
  s.RecordConsumed();
  s.AddCpuNanos(1000);
  s.AddBytesRead(7);
  EXPECT_EQ(s.elements_produced(), 2u);
  EXPECT_EQ(s.bytes_produced(), 150u);
  EXPECT_EQ(s.elements_consumed(), 1u);
  EXPECT_EQ(s.cpu_ns(), 1000);
  EXPECT_EQ(s.bytes_read(), 7u);
  s.Reset();
  EXPECT_EQ(s.elements_produced(), 0u);
  EXPECT_EQ(s.cpu_ns(), 0);
}

TEST(IteratorStatsTest, NegativeCpuIgnored) {
  IteratorStats s("node", "map");
  s.AddCpuNanos(-100);
  EXPECT_EQ(s.cpu_ns(), 0);
}

TEST(StatsRegistryTest, GetOrCreateIsIdempotent) {
  StatsRegistry reg;
  IteratorStats* a = reg.GetOrCreate("x", "map");
  IteratorStats* b = reg.GetOrCreate("x", "map");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.Find("x"), a);
  EXPECT_EQ(reg.Find("y"), nullptr);
}

TEST(StatsRegistryTest, SnapshotCopiesCounters) {
  StatsRegistry reg;
  IteratorStats* s = reg.GetOrCreate("x", "map");
  s->RecordProduced(10);
  s->SetParallelism(3);
  s->SetUdfName("decode");
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "x");
  EXPECT_EQ(snap[0].op, "map");
  EXPECT_EQ(snap[0].elements_produced, 1u);
  EXPECT_EQ(snap[0].bytes_produced, 10u);
  EXPECT_EQ(snap[0].parallelism, 3);
  EXPECT_EQ(snap[0].udf_name, "decode");
}

TEST(CpuAccountingTest, ChargesWorkToActiveScope) {
  IteratorStats parent("parent", "map"), child("child", "source");
  {
    CpuAccountingScope outer(&parent);
    BurnCpuNanos(3'000'000);  // 3ms charged to parent
    {
      CpuAccountingScope inner(&child);
      BurnCpuNanos(6'000'000);  // 6ms charged to child
    }
    BurnCpuNanos(1'000'000);  // 1ms more to parent
  }
  // Parent ~4ms, child ~6ms; attribution must not leak child work into
  // parent (the paper's "timers stop when calling into children").
  EXPECT_GT(parent.cpu_ns(), 1'500'000);
  EXPECT_LT(parent.cpu_ns(), 9'000'000);
  EXPECT_GT(child.cpu_ns(), 3'000'000);
  EXPECT_GT(child.cpu_ns(), parent.cpu_ns());
}

TEST(CpuAccountingTest, BlockedTimeNotCharged) {
  IteratorStats s("node", "source");
  {
    CpuAccountingScope scope(&s);
    BlockedRegion blocked;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // 50ms of declared-blocked sleep must not appear as CPU.
  EXPECT_LT(s.cpu_ns(), 10'000'000);
}

TEST(CpuAccountingTest, SleepWithoutBlockedMarkerIsCharged) {
  // Contrast case: an undeclared sleep counts as (virtual) CPU. This
  // documents the contract: all engine blocking sites must declare.
  IteratorStats s("node", "source");
  {
    CpuAccountingScope scope(&s);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_GT(s.cpu_ns(), 20'000'000);
}

TEST(CpuAccountingTest, IndependentAcrossThreads) {
  IteratorStats a("a", "map"), b("b", "map");
  std::thread t1([&] {
    CpuAccountingScope scope(&a);
    BurnCpuNanos(5'000'000);
  });
  std::thread t2([&] {
    CpuAccountingScope scope(&b);
    BurnCpuNanos(5'000'000);
  });
  t1.join();
  t2.join();
  EXPECT_GT(a.cpu_ns(), 2'000'000);
  EXPECT_GT(b.cpu_ns(), 2'000'000);
}

TEST(CpuAccountingTest, UnscopedWorkChargedToNobody) {
  IteratorStats s("node", "map");
  BurnCpuNanos(2'000'000);  // no scope active
  { CpuAccountingScope scope(&s); }
  // Entering a scope after unscoped work must not back-charge it.
  EXPECT_LT(s.cpu_ns(), 1'000'000);
}

}  // namespace
}  // namespace plumber
