#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace plumber {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.stddev(), 0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeEqualsConcatenation) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(RunningStatTest, ConfidenceIntervalShrinksWithSamples) {
  RunningStat small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 3);
  for (int i = 0; i < 1000; ++i) large.Add(i % 3);
  EXPECT_GT(small.ConfidenceInterval95(), large.ConfidenceInterval95());
}

TEST(QuantileSketchTest, ExactQuantiles) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.Add(i);
  EXPECT_NEAR(q.Quantile(0.0), 1, 1e-9);
  EXPECT_NEAR(q.Quantile(1.0), 100, 1e-9);
  EXPECT_NEAR(q.Quantile(0.5), 50.5, 1e-9);
}

TEST(QuantileSketchTest, FractionAbove) {
  QuantileSketch q;
  for (int i = 1; i <= 10; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.FractionAbove(10), 0.0);
  EXPECT_DOUBLE_EQ(q.FractionAbove(0), 1.0);
  EXPECT_DOUBLE_EQ(q.FractionAbove(5), 0.5);
}

TEST(LogHistogramTest, CountsAndCdf) {
  LogHistogram h(1e-6, 1e2, 4);
  h.Add(1e-5);
  h.Add(1e-3);
  h.Add(1e-3);
  h.Add(10);
  EXPECT_EQ(h.TotalCount(), 4);
  EXPECT_NEAR(h.Cdf(1.0), 0.75, 1e-9);
  EXPECT_NEAR(h.Cdf(100.0), 1.0, 1e-9);
}

TEST(LogHistogramTest, ClampsOutOfRange) {
  LogHistogram h(1e-3, 1.0, 2);
  h.Add(1e-9);  // below min
  h.Add(1e9);   // above max
  EXPECT_EQ(h.TotalCount(), 2);
  const auto buckets = h.NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 2u);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(LinearFitTest, ConstantXGivesMean) {
  std::vector<double> x(5, 2.0), y{1, 2, 3, 4, 5};
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
}

}  // namespace
}  // namespace plumber
