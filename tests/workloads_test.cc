#include "src/workloads/workloads.h"

#include <gtest/gtest.h>

#include "src/pipeline/runner.h"
#include "src/workloads/datagen.h"

namespace plumber {
namespace {

TEST(DatagenTest, GeneratesRequestedShape) {
  SimFilesystem fs;
  RecordDatasetSpec spec;
  spec.prefix = "t/";
  spec.num_files = 5;
  spec.records_per_file = 10;
  spec.mean_record_bytes = 100;
  ASSERT_TRUE(GenerateRecordDataset(&fs, spec).ok());
  EXPECT_EQ(fs.List("t/").size(), 5u);
  EXPECT_EQ(DatasetRecords(fs, "t/"), 50u);
  const double bytes = DatasetBytes(fs, "t/");
  // ~50 x (100 +/- 15%) payload + framing.
  EXPECT_NEAR(bytes, 50 * (100 + kRecordFramingBytes), 0.3 * bytes);
}

TEST(DatagenTest, RejectsEmptySpec) {
  SimFilesystem fs;
  RecordDatasetSpec spec;
  spec.num_files = 0;
  EXPECT_FALSE(GenerateRecordDataset(&fs, spec).ok());
}

TEST(DatagenTest, StandardDatasetsSizesScale) {
  SimFilesystem fs;
  ASSERT_TRUE(RegisterStandardDatasets(&fs).ok());
  // ImageNet scaled: 64 files x 120 x ~1.1KB ~= 8.4MB; the COCO set is
  // smaller but with bigger records; text sets are tiny.
  const double imagenet = DatasetBytes(fs, "imagenet/train-");
  const double coco = DatasetBytes(fs, "coco/train-");
  const double wmt17 = DatasetBytes(fs, "wmt17/train-");
  EXPECT_NEAR(imagenet, 8.4e6, 1.5e6);
  EXPECT_GT(imagenet, coco);
  EXPECT_GT(coco, wmt17);
  EXPECT_EQ(DatasetRecords(fs, "imagenet/train-"), 64u * 120u);
}

TEST(WorkloadsTest, AllNamesBuild) {
  for (const auto& name : AllWorkloadNames()) {
    auto w = MakeWorkload(name);
    ASSERT_TRUE(w.ok()) << name;
    EXPECT_EQ(w->name, name);
    EXPECT_TRUE(w->graph.Validate().ok()) << name;
    EXPECT_FALSE(w->variants.empty());
    EXPECT_GT(w->batch_size, 0);
  }
  EXPECT_FALSE(MakeWorkload("nope").ok());
}

TEST(WorkloadsTest, UdfRegistrationIdempotent) {
  UdfRegistry udfs;
  ASSERT_TRUE(RegisterWorkloadUdfs(&udfs).ok());
  ASSERT_TRUE(RegisterWorkloadUdfs(&udfs).ok());
  EXPECT_NE(udfs.Find("decode"), nullptr);
  EXPECT_NE(udfs.Find("rcnn_heavy"), nullptr);
}

TEST(WorkloadsTest, RandomnessClosureMatchesPaperStructure) {
  UdfRegistry udfs;
  ASSERT_TRUE(RegisterWorkloadUdfs(&udfs).ok());
  // The fused decode+crop calls the random crop: transitively random.
  EXPECT_TRUE(udfs.IsTransitivelyRandom("fused_decode_crop"));
  EXPECT_FALSE(udfs.IsTransitivelyRandom("decode"));
  EXPECT_TRUE(udfs.IsTransitivelyRandom("rcnn_heavy"));
  EXPECT_FALSE(udfs.IsTransitivelyRandom("flax_pack"));
}

class WorkloadRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRunTest, ProducesBatchesEndToEnd) {
  WorkloadEnv env;
  auto w = std::move(MakeWorkload(GetParam())).value();
  auto pipeline =
      std::move(Pipeline::Create(w.graph, env.MakePipelineOptions()))
          .value();
  RunOptions options;
  options.max_batches = 3;
  options.max_seconds = 20;
  const RunResult result = RunPipeline(*pipeline, options);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.batches, 3);
  EXPECT_EQ(result.examples, 3 * w.batch_size);
  pipeline->Cancel();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRunTest,
    ::testing::Values("resnet18", "resnet_linear", "rcnn", "multibox_ssd",
                      "transformer", "transformer_small", "gnmt"));

TEST(WorkloadsTest, ResNetVariantsShareSignature) {
  WorkloadEnv env;
  auto w = std::move(MakeWorkload("resnet18")).value();
  ASSERT_EQ(w.variants.size(), 2u);
  for (const auto& variant : w.variants) {
    auto pipeline =
        std::move(Pipeline::Create(variant, env.MakePipelineOptions()))
            .value();
    RunOptions options;
    options.max_batches = 1;
    options.max_seconds = 20;
    const RunResult result = RunPipeline(*pipeline, options);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.examples, w.batch_size);
    pipeline->Cancel();
  }
}

TEST(WorkloadsTest, ModelStepSecondsFromCap) {
  auto w = std::move(MakeWorkload("resnet18")).value();
  ASSERT_GT(w.model_cap_examples_per_sec, 0);
  EXPECT_NEAR(w.ModelStepSeconds(),
              w.batch_size / w.model_cap_examples_per_sec, 1e-12);
}

}  // namespace
}  // namespace plumber
