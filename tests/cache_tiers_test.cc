// Tests for the memory/disk tiered cache dispatch (paper §4.1
// "Extensions").
#include "src/core/cache_tiers.h"

#include <gtest/gtest.h>

#include "src/core/optimizer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

class CacheTiersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<PipelineTestEnv>(4, 50, 128);
    GraphBuilder b;
    auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
    n = b.Map("grow", n, "double_size");  // 2x amplification, cacheable
    n = b.Map("work", n, "slow", 2);
    n = b.ShuffleAndRepeat("sr", n, 16);
    n = b.Batch("batch", n, 5);
    GraphDef graph = std::move(b.Build(n)).value();
    auto pipeline =
        std::move(Pipeline::Create(graph, env_->Options())).value();
    TraceOptions topts;
    topts.trace_seconds = 0.35;
    topts.machine = MachineSpec::SetupA();
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    model_ = std::make_unique<PipelineModel>(
        std::move(PipelineModel::Build(trace, &env_->udfs)).value());
  }

  // Dataset: 4 x 50 x 128 = 25600 source bytes; "grow" doubles it.
  std::unique_ptr<PipelineTestEnv> env_;
  std::unique_ptr<PipelineModel> model_;
};

TEST_F(CacheTiersTest, PrefersMemoryWhenItFits) {
  TieredCachePlanOptions options;
  options.memory_bytes = 10 << 20;
  options.disk_free_bytes = 10 << 20;
  options.disk_read_bandwidth = 1e9;
  const TieredCacheDecision decision = PlanCacheTiered(*model_, options);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.tier, CacheTier::kMemory);
  // The deepest cacheable node is "work" (the slow map is deterministic
  // here), closest to the root below the infinite shuffle+repeat.
  EXPECT_EQ(decision.node, "work");
}

TEST_F(CacheTiersTest, FallsBackToDiskWhenMemoryTooSmall) {
  TieredCachePlanOptions options;
  options.memory_bytes = 1024;  // nothing fits in memory
  options.disk_free_bytes = 10 << 20;
  options.disk_read_bandwidth = 1e9;  // fast scratch SSD
  const TieredCacheDecision decision = PlanCacheTiered(*model_, options);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.tier, CacheTier::kDisk);
  EXPECT_GT(decision.disk_serve_rate, 0);
}

TEST_F(CacheTiersTest, RejectsDiskTooSlowToServe) {
  TieredCachePlanOptions options;
  options.memory_bytes = 1024;
  options.disk_free_bytes = 10 << 20;
  options.disk_read_bandwidth = 16;  // 16 B/s: slower than recompute
  const TieredCacheDecision decision = PlanCacheTiered(*model_, options);
  EXPECT_FALSE(decision.feasible);
  EXPECT_EQ(decision.tier, CacheTier::kNone);
}

TEST_F(CacheTiersTest, RejectsDiskWithoutCapacity) {
  TieredCachePlanOptions options;
  options.memory_bytes = 0;
  options.disk_free_bytes = 64;  // materializations don't fit
  options.disk_read_bandwidth = 1e9;
  const TieredCacheDecision decision = PlanCacheTiered(*model_, options);
  EXPECT_FALSE(decision.feasible);
}

TEST_F(CacheTiersTest, DisabledTiersYieldNoDecision) {
  TieredCachePlanOptions options;  // both tiers disabled
  const TieredCacheDecision decision = PlanCacheTiered(*model_, options);
  EXPECT_FALSE(decision.feasible);
  EXPECT_EQ(std::string(CacheTierName(decision.tier)), "none");
}

TEST_F(CacheTiersTest, SafetyFactorShrinksBudget) {
  // Find the smallest memory budget that fits at factor 1.0, then show
  // a 0.5 factor rejects the same budget.
  TieredCachePlanOptions options;
  options.disk_free_bytes = 0;
  const NodeModel* work = model_->Find("work");
  ASSERT_NE(work, nullptr);
  ASSERT_GT(work->materialized_bytes, 0);
  options.memory_bytes =
      static_cast<uint64_t>(work->materialized_bytes * 1.05);
  options.safety_factor = 1.0;
  EXPECT_TRUE(PlanCacheTiered(*model_, options).feasible);
  options.safety_factor = 0.5;
  const TieredCacheDecision tight = PlanCacheTiered(*model_, options);
  // Either infeasible or a smaller (deeper) placement than "work".
  if (tight.feasible) {
    EXPECT_LT(tight.materialized_bytes, work->materialized_bytes);
  }
}

TEST_F(CacheTiersTest, DiskPlacementHonorsClosestToRootRule) {
  // With a disk tier that can hold the source but not the doubled
  // "grow" output, the decision moves deeper into the pipeline.
  const NodeModel* grow = model_->Find("grow");
  const NodeModel* interleave = model_->Find("interleave");
  ASSERT_NE(grow, nullptr);
  ASSERT_NE(interleave, nullptr);
  ASSERT_GT(grow->materialized_bytes, interleave->materialized_bytes);
  TieredCachePlanOptions options;
  options.memory_bytes = 1024;
  options.disk_free_bytes = static_cast<uint64_t>(
      (grow->materialized_bytes + interleave->materialized_bytes) / 2);
  options.disk_read_bandwidth = 1e9;
  const TieredCacheDecision decision = PlanCacheTiered(*model_, options);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.tier, CacheTier::kDisk);
  EXPECT_EQ(decision.node, "interleave");
}

}  // namespace
}  // namespace plumber
