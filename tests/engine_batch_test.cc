// Regression tests for the batched execution engine: engine_batch_size
// must change throughput, never results. batch_size=1 is the classic
// element-at-a-time engine; every pipeline here is checked
// element-for-element across batch sizes (and against the sequential
// reference where one exists).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::ExpectIdenticalOutput;
using testing_util::PipelineTestEnv;

std::vector<Element> RunChain(PipelineTestEnv& env, const GraphDef& graph,
                              int engine_batch_size) {
  PipelineOptions options = env.Options();
  options.engine_batch_size = engine_batch_size;
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  return Drain(*pipeline);
}

GraphDef DeterministicMapChain(int parallelism) {
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "double_size", parallelism, /*deterministic=*/true);
  n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
  return std::move(b.Build(n)).value();
}

TEST(EngineBatchTest, BatchSizeOneMatchesSequentialReference) {
  // The pre-change path is parallelism with element-at-a-time claims;
  // its contract is "deterministic parallel map == sequential map".
  // batch_size=1 must preserve it exactly.
  PipelineTestEnv env(4, 25, 48);
  const auto sequential = RunChain(env, DeterministicMapChain(1), 1);
  const auto parallel = RunChain(env, DeterministicMapChain(4), 1);
  ASSERT_FALSE(sequential.empty());
  ExpectIdenticalOutput(sequential, parallel);
}

TEST(EngineBatchTest, BatchedParallelMapIdenticalToBatchSizeOne) {
  PipelineTestEnv env(4, 25, 48);
  const auto reference = RunChain(env, DeterministicMapChain(4), 1);
  ASSERT_FALSE(reference.empty());
  for (int batch : {2, 8, 64}) {
    ExpectIdenticalOutput(reference, RunChain(env, DeterministicMapChain(4),
                                              batch));
  }
}

TEST(EngineBatchTest, BatchedPrefetchAndInterleaveIdentical) {
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 4,
                        /*parallelism=*/3);
  n = b.Map("m", n, "double_size", 2, /*deterministic=*/true);
  n = b.Prefetch("pf", n, 8);
  const GraphDef graph = std::move(b.Build(n)).value();
  // Parallel interleave emits in nondeterministic order; compare the
  // order-insensitive fingerprint plus totals.
  const auto reference = RunChain(env, graph, 1);
  ASSERT_EQ(reference.size(), 100u);
  for (int batch : {4, 32}) {
    const auto batched = RunChain(env, graph, batch);
    EXPECT_EQ(testing_util::SizeFingerprint(reference),
              testing_util::SizeFingerprint(batched));
  }
}

TEST(EngineBatchTest, PrefetchSpscEdgeIdenticalAcrossBatchSizes) {
  // Prefetch edges always ride the lock-free SPSC ring (the fill thread
  // and the consumer are structurally 1:1). With a deterministic chain
  // upstream, output must stay byte-identical to the batch_size=1
  // reference across engine batch sizes — the ring's FIFO identity
  // observed end to end, not just at the channel level.
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "double_size", 4, /*deterministic=*/true);
  n = b.Prefetch("pf", n, 4);
  n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
  const GraphDef graph = std::move(b.Build(n)).value();
  const auto reference = RunChain(env, graph, 1);
  ASSERT_FALSE(reference.empty());
  for (int batch : {2, 8, 64}) {
    ExpectIdenticalOutput(reference, RunChain(env, graph, batch));
  }
}

TEST(EngineBatchTest, MapAndBatchSingleWorkerSpscIdentical) {
  // parallelism=1 map_and_batch is a genuine one-producer pool, so its
  // edge is an SpscRing; a single worker claims inputs in order, so the
  // output is fully deterministic and must be byte-identical across
  // engine batch sizes.
  PipelineTestEnv env(2, 20, 32);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.MapAndBatch("fused", n, "double_size", 5, /*parallelism=*/1);
  const GraphDef graph = std::move(b.Build(n)).value();
  const auto reference = RunChain(env, graph, 1);
  ASSERT_EQ(reference.size(), 8u);
  for (int batch : {4, 32}) {
    ExpectIdenticalOutput(reference, RunChain(env, graph, batch));
  }
}

TEST(EngineBatchTest, GovernorRetargetUnderSpscEdgesIdentical) {
  // A governor-retargetable map keeps its MPMC channel, but the
  // prefetch downstream rides the SPSC ring. Element identity and
  // deterministic ordering must hold under any resize history while
  // both channel kinds are live in the same chain.
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "slow", 4, /*deterministic=*/true);
  n = b.Prefetch("pf", n, 8);
  n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
  const GraphDef graph = std::move(b.Build(n)).value();
  const auto reference = RunChain(env, graph, 8);
  ASSERT_FALSE(reference.empty());

  PipelineOptions options = env.Options();
  options.engine_batch_size = 8;
  options.governor = std::make_shared<ParallelismGovernor>();
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int target = 1;
    while (!stop.load()) {
      options.governor->SetTarget("m", target);
      target = target % 6 + 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const auto retargeted = Drain(*pipeline);
  stop = true;
  flipper.join();
  ExpectIdenticalOutput(reference, retargeted);
}

TEST(EngineBatchTest, BatchedFilterIdentical) {
  // The sequential filter claims whole batches from its input when a
  // batching consumer (here: parallel map workers) drives it; dropped
  // elements and survivors must be identical at any batch size.
  PipelineTestEnv env(4, 25, 48);
  for (const char* predicate : {"keep_half", "keep_all"}) {
    GraphBuilder b;
    auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
    n = b.Filter("flt", n, predicate);
    n = b.Map("m", n, "double_size", 4, /*deterministic=*/true);
    n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
    const GraphDef graph = std::move(b.Build(n)).value();
    const auto reference = RunChain(env, graph, 1);
    ASSERT_FALSE(reference.empty()) << predicate;
    for (int batch : {2, 8, 64}) {
      ExpectIdenticalOutput(reference, RunChain(env, graph, batch));
    }
  }
}

TEST(EngineBatchTest, FilterStatsConservationUnderBatching) {
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Filter("flt", n, "keep_half");
  n = b.Map("m", n, "noop", 4, /*deterministic=*/true);
  const GraphDef graph = std::move(b.Build(n)).value();
  PipelineOptions options = env.Options();
  options.engine_batch_size = 16;
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  const size_t kept = Drain(*pipeline).size();
  const auto snap = pipeline->stats().Snapshot();
  auto find = [&](const std::string& name) {
    for (const auto& s : snap) {
      if (s.name == name) return s;
    }
    return IteratorStatsSnapshot{};
  };
  // The filter consumed everything the interleave produced and produced
  // exactly what the map consumed (= what the drain kept).
  EXPECT_EQ(find("il").elements_produced, 100u);
  EXPECT_EQ(find("flt").elements_consumed, 100u);
  EXPECT_EQ(find("flt").elements_produced, kept);
  EXPECT_EQ(find("m").elements_consumed, kept);
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, 100u);  // keep_half actually dropped elements
}

TEST(EngineBatchTest, ShuffleRefillClaimsBatchesIdentical) {
  // The shuffle refill claims its whole buffer deficit from the input
  // per GetNextBatch call; elements arrive in the order repeated
  // GetNext would deliver, so draws — and therefore outputs — are
  // identical at every engine batch size, including across a parallel
  // (deterministic) producer.
  PipelineTestEnv env(4, 25, 48);
  for (const bool fused_repeat : {false, true}) {
    GraphBuilder b;
    auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
    n = b.Map("m", n, "double_size", 4, /*deterministic=*/true);
    n = fused_repeat ? b.ShuffleAndRepeat("shf", n, 32, /*count=*/2)
                     : b.Shuffle("shf", n, 32, 7);
    n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
    const GraphDef graph = std::move(b.Build(n)).value();
    const auto reference = RunChain(env, graph, 1);
    ASSERT_FALSE(reference.empty());
    for (int batch : {2, 8, 64}) {
      ExpectIdenticalOutput(reference, RunChain(env, graph, batch));
    }
  }
}

TEST(EngineBatchTest, ShuffleStatsConservationUnderBatching) {
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "double_size", 4, /*deterministic=*/true);
  n = b.Shuffle("shf", n, 32, 7);
  const GraphDef graph = std::move(b.Build(n)).value();
  PipelineOptions options = env.Options();
  options.engine_batch_size = 16;
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  const size_t drained = Drain(*pipeline).size();
  const auto snap = pipeline->stats().Snapshot();
  auto find = [&](const std::string& name) {
    for (const auto& s : snap) {
      if (s.name == name) return s;
    }
    return IteratorStatsSnapshot{};
  };
  // Batched refill claims must count every element exactly once.
  EXPECT_EQ(drained, 100u);
  EXPECT_EQ(find("shf").elements_consumed, 100u);
  EXPECT_EQ(find("shf").elements_produced, 100u);
  EXPECT_EQ(find("m").elements_produced, 100u);
}

TEST(EngineBatchTest, BatchedCombineOpsIdentical) {
  PipelineTestEnv env(4, 25, 48);
  GraphBuilder b;
  auto left = b.Map("lm", b.Interleave("il", b.FileList("f", "data/"), 2, 1),
                    "noop", 2);
  auto right = b.Range("r", 100);
  auto zipped = b.Zip("z", {left, right});
  auto n = b.Concatenate("cat", {zipped, b.Range("r2", 7)});
  n = b.Batch("bt", n, 5, /*drop_remainder=*/false);
  const GraphDef graph = std::move(b.Build(n)).value();
  const auto reference = RunChain(env, graph, 1);
  ASSERT_FALSE(reference.empty());
  for (int batch : {3, 16}) {
    ExpectIdenticalOutput(reference, RunChain(env, graph, batch));
  }
}

TEST(EngineBatchTest, BatchedMapAndBatchIdentical) {
  PipelineTestEnv env(2, 20, 32);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.MapAndBatch("fused", n, "double_size", 5, /*parallelism=*/2);
  const GraphDef graph = std::move(b.Build(n)).value();
  const auto reference = RunChain(env, graph, 1);
  ASSERT_EQ(reference.size(), 8u);
  for (int batch : {4, 32}) {
    // map_and_batch workers race for whole batches, so batch order is
    // nondeterministic; compare fingerprints and batch count.
    const auto batched = RunChain(env, graph, batch);
    EXPECT_EQ(testing_util::SizeFingerprint(reference),
              testing_util::SizeFingerprint(batched));
  }
}

TEST(EngineBatchTest, StatsConservationHoldsUnderBatching) {
  // The LP planner consumes these counters; batching must not change
  // the sums (sharded counters aggregate exactly).
  PipelineTestEnv env(4, 25, 48);
  PipelineOptions options = env.Options();
  options.engine_batch_size = 16;
  auto pipeline =
      std::move(Pipeline::Create(DeterministicMapChain(4), options)).value();
  Drain(*pipeline);
  const auto snap = pipeline->stats().Snapshot();
  auto find = [&](const std::string& name) {
    for (const auto& s : snap) {
      if (s.name == name) return s;
    }
    return IteratorStatsSnapshot{};
  };
  EXPECT_EQ(find("il").elements_produced, 100u);
  EXPECT_EQ(find("m").elements_consumed, find("il").elements_produced);
  EXPECT_EQ(find("m").elements_produced, 100u);
  EXPECT_EQ(find("bt").elements_consumed, find("m").elements_produced);
  EXPECT_EQ(find("bt").elements_produced, 25u);
}

TEST(EngineBatchTest, GraphRecordedBatchPrecedence) {
  // Explicit options (>0, including 1 = element-at-a-time) beat the
  // graph-recorded batch; only the unset default (0) defers to it.
  PipelineTestEnv env(2, 10, 32);
  GraphDef graph = DeterministicMapChain(4);
  ASSERT_TRUE(rewriter::SetEngineBatchSize(&graph, 64).ok());
  ASSERT_EQ(rewriter::GetEngineBatchSize(graph), 64);
  struct Case {
    int options_batch;
    int expected;
  };
  for (const Case c : {Case{0, 64}, Case{1, 1}, Case{32, 32}}) {
    PipelineOptions options = env.Options();
    options.engine_batch_size = c.options_batch;
    auto pipeline = std::move(Pipeline::Create(graph, options)).value();
    EXPECT_EQ(pipeline->context()->engine_batch_size, c.expected)
        << "options=" << c.options_batch;
  }
  // Without a recording, unset behaves as the classic engine.
  PipelineOptions options = env.Options();
  auto plain = std::move(
      Pipeline::Create(DeterministicMapChain(4), options)).value();
  EXPECT_EQ(plain->context()->engine_batch_size, 1);
}

TEST(EngineBatchTest, SessionKnobAndRunOverrideProduceSameResults) {
  Session make_session = Session();
  SessionOptions so;
  so.engine_batch_size = 32;
  Session batched_session(so);
  for (Session* session : {&make_session, &batched_session}) {
    ASSERT_TRUE(session
                    ->CreateRecordFiles("train/part-", 4, 50, 64)
                    .ok());
    UdfSpec decode;
    decode.name = "decode";
    decode.size_ratio = 2.0;
    ASSERT_TRUE(session->RegisterUdf(decode).ok());
  }
  auto run = [](Session& session, int run_override) {
    Flow flow = session.Files("train/")
                    .Interleave(2)
                    .Map("decode", 4)
                    .Batch(10);
    RunOptions window;
    window.max_batches = 20;
    window.engine_batch_size = run_override;
    auto report = flow.Run(window);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? report->elements : 0;
  };
  const int64_t base = run(make_session, 0);
  EXPECT_EQ(base, run(batched_session, 0));   // session-level knob
  EXPECT_EQ(base, run(make_session, 16));     // per-run override
  EXPECT_GT(base, 0);
}

}  // namespace
}  // namespace plumber
