// Streaming front-door tests: the time-varying (non-homogeneous
// Poisson) trace generator, the latency_target_s class field's
// serialize/parse round trip, and open-loop replay scoring per-class
// deadline attainment in the FleetReport.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/api/fleet_session.h"
#include "src/fleet/arrival_trace.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace fleet {
namespace {

TEST(TimeVaryingTraceTest, SeedDeterministicAndWithinWindow) {
  TimeVaryingTraceOptions options;
  options.seed = 21;
  options.duration_s = 4;
  options.base_rate = 80;
  options.amplitude = 0.6;
  options.period_s = 2;
  options.pin_fraction = 0.25;
  options.num_hosts = 3;
  const ArrivalTrace a =
      MakeTimeVaryingTrace(CalibratedJobClasses(), options);
  const ArrivalTrace b =
      MakeTimeVaryingTrace(CalibratedJobClasses(), options);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  options.seed = 22;
  const ArrivalTrace c =
      MakeTimeVaryingTrace(CalibratedJobClasses(), options);
  EXPECT_NE(a.Serialize(), c.Serialize());

  ASSERT_FALSE(a.events.empty());
  double last = 0;
  int pinned = 0;
  for (const ArrivalEvent& e : a.events) {
    EXPECT_GE(e.arrival_s, last);
    last = e.arrival_s;
    EXPECT_LT(e.arrival_s, options.duration_s);
    EXPECT_GE(e.elements, 1);
    if (e.pinned_host >= 0) {
      ++pinned;
      EXPECT_LT(e.pinned_host, options.num_hosts);
    }
  }
  EXPECT_GT(pinned, 0);
  // ~80 jobs/sec over 4s: a generous determinism-safe band.
  EXPECT_GT(a.events.size(), 150u);
  EXPECT_LT(a.events.size(), 650u);
}

TEST(TimeVaryingTraceTest, RampShapeShiftsArrivalsLate) {
  // A steep ramp (20 -> 180 jobs/sec) must put most arrivals in the
  // second half of the window; the sinusoid with period == duration
  // peaks in the first half instead, so the two shapes differ.
  TimeVaryingTraceOptions options;
  options.seed = 5;
  options.duration_s = 4;
  options.base_rate = 100;
  options.amplitude = 0.8;
  options.shape = TimeVaryingShape::kRamp;
  const ArrivalTrace ramp =
      MakeTimeVaryingTrace(CalibratedJobClasses(), options);
  int early = 0, late = 0;
  for (const ArrivalEvent& e : ramp.events) {
    (e.arrival_s < options.duration_s / 2 ? early : late)++;
  }
  EXPECT_GT(late, 2 * early) << early << " early vs " << late << " late";

  options.shape = TimeVaryingShape::kSinusoid;
  options.period_s = options.duration_s;
  const ArrivalTrace sine =
      MakeTimeVaryingTrace(CalibratedJobClasses(), options);
  int sine_early = 0, sine_late = 0;
  for (const ArrivalEvent& e : sine.events) {
    (e.arrival_s < options.duration_s / 2 ? sine_early : sine_late)++;
  }
  EXPECT_GT(sine_early, sine_late);
}

TEST(StreamingTraceTest, LatencyTargetRoundTripsWithBackCompat) {
  ArrivalTrace trace;
  TraceJobClass rpc;
  rpc.name = "rpc";
  rpc.weight = 1.0;
  rpc.cost_ns = 2e5;
  rpc.parallelism = 2;
  rpc.mean_elements = 8;
  rpc.slo = runtime::SloClass::kInteractive;
  rpc.latency_target_s = 0.25;
  trace.classes.push_back(rpc);
  trace.events.push_back({0.0, 0, 4, -1});
  const std::string text = trace.Serialize();
  auto parsed = ArrivalTrace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->classes[0].latency_target_s, 0.25);

  // 7-field class lines (pre-deadline traces) parse with no target.
  auto legacy = ArrivalTrace::Parse(
      "plumber_arrival_trace v1\n"
      "class c 1 1000 1 4 interactive 2\n"
      "event 0.5 0 3 -1\n");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->classes[0].latency_target_s, 0);
  EXPECT_EQ(legacy->classes[0].slo, runtime::SloClass::kInteractive);

  // A negative target rejects with the offending line number.
  auto rejected = ArrivalTrace::Parse(
      "plumber_arrival_trace v1\n"
      "class c 1 1000 1 4 batch 1 -0.5\n");
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("line 2"), std::string::npos)
      << rejected.status().ToString();
}

TEST(StreamingTraceTest, ReplayScoresPerClassAttainment) {
  FleetSessionOptions options;
  for (int h = 0; h < 2; ++h) {
    MachineSpec machine;
    machine.num_cores = 4;
    machine.name = "host" + std::to_string(h);
    options.hosts.push_back(machine);
  }
  options.fleet.policy = DispatchPolicy::kSloAware;
  FleetSession fleet(std::move(options));
  UdfSpec work;
  work.name = "work";
  work.cost_ns_per_element = 2e5;
  ASSERT_TRUE(fleet.RegisterUdf(work).ok());

  // Two SLO classes: a generously-deadlined interactive class (every
  // job attains) and a hopeless batch class whose target is far below
  // even a single job's modeled runtime.
  ArrivalTrace trace;
  TraceJobClass easy;
  easy.name = "easy";
  easy.cost_ns = 2e5;
  easy.parallelism = 2;
  easy.slo = runtime::SloClass::kInteractive;
  easy.latency_target_s = 30;
  trace.classes.push_back(easy);
  TraceJobClass hopeless;
  hopeless.name = "hopeless";
  hopeless.cost_ns = 2e5;
  hopeless.parallelism = 2;
  hopeless.latency_target_s = 1e-4;  // kBatch default
  trace.classes.push_back(hopeless);
  for (int i = 0; i < 12; ++i) {
    trace.events.push_back({i * 0.002, i % 2, 8, -1});
  }

  auto report = fleet.Replay(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->host_network_utilization.size(), 2u);
  for (double u : report->host_network_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  bool saw_easy = false, saw_hopeless = false;
  for (const FleetClassLatency& c : report->by_class) {
    if (c.slo == runtime::SloClass::kInteractive) {
      saw_easy = true;
      EXPECT_EQ(c.target_jobs, 6);
      EXPECT_EQ(c.attainment, 1.0);
      EXPECT_EQ(c.latency_target_s, 30);
    } else if (c.slo == runtime::SloClass::kBatch) {
      saw_hopeless = true;
      // Every job either missed its 100us target or was shed; either
      // way the class attains nothing (shed jobs stay in the
      // denominator).
      EXPECT_EQ(c.target_jobs, 6);
      EXPECT_EQ(c.attainment, 0.0);
    }
  }
  EXPECT_TRUE(saw_easy);
  EXPECT_TRUE(saw_hopeless);
  EXPECT_NE(report->ToString().find("attainment"), std::string::npos);
}

}  // namespace
}  // namespace fleet
}  // namespace plumber
