// Stress coverage for BoundedQueue's batched push/pop — the handoff
// primitive of the batched execution engine. Exercises batch chunking
// over capacity, multi-producer/multi-consumer interleaving, and
// cancellation racing mid-stream; run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/bounded_queue.h"

namespace plumber {
namespace {

TEST(BoundedQueueBatchTest, PushBatchPopBatchPreserveFifoOrder) {
  BoundedQueue<int> q(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  ASSERT_TRUE(q.PushBatch(in));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(10, &out), 10u);
  EXPECT_EQ(out, in);
}

TEST(BoundedQueueBatchTest, PushBatchLargerThanCapacityChunks) {
  // A batch bigger than the queue must be delivered in full once a
  // consumer drains; PushBatch chunks at capacity internally.
  BoundedQueue<int> q(4);
  std::vector<int> in(32);
  std::iota(in.begin(), in.end(), 0);
  std::thread producer([&] { EXPECT_TRUE(q.PushBatch(in)); });
  std::vector<int> out;
  while (out.size() < in.size()) {
    q.PopBatch(8, &out);
  }
  producer.join();
  EXPECT_EQ(out, in);
}

TEST(BoundedQueueBatchTest, PopBatchReturnsAtMostMax) {
  BoundedQueue<int> q(16);
  ASSERT_TRUE(q.PushBatch({1, 2, 3, 4, 5}));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(3, &out), 3u);
  EXPECT_EQ(q.PopBatch(100, &out), 2u);  // rest, without blocking
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BoundedQueueBatchTest, PopBatchBlocksUntilPush) {
  BoundedQueue<int> q(4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q.PopBatch(4, &out), 1u);
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  ASSERT_TRUE(q.Push(7));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueueBatchTest, CancelUnblocksBatchWaitersAndDrains) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.PushBatch({1, 2}));
  // Producer blocked mid-chunk (batch > capacity), consumer will drain
  // after cancel.
  std::thread producer([&] { EXPECT_FALSE(q.PushBatch({3, 4, 5, 6})); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Cancel();
  producer.join();
  // Whatever made it in before cancellation drains in order, then 0.
  std::vector<int> out;
  while (q.PopBatch(4, &out) != 0) {
  }
  ASSERT_GE(out.size(), 2u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(q.PushBatch({9}));
}

TEST(BoundedQueueBatchTest, EmptyPopFractionCountsElementsNotBatches) {
  // A consumer starved on every batched claim must report the same
  // starvation fraction a per-element consumer would (~0.5), not
  // 1/batch_size of it.
  BoundedQueue<int> q(8);
  std::thread consumer([&] {
    std::vector<int> out;
    while (out.size() < 8) {
      if (q.PopBatch(4, &out) == 0) break;
    }
  });
  for (int round = 0; round < 2; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.PushBatch({1, 2, 3, 4}));
  }
  consumer.join();
  EXPECT_NEAR(q.EmptyPopFraction(), 0.5, 0.26);
}

TEST(BoundedQueueBatchTest, MultiProducerMultiConsumerStress) {
  // 4 producers push batches of varying sizes, 4 consumers pop batches;
  // every pushed value must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::vector<int> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        batch.push_back(p * kPerProducer + i);
        // Mix of batch sizes, including ones above capacity.
        if (batch.size() == static_cast<size_t>(1 + (i % 53))) {
          ASSERT_TRUE(q.PushBatch(std::move(batch)));
          batch.clear();
        }
      }
      ASSERT_TRUE(q.PushBatch(std::move(batch)));
    });
  }
  std::mutex mu;
  std::vector<int> seen;
  std::atomic<int> remaining{kProducers * kPerProducer};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> out;
      while (remaining.load() > 0) {
        out.clear();
        const size_t n = q.PopBatch(16, &out);
        if (n == 0) break;  // cancelled
        remaining.fetch_sub(static_cast<int>(n));
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(seen.end(), out.begin(), out.end());
      }
    });
  }
  for (auto& t : producers) t.join();
  // Wake consumers that may be blocked on an empty, fully-drained queue.
  while (remaining.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.Cancel();
  for (auto& t : consumers) t.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[i], i);
  }
}

TEST(BoundedQueueBatchTest, StressWithRacingCancellation) {
  // Producers and consumers racing a cancel must neither deadlock nor
  // duplicate items: items popped are a prefix-per-producer of what
  // was pushed.
  for (int round = 0; round < 8; ++round) {
    BoundedQueue<int> q(8);
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&q, &stop, p] {
        int next = p * 1000000;
        while (!stop.load()) {
          std::vector<int> batch;
          for (int i = 0; i < 5; ++i) batch.push_back(next++);
          if (!q.PushBatch(std::move(batch))) return;
        }
      });
    }
    std::mutex mu;
    std::vector<int> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&] {
        std::vector<int> out;
        for (;;) {
          out.clear();
          if (q.PopBatch(7, &out) == 0) return;
          std::lock_guard<std::mutex> lock(mu);
          seen.insert(seen.end(), out.begin(), out.end());
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop = true;
    q.Cancel();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();
    // No duplicates or losses mid-stream: each producer's popped values
    // form a contiguous prefix of what it pushed (only the batch being
    // pushed at cancellation time may be dropped).
    std::vector<int> streams[3];
    for (int v : seen) streams[v / 1000000].push_back(v);
    for (int p = 0; p < 3; ++p) {
      std::sort(streams[p].begin(), streams[p].end());
      for (size_t i = 0; i < streams[p].size(); ++i) {
        ASSERT_EQ(streams[p][i], p * 1000000 + static_cast<int>(i));
      }
    }
  }
}

}  // namespace
}  // namespace plumber
