// Stress coverage for BoundedQueue's batched push/pop — the handoff
// primitive of the batched execution engine. Exercises batch chunking
// over capacity, multi-producer/multi-consumer interleaving, and
// cancellation racing mid-stream; run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/bounded_queue.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

TEST(BoundedQueueBatchTest, PushBatchPopBatchPreserveFifoOrder) {
  BoundedQueue<int> q(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  ASSERT_TRUE(q.PushBatch(in));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(10, &out), 10u);
  EXPECT_EQ(out, in);
}

TEST(BoundedQueueBatchTest, PushBatchLargerThanCapacityChunks) {
  // A batch bigger than the queue must be delivered in full once a
  // consumer drains; PushBatch chunks at capacity internally.
  BoundedQueue<int> q(4);
  std::vector<int> in(32);
  std::iota(in.begin(), in.end(), 0);
  std::thread producer([&] { EXPECT_TRUE(q.PushBatch(in)); });
  std::vector<int> out;
  while (out.size() < in.size()) {
    q.PopBatch(8, &out);
  }
  producer.join();
  EXPECT_EQ(out, in);
}

TEST(BoundedQueueBatchTest, PopBatchReturnsAtMostMax) {
  BoundedQueue<int> q(16);
  ASSERT_TRUE(q.PushBatch({1, 2, 3, 4, 5}));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(3, &out), 3u);
  EXPECT_EQ(q.PopBatch(100, &out), 2u);  // rest, without blocking
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BoundedQueueBatchTest, PopBatchBlocksUntilPush) {
  BoundedQueue<int> q(4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q.PopBatch(4, &out), 1u);
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  ASSERT_TRUE(q.Push(7));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueueBatchTest, CancelUnblocksBatchWaitersAndDrains) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.PushBatch({1, 2}));
  // Producer blocked mid-chunk (batch > capacity), consumer will drain
  // after cancel.
  std::thread producer([&] { EXPECT_FALSE(q.PushBatch({3, 4, 5, 6})); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Cancel();
  producer.join();
  // Whatever made it in before cancellation drains in order, then 0.
  std::vector<int> out;
  while (q.PopBatch(4, &out) != 0) {
  }
  ASSERT_GE(out.size(), 2u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(q.PushBatch({9}));
}

TEST(BoundedQueueBatchTest, EmptyPopFractionCountsElementsNotBatches) {
  // A consumer starved on every batched claim must report the same
  // starvation fraction a per-element consumer would (~0.5), not
  // 1/batch_size of it.
  BoundedQueue<int> q(8);
  std::thread consumer([&] {
    std::vector<int> out;
    while (out.size() < 8) {
      if (q.PopBatch(4, &out) == 0) break;
    }
  });
  for (int round = 0; round < 2; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.PushBatch({1, 2, 3, 4}));
  }
  consumer.join();
  EXPECT_NEAR(q.EmptyPopFraction(), 0.5, 0.26);
}

TEST(BoundedQueueBatchTest, MultiProducerMultiConsumerStress) {
  // 4 producers push batches of varying sizes, 4 consumers pop batches;
  // every pushed value must arrive exactly once. (Shared helper, also
  // run against SpscRing by tests/channel_test.cc.)
  BoundedQueue<int> q(32);
  testing_util::ChannelStressExactlyOnce(q, /*producers=*/4,
                                         /*consumers=*/4,
                                         /*per_producer=*/2000);
}

TEST(BoundedQueueBatchTest, StressWithRacingCancellation) {
  // Producers and consumers racing a cancel must neither deadlock nor
  // duplicate items: items popped are a prefix-per-producer of what
  // was pushed.
  testing_util::ChannelStressRacingCancellation(
      [] { return std::make_unique<BoundedQueue<int>>(8); },
      /*producers=*/3, /*consumers=*/3, /*rounds=*/8);
}

}  // namespace
}  // namespace plumber
