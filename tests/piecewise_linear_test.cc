#include "src/io/piecewise_linear.h"

#include <gtest/gtest.h>

#include "src/io/io_profiler.h"
#include "src/io/storage_device.h"

namespace plumber {
namespace {

PiecewiseLinear BandwidthCurve() {
  PiecewiseLinear curve;
  curve.AddPoint(1, 100);
  curve.AddPoint(2, 200);
  curve.AddPoint(4, 380);
  curve.AddPoint(8, 400);
  curve.AddPoint(16, 400);
  return curve;
}

TEST(PiecewiseLinearTest, EvalInterpolatesAndClamps) {
  const auto curve = BandwidthCurve();
  EXPECT_DOUBLE_EQ(curve.Eval(1), 100);
  EXPECT_DOUBLE_EQ(curve.Eval(1.5), 150);
  EXPECT_DOUBLE_EQ(curve.Eval(3), 290);
  EXPECT_DOUBLE_EQ(curve.Eval(0.1), 100);   // clamp low
  EXPECT_DOUBLE_EQ(curve.Eval(100), 400);   // clamp high
}

TEST(PiecewiseLinearTest, InverseMinFindsMinimalX) {
  const auto curve = BandwidthCurve();
  EXPECT_DOUBLE_EQ(curve.InverseMin(100), 1);
  EXPECT_DOUBLE_EQ(curve.InverseMin(150), 1.5);
  EXPECT_DOUBLE_EQ(curve.InverseMin(400), 8);
  // Unreachable target returns the last x.
  EXPECT_DOUBLE_EQ(curve.InverseMin(1e9), 16);
}

TEST(PiecewiseLinearTest, MaxAndSaturation) {
  const auto curve = BandwidthCurve();
  EXPECT_DOUBLE_EQ(curve.MaxY(), 400);
  // 95% of max = 380 is first reached at x = 4.
  EXPECT_DOUBLE_EQ(curve.SaturationX(0.05), 4);
}

TEST(PiecewiseLinearTest, EmptyCurve) {
  PiecewiseLinear curve;
  EXPECT_TRUE(curve.empty());
  EXPECT_EQ(curve.Eval(3), 0);
  EXPECT_EQ(curve.InverseMin(3), 0);
}

TEST(IoProfilerTest, MeasuresUnlimitedBandwidth) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRawFile("probe/x", 1, 64 << 20).ok());
  const double bw =
      MeasureBandwidth(&fs, "probe/", /*parallelism=*/2, 0.03, 1 << 16);
  EXPECT_GT(bw, 1e6);  // ought to be far beyond 1MB/s with no limiter
}

TEST(IoProfilerTest, CurveSaturatesAtAggregateCap) {
  // Per-stream 3MB/s, aggregate 6MB/s: bandwidth should grow from ~3 at
  // parallelism 1 to ~6 at parallelism >= 2 and then flatten.
  StorageDevice device(DeviceSpec::CloudStorage(6e6, 3e6));
  SimFilesystem fs(&device);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        fs.CreateRawFile("probe/" + std::to_string(i), i, 64 << 20).ok());
  }
  IoProfileOptions options;
  options.parallelism_levels = {1, 2, 4};
  options.seconds_per_probe = 0.25;
  const IoProfileResult result = ProfileReadBandwidth(&fs, "probe/", options);
  const double bw1 = result.parallelism_to_bandwidth.Eval(1);
  const double bw4 = result.parallelism_to_bandwidth.Eval(4);
  EXPECT_LT(bw1, 4.5e6);
  EXPECT_GT(bw4, bw1);
  EXPECT_LT(result.max_bandwidth, 8e6);
}

}  // namespace
}  // namespace plumber
