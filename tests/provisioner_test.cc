// Tests for the resource provisioner (paper §4.1 future work: match a
// target throughput with minimal resources / minimal cost).
#include "src/core/provisioner.h"

#include <gtest/gtest.h>

#include "src/core/optimizer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

// Builds a traced model of a two-map pipeline: "expensive" at
// 200us/element and a free map, batch 5 (so the expensive stage costs
// ~1ms of CPU per minibatch => ~1000 mb/s/core).
class ProvisionerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<PipelineTestEnv>(4, 200, 64);
    GraphBuilder b;
    auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
    n = b.Map("expensive", n, "slow", /*parallelism=*/4);
    n = b.Map("cheap", n, "noop");
    n = b.ShuffleAndRepeat("sr", n, 16);
    n = b.Batch("batch", n, 5);
    n = b.Prefetch("prefetch", n, 2);
    GraphDef graph = std::move(b.Build(n)).value();

    auto pipeline =
        std::move(Pipeline::Create(graph, env_->Options())).value();
    TraceOptions topts;
    topts.trace_seconds = 0.4;
    topts.machine = MachineSpec::SetupA();
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    model_ = std::make_unique<PipelineModel>(
        std::move(PipelineModel::Build(trace, &env_->udfs)).value());
  }

  const NodeModel& Node(const std::string& name) {
    const NodeModel* node = model_->Find(name);
    EXPECT_NE(node, nullptr) << name;
    return *node;
  }

  std::unique_ptr<PipelineTestEnv> env_;
  std::unique_ptr<PipelineModel> model_;
};

TEST_F(ProvisionerTest, CoresScaleLinearlyWithTarget) {
  ProvisionRequest req;
  req.target_rate = 100;
  req.allow_cache = false;
  const ProvisionPlan at100 = PlanProvision(*model_, req);
  req.target_rate = 200;
  const ProvisionPlan at200 = PlanProvision(*model_, req);
  ASSERT_TRUE(at100.feasible);
  ASSERT_TRUE(at200.feasible);
  EXPECT_GT(at100.cores_needed, 0);
  EXPECT_NEAR(at200.cores_needed, 2 * at100.cores_needed,
              0.05 * at200.cores_needed);
}

TEST_F(ProvisionerTest, ExpensiveStageDominatesCoreDemand) {
  ProvisionRequest req;
  req.target_rate = 100;
  req.allow_cache = false;
  const ProvisionPlan plan = PlanProvision(*model_, req);
  ASSERT_TRUE(plan.feasible);
  auto it = plan.theta.find("expensive");
  ASSERT_NE(it, plan.theta.end());
  // The 200us map is >10x every other stage.
  for (const auto& [name, theta] : plan.theta) {
    if (name == "expensive") continue;
    EXPECT_LT(theta, it->second) << name;
  }
}

TEST_F(ProvisionerTest, DiskDemandProportionalToTarget) {
  ProvisionRequest req;
  req.target_rate = 50;
  req.allow_cache = false;
  const ProvisionPlan plan = PlanProvision(*model_, req);
  ASSERT_TRUE(plan.feasible);
  // 5 records/minibatch x 64 bytes: the bandwidth demand reflects the
  // traced bytes-per-minibatch at the requested rate.
  EXPECT_NEAR(plan.disk_bandwidth_needed,
              50 * model_->DiskBytesPerMinibatch(), 1.0);
  EXPECT_GT(plan.disk_bandwidth_needed, 0);
}

TEST_F(ProvisionerTest, CachePlanTradesMemoryForCoresAndIo) {
  ProvisionRequest req;
  req.target_rate = 100;
  req.allow_cache = true;
  const ProvisionPlan cached = PlanProvision(*model_, req);
  req.allow_cache = false;
  const ProvisionPlan uncached = PlanProvision(*model_, req);
  ASSERT_TRUE(cached.feasible);
  ASSERT_TRUE(uncached.feasible);
  EXPECT_TRUE(cached.uses_cache);
  // Caching above the expensive map removes its core demand entirely
  // and all of the I/O demand, at a memory cost.
  EXPECT_LT(cached.cores_needed, uncached.cores_needed);
  EXPECT_EQ(cached.disk_bandwidth_needed, 0);
  EXPECT_GT(cached.memory_needed, 0u);
}

TEST_F(ProvisionerTest, HeadroomInflatesEveryDemand) {
  ProvisionRequest req;
  req.target_rate = 100;
  req.allow_cache = false;
  const ProvisionPlan base = PlanProvision(*model_, req);
  req.headroom = 1.5;
  const ProvisionPlan padded = PlanProvision(*model_, req);
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(padded.feasible);
  EXPECT_NEAR(padded.cores_needed, 1.5 * base.cores_needed,
              0.01 * padded.cores_needed);
  EXPECT_NEAR(padded.disk_bandwidth_needed,
              1.5 * base.disk_bandwidth_needed,
              0.01 * padded.disk_bandwidth_needed);
}

TEST_F(ProvisionerTest, CatalogPicksCheapestSufficientOffer) {
  // Per-core rate of the expensive stage in the traced model.
  const double rate = Node("expensive").rate_per_core;
  ASSERT_GT(rate, 0);
  const double target = rate * 3;  // needs a bit over 3 cores

  std::vector<MachineOffer> catalog;
  MachineOffer tiny{"tiny", 2, 1 << 30, 1e9, 1.0};
  MachineOffer medium{"medium", 8, 1 << 30, 1e9, 4.0};
  MachineOffer huge{"huge", 64, 16ull << 30, 1e10, 30.0};
  catalog = {huge, tiny, medium};

  ProvisionRequest req;
  req.target_rate = target;
  req.allow_cache = false;
  const CatalogChoice choice = PickCheapestMachine(*model_, req, catalog);
  ASSERT_TRUE(choice.feasible);
  EXPECT_EQ(choice.offer.name, "medium");
  EXPECT_DOUBLE_EQ(choice.cost_per_hour, 4.0);
}

TEST_F(ProvisionerTest, CatalogInfeasibleWhenNothingFits) {
  std::vector<MachineOffer> catalog = {{"tiny", 1, 1 << 20, 1e3, 1.0}};
  ProvisionRequest req;
  req.target_rate = 1e7;  // absurd target
  const CatalogChoice choice = PickCheapestMachine(*model_, req, catalog);
  EXPECT_FALSE(choice.feasible);
}

TEST_F(ProvisionerTest, CacheEnablesOtherwiseInfeasibleOffer) {
  // An offer with no disk bandwidth can only work with a cache.
  const double rate = Node("expensive").rate_per_core;
  std::vector<MachineOffer> catalog = {
      {"diskless", 32, 64ull << 20, /*disk_bandwidth=*/0, 2.0}};
  ProvisionRequest req;
  req.target_rate = rate;  // 1 core worth
  req.allow_cache = false;
  EXPECT_FALSE(PickCheapestMachine(*model_, req, catalog).feasible);
  req.allow_cache = true;
  const CatalogChoice cached = PickCheapestMachine(*model_, req, catalog);
  ASSERT_TRUE(cached.feasible);
  EXPECT_TRUE(cached.plan.uses_cache);
}

TEST_F(ProvisionerTest, SequentialStageBoundsFeasibility) {
  // Build a pipeline whose bottleneck is a sequential (unparallelizable)
  // map; targets above its rate must be infeasible without a cache.
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
  n = b.SequentialMap("seq", n, "slow");
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  GraphDef graph = std::move(b.Build(n)).value();
  auto pipeline =
      std::move(Pipeline::Create(graph, env_->Options())).value();
  TraceOptions topts;
  topts.trace_seconds = 0.3;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  auto model = std::move(PipelineModel::Build(trace, &env_->udfs)).value();

  const NodeModel* seq = model.Find("seq");
  ASSERT_NE(seq, nullptr);
  ProvisionRequest req;
  req.target_rate = seq->rate_per_core * 4;
  req.allow_cache = false;
  const ProvisionPlan plan = PlanProvision(model, req);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("seq"), std::string::npos);
  // With caching allowed, materializing above the sequential stage
  // makes the target reachable again.
  req.allow_cache = true;
  const ProvisionPlan cached = PlanProvision(model, req);
  EXPECT_TRUE(cached.feasible);
  EXPECT_TRUE(cached.uses_cache);
}

}  // namespace
}  // namespace plumber
