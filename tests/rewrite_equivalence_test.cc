// Property suite: every rewrite Plumber performs must preserve pipeline
// semantics. The paper's premise is that traces are valid programs and
// rewrites are drop-in replacements (§4.2, §B "Graph Rewrites") — so an
// optimized pipeline must produce the same multiset of elements as the
// original, for any combination of injected parallelism, prefetching,
// and caching.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/optimizer.h"
#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

// A finite reference pipeline (no infinite repeat) so full drains
// terminate: interleave -> grow -> filter(keep_all) -> batch(4).
GraphDef FiniteGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("grow", n, "double_size");
  n = b.Filter("filter", n, "keep_all");
  n = b.Batch("batch", n, 4, /*drop_remainder=*/false);
  return std::move(b.Build(n)).value();
}

std::vector<size_t> ReferenceFingerprint(PipelineTestEnv& env) {
  auto pipeline =
      std::move(Pipeline::Create(FiniteGraph(), env.Options())).value();
  return SizeFingerprint(Drain(*pipeline));
}

// (map parallelism, interleave parallelism, prefetch buffer, cache point)
using RewriteParam = std::tuple<int, int, int, const char*>;

class RewriteEquivalenceTest
    : public ::testing::TestWithParam<RewriteParam> {};

TEST_P(RewriteEquivalenceTest, RewrittenPipelineSameMultiset) {
  const auto [map_par, il_par, prefetch_buf, cache_after] = GetParam();
  PipelineTestEnv env(3, 20, 48);
  const std::vector<size_t> expected = ReferenceFingerprint(env);

  GraphDef graph = FiniteGraph();
  ASSERT_TRUE(rewriter::SetParallelism(&graph, "grow", map_par).ok());
  ASSERT_TRUE(rewriter::SetParallelism(&graph, "interleave", il_par).ok());
  if (prefetch_buf > 0) {
    ASSERT_TRUE(rewriter::EnsureRootPrefetch(&graph, prefetch_buf).ok());
  }
  if (cache_after[0] != '\0') {
    ASSERT_TRUE(rewriter::InjectCache(&graph, cache_after).ok());
  }

  auto pipeline =
      std::move(Pipeline::Create(graph, env.Options())).value();
  EXPECT_EQ(SizeFingerprint(Drain(*pipeline)), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rewrites, RewriteEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 7),
                       ::testing::Values(1, 2),
                       ::testing::Values(0, 3),
                       ::testing::Values("", "grow", "interleave")),
    [](const ::testing::TestParamInfo<RewriteParam>& info) {
      std::string name =
          "map" + std::to_string(std::get<0>(info.param)) + "_il" +
          std::to_string(std::get<1>(info.param)) + "_pf" +
          std::to_string(std::get<2>(info.param));
      const char* cache_after = std::get<3>(info.param);
      if (cache_after[0] != '\0') name += std::string("_cache_") + cache_after;
      return name;
    });

TEST(RewriteEquivalenceTest, CachedEpochsAreIdentical) {
  // Epoch 2 (served from cache) must equal epoch 1 (which filled it).
  PipelineTestEnv env(3, 20, 48);
  GraphDef graph = FiniteGraph();
  ASSERT_TRUE(rewriter::InjectCache(&graph, "grow").ok());
  auto pipeline =
      std::move(Pipeline::Create(graph, env.Options())).value();
  const auto epoch1 = SizeFingerprint(Drain(*pipeline));
  const auto epoch2 = SizeFingerprint(Drain(*pipeline));
  EXPECT_EQ(epoch1, epoch2);
  EXPECT_FALSE(epoch1.empty());
}

TEST(RewriteEquivalenceTest, FullOptimizerPreservesSemantics) {
  // The entire optimizer (LP + prefetch + cache, two passes) must be
  // semantics-preserving end to end.
  PipelineTestEnv env(3, 20, 48);
  const std::vector<size_t> expected = ReferenceFingerprint(env);

  OptimizeOptions options;
  options.machine = MachineSpec::SetupA();
  options.machine.num_cores = 8;
  options.machine.memory_bytes = 10 << 20;
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.trace_seconds = 0.15;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(FiniteGraph());
  ASSERT_TRUE(result.ok()) << result.status();

  auto pipeline =
      std::move(Pipeline::Create(result->graph, env.Options())).value();
  EXPECT_EQ(SizeFingerprint(Drain(*pipeline)), expected);
}

TEST(RewriteEquivalenceTest, RewritesPreserveSignature) {
  // A rewritten graph validates and instantiates: it is a drop-in
  // replacement (the @optimize contract).
  PipelineTestEnv env(3, 20, 48);
  GraphDef graph = FiniteGraph();
  ASSERT_TRUE(rewriter::SetAllParallelism(&graph, 4).ok());
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&graph, 2).ok());
  ASSERT_TRUE(rewriter::InjectCache(&graph, "filter").ok());
  ASSERT_TRUE(graph.Validate().ok());
  // Serialization round-trips through the rewrites.
  auto reparsed = GraphDef::Parse(graph.Serialize());
  ASSERT_TRUE(reparsed.ok());
  auto pipeline = Pipeline::Create(std::move(reparsed).value(),
                                   env.Options());
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE(Drain(**pipeline).empty());
}

TEST(RewriteEquivalenceTest, PassOrderPermutationsPreserveSemantics) {
  // Any pass schedule — reordered, repeated, batch-extended — must
  // still produce a valid drop-in replacement graph: same multiset of
  // elements, validates, instantiates.
  PipelineTestEnv env(3, 20, 48);
  const std::vector<size_t> expected = ReferenceFingerprint(env);

  const char* kSchedules[] = {
      "parallelism,prefetch,cache,parallelism",  // default
      "cache,prefetch,parallelism",
      "prefetch,parallelism,batch",
      "batch,parallelism,prefetch,cache",
      "cache,batch,prefetch",
      "parallelism,parallelism,prefetch",
  };
  for (const char* schedule : kSchedules) {
    OptimizeOptions options;
    options.machine = MachineSpec::SetupA();
    options.machine.num_cores = 8;
    options.machine.memory_bytes = 10 << 20;
    options.fs = &env.fs;
    options.udfs = &env.udfs;
    options.trace_seconds = 0.15;
    options.schedule = schedule;
    PlumberOptimizer optimizer(options);
    auto result = optimizer.Optimize(FiniteGraph());
    ASSERT_TRUE(result.ok()) << schedule << ": " << result.status();
    ASSERT_TRUE(result->graph.Validate().ok()) << schedule;
    auto pipeline = Pipeline::Create(result->graph, env.Options());
    ASSERT_TRUE(pipeline.ok()) << schedule << ": " << pipeline.status();
    EXPECT_EQ(SizeFingerprint(Drain(**pipeline)), expected) << schedule;
  }
}

TEST(RewriteEquivalenceTest, PlacementScheduleDropInsPreserveSemantics) {
  // The opt-in placement passes (cache_tiers, shard_sources) slot into
  // any schedule position and stay semantics-preserving, under a
  // machine where they actually fire: memory too small for a DRAM
  // cache (so cache_tiers goes to disk) and a modeled disk bound (so
  // shard_sources shards). "cache" and "cache_tiers" together — in
  // either order — must never double-insert.
  PipelineTestEnv env(3, 20, 48);
  const std::vector<size_t> expected = ReferenceFingerprint(env);

  const char* kSchedules[] = {
      "cache_tiers,parallelism",
      "parallelism,prefetch,cache_tiers,parallelism",
      "shard_sources,parallelism",
      "shard_sources,cache_tiers,prefetch,parallelism",
      "cache,cache_tiers",
      "cache_tiers,cache",
      "batch,shard_sources,cache_tiers",
  };
  for (const char* schedule : kSchedules) {
    OptimizeOptions options;
    options.machine = MachineSpec::SetupA();
    options.machine.num_cores = 8;
    options.machine.memory_bytes = 1024;
    options.machine.scratch = DeviceSpec::NvmeSsd();
    options.machine.scratch_bytes = 64ull << 20;
    options.lp_options.disk_bandwidth = 500;
    options.fs = &env.fs;
    options.udfs = &env.udfs;
    options.trace_seconds = 0.15;
    options.schedule = schedule;
    PlumberOptimizer optimizer(options);
    auto result = optimizer.Optimize(FiniteGraph());
    ASSERT_TRUE(result.ok()) << schedule << ": " << result.status();
    ASSERT_TRUE(result->graph.Validate().ok()) << schedule;
    int caches = 0;
    for (const NodeDef& node : result->graph.nodes()) {
      if (node.op == "cache") ++caches;
    }
    EXPECT_LE(caches, 1) << schedule;
    auto pipeline = Pipeline::Create(result->graph, env.Options());
    ASSERT_TRUE(pipeline.ok()) << schedule << ": " << pipeline.status();
    EXPECT_EQ(SizeFingerprint(Drain(**pipeline)), expected) << schedule;
  }
}

TEST(RewriteEquivalenceTest, SecondPrefetchInjectionIsIdempotent) {
  PipelineTestEnv env(3, 20, 48);
  GraphDef graph = FiniteGraph();
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&graph, 4).ok());
  const size_t nodes_after_first = graph.nodes().size();
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&graph, 4).ok());
  EXPECT_EQ(graph.nodes().size(), nodes_after_first);
}

}  // namespace
}  // namespace plumber
