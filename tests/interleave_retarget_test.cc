// Live retargeting of ParallelInterleave worker pools: a governor can
// grow and park the reader pool while the pipeline runs, and any
// resize history must preserve the element multiset (parallel
// interleave order is nondeterministic, so identity is multiset
// equality, not sequence equality).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/pipeline/parallelism_governor.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

GraphDef InterleaveGraph(int parallelism) {
  GraphBuilder b;
  return std::move(
             b.Build(b.Interleave("il", b.FileList("files", "data/"),
                                  /*cycle_length=*/4, parallelism)))
      .value();
}

TEST(InterleaveRetargetTest, GovernorResizePreservesElementMultiset) {
  // Distinct record sizes per file make the fingerprint sensitive to
  // lost or duplicated records, not just counts.
  PipelineTestEnv env(0);
  int expected = 0;
  for (int f = 0; f < 6; ++f) {
    std::vector<uint64_t> sizes(40, 32 + static_cast<uint64_t>(f) * 8);
    ASSERT_TRUE(
        env.fs.CreateRecordFile("data/f" + std::to_string(f), f + 1,
                                std::move(sizes))
            .ok());
    expected += 40;
  }
  const GraphDef graph = InterleaveGraph(/*parallelism=*/2);
  auto reference_p =
      std::move(Pipeline::Create(graph, env.Options())).value();
  const auto reference = SizeFingerprint(Drain(*reference_p));
  ASSERT_EQ(reference.size(), static_cast<size_t>(expected));

  PipelineOptions options = env.Options();
  options.governor = std::make_shared<ParallelismGovernor>();
  auto pipeline = std::move(Pipeline::Create(graph, options)).value();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int target = 1;
    while (!stop.load()) {
      options.governor->SetTarget("il", target);
      target = target % 4 + 1;  // 1..4: park below and grow above config
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const auto retargeted = SizeFingerprint(Drain(*pipeline));
  stop = true;
  flipper.join();
  EXPECT_EQ(reference, retargeted);
}

TEST(InterleaveRetargetTest, InitialGovernorTargetBoundsThePool) {
  // A pre-set governor target below the configured parallelism must
  // start the pool at the target, and the stats must say so.
  PipelineTestEnv env(4, 25, 64);
  PipelineOptions options = env.Options();
  options.governor = std::make_shared<ParallelismGovernor>();
  options.governor->SetTarget("il", 1);
  auto pipeline =
      std::move(Pipeline::Create(InterleaveGraph(/*parallelism=*/3),
                                 options))
          .value();
  ASSERT_EQ(Drain(*pipeline).size(), 100u);
  for (const auto& s : pipeline->stats().Snapshot()) {
    if (s.name == "il") EXPECT_EQ(s.parallelism, 1);
  }
}

TEST(InterleaveRetargetTest, ParkToZeroTargetClampsToOneWorker) {
  // Target 0 means "back to configured"; target 1 is the floor. A
  // brutal flip between them mid-run must still drain every record.
  PipelineTestEnv env(5, 30, 40);
  PipelineOptions options = env.Options();
  options.governor = std::make_shared<ParallelismGovernor>();
  auto pipeline =
      std::move(Pipeline::Create(InterleaveGraph(/*parallelism=*/2),
                                 options))
          .value();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool park = true;
    while (!stop.load()) {
      options.governor->SetTarget("il", park ? 1 : 0);
      park = !park;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  const auto elems = Drain(*pipeline);
  stop = true;
  flipper.join();
  EXPECT_EQ(elems.size(), 150u);
}

}  // namespace
}  // namespace plumber
