// Regression guards for the optimizer's parallelism pass: an
// "optimized" pipeline must never measure slower than the input it was
// derived from, and the plan must respect its own core budget. These
// pin the fix for the over-allocation bug where ceil(theta) rounding
// plus unconditional knob application produced tuned graphs slower
// than the misconfigured originals.
#include "src/core/optimizer.h"

#include <gtest/gtest.h>

#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

GraphDef MisconfiguredGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("expensive", n, "slow");
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  return std::move(b.Build(n)).value();
}

OptimizeOptions MakeOptions(PipelineTestEnv& env) {
  OptimizeOptions options;
  options.machine = MachineSpec::SetupA();
  options.machine.num_cores = 8;
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.trace_seconds = 0.25;
  options.enable_cache = false;  // isolate the parallelism pass
  return options;
}

double MeasureRate(PipelineTestEnv& env, const GraphDef& graph,
                   double seconds = 0.4) {
  auto pipeline = std::move(Pipeline::Create(graph, env.Options())).value();
  RunOptions ropts;
  ropts.max_seconds = seconds;
  const RunResult result = RunPipeline(*pipeline, ropts);
  pipeline->Cancel();
  return result.batches_per_second;
}

TEST(OptimizerRegressionTest, OptimizedGraphNeverMeasuresSlowerThanInput) {
  PipelineTestEnv env(4, 200, 64);
  PlumberOptimizer optimizer(MakeOptions(env));
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  double naive_rate = 0, tuned_rate = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    naive_rate = MeasureRate(env, MisconfiguredGraph());
    tuned_rate = MeasureRate(env, result->graph);
    return tuned_rate > naive_rate;
  })) << "Optimize() returned a slower graph: tuned=" << tuned_rate
      << " naive=" << naive_rate;
}

TEST(OptimizerRegressionTest, BatchSizePassNeverSlowerOnCheapUdfPipeline) {
  // The acceptance case for the engine-batch autotuner: a cheap-UDF
  // p=8 pipeline is engine-overhead-bound, so the batch pass must pick
  // a batch > 1 and the rewritten graph must measure at least as fast
  // as the element-at-a-time run (~2.4x in bench_micro_engine).
  PipelineTestEnv env(2, 20, 64);
  GraphBuilder b;
  auto n = b.Range("src", -1);
  n = b.Map("m", n, "noop", 8);
  const GraphDef naive = std::move(b.Build(n)).value();

  OptimizeOptions options = MakeOptions(env);
  options.schedule = "batch";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(naive);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(rewriter::GetEngineBatchSize(result->graph), 1);

  double naive_rate = 0, tuned_rate = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    naive_rate = MeasureRate(env, naive);
    tuned_rate = MeasureRate(env, result->graph);
    return tuned_rate >= naive_rate;
  })) << "batch pass made the pipeline slower: tuned=" << tuned_rate
      << " naive=" << naive_rate;
}

TEST(OptimizerRegressionTest, CachePlacementPassNeverSlowerOnDiskTier) {
  // With DRAM too small for any materialization, CachePlacementPass
  // falls back to the SSD scratch tier. Serving the repeat epochs from
  // scratch skips the 200us/element map, so the placed graph must
  // never measure slower than the misconfigured input.
  PipelineTestEnv env(4, 200, 64);
  OptimizeOptions options = MakeOptions(env);
  options.schedule = "cache_tiers,parallelism";
  options.machine.memory_bytes = 1024;  // no DRAM fit
  options.machine.scratch = DeviceSpec::NvmeSsd();
  options.machine.scratch_bytes = 64ull << 20;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->tiered_cache.feasible);
  EXPECT_EQ(result->tiered_cache.tier, CacheTier::kDisk);
  ASSERT_TRUE(rewriter::HasCacheOp(result->graph));

  // Measure on a machine that actually meters the scratch tier.
  PipelineOptions popts = env.Options();
  popts.scratch = options.machine.scratch;
  popts.scratch_budget_bytes = options.machine.scratch_bytes;
  double naive_rate = 0, tuned_rate = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    naive_rate = MeasureRate(env, MisconfiguredGraph());
    auto pipeline =
        std::move(Pipeline::Create(result->graph, popts)).value();
    RunOptions ropts;
    ropts.max_seconds = 0.4;
    const RunResult run = RunPipeline(*pipeline, ropts);
    pipeline->Cancel();
    tuned_rate = run.batches_per_second;
    return tuned_rate >= naive_rate;
  })) << "disk-tier placement made the pipeline slower: tuned="
      << tuned_rate << " naive=" << naive_rate;
}

TEST(OptimizerRegressionTest, ShardSourcesPassNeverSlowerWhenDiskBound) {
  // A cheap-UDF pipeline behind a 50KB/s modeled disk is source-bound;
  // ShardSourcesPass splits the reader across per-shard devices, so the
  // aggregate bandwidth scales with the shard count and the rewritten
  // graph must never measure slower.
  PipelineTestEnv env(4, 200, 64);
  StorageDevice disk(DeviceSpec::TokenBucketLimit(50e3));
  env.fs.set_device(&disk);

  GraphBuilder b;
  auto n = b.TfRecord("reader", b.FileList("files", "data/"));
  n = b.Map("m", n, "noop", 2);
  const GraphDef naive = std::move(b.Build(n)).value();

  OptimizeOptions options = MakeOptions(env);
  options.schedule = "shard_sources,parallelism";
  options.lp_options.disk_bandwidth = 50e3;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(naive);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->shard_count, 2);
  ASSERT_TRUE(rewriter::HasOp(result->graph, "shard_merge"));

  double naive_rate = 0, tuned_rate = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    naive_rate = MeasureRate(env, naive);
    tuned_rate = MeasureRate(env, result->graph);
    return tuned_rate >= naive_rate;
  })) << "shard_sources made the pipeline slower: tuned=" << tuned_rate
      << " naive=" << naive_rate;
}

TEST(OptimizerRegressionTest, ParallelismPlanStaysWithinCoreBudget) {
  PipelineTestEnv env(4, 200, 64);
  PlumberOptimizer optimizer(MakeOptions(env));
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  int total = 0;
  for (const auto& [node, parallelism] : result->plan.parallelism) {
    total += parallelism;
  }
  // ceil(theta) rounding used to hand out up to one extra core per
  // stage beyond the LP's own budget.
  EXPECT_LE(total, 8);
  // The pass still parallelizes the bottleneck aggressively.
  EXPECT_GT(*rewriter::GetParallelism(result->graph, "expensive"), 2);
}

}  // namespace
}  // namespace plumber
