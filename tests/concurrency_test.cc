// Tests for the thread pool and bounded queue.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/util/bounded_queue.h"
#include "src/util/thread_pool.h"

namespace plumber {
namespace {

TEST(ThreadPoolTest, ExecutesAllWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Schedule([&] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturns) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Schedule([&] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(64, 8, [&](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SequentialFallback) {
  int sum = 0;
  ParallelFor(10, 1, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, EmptyRange) {
  ParallelFor(0, 4, [](int) { FAIL() << "should not run"; });
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 4; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, PushBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.Push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  q.Pop();
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, CancelUnblocksProducerAndConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Cancel();
  producer.join();
  // Drains remaining item, then nullopt.
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, CancelledPushFails) {
  BoundedQueue<int> q(2);
  q.Cancel();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
}

TEST(BoundedQueueTest, MpmcStress) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4, kConsumers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        if (consumed.load() >= kProducers * kPerProducer) return;
        auto v = q.TryPop();
        if (v.has_value()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, EmptyPopFractionTracksStalls) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Pop();  // not empty at pop time
  EXPECT_EQ(q.EmptyPopFraction(), 0.0);
}

}  // namespace
}  // namespace plumber
