// Tests for the roofline-style bound report.
#include "src/core/roofline.h"

#include <gtest/gtest.h>

#include "src/core/optimizer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

PipelineModel TraceModel(PipelineTestEnv& env, const GraphDef& graph,
                         const MachineSpec& machine,
                         double seconds = 0.35) {
  auto pipeline = std::move(Pipeline::Create(graph, env.Options())).value();
  TraceOptions topts;
  topts.trace_seconds = seconds;
  topts.machine = machine;
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  return std::move(PipelineModel::Build(trace, &env.udfs)).value();
}

GraphDef TwoStageGraph(int slow_parallelism) {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
  n = b.Map("work", n, "slow", slow_parallelism);
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  return std::move(b.Build(n)).value();
}

TEST(RooflineTest, BindingStageIsTheExpensiveMap) {
  PipelineTestEnv env(4, 100, 64);
  const PipelineModel model =
      TraceModel(env, TwoStageGraph(2), MachineSpec::SetupA());
  const RooflineReport report = BuildRoofline(model);
  ASSERT_FALSE(report.stages.empty());
  EXPECT_EQ(report.binding_stage, "work");
  EXPECT_GT(report.binding_roof, 0);
  // The 200us map on 16 cores roofs at ~16 cores / (5 * 200us) =
  // ~16k mb/s; allow a wide band for engine overhead.
  EXPECT_GT(report.compute_roof, 2000);
  EXPECT_LT(report.compute_roof, 40000);
}

TEST(RooflineTest, StagesSortedAscendingByRoof) {
  PipelineTestEnv env(4, 100, 64);
  const PipelineModel model =
      TraceModel(env, TwoStageGraph(2), MachineSpec::SetupA());
  const RooflineReport report = BuildRoofline(model);
  for (size_t i = 1; i < report.stages.size(); ++i) {
    EXPECT_LE(report.stages[i - 1].cpu_roof, report.stages[i].cpu_roof);
  }
}

TEST(RooflineTest, IoRoofBindsWhenBandwidthTiny) {
  PipelineTestEnv env(4, 100, 64);
  const PipelineModel model =
      TraceModel(env, TwoStageGraph(2), MachineSpec::SetupA());
  // 5 records x 64B per minibatch; 320 B/s of bandwidth = ~1 mb/s roof.
  const RooflineReport report = BuildRoofline(model, /*disk_bandwidth=*/320);
  EXPECT_EQ(report.binding_stage, "io");
  EXPECT_NEAR(report.io_roof, 320 / model.DiskBytesPerMinibatch(), 1e-9);
  EXPECT_LT(report.binding_roof, report.compute_roof);
}

TEST(RooflineTest, NoIoRoofWithoutBandwidth) {
  PipelineTestEnv env(4, 100, 64);
  const PipelineModel model =
      TraceModel(env, TwoStageGraph(2), MachineSpec::SetupA());
  const RooflineReport report = BuildRoofline(model, 0);
  EXPECT_EQ(report.io_roof, 0);
  EXPECT_NE(report.binding_stage, "io");
}

TEST(RooflineTest, RoofFractionApproachesOneWhenTuned) {
  PipelineTestEnv env(4, 200, 64);
  const MachineSpec machine = MachineSpec::SetupA();
  // Naive (parallelism 1): far from the roof. Tuned (parallelism 8 on
  // the bottleneck): closer to it.
  const PipelineModel naive = TraceModel(env, TwoStageGraph(1), machine);
  const PipelineModel tuned = TraceModel(env, TwoStageGraph(8), machine);
  const RooflineReport naive_report = BuildRoofline(naive);
  const RooflineReport tuned_report = BuildRoofline(tuned);
  EXPECT_GT(tuned_report.roof_fraction, naive_report.roof_fraction);
  EXPECT_LE(naive_report.roof_fraction, 1.1);  // achieved can't beat roof
}

TEST(RooflineTest, SequentialStageRoofCapsAtOneCore) {
  PipelineTestEnv env(4, 100, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
  n = b.SequentialMap("seq", n, "slow");
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  const PipelineModel model = TraceModel(
      env, std::move(b.Build(n)).value(), MachineSpec::SetupA());
  const RooflineReport report = BuildRoofline(model);
  const RooflinePoint* seq = nullptr;
  for (const auto& stage : report.stages) {
    if (stage.name == "seq") seq = &stage;
  }
  ASSERT_NE(seq, nullptr);
  EXPECT_TRUE(seq->sequential);
  // Roof equals its single-core rate — the machine size doesn't help.
  EXPECT_DOUBLE_EQ(seq->cpu_roof, seq->rate_per_core);
  EXPECT_EQ(report.binding_stage, "seq");
}

TEST(RooflineTest, CpuSharesSumToAtMostOne) {
  PipelineTestEnv env(4, 100, 64);
  const PipelineModel model =
      TraceModel(env, TwoStageGraph(2), MachineSpec::SetupA());
  const RooflineReport report = BuildRoofline(model);
  double total = 0;
  for (const auto& stage : report.stages) {
    EXPECT_GE(stage.cpu_share, 0);
    total += stage.cpu_share;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(RooflineTest, ToStringMentionsBindingStage) {
  PipelineTestEnv env(4, 100, 64);
  const PipelineModel model =
      TraceModel(env, TwoStageGraph(2), MachineSpec::SetupA());
  const RooflineReport report = BuildRoofline(model);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("binding=" + report.binding_stage),
            std::string::npos);
  EXPECT_NE(text.find("work"), std::string::npos);
}

}  // namespace
}  // namespace plumber
