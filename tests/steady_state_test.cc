// Tests for the §B steady-state cache simulation ("truncating the
// cached data"): freezing a partially-filled cache must make later
// iterators serve immediately, and the optimizer's steady-state
// re-trace must release the cores of the cached-away subtree.
#include <gtest/gtest.h>

#include "src/core/optimizer.h"
#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;

GraphDef CachedGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("work", n, "slow", 2);
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  GraphDef graph = std::move(b.Build(n)).value();
  EXPECT_TRUE(rewriter::InjectCache(&graph, "work").ok());
  return graph;
}

TEST(SteadyStateTest, FreezeTruncatesAndServes) {
  PipelineTestEnv env(4, 50, 64);
  auto pipeline =
      std::move(Pipeline::Create(CachedGraph(), env.Options())).value();
  // Pull a few batches: the cache is now partially filled.
  auto filler = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(filler->GetNext(&e, &end).ok());
    ASSERT_FALSE(end);
  }
  filler.reset();
  pipeline->SimulateSteadyState();

  // A fresh iterator must serve from the truncated cache: upstream
  // stages (work, interleave) see no new completions.
  pipeline->stats().ResetAll();
  auto server = std::move(pipeline->MakeIterator()).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->GetNext(&e, &end).ok());
    ASSERT_FALSE(end);
  }
  const IteratorStats* work = pipeline->stats().Find("work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->elements_produced(), 0u);
  const IteratorStats* cache = pipeline->stats().Find("work_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->elements_produced(), 0u);
}

TEST(SteadyStateTest, FreezeOnEmptyCacheIsHarmless) {
  PipelineTestEnv env(4, 50, 64);
  auto pipeline =
      std::move(Pipeline::Create(CachedGraph(), env.Options())).value();
  // Never ran: the cache holds nothing; freezing must NOT mark it
  // complete (an empty "complete" cache would end the dataset).
  pipeline->SimulateSteadyState();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
  EXPECT_FALSE(end);
}

TEST(SteadyStateTest, FreezeWithoutCacheIsNoOp) {
  PipelineTestEnv env(4, 50, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("grow", n, "double_size");
  n = b.Batch("batch", n, 4, /*drop_remainder=*/false);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  const auto before = Drain(*pipeline).size();
  pipeline->SimulateSteadyState();
  EXPECT_EQ(Drain(*pipeline).size(), before);
}

TEST(SteadyStateTest, TracerWarmupAndFreezeYieldSteadyRates) {
  PipelineTestEnv env(4, 50, 64);
  auto pipeline =
      std::move(Pipeline::Create(CachedGraph(), env.Options())).value();
  TraceOptions topts;
  topts.trace_seconds = 0.2;
  topts.warmup_seconds = 0.3;
  topts.simulate_cache_steady_state = true;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  // At steady state the expensive map does no work; the trace must
  // show (near-)zero completions for it and nonzero cache serves.
  const auto* work = trace.FindStats("work");
  const auto* cache = trace.FindStats("work_cache");
  ASSERT_NE(work, nullptr);
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(work->elements_produced, 0u);
  EXPECT_GT(cache->elements_produced, 0u);
}

TEST(SteadyStateTest, ModelMarksCachedSubtreeFree) {
  PipelineTestEnv env(4, 50, 64);
  auto pipeline =
      std::move(Pipeline::Create(CachedGraph(), env.Options())).value();
  TraceOptions topts;
  topts.trace_seconds = 0.2;
  topts.warmup_seconds = 0.3;
  topts.simulate_cache_steady_state = true;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  // The LP must not see the cached-away stages...
  for (const auto& stage : model.LpStages()) {
    EXPECT_NE(stage.name, "work");
    EXPECT_NE(stage.name, "interleave");
  }
  // ...and the plan must explicitly release their parallelism.
  const LpPlan plan = PlanAllocation(model);
  auto it = plan.parallelism.find("work");
  ASSERT_NE(it, plan.parallelism.end());
  EXPECT_EQ(it->second, 1);
  // A cached pipeline reads nothing from disk at steady state.
  EXPECT_EQ(model.DiskBytesPerMinibatch(), 0);
}

TEST(SteadyStateTest, OptimizerReleasesCoresBehindCache) {
  // End-to-end: after the cache pass, the second optimizer pass must
  // not leave large parallelism on stages behind the cache.
  PipelineTestEnv env(2, 40, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("expensive", n, "slow");
  n = b.Map("augment", n, "rand_aug");  // random: stays above any cache
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  GraphDef graph = std::move(b.Build(n)).value();

  OptimizeOptions options;
  options.machine = MachineSpec::SetupA();
  options.machine.num_cores = 8;
  options.machine.memory_bytes = 10 << 20;
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.trace_seconds = 0.2;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->cache.feasible);
  EXPECT_EQ(result->cache.node, "expensive");
  // The cached-away expensive map must end at parallelism 1.
  EXPECT_EQ(*rewriter::GetParallelism(result->graph, "expensive"), 1);
}

}  // namespace
}  // namespace plumber
