// Channel conformance suite: every test here runs against BOTH data
// plane implementations (mutex MPMC BoundedQueue and lock-free SPSC
// SpscRing) through the Channel<T> interface, pinning the shared
// blocking contract — FIFO identity, batch chunking over capacity,
// cancellation semantics, and starvation accounting. Stress tests use
// topology-legal thread counts (1:1 for SPSC). Run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "src/util/bounded_queue.h"
#include "src/util/channel.h"
#include "src/util/spsc_ring.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

enum class ChannelKind { kMpmc, kSpsc };

std::unique_ptr<Channel<int>> MakeChannel(ChannelKind kind, size_t capacity) {
  if (kind == ChannelKind::kSpsc) {
    return std::make_unique<SpscRing<int>>(capacity);
  }
  return std::make_unique<BoundedQueue<int>>(capacity);
}

class ChannelConformanceTest : public ::testing::TestWithParam<ChannelKind> {
 protected:
  std::unique_ptr<Channel<int>> Make(size_t capacity) {
    return MakeChannel(GetParam(), capacity);
  }
};

TEST_P(ChannelConformanceTest, SingleItemFifoIdentity) {
  auto q = Make(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q->Push(i));
  EXPECT_EQ(q->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto v = q->Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(ChannelConformanceTest, PushBatchPopBatchPreserveFifoOrder) {
  auto q = Make(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  ASSERT_TRUE(q->PushBatch(in));
  std::vector<int> out;
  EXPECT_EQ(q->PopBatch(10, &out), 10u);
  EXPECT_EQ(out, in);
}

TEST_P(ChannelConformanceTest, PushBatchLargerThanCapacityChunks) {
  // A batch bigger than the channel must be delivered in full once a
  // consumer drains; PushBatch chunks at capacity internally.
  auto q = Make(4);
  std::vector<int> in(32);
  std::iota(in.begin(), in.end(), 0);
  std::thread producer([&] { EXPECT_TRUE(q->PushBatch(in)); });
  std::vector<int> out;
  while (out.size() < in.size()) {
    q->PopBatch(8, &out);
  }
  producer.join();
  EXPECT_EQ(out, in);
}

TEST_P(ChannelConformanceTest, PopBatchReturnsAtMostMax) {
  auto q = Make(16);
  ASSERT_TRUE(q->PushBatch({1, 2, 3, 4, 5}));
  std::vector<int> out;
  EXPECT_EQ(q->PopBatch(3, &out), 3u);
  EXPECT_EQ(q->PopBatch(100, &out), 2u);  // rest, without blocking
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(ChannelConformanceTest, TryPushTryPopRespectBounds) {
  auto q = Make(2);
  const size_t cap = q->capacity();  // SPSC rounds up to a power of two
  for (size_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(q->TryPush(static_cast<int>(i)));
  }
  EXPECT_FALSE(q->TryPush(99));  // full
  for (size_t i = 0; i < cap; ++i) {
    auto v = q->TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_FALSE(q->TryPop().has_value());  // empty
}

TEST_P(ChannelConformanceTest, PopBatchBlocksUntilPush) {
  auto q = Make(4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q->PopBatch(4, &out), 1u);
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  ASSERT_TRUE(q->Push(7));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST_P(ChannelConformanceTest, CancelUnblocksBatchWaitersAndDrains) {
  auto q = Make(2);
  ASSERT_TRUE(q->PushBatch({1, 2}));
  // Producer blocked mid-chunk (batch > capacity), consumer drains
  // after cancel.
  std::thread producer([&] { EXPECT_FALSE(q->PushBatch({3, 4, 5, 6, 7})); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q->Cancel();
  producer.join();
  // Whatever made it in before cancellation drains in order, then 0.
  std::vector<int> out;
  while (q->PopBatch(4, &out) != 0) {
  }
  ASSERT_GE(out.size(), 2u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(q->PushBatch({9}));
  EXPECT_FALSE(q->Push(9));
  EXPECT_TRUE(q->cancelled());
}

TEST_P(ChannelConformanceTest, CancelUnblocksBlockedConsumer) {
  auto q = Make(4);
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q->PopBatch(4, &out), 0u);
    EXPECT_FALSE(q->Pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q->Cancel();
  consumer.join();
}

TEST_P(ChannelConformanceTest, EmptyPopFractionCountsElementsNotBatches) {
  // A consumer starved on every batched claim must report the same
  // starvation fraction a per-element consumer would (~0.5), not
  // 1/batch_size of it.
  auto q = Make(8);
  std::thread consumer([&] {
    std::vector<int> out;
    while (out.size() < 8) {
      if (q->PopBatch(4, &out) == 0) break;
    }
  });
  for (int round = 0; round < 2; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q->PushBatch({1, 2, 3, 4}));
  }
  consumer.join();
  EXPECT_NEAR(q->EmptyPopFraction(), 0.5, 0.26);
}

TEST_P(ChannelConformanceTest, ExactlyOnceStress) {
  // Topology-legal thread counts: SPSC gets exactly one thread per
  // side, MPMC gets four.
  const bool spsc = GetParam() == ChannelKind::kSpsc;
  auto q = Make(32);
  testing_util::ChannelStressExactlyOnce(*q, spsc ? 1 : 4, spsc ? 1 : 4,
                                         /*per_producer=*/spsc ? 8000 : 2000);
}

TEST_P(ChannelConformanceTest, StressWithRacingCancellation) {
  const bool spsc = GetParam() == ChannelKind::kSpsc;
  const ChannelKind kind = GetParam();
  testing_util::ChannelStressRacingCancellation(
      [kind] { return MakeChannel(kind, 8); }, spsc ? 1 : 3, spsc ? 1 : 3,
      /*rounds=*/8);
}

INSTANTIATE_TEST_SUITE_P(AllChannels, ChannelConformanceTest,
                         ::testing::Values(ChannelKind::kMpmc,
                                           ChannelKind::kSpsc),
                         [](const ::testing::TestParamInfo<ChannelKind>& info) {
                           return info.param == ChannelKind::kSpsc
                                      ? "SpscRing"
                                      : "BoundedQueue";
                         });

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
}

TEST(SpscRingTest, TortureRandomizedBatchSizes) {
  // One producer / one consumer hammer the ring with randomized batch
  // sizes (often above capacity) and a mix of single-item and batched
  // calls, across small capacities that force constant wrap-around and
  // park/unpark traffic. The full FIFO sequence must survive intact.
  for (const size_t capacity : {2u, 3u, 8u}) {
    SpscRing<int> ring(capacity);
    constexpr int kTotal = 50000;
    std::thread producer([&ring] {
      std::mt19937 rng(42);
      std::uniform_int_distribution<int> batch_dist(1, 19);
      int next = 0;
      while (next < kTotal) {
        if (batch_dist(rng) == 1) {
          ASSERT_TRUE(ring.Push(next++));
          continue;
        }
        std::vector<int> batch;
        const int n = std::min(batch_dist(rng), kTotal - next);
        for (int i = 0; i < n; ++i) batch.push_back(next++);
        ASSERT_TRUE(ring.PushBatch(std::move(batch)));
      }
    });
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> max_dist(1, 23);
    std::vector<int> seen;
    seen.reserve(kTotal);
    while (seen.size() < kTotal) {
      if (max_dist(rng) == 1) {
        auto v = ring.Pop();
        ASSERT_TRUE(v.has_value());
        seen.push_back(*v);
        continue;
      }
      std::vector<int> out;
      ASSERT_GT(ring.PopBatch(max_dist(rng), &out), 0u);
      seen.insert(seen.end(), out.begin(), out.end());
    }
    producer.join();
    ASSERT_EQ(seen.size(), static_cast<size_t>(kTotal));
    for (int i = 0; i < kTotal; ++i) {
      ASSERT_EQ(seen[i], i) << "capacity " << capacity;
    }
  }
}

}  // namespace
}  // namespace plumber
