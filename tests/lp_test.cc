#include <gtest/gtest.h>

#include <cmath>

#include "src/lp/maximin_allocator.h"
#include "src/lp/simplex.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, z=36.
  LpProblem lp;
  const int x = lp.AddVariable("x", 3.0);
  const int y = lp.AddVariable("y", 5.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLe, 4);
  lp.AddConstraint({{y, 2.0}}, ConstraintSense::kLe, 12);
  lp.AddConstraint({{x, 3.0}, {y, 2.0}}, ConstraintSense::kLe, 18);
  const LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_NEAR(s.x[x], 2.0, 1e-6);
  EXPECT_NEAR(s.x[y], 6.0, 1e-6);
}

TEST(SimplexTest, HandlesGeConstraints) {
  // max -x s.t. x >= 5 -> x=5.
  LpProblem lp;
  const int x = lp.AddVariable("x", -1.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGe, 5);
  const LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.x[x], 5.0, 1e-6);
}

TEST(SimplexTest, HandlesEqConstraints) {
  // max x + y s.t. x + y == 3, x <= 1 -> objective 3.
  LpProblem lp;
  const int x = lp.AddVariable("x", 1.0, 1.0);
  const int y = lp.AddVariable("y", 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kEq, 3);
  const LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_NEAR(s.x[x] + s.x[y], 3.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpProblem lp;
  const int x = lp.AddVariable("x", 1.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLe, 1);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGe, 2);
  const LpSolution s = SolveSimplex(lp);
  EXPECT_FALSE(s.feasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem lp;
  lp.AddVariable("x", 1.0);
  const LpSolution s = SolveSimplex(lp);
  EXPECT_TRUE(s.feasible);
  EXPECT_FALSE(s.bounded);
}

TEST(SimplexTest, RespectsUpperBounds) {
  LpProblem lp;
  const int x = lp.AddVariable("x", 1.0, 2.5);
  const LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(s.bounded);
  EXPECT_NEAR(s.x[x], 2.5, 1e-6);
}

TEST(SimplexTest, SolutionSatisfiesProblem) {
  LpProblem lp;
  const int a = lp.AddVariable("a", 2.0, 10);
  const int b = lp.AddVariable("b", 1.0, 10);
  lp.AddConstraint({{a, 1.0}, {b, 3.0}}, ConstraintSense::kLe, 12);
  lp.AddConstraint({{a, 2.0}, {b, 1.0}}, ConstraintSense::kLe, 14);
  const LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.feasible && s.bounded);
  EXPECT_TRUE(lp.IsFeasible(s.x));
}

TEST(MaxMinTest, SingleStageUsesAllCores) {
  const MaxMinSolution s = SolveMaxMin({{"a", 2.0, false}}, 8);
  EXPECT_NEAR(s.throughput, 16.0, 1e-9);
  EXPECT_NEAR(s.theta[0], 8.0, 1e-9);
  EXPECT_TRUE(s.core_limited);
}

TEST(MaxMinTest, WaterFillingBalancesRates) {
  // Rates 1 and 3 with 4 cores: X satisfies X/1 + X/3 = 4 -> X = 3.
  const MaxMinSolution s =
      SolveMaxMin({{"slow", 1.0, false}, {"fast", 3.0, false}}, 4);
  EXPECT_NEAR(s.throughput, 3.0, 1e-9);
  EXPECT_NEAR(s.theta[0], 3.0, 1e-9);
  EXPECT_NEAR(s.theta[1], 1.0, 1e-9);
  EXPECT_EQ(s.bottleneck, 0);  // slowest per-core stage
}

TEST(MaxMinTest, SequentialStageCapsThroughput) {
  // Sequential stage with rate 2 caps X at 2 even with many cores.
  const MaxMinSolution s =
      SolveMaxMin({{"seq", 2.0, true}, {"par", 1.0, false}}, 100);
  EXPECT_NEAR(s.throughput, 2.0, 1e-9);
  EXPECT_FALSE(s.core_limited);
  EXPECT_EQ(s.bottleneck, 0);
}

TEST(MaxMinTest, FreeStagesIgnored) {
  const MaxMinSolution s =
      SolveMaxMin({{"free", 0.0, false}, {"work", 2.0, false}}, 4);
  EXPECT_NEAR(s.throughput, 8.0, 1e-9);
  EXPECT_NEAR(s.theta[0], 0.0, 1e-9);
}

TEST(MaxMinTest, EmptyOrZeroCores) {
  EXPECT_EQ(SolveMaxMin({}, 4).throughput, 0);
  EXPECT_EQ(SolveMaxMin({{"a", 1.0, false}}, 0).throughput, 0);
}

// Property: the closed-form water-filling solution matches the simplex
// encoding of the same LP across random instances.
class MaxMinVsSimplexTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinVsSimplexTest, ClosedFormMatchesSimplex) {
  Rng rng(GetParam() * 7919 + 13);
  const int n = 1 + static_cast<int>(rng.UniformInt(6));
  std::vector<MaxMinStage> stages;
  for (int i = 0; i < n; ++i) {
    MaxMinStage stage;
    stage.name = "s" + std::to_string(i);
    stage.rate_per_core = 0.1 + rng.UniformDouble() * 10;
    stage.sequential = rng.Bernoulli(0.3);
    stages.push_back(stage);
  }
  const double cores = 1 + rng.UniformInt(32);
  const MaxMinSolution closed = SolveMaxMin(stages, cores);

  LpProblem lp;
  const int t = lp.AddVariable("t", 1.0);
  std::vector<int> theta;
  std::vector<std::pair<int, double>> budget;
  for (const auto& stage : stages) {
    const double ub = stage.sequential
                          ? 1.0
                          : std::numeric_limits<double>::infinity();
    theta.push_back(lp.AddVariable("theta_" + stage.name, 0.0, ub));
    lp.AddConstraint({{t, 1.0}, {theta.back(), -stage.rate_per_core}},
                     ConstraintSense::kLe, 0.0);
    budget.push_back({theta.back(), 1.0});
  }
  lp.AddConstraint(budget, ConstraintSense::kLe, cores);
  const LpSolution simplex = SolveSimplex(lp);
  ASSERT_TRUE(simplex.feasible && simplex.bounded);
  EXPECT_NEAR(simplex.x[t], closed.throughput,
              1e-6 * std::max(1.0, closed.throughput));
  // Closed-form theta must be feasible for the LP encoding too.
  std::vector<double> x(theta.size() + 1);
  x[t] = closed.throughput;
  for (size_t i = 0; i < theta.size(); ++i) x[theta[i]] = closed.theta[i];
  EXPECT_TRUE(lp.IsFeasible(x, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinVsSimplexTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace plumber
