#include "src/pipeline/runner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

std::unique_ptr<Pipeline> SlowPipeline(PipelineTestEnv& env,
                                       bool infinite = true) {
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "slow");
  if (infinite) n = b.Repeat("r", n, -1);
  n = b.Batch("batch", n, 5);
  return std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                    env.Options()))
      .value();
}

TEST(RunnerTest, MaxBatchesStopsExactly) {
  PipelineTestEnv env(2, 20, 32);
  auto pipeline = SlowPipeline(env);
  RunOptions options;
  options.max_batches = 7;
  const RunResult result = RunPipeline(*pipeline, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.batches, 7);
  EXPECT_EQ(result.examples, 35);
  EXPECT_FALSE(result.reached_end);
  EXPECT_GT(result.batches_per_second, 0);
}

TEST(RunnerTest, MaxSecondsStopsNearDeadline) {
  PipelineTestEnv env(2, 20, 32);
  auto pipeline = SlowPipeline(env);
  RunOptions options;
  options.max_seconds = 0.2;
  double wall_seconds = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    const RunResult result = RunPipeline(*pipeline, options);
    EXPECT_TRUE(result.status.ok());
    wall_seconds = result.wall_seconds;
    return std::abs(wall_seconds - 0.2) <= 0.1;
  })) << "wall_seconds=" << wall_seconds;
}

TEST(RunnerTest, ReachesEndOfFiniteData) {
  PipelineTestEnv env(2, 20, 32);
  auto pipeline = SlowPipeline(env, /*infinite=*/false);
  RunOptions options;
  options.max_seconds = 10;
  const RunResult result = RunPipeline(*pipeline, options);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.reached_end);
  EXPECT_EQ(result.batches, 8);  // 40 records / 5
}

TEST(RunnerTest, ModelStepCapsThroughput) {
  PipelineTestEnv env(2, 20, 32);
  auto fast = SlowPipeline(env);
  RunOptions uncapped;
  uncapped.max_seconds = 0.3;
  const RunResult free_run = RunPipeline(*fast, uncapped);

  auto capped_pipeline = SlowPipeline(env);
  RunOptions capped = uncapped;
  capped.model_step_seconds = 0.05;  // at most ~20 batches/sec
  const RunResult capped_run = RunPipeline(*capped_pipeline, capped);
  EXPECT_LT(capped_run.batches_per_second, 25.0);
  EXPECT_LT(capped_run.batches_per_second,
            free_run.batches_per_second + 25.0);
}

TEST(RunnerTest, WarmupBatchesExcluded) {
  PipelineTestEnv env(2, 20, 32);
  auto pipeline = SlowPipeline(env);
  RunOptions options;
  options.max_batches = 5;
  options.warmup_batches = 3;
  const RunResult result = RunPipeline(*pipeline, options);
  EXPECT_EQ(result.batches, 5);  // measured batches only
}

TEST(RunnerTest, NextLatencyMeasured) {
  PipelineTestEnv env(2, 20, 32);
  auto pipeline = SlowPipeline(env);
  RunOptions options;
  options.max_batches = 5;
  const RunResult result = RunPipeline(*pipeline, options);
  // 5 elements/batch x 200us = >=1ms per batch without parallelism.
  EXPECT_GT(result.mean_next_latency_seconds, 0.0005);
}

TEST(RunnerTest, RunIteratorKeepsState) {
  PipelineTestEnv env(2, 20, 32);
  auto pipeline = SlowPipeline(env, /*infinite=*/false);
  auto iterator = std::move(pipeline->MakeIterator()).value();
  RunOptions options;
  options.max_batches = 3;
  const RunResult first = RunIterator(iterator.get(), options);
  EXPECT_EQ(first.batches, 3);
  const RunResult rest = RunIterator(iterator.get(), options);
  EXPECT_EQ(rest.batches, 3);
  RunOptions drain;
  drain.max_seconds = 5;
  const RunResult last = RunIterator(iterator.get(), drain);
  EXPECT_EQ(first.batches + rest.batches + last.batches, 8);
  EXPECT_TRUE(last.reached_end);
}

}  // namespace
}  // namespace plumber
