// Property suite: the provisioner is the inverse of the allocation LP.
//
// PlanAllocation answers "given this machine, how fast?"; PlanProvision
// answers "given this rate, what machine?". On the same traced model
// the two must agree: provisioning for the LP's predicted rate must
// demand no more than the machine the LP was given, and the LP run on
// the provisioned core count must predict at least the target.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/core/optimizer.h"
#include "src/core/provisioner.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

// (expensive-map parallelism at trace time, machine cores)
using DualityParam = std::tuple<int, int>;

class DualityTest : public ::testing::TestWithParam<DualityParam> {
 protected:
  PipelineModel BuildModel(int traced_parallelism, int cores) {
    env_ = std::make_unique<PipelineTestEnv>(4, 200, 64);
    GraphBuilder b;
    auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 2);
    n = b.Map("work", n, "slow", traced_parallelism);
    n = b.Map("free", n, "noop");
    n = b.ShuffleAndRepeat("sr", n, 16);
    n = b.Batch("batch", n, 5);
    n = b.Prefetch("prefetch", n, 2);
    GraphDef graph = std::move(b.Build(n)).value();
    auto pipeline =
        std::move(Pipeline::Create(graph, env_->Options())).value();
    TraceOptions topts;
    topts.trace_seconds = 0.3;
    topts.machine = MachineSpec::SetupA();
    topts.machine.num_cores = cores;
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    return std::move(PipelineModel::Build(trace, &env_->udfs)).value();
  }

  std::unique_ptr<PipelineTestEnv> env_;
};

TEST_P(DualityTest, ProvisionOfLpRateFitsTheMachine) {
  const auto [traced_parallelism, cores] = GetParam();
  const PipelineModel model = BuildModel(traced_parallelism, cores);
  const LpPlan lp = PlanAllocation(model);
  ASSERT_GT(lp.predicted_rate, 0);

  ProvisionRequest request;
  request.target_rate = lp.predicted_rate;
  request.allow_cache = false;
  const ProvisionPlan provision = PlanProvision(model, request);
  ASSERT_TRUE(provision.feasible) << provision.infeasible_reason;
  // Small tolerance: the LP rounds sequential stages' caps.
  EXPECT_LE(provision.cores_needed, cores * 1.01);
}

TEST_P(DualityTest, LpOnProvisionedCoresReachesTheTarget) {
  const auto [traced_parallelism, cores] = GetParam();
  PipelineModel model = BuildModel(traced_parallelism, cores);
  const LpPlan lp = PlanAllocation(model);
  const double target = lp.predicted_rate * 0.5;  // comfortably feasible

  ProvisionRequest request;
  request.target_rate = target;
  request.allow_cache = false;
  const ProvisionPlan provision = PlanProvision(model, request);
  ASSERT_TRUE(provision.feasible);

  // Re-solve the LP with exactly the provisioned cores: the predicted
  // rate must cover the target.
  TraceSnapshot trace = model.trace();
  trace.machine.num_cores =
      static_cast<int>(std::ceil(provision.cores_needed));
  PipelineModel shrunk =
      std::move(PipelineModel::Build(trace, &env_->udfs)).value();
  const LpPlan replay = PlanAllocation(shrunk);
  EXPECT_GE(replay.predicted_rate, target * 0.99);
}

TEST_P(DualityTest, ThetaAgreesBetweenLpAndProvisioner) {
  const auto [traced_parallelism, cores] = GetParam();
  const PipelineModel model = BuildModel(traced_parallelism, cores);
  const LpPlan lp = PlanAllocation(model);
  ProvisionRequest request;
  request.target_rate = lp.predicted_rate;
  request.allow_cache = false;
  const ProvisionPlan provision = PlanProvision(model, request);
  ASSERT_TRUE(provision.feasible);
  // At the LP's own rate, the provisioner's theta for the bottleneck
  // stage matches the LP's allocation (both equal target / Ri).
  const auto lp_theta = lp.theta.find(lp.bottleneck);
  const auto pv_theta = provision.theta.find(lp.bottleneck);
  ASSERT_NE(lp_theta, lp.theta.end());
  ASSERT_NE(pv_theta, provision.theta.end());
  EXPECT_NEAR(pv_theta->second, lp_theta->second,
              0.05 * std::max(1.0, lp_theta->second));
}

INSTANTIATE_TEST_SUITE_P(
    Machines, DualityTest,
    ::testing::Combine(::testing::Values(1, 4),
                       ::testing::Values(4, 8, 16)),
    [](const ::testing::TestParamInfo<DualityParam>& info) {
      return "par" + std::to_string(std::get<0>(info.param)) + "_cores" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace plumber
