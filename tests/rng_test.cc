#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace plumber {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.2);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.2, 0.01);
}

TEST(SplitMixTest, DistinctInputsDistinctOutputs) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(SplitMix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace plumber
