#include <gtest/gtest.h>

#include "src/queueing/mm1k.h"
#include "src/queueing/operational.h"

namespace plumber {
namespace {

TEST(OperationalTest, VisitRatioRecurrence) {
  // Root V=1; child completing 128x more often has V=128.
  EXPECT_DOUBLE_EQ(VisitRatio(128, 1, 1.0), 128.0);
  // Grandchild completing at half the child's rate: V = 64.
  EXPECT_DOUBLE_EQ(VisitRatio(64, 128, 128.0), 64.0);
  EXPECT_DOUBLE_EQ(VisitRatio(10, 0, 1.0), 0.0);
}

TEST(OperationalTest, UtilizationLaw) {
  EXPECT_DOUBLE_EQ(UtilizationLaw(30.0, 0.02), 0.6);
}

TEST(OperationalTest, BottleneckBound) {
  EXPECT_DOUBLE_EQ(BottleneckBound({0.1, 0.5, 0.25}), 2.0);
  EXPECT_DOUBLE_EQ(BottleneckBound({}), 0.0);
}

TEST(OperationalTest, ResponseTimeBound) {
  EXPECT_DOUBLE_EQ(ResponseTimeBound(1.0, 0.5, 10, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(ResponseTimeBound(1.0, 0.05, 10, 2.0), 1.0);
}

TEST(Mm1kTest, ProbabilitiesSumToOne) {
  for (double rho : {0.2, 0.8, 1.0, 1.5}) {
    for (int k : {1, 2, 8}) {
      double total = 0;
      // p_0 + ... + p_k via the exposed functions: use empty + full +
      // reconstruct middles from occupancy identity instead; here we
      // just sanity-check bounds.
      const double p0 = Mm1kProbEmpty(rho, k);
      const double pk = Mm1kProbFull(rho, k);
      EXPECT_GE(p0, 0.0);
      EXPECT_LE(p0, 1.0);
      EXPECT_GE(pk, 0.0);
      EXPECT_LE(pk, 1.0);
      total = p0 + pk;
      EXPECT_LE(total, 2.0);
    }
  }
}

TEST(Mm1kTest, EmptyProbabilityFallsWithLoad) {
  EXPECT_GT(Mm1kProbEmpty(0.2, 4), Mm1kProbEmpty(0.9, 4));
  EXPECT_GT(Mm1kProbEmpty(0.9, 2), Mm1kProbEmpty(0.9, 16));
  EXPECT_DOUBLE_EQ(Mm1kProbEmpty(0.0, 4), 1.0);
}

TEST(Mm1kTest, FullProbabilityRisesWithLoad) {
  EXPECT_LT(Mm1kProbFull(0.2, 4), Mm1kProbFull(1.5, 4));
  EXPECT_DOUBLE_EQ(Mm1kProbFull(0.0, 4), 0.0);
}

TEST(Mm1kTest, BalancedQueueUniform) {
  // rho == 1: all k+1 states equally likely.
  EXPECT_NEAR(Mm1kProbEmpty(1.0, 4), 0.2, 1e-9);
  EXPECT_NEAR(Mm1kProbFull(1.0, 4), 0.2, 1e-9);
  EXPECT_NEAR(Mm1kExpectedOccupancy(1.0, 4), 2.0, 1e-9);
}

TEST(Mm1kTest, ThroughputLossOnlyFromBlocking) {
  const double lambda = 100;
  EXPECT_NEAR(Mm1kThroughput(lambda, 0.1, 8), lambda, 1.0);
  EXPECT_LT(Mm1kThroughput(lambda, 2.0, 2), lambda);
}

TEST(Mm1kTest, OverlappedLatencyShrinksWithBuffer) {
  const double upstream = 1e-3;
  const double small = Mm1kOverlappedLatency(upstream, 0.95, 2);
  const double large = Mm1kOverlappedLatency(upstream, 0.95, 16);
  EXPECT_GT(small, large);
  EXPECT_LT(large, upstream);
}

}  // namespace
}  // namespace plumber
