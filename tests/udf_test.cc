#include "src/pipeline/udf.h"

#include <gtest/gtest.h>

namespace plumber {
namespace {

UdfSpec Spec(const std::string& name, bool random = false,
             std::vector<std::string> calls = {}) {
  UdfSpec s;
  s.name = name;
  s.accesses_random_seed = random;
  s.calls = std::move(calls);
  return s;
}

TEST(UdfRegistryTest, RegisterAndFind) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.Register(Spec("a")).ok());
  EXPECT_NE(reg.Find("a"), nullptr);
  EXPECT_EQ(reg.Find("b"), nullptr);
  EXPECT_EQ(reg.Register(Spec("a")).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(reg.Register(UdfSpec{}).ok());  // empty name
}

TEST(UdfRegistryTest, DirectRandomness) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.Register(Spec("pure")).ok());
  ASSERT_TRUE(reg.Register(Spec("rand", true)).ok());
  EXPECT_FALSE(reg.IsTransitivelyRandom("pure"));
  EXPECT_TRUE(reg.IsTransitivelyRandom("rand"));
}

TEST(UdfRegistryTest, TransitiveRandomnessThroughChain) {
  // f -> g -> h(random): f is transitively random (paper §B.1).
  UdfRegistry reg;
  ASSERT_TRUE(reg.Register(Spec("h", true)).ok());
  ASSERT_TRUE(reg.Register(Spec("g", false, {"h"})).ok());
  ASSERT_TRUE(reg.Register(Spec("f", false, {"g"})).ok());
  EXPECT_TRUE(reg.IsTransitivelyRandom("f"));
  EXPECT_TRUE(reg.IsTransitivelyRandom("g"));
}

TEST(UdfRegistryTest, ClosureHandlesCycles) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.Register(Spec("a", false, {"b"})).ok());
  ASSERT_TRUE(reg.Register(Spec("b", false, {"a"})).ok());
  EXPECT_FALSE(reg.IsTransitivelyRandom("a"));  // must terminate
}

TEST(UdfRegistryTest, UnknownCalleesIgnored) {
  UdfRegistry reg;
  ASSERT_TRUE(reg.Register(Spec("f", false, {"ghost"})).ok());
  EXPECT_FALSE(reg.IsTransitivelyRandom("f"));
}

TEST(ExecuteMapUdfTest, SizeRatioApplied) {
  UdfSpec spec = Spec("resize");
  spec.size_ratio = 3.0;
  Element in = Element::FromBuffer(Buffer(100, 1), 5);
  const Element out = ExecuteMapUdf(spec, in, 1.0, 9);
  EXPECT_EQ(out.TotalBytes(), 300u);
  EXPECT_EQ(out.sequence, 5u);
}

TEST(ExecuteMapUdfTest, SizeOffsetApplied) {
  UdfSpec spec = Spec("pad");
  spec.size_ratio = 0.0;
  spec.size_offset_bytes = 64;
  Element in = Element::FromBuffer(Buffer(100, 1));
  EXPECT_EQ(ExecuteMapUdf(spec, in, 1.0, 9).TotalBytes(), 64u);
}

TEST(ExecuteMapUdfTest, DeterministicForSameSeed) {
  UdfSpec spec = Spec("t");
  spec.size_ratio = 2.0;
  Element in = Element::FromBuffer(Buffer(50, 7));
  const Element a = ExecuteMapUdf(spec, in, 1.0, 3);
  const Element b = ExecuteMapUdf(spec, in, 1.0, 3);
  EXPECT_EQ(a.components, b.components);
}

TEST(ExecuteMapUdfTest, MultiComponentInputConcatenated) {
  UdfSpec spec = Spec("t");
  Element in;
  in.components.push_back(Buffer(30, 1));
  in.components.push_back(Buffer(70, 2));
  const Element out = ExecuteMapUdf(spec, in, 1.0, 3);
  EXPECT_EQ(out.components.size(), 1u);
  EXPECT_EQ(out.TotalBytes(), 100u);
}

TEST(ExecuteMapUdfTest, InternalParallelismPreservesOutputSize) {
  UdfSpec spec = Spec("heavy");
  spec.cost_ns_per_element = 100000;
  spec.internal_parallelism = 3;
  spec.size_ratio = 1.5;
  Element in = Element::FromBuffer(Buffer(100, 1));
  EXPECT_EQ(ExecuteMapUdf(spec, in, 1.0, 3).TotalBytes(), 150u);
}

TEST(ExecuteFilterUdfTest, KeepAllAndKeepNone) {
  UdfSpec keep_all = Spec("ka");
  keep_all.keep_fraction = 1.0;
  UdfSpec keep_none = Spec("kn");
  keep_none.keep_fraction = 0.0;
  Element in = Element::FromBuffer(Buffer(10, 1), 0);
  EXPECT_TRUE(ExecuteFilterUdf(keep_all, in, 1.0, 1));
  EXPECT_FALSE(ExecuteFilterUdf(keep_none, in, 1.0, 1));
}

TEST(ExecuteFilterUdfTest, KeepFractionStatistics) {
  UdfSpec spec = Spec("half");
  spec.keep_fraction = 0.5;
  int kept = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    Element e = Element::FromBuffer(Buffer(1, 0), i);
    kept += ExecuteFilterUdf(spec, e, 1.0, 77);
  }
  EXPECT_NEAR(kept / static_cast<double>(n), 0.5, 0.03);
}

TEST(ExecuteFilterUdfTest, DecisionDeterministicPerSequence) {
  UdfSpec spec = Spec("half");
  spec.keep_fraction = 0.5;
  Element e = Element::FromBuffer(Buffer(1, 0), 1234);
  const bool first = ExecuteFilterUdf(spec, e, 1.0, 9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ExecuteFilterUdf(spec, e, 1.0, 9), first);
  }
}

}  // namespace
}  // namespace plumber
