// Pass framework tests: registry contents, schedule parsing, legacy
// flag derivation, default-schedule equivalence with the pre-framework
// optimizer, and the BatchSizePass decision rule.
#include "src/core/passes/pass_registry.h"

#include <gtest/gtest.h>

#include "src/core/optimizer.h"
#include "src/core/passes/builtin_passes.h"
#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

TEST(PassRegistryTest, BuiltinsRegisteredInCanonicalOrder) {
  const std::vector<std::string> names = PassRegistry::Global().Names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "parallelism");
  EXPECT_EQ(names[1], "prefetch");
  EXPECT_EQ(names[2], "cache");
  EXPECT_EQ(names[3], "batch");
  EXPECT_EQ(names[4], "cache_tiers");
  EXPECT_EQ(names[5], "shard_sources");
  for (const std::string& name : names) {
    auto pass = PassRegistry::Global().Create(name);
    ASSERT_TRUE(pass.ok()) << name;
    EXPECT_EQ((*pass)->name(), name);
    // The cache passes and the shard pass declare a re-parallelism
    // follow-up (redistribute the cores their rewrite frees or the
    // bandwidth it adds) in generated schedules.
    if (name == "cache" || name == "cache_tiers" ||
        name == "shard_sources") {
      EXPECT_STREQ((*pass)->followup(), "parallelism") << name;
    } else {
      EXPECT_EQ((*pass)->followup(), nullptr) << name;
    }
  }
}

TEST(PassRegistryTest, CreateUnknownPassFails) {
  EXPECT_EQ(PassRegistry::Global().Create("bogus").status().code(),
            StatusCode::kNotFound);
}

TEST(PassRegistryTest, RejectsDuplicateAndMalformedNames) {
  PassRegistry registry;
  auto factory = [] {
    return std::unique_ptr<OptimizerPass>(new ParallelismPass());
  };
  EXPECT_TRUE(registry.Register("mine", factory).ok());
  EXPECT_EQ(registry.Register("mine", factory).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Register("", factory).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("a,b", factory).code(),
            StatusCode::kInvalidArgument);
}

TEST(PassScheduleTest, ParsesDefaultSchedule) {
  auto schedule = PassSchedule::Parse(kDefaultPassSchedule);
  ASSERT_TRUE(schedule.ok());
  const std::vector<std::string> expected = {"parallelism", "prefetch",
                                             "cache", "parallelism"};
  EXPECT_EQ(schedule->passes(), expected);
  EXPECT_EQ(schedule->ToString(), kDefaultPassSchedule);
}

TEST(PassScheduleTest, TrimsWhitespaceAndAllowsRepeats) {
  auto schedule = PassSchedule::Parse(" parallelism ,\tbatch , parallelism");
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  const std::vector<std::string> expected = {"parallelism", "batch",
                                             "parallelism"};
  EXPECT_EQ(schedule->passes(), expected);
}

TEST(PassScheduleTest, EmptyStringIsEmptySchedule) {
  auto schedule = PassSchedule::Parse("");
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->empty());
}

TEST(PassScheduleTest, UnknownPassNameIsInvalidArgument) {
  auto schedule = PassSchedule::Parse("parallelism,bogus");
  ASSERT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument);
  // The error names the offender and the known passes.
  EXPECT_NE(schedule.status().message().find("bogus"), std::string::npos);
  EXPECT_NE(schedule.status().message().find("parallelism"),
            std::string::npos);
}

TEST(PassScheduleTest, EmptyComponentIsInvalidArgument) {
  EXPECT_EQ(PassSchedule::Parse("parallelism,,cache").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PassSchedule::Parse(",parallelism").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PassSchedule::Parse("parallelism,").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OptimizeOptionsTest, EffectiveScheduleMatchesLegacyFlagDerivation) {
  OptimizeOptions options;
  EXPECT_EQ(options.EffectiveSchedule(), kDefaultPassSchedule);
  options.enable_cache = false;
  EXPECT_EQ(options.EffectiveSchedule(), "parallelism,prefetch,parallelism");
  options.enable_prefetch = false;
  EXPECT_EQ(options.EffectiveSchedule(), "parallelism,parallelism");
  options.passes = 1;
  EXPECT_EQ(options.EffectiveSchedule(), "parallelism");
  options.enable_parallelism = false;
  EXPECT_EQ(options.EffectiveSchedule(), "");
  // An explicit schedule wins over every legacy knob.
  options.schedule = "batch";
  EXPECT_EQ(options.EffectiveSchedule(), "batch");
  // The "none" sentinel is the explicitly empty schedule, distinct
  // from "" (= derive from the legacy knobs).
  options = OptimizeOptions();
  options.schedule = "none";
  EXPECT_EQ(options.EffectiveSchedule(), "");
}

GraphDef MisconfiguredGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("expensive", n, "slow");
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  return std::move(b.Build(n)).value();
}

OptimizeOptions MakeOptions(PipelineTestEnv& env) {
  OptimizeOptions options;
  options.machine = MachineSpec::SetupA();
  options.machine.num_cores = 8;
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.trace_seconds = 0.2;
  return options;
}

TEST(PassFrameworkTest, UnknownPassInScheduleFailsBeforeTracing) {
  PipelineTestEnv env(2, 20, 64);
  OptimizeOptions options = MakeOptions(env);
  options.schedule = "parallelism,no_such_pass";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PassFrameworkTest, EmptyScheduleStillTracesTheInput) {
  // All legacy knobs disabled derives an empty schedule; the graph is
  // returned untouched but the observed rate is still measured (the
  // pre-framework optimizer traced even with every pass disabled).
  PipelineTestEnv env(2, 20, 64);
  OptimizeOptions options = MakeOptions(env);
  options.enable_parallelism = false;
  options.enable_prefetch = false;
  options.enable_cache = false;
  PlumberOptimizer optimizer(options);
  const GraphDef input = MisconfiguredGraph();
  auto result = optimizer.Optimize(input);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->pass_reports.empty());
  EXPECT_EQ(result->graph.Serialize(), input.Serialize());
  EXPECT_GT(result->traced_rate, 0);
}

TEST(PassFrameworkTest, DefaultScheduleProducesOneReportPerPass) {
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.machine.memory_bytes = 10 << 20;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->pass_reports.size(), 4u);
  EXPECT_EQ(result->pass_reports[0].pass, "parallelism");
  EXPECT_EQ(result->pass_reports[1].pass, "prefetch");
  EXPECT_EQ(result->pass_reports[2].pass, "cache");
  EXPECT_EQ(result->pass_reports[3].pass, "parallelism");
  // The parallelism and prefetch passes always rewrite; their typed
  // decisions surface both per report and folded into the flat fields.
  EXPECT_TRUE(result->pass_reports[0].changed);
  EXPECT_GT(result->pass_reports[0].plan.predicted_rate, 0);
  EXPECT_TRUE(result->pass_reports[1].changed);
  EXPECT_GE(result->pass_reports[1].prefetch.root_buffer, 1);
  EXPECT_EQ(result->prefetch.root_buffer,
            result->pass_reports[1].prefetch.root_buffer);
  // The folded plan is the final parallelism pass's plan.
  EXPECT_EQ(result->plan.predicted_rate,
            result->pass_reports[3].plan.predicted_rate);
  // First trace feeds passes 0-2 (one trace per iteration, as in the
  // pre-framework optimizer); the final parallelism pass re-traces.
  EXPECT_EQ(result->pass_reports[0].traced_rate,
            result->pass_reports[1].traced_rate);
  EXPECT_EQ(result->pass_reports[1].traced_rate,
            result->pass_reports[2].traced_rate);
}

// A cheap-UDF high-parallelism pipeline is engine-overhead-bound:
// exactly the case the batch pass exists for.
GraphDef CheapUdfGraph(int parallelism) {
  GraphBuilder b;
  auto n = b.Range("src", -1);
  n = b.Map("m", n, "noop", parallelism);
  return std::move(b.Build(n)).value();
}

TEST(BatchSizePassTest, PicksLargeBatchForCheapParallelStage) {
  PipelineTestEnv env(2, 20, 64);
  OptimizeOptions options = MakeOptions(env);
  options.schedule = "batch";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(CheapUdfGraph(8));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->pass_reports.size(), 1u);
  EXPECT_TRUE(result->pass_reports[0].changed);
  EXPECT_GT(result->pass_reports[0].engine_batch_size, 1);
  EXPECT_EQ(rewriter::GetEngineBatchSize(result->graph),
            result->pass_reports[0].engine_batch_size);
}

TEST(BatchSizePassTest, ExpensiveStageStaysAtBatchOne) {
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  // LP first so the 200us map becomes parallel, then the batch pass
  // must still leave it element-at-a-time (work dwarfs the overhead).
  options.schedule = "parallelism,batch";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(*rewriter::GetParallelism(result->graph, "expensive"), 1);
  EXPECT_EQ(rewriter::GetEngineBatchSize(result->graph), 0);
  EXPECT_FALSE(result->pass_reports.back().changed);
}

TEST(BatchSizePassTest, SequentialPipelineStaysAtBatchOne) {
  PipelineTestEnv env(2, 20, 64);
  OptimizeOptions options = MakeOptions(env);
  options.schedule = "batch";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(CheapUdfGraph(1));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(rewriter::GetEngineBatchSize(result->graph), 0);
}

TEST(BatchSizePassTest, RespectsExplicitEngineBatchSize) {
  PipelineTestEnv env(2, 20, 64);
  // Any explicit choice is respected — including 1, the classic
  // element-at-a-time engine; only the unset default (0) is autotuned.
  for (int explicit_batch : {1, 16}) {
    OptimizeOptions options = MakeOptions(env);
    options.schedule = "batch";
    options.engine_batch_size = explicit_batch;
    PlumberOptimizer optimizer(options);
    auto result = optimizer.Optimize(CheapUdfGraph(8));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(rewriter::GetEngineBatchSize(result->graph), 0)
        << "explicit " << explicit_batch;
    EXPECT_FALSE(result->pass_reports[0].changed);
  }
}

const NodeDef* FindCacheNode(const GraphDef& graph) {
  for (const NodeDef& node : graph.nodes()) {
    if (node.op == "cache") return &node;
  }
  return nullptr;
}

TEST(CachePlacementPassTest, MemoryPlacementMatchesCachePass) {
  // When the materialization fits DRAM, cache_tiers must place the
  // exact cache node CachePass would: same insertion point, same name,
  // and no tier attr (the memory-tier rewrite is bit-identical).
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.machine.memory_bytes = 1ull << 30;
  options.machine.scratch = DeviceSpec::NvmeSsd();
  options.machine.scratch_bytes = 64ull << 20;
  options.schedule = "cache_tiers";
  auto tiered = PlumberOptimizer(options).Optimize(MisconfiguredGraph());
  ASSERT_TRUE(tiered.ok()) << tiered.status();
  options.schedule = "cache";
  auto legacy = PlumberOptimizer(options).Optimize(MisconfiguredGraph());
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  EXPECT_EQ(tiered->tiered_cache.tier, CacheTier::kMemory);
  const NodeDef* a = FindCacheNode(tiered->graph);
  const NodeDef* b = FindCacheNode(legacy->graph);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->name, b->name);
  EXPECT_EQ(a->inputs, b->inputs);
  EXPECT_FALSE(a->HasAttr(kAttrCacheTier));
}

TEST(CachePlacementPassTest, FallsBackToDiskUnderTightMemory) {
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.machine.memory_bytes = 1024;  // nothing fits DRAM
  options.machine.scratch = DeviceSpec::NvmeSsd();
  options.machine.scratch_bytes = 64ull << 20;
  options.schedule = "cache_tiers";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->tiered_cache.feasible);
  EXPECT_EQ(result->tiered_cache.tier, CacheTier::kDisk);
  EXPECT_GT(result->tiered_cache.disk_serve_rate, 0);
  const NodeDef* cache = FindCacheNode(result->graph);
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->GetString(kAttrCacheTier), "disk");
}

TEST(CachePlacementPassTest, SkipsWithoutAnyFittingTier) {
  // Tight memory and no scratch tier: the pass reports infeasible and
  // leaves the graph cache-free instead of forcing a bad placement.
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.machine.memory_bytes = 1024;
  options.machine.scratch_bytes = 0;
  options.schedule = "cache_tiers";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->tiered_cache.feasible);
  EXPECT_FALSE(result->pass_reports[0].changed);
  EXPECT_EQ(FindCacheNode(result->graph), nullptr);
}

TEST(ShardSourcesPassTest, SolvesShardCountFromDiskBound) {
  // A few hundred bytes/sec of modeled disk against a CPU plan in the
  // hundreds of minibatches/sec: the solve wants far more shards than
  // exist, so the count clamps to the file count (4).
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.schedule = "shard_sources";
  options.lp_options.disk_bandwidth = 500;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->pass_reports[0].changed);
  EXPECT_EQ(result->shard_count, 4);
  EXPECT_TRUE(rewriter::HasOp(result->graph, "shard_merge"));
  EXPECT_TRUE(result->graph.Validate().ok());
  // The original unsharded source chain is gone.
  EXPECT_EQ(result->graph.FindNode("interleave"), nullptr);
  EXPECT_EQ(result->graph.FindNode("files"), nullptr);
}

TEST(ShardSourcesPassTest, SkipsWhenNotDiskLimited) {
  // Without a modeled disk bound there is nothing to shard away.
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.schedule = "shard_sources";
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->pass_reports[0].changed);
  EXPECT_EQ(result->shard_count, 0);
  EXPECT_FALSE(rewriter::HasOp(result->graph, "shard_merge"));
}

TEST(PassFrameworkTest, DefaultScheduleIgnoresPlacementPasses) {
  // The placement passes are opt-in: even with a scratch tier and a
  // disk bound configured, the default schedule neither stamps a cache
  // tier nor shards the source.
  EXPECT_EQ(std::string(kDefaultPassSchedule).find("cache_tiers"),
            std::string::npos);
  EXPECT_EQ(std::string(kDefaultPassSchedule).find("shard_sources"),
            std::string::npos);
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.machine.memory_bytes = 10 << 20;
  options.machine.scratch = DeviceSpec::NvmeSsd();
  options.machine.scratch_bytes = 64ull << 20;
  options.lp_options.disk_bandwidth = 500;
  ASSERT_EQ(options.EffectiveSchedule(), kDefaultPassSchedule);
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(rewriter::HasOp(result->graph, "shard_merge"));
  const NodeDef* cache = FindCacheNode(result->graph);
  if (cache != nullptr) {
    EXPECT_FALSE(cache->HasAttr(kAttrCacheTier));
  }
}

TEST(PassFrameworkTest, RetraceHookSeesRewrittenGraph) {
  // The context's re-trace hook is the seam between passes and the
  // runtime: the second parallelism pass of the default schedule must
  // trace the graph the earlier passes rewrote, not the input.
  PipelineTestEnv env(4, 50, 64);
  OptimizeOptions options = MakeOptions(env);
  options.enable_cache = false;
  OptimizationContext ctx(MisconfiguredGraph(), options);
  int traces = 0;
  bool saw_prefetch_root = false;
  ctx.set_retrace_hook(
      [&](const GraphDef& g) -> StatusOr<TraceSnapshot> {
        ++traces;
        saw_prefetch_root =
            g.FindNode(g.output()) != nullptr &&
            g.FindNode(g.output())->op == "prefetch";
        ASSIGN_OR_RETURN(auto pipeline,
                         Pipeline::Create(g, options.MakePipelineOptions()));
        TraceOptions topts;
        topts.trace_seconds = 0.1;
        topts.machine = options.machine;
        TraceSnapshot trace = CaptureTrace(*pipeline, topts);
        pipeline->Cancel();
        return trace;
      });
  ParallelismPass parallelism;
  PrefetchPass prefetch;
  ASSERT_TRUE(parallelism.Run(ctx).ok());
  EXPECT_EQ(traces, 1);
  EXPECT_FALSE(saw_prefetch_root);
  ASSERT_TRUE(prefetch.Run(ctx).ok());
  EXPECT_EQ(traces, 1);  // prefetch plans from the latest model
  ASSERT_TRUE(parallelism.Run(ctx).ok());
  EXPECT_EQ(traces, 2);  // graph changed -> fresh trace
  EXPECT_TRUE(saw_prefetch_root);
}

}  // namespace
}  // namespace plumber
