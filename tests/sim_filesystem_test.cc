#include "src/io/sim_filesystem.h"

#include <gtest/gtest.h>

#include "src/io/storage_device.h"
#include "src/util/cpu_timer.h"

namespace plumber {
namespace {

TEST(SimFilesystemTest, CreateAndList) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRecordFile("data/a-0", 1, {100, 200}).ok());
  ASSERT_TRUE(fs.CreateRecordFile("data/a-1", 2, {50}).ok());
  ASSERT_TRUE(fs.CreateRawFile("other/b", 3, 1000).ok());
  EXPECT_EQ(fs.List("data/").size(), 2u);
  EXPECT_EQ(fs.List("other/").size(), 1u);
  EXPECT_EQ(fs.List("nope/").size(), 0u);
  EXPECT_TRUE(fs.Exists("data/a-0"));
  EXPECT_FALSE(fs.Exists("data/a-2"));
  EXPECT_EQ(fs.NumFiles(), 3u);
}

TEST(SimFilesystemTest, DuplicateCreateFails) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRecordFile("x", 1, {10}).ok());
  EXPECT_EQ(fs.CreateRecordFile("x", 1, {10}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fs.CreateRawFile("x", 1, 10).code(),
            StatusCode::kAlreadyExists);
}

TEST(SimFilesystemTest, FileSizeIncludesFraming) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRecordFile("x", 1, {100, 200}).ok());
  auto size = fs.FileSize("x");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 300 + 2 * kRecordFramingBytes);
  EXPECT_FALSE(fs.FileSize("missing").ok());
}

TEST(RecordReaderTest, ReadsAllRecordsWithCorrectSizes) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRecordFile("x", 7, {10, 20, 30}).ok());
  auto reader = std::move(fs.OpenRecord("x")).value();
  std::vector<uint8_t> payload;
  bool end = false;
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  EXPECT_FALSE(end);
  EXPECT_EQ(payload.size(), 10u);
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  EXPECT_EQ(payload.size(), 20u);
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  EXPECT_EQ(payload.size(), 30u);
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  EXPECT_TRUE(end);
}

TEST(RecordReaderTest, ContentDeterministicPerRecord) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRecordFile("x", 7, {64, 64}).ok());
  auto r1 = std::move(fs.OpenRecord("x")).value();
  auto r2 = std::move(fs.OpenRecord("x")).value();
  std::vector<uint8_t> a, b;
  bool end;
  ASSERT_TRUE(r1->ReadRecord(&a, &end).ok());
  ASSERT_TRUE(r2->ReadRecord(&b, &end).ok());
  EXPECT_EQ(a, b);
  // Second record differs from the first.
  ASSERT_TRUE(r1->ReadRecord(&b, &end).ok());
  EXPECT_NE(a, b);
}

TEST(SimFilesystemTest, ReadLogTracksBytesAndCompletion) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRecordFile("x", 7, {100, 100}).ok());
  auto reader = std::move(fs.OpenRecord("x")).value();
  std::vector<uint8_t> payload;
  bool end;
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  auto log = fs.SnapshotReadLog();
  ASSERT_EQ(log.count("x"), 1u);
  EXPECT_EQ(log["x"].bytes_read, 100 + kRecordFramingBytes);
  EXPECT_FALSE(log["x"].fully_read);
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  log = fs.SnapshotReadLog();
  EXPECT_TRUE(log["x"].fully_read);
  EXPECT_EQ(log["x"].file_size, 200 + 2 * kRecordFramingBytes);
  EXPECT_EQ(fs.total_bytes_read(), 200 + 2 * kRecordFramingBytes);
  fs.ClearReadLog();
  EXPECT_EQ(fs.total_bytes_read(), 0u);
}

TEST(RawReaderTest, ReadsAndLoops) {
  SimFilesystem fs;
  ASSERT_TRUE(fs.CreateRawFile("x", 7, 100).ok());
  auto reader = std::move(fs.OpenRaw("x")).value();
  EXPECT_EQ(reader->Read(60), 60u);
  EXPECT_EQ(reader->Read(60), 40u);  // truncated at EOF
  EXPECT_EQ(reader->Read(60), 0u);   // EOF, no loop
  EXPECT_EQ(reader->Read(60, /*loop=*/true), 60u);
}

TEST(SimFilesystemTest, DeviceChargedForReads) {
  StorageDevice device(DeviceSpec::Unlimited());
  SimFilesystem fs(&device);
  ASSERT_TRUE(fs.CreateRecordFile("x", 7, {100}).ok());
  auto reader = std::move(fs.OpenRecord("x")).value();
  std::vector<uint8_t> payload;
  bool end;
  ASSERT_TRUE(reader->ReadRecord(&payload, &end).ok());
  EXPECT_EQ(device.total_bytes_read(), 100 + kRecordFramingBytes);
  EXPECT_EQ(device.total_reads(), 1u);
}

TEST(StorageDeviceTest, TokenBucketLimitsReadBandwidth) {
  StorageDevice device(DeviceSpec::TokenBucketLimit(1e6));  // 1MB/s
  device.SetBandwidth(1e6);
  SimFilesystem fs(&device);
  ASSERT_TRUE(fs.CreateRawFile("x", 7, 10 << 20).ok());
  auto reader = std::move(fs.OpenRaw("x")).value();
  const int64_t t0 = WallNanos();
  uint64_t total = 0;
  // Read 1.2MB beyond the 1MB burst: should take >=0.15s.
  while (total < 1'200'000 + 1'000'000) {
    total += reader->Read(100'000, /*loop=*/true);
  }
  EXPECT_GT((WallNanos() - t0) * 1e-9, 0.1);
}

TEST(StorageDeviceTest, PerStreamCapScalesWithParallelism) {
  DeviceSpec spec = DeviceSpec::CloudStorage(/*aggregate=*/1e12,
                                             /*per_stream=*/1e6);
  StorageDevice device(spec);
  auto s1 = device.OpenStream();
  auto s2 = device.OpenStream();
  // Each stream has an independent 1e6/s budget with 1e6 burst:
  // acquiring 1e6 on both immediately must succeed without waiting on a
  // shared limit.
  const int64_t t0 = WallNanos();
  s1->Charge(1'000'000);
  s2->Charge(1'000'000);
  EXPECT_LT((WallNanos() - t0) * 1e-9, 0.2);
}

TEST(StorageDeviceTest, PresetSpecs) {
  EXPECT_GT(DeviceSpec::Hdd().max_bandwidth, 0);
  EXPECT_GT(DeviceSpec::NvmeSsd().max_bandwidth,
            DeviceSpec::Hdd().max_bandwidth);
  EXPECT_EQ(DeviceSpec::Unlimited().max_bandwidth, 0);
}

}  // namespace
}  // namespace plumber
