// SLO-aware scheduling tests: tiered weighted water-fill planning,
// live preemption (interactive arrivals parking batch worker pools to
// their floor and restoring them on departure), per-class admission
// backpressure, class-ordered queueing, the partial-traced-rate
// warning contract, and the governor's park/restore cycle under load
// (element identity, no worker-thread leak).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>
#include <vector>

#include "src/core/multi_job_planner.h"
#include "src/core/plumber.h"
#include "src/pipeline/ops.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::ExpectIdenticalOutput;
using testing_util::PipelineTestEnv;

// Polls a condition until it holds or the deadline passes. Executor
// scheduling is asynchronous (50ms ticks), so state assertions poll.
bool PollUntil(const std::function<bool()>& cond, double seconds = 20) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

Session MakeSession(int num_cores, SessionOptions so = {}) {
  so.machine.num_cores = num_cores;
  Session session(std::move(so));
  UdfSpec work;
  work.name = "work";
  work.cost_ns_per_element = 1e6;  // 1ms: modeled occupancy, kTimed
  EXPECT_TRUE(session.RegisterUdf(work).ok());
  return session;
}

int LiveParallelism(const JobHandle& job, const std::string& node) {
  for (const auto& s : job.Progress().node_stats) {
    if (s.name == node) return s.parallelism;
  }
  return -1;
}

JobDemand OneStageDemand(const std::string& id, int cap, double weight = 1.0,
                         int tier = 0) {
  JobDemand d;
  d.job_id = id;
  d.stages.push_back({"m", 1.0, false});
  d.max_parallelism["m"] = cap;
  d.weight = weight;
  d.tier = tier;
  return d;
}

// ------------------------------------------------- planner: weights

TEST(SloPlannerTest, WeightsSplitCoresProportionally) {
  // Same tier, weights 3:1 on 8 cores: the weighted water-fill
  // equalizes rate/weight, so the heavy job runs (and is granted) 3x.
  const MultiJobPlan plan = PlanMultiJobAllocation(
      {OneStageDemand("heavy", 8, 3.0), OneStageDemand("light", 8, 1.0)}, 8);
  EXPECT_NEAR(plan.fair_rate, 2.0, 1e-9);  // waterline: rate of weight 1
  EXPECT_NEAR(plan.jobs.at("heavy").theta.at("m"), 6.0, 1e-9);
  EXPECT_NEAR(plan.jobs.at("light").theta.at("m"), 2.0, 1e-9);
  EXPECT_EQ(plan.jobs.at("heavy").parallelism.at("m"), 6);
  EXPECT_EQ(plan.jobs.at("light").parallelism.at("m"), 2);
}

TEST(SloPlannerTest, CappedWeightedJobReleasesSurplusWithinTier) {
  // The weight-3 job can only use 2 workers: its surplus flows to the
  // weight-1 peer instead of idling (work conservation within a tier).
  const MultiJobPlan plan = PlanMultiJobAllocation(
      {OneStageDemand("capped", 2, 3.0), OneStageDemand("open", 8, 1.0)}, 8);
  EXPECT_EQ(plan.jobs.at("capped").parallelism.at("m"), 2);
  EXPECT_EQ(plan.jobs.at("open").parallelism.at("m"), 6);
  EXPECT_NEAR(plan.unused_cores, 0.0, 1e-9);
}

TEST(SloPlannerTest, DefaultsMatchUnweightedPlanBitForBit) {
  // Weight 1 / tier 0 (the defaults) must reproduce the original
  // unweighted maximin exactly — not approximately — so pre-SLO
  // callers see unchanged plans.
  JobDemand slow;
  slow.job_id = "slow";
  slow.stages.push_back({"m", 1.0, false});
  JobDemand quick;
  quick.job_id = "quick";
  quick.stages.push_back({"m", 2.0, false});
  const MultiJobPlan plan = PlanMultiJobAllocation({slow, quick}, 9);
  // The exact values the unweighted water-fill has always produced
  // (see MultiJobPlannerTest.RateAwareSplitEqualizesJobRates).
  EXPECT_EQ(plan.fair_rate, 6.0);
  EXPECT_EQ(plan.jobs.at("slow").theta.at("m"), 6.0);
  EXPECT_EQ(plan.jobs.at("quick").theta.at("m"), 3.0);
}

// --------------------------------------------------- planner: tiers

TEST(SloPlannerTest, InteractiveTierPreemptsBatchToFloor) {
  // One interactive + one batch job, both wanting all 8 cores: the
  // interactive tier is allocated first from everything except the
  // batch job's floor (1 core per costed stage).
  const MultiJobPlan plan = PlanMultiJobAllocation(
      {OneStageDemand("inter", 8, 1.0, 0), OneStageDemand("batch", 8, 1.0, 1)},
      8);
  EXPECT_EQ(plan.jobs.at("inter").parallelism.at("m"), 7);
  EXPECT_EQ(plan.jobs.at("batch").parallelism.at("m"), 1);
}

TEST(SloPlannerTest, SatisfiedInteractiveTierFlowsDownToBatch) {
  // The interactive job caps at 2 workers: the lower tier water-fills
  // the remaining 6 cores (work conservation across tiers).
  const MultiJobPlan plan = PlanMultiJobAllocation(
      {OneStageDemand("inter", 2, 1.0, 0), OneStageDemand("batch", 8, 1.0, 1)},
      8);
  EXPECT_EQ(plan.jobs.at("inter").parallelism.at("m"), 2);
  EXPECT_EQ(plan.jobs.at("batch").parallelism.at("m"), 6);
}

TEST(SloPlannerTest, ZeroBudgetTierStillGetsFloorGrant) {
  // A 1-core machine with an interactive job resident: the batch tier's
  // budget is squeezed to zero, but its plan still carries the
  // explicit 1-worker floor — the governor must receive target 1, not
  // silence (silence would leave the configured knob running).
  const MultiJobPlan plan = PlanMultiJobAllocation(
      {OneStageDemand("inter", 8, 1.0, 0), OneStageDemand("batch", 8, 1.0, 1)},
      1);
  ASSERT_EQ(plan.jobs.count("batch"), 1u);
  EXPECT_EQ(plan.jobs.at("batch").parallelism.at("m"), 1);
}

TEST(SloPlannerTest, ThreeTiersAllocateInOrder) {
  // interactive > batch > best-effort on 12 cores: tier 0 takes all
  // but the two floors, and each lower tier lives on what trickles
  // down.
  const MultiJobPlan plan = PlanMultiJobAllocation(
      {OneStageDemand("i", 16, 1.0, 0), OneStageDemand("b", 16, 1.0, 1),
       OneStageDemand("e", 16, 1.0, 2)},
      12);
  EXPECT_EQ(plan.jobs.at("i").parallelism.at("m"), 10);
  EXPECT_EQ(plan.jobs.at("b").parallelism.at("m"), 1);
  EXPECT_EQ(plan.jobs.at("e").parallelism.at("m"), 1);
}

TEST(SloPlannerTest, UnusedCoresReportedWhenDemandIsSmall) {
  // Every job frozen at its cap with budget left over: the surplus is
  // reported as genuinely unused, not silently lost.
  const MultiJobPlan plan =
      PlanMultiJobAllocation({OneStageDemand("only", 2)}, 8);
  EXPECT_EQ(plan.jobs.at("only").parallelism.at("m"), 2);
  EXPECT_NEAR(plan.unused_cores, 6.0, 1e-9);
  EXPECT_NEAR(plan.cores_used, 2.0, 1e-9);
}

// ----------------------------------------- planner: partial tracing

TEST(SloPlannerTest, PartiallyStampedGraphWarnsAndSkipsUnstamped) {
  GraphDef graph;
  NodeDef src;
  src.name = "src";
  src.op = "range";
  src.attrs[kAttrCount] = AttrValue(int64_t{1000});
  ASSERT_TRUE(graph.AddNode(std::move(src)).ok());
  for (const char* name : {"a", "b"}) {
    NodeDef map;
    map.name = name;
    map.op = "map";
    map.inputs = {name[0] == 'a' ? "src" : "a"};
    map.attrs[kAttrUdf] = AttrValue("noop");
    map.attrs[kAttrParallelism] = AttrValue(4);
    ASSERT_TRUE(graph.AddNode(std::move(map)).ok());
  }
  graph.SetOutput("b");

  // Untraced: uniform fallback covers both stages, no warning.
  std::string warning;
  const JobDemand untraced = DemandFromGraph("u", graph, &warning);
  EXPECT_EQ(untraced.stages.size(), 2u);
  EXPECT_TRUE(warning.empty());

  // One stamp flips the graph to traced mode: the unstamped tunable
  // node is excluded from the demand and the caller is warned.
  ASSERT_TRUE(rewriter::SetTracedRate(&graph, "a", 50.0).ok());
  const JobDemand partial = DemandFromGraph("p", graph, &warning);
  ASSERT_EQ(partial.stages.size(), 1u);
  EXPECT_EQ(partial.stages[0].name, "a");
  EXPECT_FALSE(warning.empty());
  EXPECT_NE(warning.find("partially traced"), std::string::npos);
  EXPECT_NE(warning.find("'b'"), std::string::npos);

  // Full coverage: warning stays untouched again.
  warning.clear();
  ASSERT_TRUE(rewriter::SetTracedRate(&graph, "b", 80.0).ok());
  const JobDemand full = DemandFromGraph("f", graph, &warning);
  EXPECT_EQ(full.stages.size(), 2u);
  EXPECT_TRUE(warning.empty());
}

// ------------------------------------------------ live preemption

TEST(SloSchedulerTest, InteractiveArrivalParksBatchAndDepartureRestores) {
  Session session = MakeSession(8);
  RunOptions window;
  window.max_seconds = 60;
  JobOptions batch_opts{window, "batch"};
  JobHandle batch = session.Submit(
      session.Range(1 << 30).Map("work", 8).Named("m"), batch_opts);
  // Alone it is never arbitrated: the configured knob stands.
  ASSERT_TRUE(PollUntil([&] { return LiveParallelism(batch, "m") == 8; }));

  JobOptions inter_opts{window, "inter"};
  inter_opts.slo = SloClass::kInteractive;
  JobHandle inter = session.Submit(
      session.Range(1 << 30).Map("work", 8).Named("i"), inter_opts);
  // The interactive arrival parks the batch pool to its floor of one
  // worker and takes the other 7 cores.
  ASSERT_TRUE(PollUntil([&] { return LiveParallelism(batch, "m") == 1; }))
      << LiveParallelism(batch, "m");
  ASSERT_TRUE(PollUntil([&] { return LiveParallelism(inter, "i") == 7; }))
      << LiveParallelism(inter, "i");
  // The parked job keeps making progress on its floor worker.
  const int64_t before = batch.Progress().batches;
  ASSERT_TRUE(PollUntil([&] { return batch.Progress().batches > before; }));

  // Departure restores the survivor to its configured knob.
  inter.Cancel();
  (void)inter.Wait();
  ASSERT_TRUE(PollUntil([&] { return LiveParallelism(batch, "m") == 8; }))
      << LiveParallelism(batch, "m");
  batch.Cancel();
  const auto report = batch.Wait();
  ASSERT_TRUE(report.ok()) << report.status();
}

TEST(SloSchedulerTest, PreemptionOffKeepsFlatFairShare) {
  SessionOptions so;
  so.slo_preemption = false;
  Session session = MakeSession(8, std::move(so));
  RunOptions window;
  window.max_seconds = 60;
  JobOptions batch_opts{window, "batch"};
  JobHandle batch = session.Submit(
      session.Range(1 << 30).Map("work", 8).Named("m"), batch_opts);
  JobOptions inter_opts{window, "inter"};
  inter_opts.slo = SloClass::kInteractive;
  JobHandle inter = session.Submit(
      session.Range(1 << 30).Map("work", 8).Named("i"), inter_opts);
  // Single flat tier: identical demands split evenly, class ignored.
  ASSERT_TRUE(PollUntil([&] {
    return LiveParallelism(batch, "m") == 4 && LiveParallelism(inter, "i") == 4;
  })) << LiveParallelism(batch, "m") << " " << LiveParallelism(inter, "i");
  batch.Cancel();
  inter.Cancel();
  (void)batch.Wait();
  (void)inter.Wait();
}

TEST(SloSchedulerTest, PriorityWeightsSharesWithinClass) {
  Session session = MakeSession(8);
  RunOptions window;
  window.max_seconds = 60;
  JobOptions heavy_opts{window, "heavy"};
  heavy_opts.priority = 3.0;
  JobHandle heavy = session.Submit(
      session.Range(1 << 30).Map("work", 8).Named("m"), heavy_opts);
  JobOptions light_opts{window, "light"};
  JobHandle light = session.Submit(
      session.Range(1 << 30).Map("work", 8).Named("m"), light_opts);
  // Same class, weights 3:1 -> 6 and 2 of the 8 cores.
  ASSERT_TRUE(PollUntil([&] {
    return LiveParallelism(heavy, "m") == 6 && LiveParallelism(light, "m") == 2;
  })) << LiveParallelism(heavy, "m") << " " << LiveParallelism(light, "m");
  heavy.Cancel();
  light.Cancel();
  (void)heavy.Wait();
  (void)light.Wait();
}

// ------------------------------------------------------- admission

TEST(SloSchedulerTest, RejectPolicyFailsFastWhenClassMustQueue) {
  SessionOptions so;
  so.max_concurrent_jobs = 1;
  so.admission[static_cast<size_t>(SloClass::kBatch)] = {
      AdmissionPolicy::kReject, 0};
  Session session = MakeSession(8, std::move(so));
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(1 << 30).Map("work", 2),
                                     JobOptions{window, ""});
  ASSERT_TRUE(PollUntil([&] { return blocker.Progress().batches > 0; }));
  // The cap is full: a batch submission that would queue is rejected
  // at Submit time instead of waiting.
  JobHandle rejected = session.Submit(session.Range(100).Map("work", 2),
                                      JobOptions{window, ""});
  const auto report = rejected.Wait();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.phase(), JobPhase::kFailed);
  // An interactive submission is governed by its own class policy
  // (default: queue unbounded), so it queues fine.
  JobOptions inter_opts{window, "inter"};
  inter_opts.slo = SloClass::kInteractive;
  JobHandle inter =
      session.Submit(session.Range(100).Map("work", 2), inter_opts);
  EXPECT_EQ(inter.phase(), JobPhase::kQueued);
  blocker.Cancel();
  (void)blocker.Wait();
  const auto inter_report = inter.Wait();
  EXPECT_TRUE(inter_report.ok()) << inter_report.status();
}

TEST(SloSchedulerTest, ShedPolicyDropsOldestQueuedJobOfClass) {
  SessionOptions so;
  so.max_concurrent_jobs = 1;
  so.admission[static_cast<size_t>(SloClass::kBatch)] = {
      AdmissionPolicy::kShed, 1};
  Session session = MakeSession(8, std::move(so));
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(1 << 30).Map("work", 2),
                                     JobOptions{window, ""});
  ASSERT_TRUE(PollUntil([&] { return blocker.Progress().batches > 0; }));
  JobHandle stale = session.Submit(session.Range(50).Map("work", 2),
                                   JobOptions{window, "stale"});
  EXPECT_EQ(stale.phase(), JobPhase::kQueued);
  // Depth would hit 2 > max_queued=1: the newcomer is admitted and the
  // OLDEST queued batch job is shed (fresher requests carry fresher
  // intent).
  JobHandle fresh = session.Submit(session.Range(50).Map("work", 2),
                                   JobOptions{window, "fresh"});
  const auto stale_report = stale.Wait();
  EXPECT_FALSE(stale_report.ok());
  EXPECT_EQ(stale_report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stale.phase(), JobPhase::kFailed);
  EXPECT_EQ(fresh.phase(), JobPhase::kQueued);
  blocker.Cancel();
  (void)blocker.Wait();
  const auto fresh_report = fresh.Wait();
  EXPECT_TRUE(fresh_report.ok()) << fresh_report.status();
}

TEST(SloSchedulerTest, InteractiveJumpsTheAdmissionQueue) {
  SessionOptions so;
  so.max_concurrent_jobs = 1;
  Session session = MakeSession(8, std::move(so));
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(1 << 30).Map("work", 2),
                                     JobOptions{window, ""});
  ASSERT_TRUE(PollUntil([&] { return blocker.Progress().batches > 0; }));
  JobHandle batch = session.Submit(session.Range(50).Map("work", 2),
                                   JobOptions{window, "queued-batch"});
  JobOptions inter_opts{window, "queued-inter"};
  inter_opts.slo = SloClass::kInteractive;
  JobHandle inter =
      session.Submit(session.Range(50).Map("work", 2), inter_opts);
  EXPECT_EQ(batch.phase(), JobPhase::kQueued);
  EXPECT_EQ(inter.phase(), JobPhase::kQueued);
  // The interactive job arrived second but runs first: it was inserted
  // ahead of the earlier-queued batch job, so the batch job's queue
  // wait additionally covers the whole interactive run (the cap admits
  // one at a time).
  blocker.Cancel();
  (void)blocker.Wait();
  const auto inter_report = inter.Wait();
  ASSERT_TRUE(inter_report.ok()) << inter_report.status();
  const auto batch_report = batch.Wait();
  ASSERT_TRUE(batch_report.ok()) << batch_report.status();
  EXPECT_GT(batch_report->queue_seconds, inter_report->queue_seconds);
}

// ------------------------------------------- governor park/restore

int CountOwnThreads() {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++count;
  }
  return count;
}

TEST(SloSchedulerTest, GovernorParkRestoreCyclesKeepIdentityAndThreads) {
  // Ten full park/restore cycles (floor 1 <-> configured 6) while a
  // deterministic pipeline drains: output must be element-for-element
  // identical to an ungoverned run, and the worker pool must neither
  // leak threads across cycles nor shrink permanently.
  PipelineTestEnv env(4, 50, 48);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "slow", 6, /*deterministic=*/true);
  n = b.Batch("bt", n, 4, /*drop_remainder=*/false);
  const GraphDef graph = std::move(b.Build(n)).value();

  auto reference = std::move(Pipeline::Create(graph, env.Options())).value();
  const auto expected = Drain(*reference);
  ASSERT_FALSE(expected.empty());

  const int baseline_threads = CountOwnThreads();
  {
    PipelineOptions options = env.Options();
    options.governor = std::make_shared<ParallelismGovernor>();
    auto pipeline = std::move(Pipeline::Create(graph, options)).value();
    std::atomic<bool> stop{false};
    std::atomic<int> cycles{0};
    std::thread preemptor([&] {
      // Park to the floor, restore to configured — the exact signal
      // pair the executor emits on interactive arrival/departure.
      while (!stop.load() && cycles.load() < 10) {
        options.governor->SetTarget("m", 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        options.governor->SetTarget("m", 0);  // clear: back to configured
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        cycles.fetch_add(1);
      }
    });
    const auto resized = Drain(*pipeline);
    stop.store(true);
    preemptor.join();
    EXPECT_GE(cycles.load(), 1);
    ExpectIdenticalOutput(expected, resized);
    // After the last restore the override map is empty again: the
    // governor reports no live override (observability contract).
    options.governor->SetTarget("m", 0);
    EXPECT_TRUE(options.governor->Targets().empty());
    options.governor->SetTarget("m", 3);
    const auto targets = options.governor->Targets();
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets.at("m"), 3);
  }
  // Pipeline destroyed: every worker thread spawned across the ten
  // resize cycles must be joined — parked workers sleep, they are
  // never abandoned.
  EXPECT_TRUE(PollUntil(
      [&] { return CountOwnThreads() <= baseline_threads; }, 10))
      << "threads before: " << baseline_threads
      << " after: " << CountOwnThreads();
}

}  // namespace
}  // namespace plumber
