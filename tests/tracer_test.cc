// Tests for the tracer: snapshot contents, stat resets, the serialized
// dump (every trace is a valid, rewritable program), and anytime
// snapshots.
#include "src/core/tracer.h"

#include <gtest/gtest.h>

#include "src/core/model.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

GraphDef SimpleGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("grow", n, "double_size");
  n = b.ShuffleAndRepeat("sr", n, 8);
  n = b.Batch("batch", n, 5);
  return std::move(b.Build(n)).value();
}

TEST(TracerTest, SnapshotContainsEveryNode) {
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  TraceOptions options;
  options.trace_seconds = 0.15;
  options.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, options);
  pipeline->Cancel();
  for (const char* name : {"interleave", "grow", "sr", "batch"}) {
    EXPECT_NE(trace.FindStats(name), nullptr) << name;
  }
  EXPECT_EQ(trace.FindStats("nonexistent"), nullptr);
  EXPECT_GT(trace.root_completions, 0u);
  EXPECT_GT(trace.observed_rate, 0);
  EXPECT_NEAR(trace.wall_seconds, 0.15, 0.1);
}

TEST(TracerTest, ReadLogCoversSourceFiles) {
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  TraceOptions options;
  options.trace_seconds = 0.2;
  options.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, options);
  pipeline->Cancel();
  EXPECT_FALSE(trace.read_log.empty());
  for (const auto& [file, entry] : trace.read_log) {
    EXPECT_EQ(file.rfind("data/", 0), 0u) << file;
    EXPECT_GT(entry.bytes_read, 0u);
    EXPECT_GT(entry.file_size, 0u);
  }
  auto it = trace.files_per_prefix.find("data/");
  ASSERT_NE(it, trace.files_per_prefix.end());
  EXPECT_EQ(it->second, 4u);
}

TEST(TracerTest, ResetStatsClearsPriorWindow) {
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  TraceOptions options;
  options.trace_seconds = 0.1;
  options.machine = MachineSpec::SetupA();
  const TraceSnapshot first = CaptureTrace(*pipeline, options);
  // Second trace with reset: counters reflect only the second window.
  const TraceSnapshot second = CaptureTrace(*pipeline, options);
  const auto* batch1 = first.FindStats("batch");
  const auto* batch2 = second.FindStats("batch");
  ASSERT_NE(batch1, nullptr);
  ASSERT_NE(batch2, nullptr);
  // Same window length: the second count is of the same order, not
  // cumulative (would be ~2x with no reset).
  EXPECT_LT(batch2->elements_produced, batch1->elements_produced * 2);
  // Without reset, counters accumulate.
  options.reset_stats = false;
  const TraceSnapshot third = CaptureTrace(*pipeline, options);
  pipeline->Cancel();
  const auto* batch3 = third.FindStats("batch");
  ASSERT_NE(batch3, nullptr);
  EXPECT_GE(batch3->elements_produced, batch2->elements_produced);
}

TEST(TracerTest, SerializedDumpRoundTripsTheProgram) {
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  TraceOptions options;
  options.trace_seconds = 0.1;
  options.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, options);
  pipeline->Cancel();
  const std::string dump = trace.Serialize();
  // The dump embeds the whole program and one stat line per node.
  EXPECT_NE(dump.find("interleave"), std::string::npos);
  EXPECT_NE(dump.find("stat batch"), std::string::npos);
  EXPECT_NE(dump.find("file data/"), std::string::npos);
  // The graph section parses back into the same program (the paper's
  // "all traces are valid programs").
  auto reparsed = GraphDef::Parse(trace.graph.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->nodes().size(), trace.graph.nodes().size());
  EXPECT_EQ(reparsed->output(), trace.graph.output());
}

TEST(TracerTest, AnytimeSnapshotWithoutRunning) {
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  // Accumulate some work outside the tracer.
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(iterator->GetNext(&e, &end).ok());
  }
  const TraceSnapshot trace =
      SnapshotFromPipeline(*pipeline, /*wall_seconds=*/1.0,
                           MachineSpec::SetupA());
  pipeline->Cancel();
  const auto* batch = trace.FindStats("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->elements_produced, 10u);
  EXPECT_EQ(trace.root_completions, 10u);
  EXPECT_DOUBLE_EQ(trace.observed_rate, 10.0);
}

TEST(TracerTest, TraceFeedsModelBuildUnchanged) {
  // The snapshot is sufficient input for the model: build succeeds and
  // the model's observed rate is the trace's.
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  TraceOptions options;
  options.trace_seconds = 0.15;
  options.machine = MachineSpec::SetupB();
  const TraceSnapshot trace = CaptureTrace(*pipeline, options);
  pipeline->Cancel();
  auto model = PipelineModel::Build(trace, &env.udfs);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->observed_rate(), trace.observed_rate);
  EXPECT_EQ(model->machine().name, "setup_b");
}

TEST(TracerTest, MaxBatchesCapStopsEarly) {
  PipelineTestEnv env(4, 25, 64);
  auto pipeline =
      std::move(Pipeline::Create(SimpleGraph(), env.Options())).value();
  TraceOptions options;
  options.trace_seconds = 10.0;  // would be far too long...
  options.max_batches = 3;       // ...but the cap stops it
  options.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, options);
  pipeline->Cancel();
  EXPECT_EQ(trace.root_completions, 3u);
  EXPECT_LT(trace.wall_seconds, 5.0);
}

}  // namespace
}  // namespace plumber
