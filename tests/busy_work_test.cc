#include "src/util/busy_work.h"

#include <gtest/gtest.h>

#include "src/util/cpu_timer.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

TEST(BusyWorkTest, CalibrationIsPositive) {
  EXPECT_GT(SpinRoundsPerNano(), 0.0);
}

TEST(BusyWorkTest, BurnConsumesApproximatelyRequestedCpu) {
  // Warm up calibration.
  BurnCpuNanos(100000);
  // The spin kernel is pure CPU, so uncontended wall time == CPU time.
  // Retried: a preempted sample violates the uncontended precondition,
  // not the calibration contract (see EventuallyTrue).
  EXPECT_TRUE(testing_util::EventuallyTrue([] {
    const int64_t target_ns = 5'000'000;  // 5ms
    const int64_t t0 = WallNanos();
    BurnCpuNanos(target_ns);
    const int64_t burned = WallNanos() - t0;
    // Within 50% — calibration is coarse but must be the right
    // magnitude.
    return burned > target_ns / 2 && burned < target_ns * 2;
  }));
}

TEST(BusyWorkTest, ZeroOrNegativeIsNoop) {
  EXPECT_EQ(BurnCpuNanos(0, 5), 5u);
  EXPECT_EQ(BurnCpuNanos(-10, 5), 5u);
}

TEST(TransformBufferTest, ProducesRequestedSize) {
  std::vector<uint8_t> in(100, 7), out;
  TransformBuffer(in, 250, 42, &out);
  EXPECT_EQ(out.size(), 250u);
  TransformBuffer(in, 10, 42, &out);
  EXPECT_EQ(out.size(), 10u);
  TransformBuffer(in, 0, 42, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(TransformBufferTest, DeterministicInInputAndSeed) {
  std::vector<uint8_t> in(64, 3), a, b;
  TransformBuffer(in, 128, 9, &a);
  TransformBuffer(in, 128, 9, &b);
  EXPECT_EQ(a, b);
}

TEST(TransformBufferTest, DependsOnSeed) {
  std::vector<uint8_t> in(64, 3), a, b;
  TransformBuffer(in, 128, 1, &a);
  TransformBuffer(in, 128, 2, &b);
  EXPECT_NE(a, b);
}

TEST(TransformBufferTest, DependsOnInputContent) {
  std::vector<uint8_t> in1(64, 3), in2(64, 4), a, b;
  TransformBuffer(in1, 128, 1, &a);
  TransformBuffer(in2, 128, 1, &b);
  EXPECT_NE(a, b);
}

TEST(FillDeterministicBytesTest, SizeAndDeterminism) {
  std::vector<uint8_t> a, b;
  FillDeterministicBytes(11, 1000, &a);
  FillDeterministicBytes(11, 1000, &b);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  FillDeterministicBytes(12, 1000, &b);
  EXPECT_NE(a, b);
}

TEST(FillDeterministicBytesTest, BytesLookRandom) {
  std::vector<uint8_t> a;
  FillDeterministicBytes(99, 100000, &a);
  // Mean byte value should be near 127.5 for uniform-ish content.
  double sum = 0;
  for (uint8_t v : a) sum += v;
  EXPECT_NEAR(sum / a.size(), 127.5, 5.0);
}

}  // namespace
}  // namespace plumber
