// Tests for zip, concatenate, and the fused map_and_batch operator.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/pipeline/graph_builder.h"
#include "src/pipeline/pipeline.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

// ------------------------------------------------------------------ zip

TEST(ZipTest, PairsElementsFromBothInputs) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto images = b.Interleave("images", b.FileList("ifiles", "data/"), 2, 1);
  auto labels = b.Range("labels", 1000);
  auto n = b.Zip("zip", {images, labels});
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  const auto elements = Drain(*pipeline);
  // Ends with the shorter input: 2 files x 10 records.
  ASSERT_EQ(elements.size(), 20u);
  for (const auto& e : elements) {
    EXPECT_EQ(e.components.size(), 2u);  // (image, label) tuple
  }
}

TEST(ZipTest, EndsAtShortestInput) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto a = b.Range("a", 5);
  auto c = b.Range("c", 50);
  auto n = b.Zip("zip", {a, c});
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  EXPECT_EQ(Drain(*pipeline).size(), 5u);
}

TEST(ZipTest, ThreeWayZip) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto n = b.Zip("zip", {b.Range("a", 7), b.Range("c", 9), b.Range("d", 8)});
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  const auto elements = Drain(*pipeline);
  ASSERT_EQ(elements.size(), 7u);
  EXPECT_EQ(elements[0].components.size(), 3u);
}

TEST(ZipTest, SingleInputRejected) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto n = b.Zip("zip", {b.Range("a", 5)});
  auto pipeline = Pipeline::Create(std::move(b.Build(n)).value(),
                                   env.Options());
  EXPECT_FALSE(pipeline.ok());
}

// ---------------------------------------------------------- concatenate

TEST(ConcatenateTest, DrainsInputsInOrder) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto n = b.Concatenate("concat", {b.Range("a", 4), b.Range("c", 6)});
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  EXPECT_EQ(Drain(*pipeline).size(), 10u);
}

TEST(ConcatenateTest, WorksWithRecordSources) {
  PipelineTestEnv env(3, 10, 32);
  GraphBuilder b;
  auto first = b.Interleave("first", b.FileList("f1", "data/f0"), 1, 1);
  auto second = b.Interleave("second", b.FileList("f2", "data/f1"), 1, 1);
  auto n = b.Concatenate("concat", {first, second});
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  EXPECT_EQ(Drain(*pipeline).size(), 20u);
}

TEST(ConcatenateTest, EmptyFirstInputSkipsToSecond) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto n = b.Concatenate("concat", {b.Range("a", 0), b.Range("c", 3)});
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  EXPECT_EQ(Drain(*pipeline).size(), 3u);
}

// --------------------------------------------------------- map_and_batch

// (parallelism, batch size)
using FusedParam = std::tuple<int, int>;

class MapAndBatchTest : public ::testing::TestWithParam<FusedParam> {};

TEST_P(MapAndBatchTest, MatchesUnfusedMapThenBatch) {
  const auto [parallelism, batch_size] = GetParam();
  PipelineTestEnv env(3, 20, 48);

  GraphBuilder ref;
  auto r = ref.Interleave("il", ref.FileList("files", "data/"), 2, 1);
  r = ref.Map("map", r, "double_size");
  r = ref.Batch("batch", r, batch_size, /*drop_remainder=*/true);
  auto ref_pipeline =
      std::move(Pipeline::Create(std::move(ref.Build(r)).value(),
                                 env.Options()))
          .value();
  const auto expected = SizeFingerprint(Drain(*ref_pipeline));

  GraphBuilder fused;
  auto f = fused.Interleave("il", fused.FileList("files", "data/"), 2, 1);
  f = fused.MapAndBatch("fused", f, "double_size", batch_size, parallelism,
                        /*drop_remainder=*/true);
  auto fused_pipeline =
      std::move(Pipeline::Create(std::move(fused.Build(f)).value(),
                                 env.Options()))
          .value();
  EXPECT_EQ(SizeFingerprint(Drain(*fused_pipeline)), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MapAndBatchTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 4, 7)),
    [](const ::testing::TestParamInfo<FusedParam>& info) {
      return "par" + std::to_string(std::get<0>(info.param)) + "_batch" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MapAndBatchTest, DropRemainderFalseKeepsPartialBatch) {
  PipelineTestEnv env(1, 10, 32);  // 10 elements total
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 1, 1);
  n = b.MapAndBatch("fused", n, "noop", /*batch_size=*/4, /*parallelism=*/2,
                    /*drop_remainder=*/false);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  const auto batches = Drain(*pipeline);
  ASSERT_EQ(batches.size(), 3u);  // 4 + 4 + 2
  size_t total = 0;
  for (const auto& e : batches) total += e.components.size();
  EXPECT_EQ(total, 10u);
}

TEST(MapAndBatchTest, StatsCountConsumedElementsNotBatches) {
  PipelineTestEnv env(2, 20, 32);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.MapAndBatch("fused", n, "noop", 5, 2);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  const auto batches = Drain(*pipeline);
  ASSERT_EQ(batches.size(), 8u);  // 40 elements / 5
  const IteratorStats* stats = pipeline->stats().Find("fused");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->elements_consumed(), 40u);
  EXPECT_EQ(stats->elements_produced(), 8u);
  EXPECT_EQ(stats->parallelism(), 2);
}

TEST(MapAndBatchTest, UnknownUdfFailsCleanly) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.MapAndBatch("fused", n, "bogus", 4, 2);
  EXPECT_FALSE(
      Pipeline::Create(std::move(b.Build(n)).value(), env.Options()).ok());
}

TEST(MapAndBatchTest, SizeAmplificationFlowsThrough) {
  PipelineTestEnv env(2, 10, 32);
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.MapAndBatch("fused", n, "double_size", 5, 2);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             env.Options()))
                      .value();
  const auto batches = Drain(*pipeline);
  ASSERT_FALSE(batches.empty());
  // 5 x 32B records doubled = 320 bytes per batch.
  EXPECT_EQ(batches[0].TotalBytes(), 320u);
}

}  // namespace
}  // namespace plumber
