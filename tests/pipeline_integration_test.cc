// Cross-module integration tests: whole-pipeline correctness under
// rewrites, tracing, and caching.
#include <gtest/gtest.h>

#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

GraphDef ImageNetLikeGraph(int parallelism) {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2,
                        parallelism);
  n = b.Map("parse", n, "noop", parallelism);
  n = b.Map("decode", n, "double_size", parallelism);
  n = b.Shuffle("shuffle", n, 32);
  n = b.Batch("batch", n, 4);
  n = b.Prefetch("prefetch", n, 2);
  return std::move(b.Build(n)).value();
}

TEST(IntegrationTest, ParallelismDoesNotChangeOutputMultiset) {
  PipelineTestEnv env(4, 25, 48);
  auto p1 = std::move(Pipeline::Create(ImageNetLikeGraph(1),
                                       env.Options()))
                .value();
  auto p4 = std::move(Pipeline::Create(ImageNetLikeGraph(4),
                                       env.Options()))
                .value();
  const auto a = Drain(*p1);
  const auto b = Drain(*p4);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(SizeFingerprint(a), SizeFingerprint(b));
}

TEST(IntegrationTest, TracingDoesNotChangeResults) {
  PipelineTestEnv env(4, 25, 48);
  PipelineOptions traced = env.Options();
  traced.tracing_enabled = true;
  PipelineOptions untraced = env.Options();
  untraced.tracing_enabled = false;
  auto p1 =
      std::move(Pipeline::Create(ImageNetLikeGraph(2), traced)).value();
  auto p2 =
      std::move(Pipeline::Create(ImageNetLikeGraph(2), untraced)).value();
  EXPECT_EQ(SizeFingerprint(Drain(*p1)), SizeFingerprint(Drain(*p2)));
}

TEST(IntegrationTest, CacheInjectionPreservesOutputs) {
  PipelineTestEnv env(4, 25, 48);
  GraphDef plain = ImageNetLikeGraph(2);
  GraphDef cached = plain;
  ASSERT_TRUE(rewriter::InjectCache(&cached, "decode").ok());
  auto p1 = std::move(Pipeline::Create(plain, env.Options())).value();
  auto p2 = std::move(Pipeline::Create(cached, env.Options())).value();
  EXPECT_EQ(SizeFingerprint(Drain(*p1)), SizeFingerprint(Drain(*p2)));
}

TEST(IntegrationTest, PrefetchInjectionPreservesOutputs) {
  PipelineTestEnv env(4, 25, 48);
  GraphDef plain = ImageNetLikeGraph(2);
  GraphDef prefetched = plain;
  ASSERT_TRUE(rewriter::InjectPrefetch(&prefetched, "decode", 4).ok());
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&prefetched, 8).ok());
  auto p1 = std::move(Pipeline::Create(plain, env.Options())).value();
  auto p2 = std::move(Pipeline::Create(prefetched, env.Options())).value();
  EXPECT_EQ(SizeFingerprint(Drain(*p1)), SizeFingerprint(Drain(*p2)));
}

TEST(IntegrationTest, SerializedProgramReinstantiatesIdentically) {
  // "All Plumber traces are also valid programs": round-trip the graph
  // through text and check the pipeline behaves the same.
  PipelineTestEnv env(4, 25, 48);
  const GraphDef original = ImageNetLikeGraph(2);
  auto parsed = GraphDef::Parse(original.Serialize());
  ASSERT_TRUE(parsed.ok());
  auto p1 = std::move(Pipeline::Create(original, env.Options())).value();
  auto p2 = std::move(Pipeline::Create(*parsed, env.Options())).value();
  EXPECT_EQ(SizeFingerprint(Drain(*p1)), SizeFingerprint(Drain(*p2)));
}

TEST(IntegrationTest, DeterministicAcrossRunsWithSameSeed) {
  PipelineTestEnv env(4, 25, 48);
  auto make = [&]() {
    PipelineOptions options = env.Options();
    options.seed = 99;
    return std::move(Pipeline::Create(ImageNetLikeGraph(1), options))
        .value();
  };
  auto p1 = make();
  auto p2 = make();
  const auto a = Drain(*p1);
  const auto b = Drain(*p2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].components, b[i].components) << "batch " << i;
  }
}

TEST(IntegrationTest, HeavilyRewrittenPipelineStillCorrect) {
  PipelineTestEnv env(4, 25, 48);
  GraphDef g = ImageNetLikeGraph(1);
  ASSERT_TRUE(rewriter::SetAllParallelism(&g, 6).ok());
  ASSERT_TRUE(rewriter::InjectCache(&g, "parse").ok());
  ASSERT_TRUE(rewriter::InjectPrefetch(&g, "decode", 3).ok());
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&g, 4).ok());
  ASSERT_TRUE(g.Validate().ok());
  auto plain =
      std::move(Pipeline::Create(ImageNetLikeGraph(1), env.Options()))
          .value();
  auto rewritten = std::move(Pipeline::Create(g, env.Options())).value();
  EXPECT_EQ(SizeFingerprint(Drain(*plain)),
            SizeFingerprint(Drain(*rewritten)));
}

TEST(IntegrationTest, StatsConservationAcrossChain) {
  // Elements consumed by each stage equal elements produced by its
  // child (no loss or duplication inside the engine).
  PipelineTestEnv env(4, 25, 48);
  auto pipeline =
      std::move(Pipeline::Create(ImageNetLikeGraph(2), env.Options()))
          .value();
  Drain(*pipeline);
  const auto snap = pipeline->stats().Snapshot();
  auto find = [&](const std::string& name) -> const IteratorStatsSnapshot& {
    for (const auto& s : snap) {
      if (s.name == name) return s;
    }
    static IteratorStatsSnapshot empty;
    return empty;
  };
  EXPECT_EQ(find("parse").elements_consumed,
            find("interleave").elements_produced);
  EXPECT_EQ(find("decode").elements_consumed,
            find("parse").elements_produced);
  EXPECT_EQ(find("shuffle").elements_consumed,
            find("decode").elements_produced);
  // 100 records -> 25 batches of 4.
  EXPECT_EQ(find("batch").elements_produced, 25u);
}

}  // namespace
}  // namespace plumber
