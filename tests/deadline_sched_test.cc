// Deadline-aware scheduling on JobOptions::latency_target_s: queued
// jobs of the same SLO class run earliest-deadline-first (ahead of
// deadline-free peers), and a queued job whose deadline already passed
// is shed with kResourceExhausted instead of running a guaranteed miss.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "src/core/plumber.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

bool PollUntil(const std::function<bool()>& cond, double seconds = 20) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

Session MakeSession(SessionOptions so = {}) {
  so.machine.num_cores = 4;
  so.max_concurrent_jobs = 1;  // force a queue so ordering is observable
  Session session(std::move(so));
  UdfSpec work;
  work.name = "work";
  work.cost_ns_per_element = 1e6;
  EXPECT_TRUE(session.RegisterUdf(work).ok());
  return session;
}

TEST(DeadlineSchedTest, EarliestDeadlineRunsFirstWithinClass) {
  Session session = MakeSession();
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(1 << 30).Map("work", 2),
                                     JobOptions{window, "blocker"});
  ASSERT_TRUE(PollUntil([&] { return blocker.Progress().batches > 0; }));

  // Submit order: loose deadline, no deadline, tight deadline. EDF
  // within the (batch) class must run them tight -> loose -> none.
  JobOptions loose_opts{window, "loose"};
  loose_opts.latency_target_s = 120;
  JobHandle loose = session.Submit(session.Range(50).Map("work", 2),
                                   loose_opts);
  JobHandle none = session.Submit(session.Range(50).Map("work", 2),
                                  JobOptions{window, "none"});
  JobOptions tight_opts{window, "tight"};
  tight_opts.latency_target_s = 60;
  JobHandle tight = session.Submit(session.Range(50).Map("work", 2),
                                   tight_opts);
  EXPECT_EQ(loose.phase(), JobPhase::kQueued);
  EXPECT_EQ(none.phase(), JobPhase::kQueued);
  EXPECT_EQ(tight.phase(), JobPhase::kQueued);

  blocker.Cancel();
  (void)blocker.Wait();
  const auto tight_report = tight.Wait();
  ASSERT_TRUE(tight_report.ok()) << tight_report.status();
  const auto loose_report = loose.Wait();
  ASSERT_TRUE(loose_report.ok()) << loose_report.status();
  const auto none_report = none.Wait();
  ASSERT_TRUE(none_report.ok()) << none_report.status();
  // Queue wait reveals run order: each later job's wait additionally
  // covers every earlier run. tight < loose < none despite tight being
  // submitted last and none before it.
  EXPECT_LT(tight_report->queue_seconds, loose_report->queue_seconds);
  EXPECT_LT(loose_report->queue_seconds, none_report->queue_seconds);
}

TEST(DeadlineSchedTest, ExpiredQueuedDeadlineIsShed) {
  Session session = MakeSession();
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(1 << 30).Map("work", 2),
                                     JobOptions{window, "blocker"});
  ASSERT_TRUE(PollUntil([&] { return blocker.Progress().batches > 0; }));

  // A 100ms target behind an unbounded blocker is hopeless: the
  // scheduler's sweep must shed it from the queue rather than admit a
  // guaranteed miss once the blocker finishes.
  JobOptions doomed_opts{window, "doomed"};
  doomed_opts.latency_target_s = 0.1;
  JobHandle doomed = session.Submit(session.Range(50).Map("work", 2),
                                    doomed_opts);
  const auto report = doomed.Wait();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(report.status().message().find("shed"), std::string::npos)
      << report.status();
  EXPECT_EQ(doomed.phase(), JobPhase::kFailed);

  blocker.Cancel();
  (void)blocker.Wait();
}

TEST(DeadlineSchedTest, GenerousDeadlineIsNotShed) {
  // The shed sweep must only fire on expired deadlines: a queued job
  // with a comfortable target runs to completion once admitted.
  Session session = MakeSession();
  RunOptions window;
  window.max_seconds = 60;
  JobHandle blocker = session.Submit(session.Range(200).Map("work", 2),
                                     JobOptions{window, "blocker"});
  JobOptions opts{window, "patient"};
  opts.latency_target_s = 300;
  JobHandle patient = session.Submit(session.Range(50).Map("work", 2), opts);
  ASSERT_TRUE(blocker.Wait().ok());
  const auto report = patient.Wait();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(patient.phase(), JobPhase::kDone);
}

}  // namespace
}  // namespace plumber
