// remote_read op tests: element-for-element identity with a local
// tfrecord read at every engine batch size, byte-exact NIC accounting
// (wire bytes == device counters == per-node network_bytes stats), and
// the Session::AttachNic wiring.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/api/session.h"
#include "src/io/sim_filesystem.h"
#include "src/net/network_device.h"
#include "src/pipeline/ops.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::ExpectIdenticalOutput;
using testing_util::PipelineTestEnv;

constexpr int kNumFiles = 3;
constexpr int kRecordsPerFile = 10;
constexpr uint64_t kRecordBytes = 64;

GraphDef LocalGraph() {
  GraphBuilder b;
  return std::move(b.Build(b.TfRecord("rec", b.FileList("files", "data/"))))
      .value();
}

GraphDef RemoteGraph(double remote_bandwidth = 0, double remote_latency = 0) {
  GraphBuilder b;
  return std::move(b.Build(b.RemoteRead("rec", b.FileList("files", "data/"),
                                        remote_bandwidth, remote_latency)))
      .value();
}

TEST(RemoteReadTest, IdenticalToLocalReadAtEveryEngineBatchSize) {
  for (int engine_batch : {0, 1, 2, 8}) {
    PipelineTestEnv env(kNumFiles, kRecordsPerFile, kRecordBytes);
    PipelineOptions opts = env.Options();
    opts.engine_batch_size = engine_batch;
    auto local = Pipeline::Create(LocalGraph(), opts);
    ASSERT_TRUE(local.ok()) << local.status();
    auto remote = Pipeline::Create(RemoteGraph(), opts);
    ASSERT_TRUE(remote.ok()) << remote.status();
    const auto local_elems = Drain(**local);
    const auto remote_elems = Drain(**remote);
    ASSERT_EQ(local_elems.size(),
              static_cast<size_t>(kNumFiles * kRecordsPerFile))
        << "engine_batch_size=" << engine_batch;
    ExpectIdenticalOutput(local_elems, remote_elems);
  }
}

TEST(RemoteReadTest, NicAccountingIsByteExact) {
  PipelineTestEnv env(kNumFiles, kRecordsPerFile, kRecordBytes);
  NetworkDevice local_nic(NicSpec::Unlimited());
  PipelineOptions opts = env.Options();
  opts.nic = &local_nic;
  auto pipeline = Pipeline::Create(RemoteGraph(), opts);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  const auto elems = Drain(**pipeline);
  const uint64_t records = static_cast<uint64_t>(elems.size());
  ASSERT_EQ(records, static_cast<uint64_t>(kNumFiles * kRecordsPerFile));
  // Every record crosses the wire once, framing included; the local
  // NIC's counters must equal the sum of transfer sizes exactly.
  const uint64_t wire_bytes = records * (kRecordBytes + kRecordFramingBytes);
  EXPECT_EQ(local_nic.total_bytes(), wire_bytes);
  EXPECT_EQ(local_nic.total_transfers(), records);
  // The per-node stat agrees with the device.
  uint64_t stat_network_bytes = 0;
  for (const auto& s : (*pipeline)->stats().Snapshot()) {
    stat_network_bytes += s.network_bytes;
  }
  EXPECT_EQ(stat_network_bytes, wire_bytes);
}

TEST(RemoteReadTest, LocalReadReportsNoNetworkBytes) {
  PipelineTestEnv env(kNumFiles, kRecordsPerFile, kRecordBytes);
  NetworkDevice local_nic(NicSpec::Unlimited());
  PipelineOptions opts = env.Options();
  opts.nic = &local_nic;
  auto pipeline = Pipeline::Create(LocalGraph(), opts);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  (void)Drain(**pipeline);
  EXPECT_EQ(local_nic.total_bytes(), 0u);
  for (const auto& s : (*pipeline)->stats().Snapshot()) {
    EXPECT_EQ(s.network_bytes, 0u);
  }
}

TEST(RemoteReadTest, RemoteBandwidthThrottlesWithoutChangingElements) {
  // A tiny remote NIC budget slows the read but must not change what
  // arrives: identity holds under throttling too.
  PipelineTestEnv env(kNumFiles, kRecordsPerFile, kRecordBytes);
  auto fast = Pipeline::Create(RemoteGraph(), env.Options());
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto slow = Pipeline::Create(RemoteGraph(/*remote_bandwidth=*/256e3),
                               env.Options());
  ASSERT_TRUE(slow.ok()) << slow.status();
  ExpectIdenticalOutput(Drain(**fast), Drain(**slow));
}

TEST(RemoteReadTest, SessionAttachNicMetersAcrossRuns) {
  Session session;
  ASSERT_TRUE(session
                  .CreateRecordFiles("data/f", kNumFiles, kRecordsPerFile,
                                     kRecordBytes)
                  .ok());
  session.AttachNic(NicSpec::Unlimited());
  ASSERT_NE(session.nic(), nullptr);
  EXPECT_DOUBLE_EQ(session.machine().nic.max_bandwidth, 0);

  Flow flow = session.FromGraph(RemoteGraph());
  RunOptions run;
  auto report = flow.Run(run);
  ASSERT_TRUE(report.ok()) << report.status();
  const uint64_t per_run = static_cast<uint64_t>(kNumFiles) *
                           kRecordsPerFile *
                           (kRecordBytes + kRecordFramingBytes);
  EXPECT_EQ(session.nic()->total_bytes(), per_run);
  // A second run accumulates on the same session device, the way a
  // host NIC counter would.
  ASSERT_TRUE(flow.Run(run).ok());
  EXPECT_EQ(session.nic()->total_bytes(), 2 * per_run);
}

}  // namespace
}  // namespace plumber
