// End-to-end optimizer tests: trace -> plan -> rewrite -> faster.
#include "src/core/optimizer.h"

#include <gtest/gtest.h>

#include "src/core/rewriter.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::PipelineTestEnv;

GraphDef MisconfiguredGraph() {
  // A decode-heavy pipeline at parallelism 1 with no prefetch: exactly
  // the "misconfigured" starting point of the paper's evaluation.
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("expensive", n, "slow");
  n = b.ShuffleAndRepeat("sr", n, 16);
  n = b.Batch("batch", n, 5);
  return std::move(b.Build(n)).value();
}

OptimizeOptions MakeOptions(PipelineTestEnv& env, bool cache = false) {
  OptimizeOptions options;
  options.machine = MachineSpec::SetupA();
  options.machine.num_cores = 8;
  options.fs = &env.fs;
  options.udfs = &env.udfs;
  options.trace_seconds = 0.25;
  options.enable_cache = cache;
  return options;
}

double MeasureRate(PipelineTestEnv& env, const GraphDef& graph,
                   double seconds = 0.4) {
  auto pipeline =
      std::move(Pipeline::Create(graph, env.Options())).value();
  RunOptions ropts;
  ropts.max_seconds = seconds;
  const RunResult result = RunPipeline(*pipeline, ropts);
  pipeline->Cancel();
  return result.batches_per_second;
}

TEST(OptimizerTest, ParallelismPassSpeedsUpMisconfiguredPipeline) {
  PipelineTestEnv env(4, 200, 64);
  PlumberOptimizer optimizer(MakeOptions(env));
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok()) << result.status();
  // The expensive map must have been parallelized.
  EXPECT_GT(*rewriter::GetParallelism(result->graph, "expensive"), 2);
  // Root must now be a prefetch.
  EXPECT_EQ(result->graph.FindNode(result->graph.output())->op, "prefetch");
  // Measured speedup: at least 2x on 8 cores for a 200us/element map.
  double naive_rate = 0, tuned_rate = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    naive_rate = MeasureRate(env, MisconfiguredGraph());
    tuned_rate = MeasureRate(env, result->graph);
    return tuned_rate > naive_rate * 2;
  })) << "tuned=" << tuned_rate << " naive=" << naive_rate;
}

TEST(OptimizerTest, LpPlanPredictsWithinFactorFour) {
  // Paper observation 4: the LP bound holds within a small constant
  // factor (2-4x) of the observed optimized rate.
  PipelineTestEnv env(4, 200, 64);
  PlumberOptimizer optimizer(MakeOptions(env));
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok());
  double measured = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    measured = MeasureRate(env, result->graph);
    return result->plan.predicted_rate > measured / 4 &&
           result->plan.predicted_rate < measured * 4;
  })) << "predicted=" << result->plan.predicted_rate
      << " measured=" << measured;
}

TEST(OptimizerTest, CachePassInsertsCacheWhenItFits) {
  PipelineTestEnv env(2, 40, 64);
  OptimizeOptions options = MakeOptions(env, /*cache=*/true);
  options.machine.memory_bytes = 10 << 20;  // everything fits
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->cache.feasible);
  EXPECT_TRUE(rewriter::HasOp(result->graph, "cache"));
  // Cache goes below the infinite shuffle+repeat, after the expensive
  // map (closest cacheable node to the root).
  EXPECT_EQ(result->cache.node, "expensive");
}

TEST(OptimizerTest, NoCacheWhenMemoryTooSmall) {
  PipelineTestEnv env(2, 40, 64);
  OptimizeOptions options = MakeOptions(env, /*cache=*/true);
  options.machine.memory_bytes = 64;  // nothing fits
  PlumberOptimizer optimizer(options);
  auto result = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->cache.feasible);
  EXPECT_FALSE(rewriter::HasOp(result->graph, "cache"));
}

TEST(OptimizerTest, CachedPipelineBeatsUncachedSteadyState) {
  PipelineTestEnv env(2, 40, 64);
  OptimizeOptions options = MakeOptions(env, /*cache=*/true);
  options.machine.memory_bytes = 10 << 20;
  PlumberOptimizer optimizer(options);
  auto cached = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached->cache.feasible);

  OptimizeOptions no_cache_options = MakeOptions(env, /*cache=*/false);
  PlumberOptimizer no_cache(no_cache_options);
  auto uncached = no_cache.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(uncached.ok());

  // Steady-state: run past the first epoch so the cache is warm.
  double cached_rate = 0, uncached_rate = 0;
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    cached_rate = MeasureRate(env, cached->graph, 0.8);
    uncached_rate = MeasureRate(env, uncached->graph, 0.8);
    return cached_rate > uncached_rate * 1.3;
  })) << "cached=" << cached_rate << " uncached=" << uncached_rate;
}

TEST(OptimizerTest, PickBestPrefersFasterVariant) {
  PipelineTestEnv env(4, 100, 64);
  // Variant 0 runs the 200us map; variant 1 the ~free noop map.
  GraphBuilder b0;
  auto n0 = b0.Interleave("interleave", b0.FileList("files", "data/"), 2, 1);
  n0 = b0.Map("work", n0, "slow");
  n0 = b0.ShuffleAndRepeat("sr", n0, 16);
  n0 = b0.Batch("batch", n0, 5);
  GraphDef slow_variant = std::move(b0.Build(n0)).value();

  GraphBuilder b1;
  auto n1 = b1.Interleave("interleave", b1.FileList("files", "data/"), 2, 1);
  n1 = b1.Map("work", n1, "noop");
  n1 = b1.ShuffleAndRepeat("sr", n1, 16);
  n1 = b1.Batch("batch", n1, 5);
  GraphDef fast_variant = std::move(b1.Build(n1)).value();

  // With only 2 cores the 200us map stays the bottleneck even after
  // the LP parallelizes it (max ~2k batches/s), while the noop variant
  // is source-bound at roughly twice that — a robust margin.
  OptimizeOptions options = MakeOptions(env);
  options.machine.num_cores = 2;
  PlumberOptimizer optimizer(options);
  auto result = optimizer.PickBest({slow_variant, fast_variant});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->picked_variant, 1);
}

TEST(OptimizerTest, PickBestLogsFailedVariants) {
  PipelineTestEnv env(4, 100, 64);
  GraphDef good = MisconfiguredGraph();
  // A variant that cannot be instantiated (unknown UDF): formerly
  // silently skipped, now recorded in the winner's log.
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("broken", n, "no_such_udf");
  n = b.Batch("batch", n, 5);
  GraphDef bad = std::move(b.Build(n)).value();

  PlumberOptimizer optimizer(MakeOptions(env));
  auto result = optimizer.PickBest({bad, good});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->picked_variant, 1);
  bool logged = false;
  for (const std::string& line : result->log) {
    if (line.find("variant 0") != std::string::npos &&
        line.find("no_such_udf") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged) << "failed variant not recorded in log";
}

TEST(OptimizerTest, PickBestReturnsRichErrorWhenAllVariantsFail) {
  PipelineTestEnv env(4, 100, 64);
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 2, 1);
  n = b.Map("broken", n, "no_such_udf");
  n = b.Batch("batch", n, 5);
  GraphDef bad = std::move(b.Build(n)).value();

  PlumberOptimizer optimizer(MakeOptions(env));
  auto result = optimizer.PickBest({bad, bad});
  ASSERT_FALSE(result.ok());
  // The error names every variant and the underlying cause, not just
  // "no variant optimized successfully".
  EXPECT_NE(result.status().message().find("variant 0"), std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("variant 1"), std::string::npos);
  EXPECT_NE(result.status().message().find("no_such_udf"), std::string::npos);
}

TEST(OptimizerTest, OptimizationIsIdempotentOnTunedPipeline) {
  PipelineTestEnv env(4, 200, 64);
  PlumberOptimizer optimizer(MakeOptions(env));
  auto first = optimizer.Optimize(MisconfiguredGraph());
  ASSERT_TRUE(first.ok());
  auto second = optimizer.Optimize(first->graph);
  ASSERT_TRUE(second.ok());
  double r1 = 0, r2 = 0;
  // Re-optimizing must not destroy performance.
  EXPECT_TRUE(testing_util::EventuallyTrue([&] {
    r1 = MeasureRate(env, first->graph);
    r2 = MeasureRate(env, second->graph);
    return r2 > r1 * 0.6;
  })) << "first=" << r1 << " reoptimized=" << r2;
}

}  // namespace
}  // namespace plumber
