// Data-placement runtime tests: the disk-tier cache serving through the
// modeled scratch device, the ShardSource rewrite's element-multiset
// identity, per-shard device metering, and fleet shard pinning.
#include <gtest/gtest.h>

#include "src/api/fleet_session.h"
#include "src/core/rewriter.h"
#include "src/pipeline/graph_builder.h"
#include "src/pipeline/ops.h"
#include "src/pipeline/pipeline.h"
#include "tests/test_util.h"

namespace plumber {
namespace {

using testing_util::Drain;
using testing_util::ExpectIdenticalOutput;
using testing_util::PipelineTestEnv;
using testing_util::SizeFingerprint;

// ------------------------------------------------------ disk-tier cache

GraphDef CachedReaderGraph(CacheTier tier) {
  GraphBuilder b;
  auto n = b.TfRecord("reader", b.FileList("files", "data/"));
  n = b.Map("grow", n, "double_size");
  GraphDef graph = std::move(b.Build(n)).value();
  EXPECT_TRUE(rewriter::InjectCache(&graph, "grow", tier).ok());
  return graph;
}

TEST(DiskTierCacheTest, ServesThroughScratchDevice) {
  PipelineTestEnv env;
  PipelineOptions options = env.Options();
  options.scratch = DeviceSpec::TokenBucketLimit(256e6);
  options.scratch_budget_bytes = 16ull << 20;
  auto pipeline =
      std::move(Pipeline::Create(CachedReaderGraph(CacheTier::kDisk), options))
          .value();
  StorageDevice* scratch = pipeline->context()->scratch_device;
  ASSERT_NE(scratch, nullptr);

  // Epoch 1 materializes: elements flow from the source, nothing is
  // served from scratch yet.
  const auto epoch1 = Drain(*pipeline);
  EXPECT_EQ(static_cast<int>(epoch1.size()), env.total_records());
  EXPECT_EQ(scratch->total_bytes_read(), 0u);

  // Epoch 2 serves the materialization: every byte is metered through
  // the scratch device.
  const auto epoch2 = Drain(*pipeline);
  ASSERT_EQ(epoch2.size(), epoch1.size());
  uint64_t served = 0;
  for (const auto& e : epoch2) served += e.TotalBytes();
  EXPECT_EQ(scratch->total_bytes_read(), served);
  ExpectIdenticalOutput(epoch1, epoch2);
}

TEST(DiskTierCacheTest, MemoryTierNeverTouchesScratch) {
  PipelineTestEnv env;
  PipelineOptions options = env.Options();
  options.scratch = DeviceSpec::TokenBucketLimit(256e6);
  options.scratch_budget_bytes = 16ull << 20;
  auto pipeline = std::move(Pipeline::Create(
                                CachedReaderGraph(CacheTier::kMemory), options))
                      .value();
  (void)Drain(*pipeline);
  (void)Drain(*pipeline);
  ASSERT_NE(pipeline->context()->scratch_device, nullptr);
  EXPECT_EQ(pipeline->context()->scratch_device->total_bytes_read(), 0u);
}

TEST(DiskTierCacheTest, MaterializationHonorsScratchBudget) {
  PipelineTestEnv env;
  PipelineOptions options = env.Options();
  options.scratch = DeviceSpec::TokenBucketLimit(256e6);
  options.scratch_budget_bytes = 512;  // far below the materialization
  auto pipeline =
      std::move(Pipeline::Create(CachedReaderGraph(CacheTier::kDisk), options))
          .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end = false;
  Status status = OkStatus();
  while (status.ok() && !end) status = iterator->GetNext(&e, &end);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
}

TEST(DiskTierCacheTest, DegradesToUnmeteredWithoutScratchDevice) {
  // A disk-tier cache node in a pipeline with no configured scratch
  // tier still runs (unmetered, unbudgeted) instead of failing: the
  // graph stays portable across machines.
  PipelineTestEnv env;
  auto pipeline = std::move(Pipeline::Create(CachedReaderGraph(CacheTier::kDisk),
                                             env.Options()))
                      .value();
  EXPECT_EQ(pipeline->context()->scratch_device, nullptr);
  const auto epoch1 = Drain(*pipeline);
  const auto epoch2 = Drain(*pipeline);
  EXPECT_EQ(static_cast<int>(epoch1.size()), env.total_records());
  EXPECT_EQ(epoch1.size(), epoch2.size());
}

// ------------------------------------------------------- shard sources

// Files with per-file record sizes, so the size fingerprint detects
// which files were read, not just how many records.
void CreateVariedFiles(SimFilesystem& fs, int num_files,
                       int records_per_file) {
  for (int f = 0; f < num_files; ++f) {
    std::vector<uint64_t> sizes(records_per_file, 32 + 16 * f);
    ASSERT_TRUE(
        fs.CreateRecordFile("var/f" + std::to_string(f), f + 1,
                            std::move(sizes))
            .ok());
  }
}

GraphDef VariedReaderGraph() {
  GraphBuilder b;
  auto n = b.TfRecord("reader", b.FileList("files", "var/"));
  n = b.Map("m", n, "double_size", 2);
  return std::move(b.Build(n)).value();
}

TEST(ShardSourceTest, RewritePreservesElementMultiset) {
  PipelineTestEnv env;
  CreateVariedFiles(env.fs, 5, 10);

  GraphDef unsharded = VariedReaderGraph();
  GraphDef sharded = unsharded;
  auto merge = rewriter::ShardSource(&sharded, "reader", 3);
  ASSERT_TRUE(merge.ok()) << merge.status();
  ASSERT_TRUE(rewriter::HasOp(sharded, "shard_merge"));

  auto base =
      std::move(Pipeline::Create(std::move(unsharded), env.Options())).value();
  auto split =
      std::move(Pipeline::Create(std::move(sharded), env.Options())).value();
  // Shards are pulled concurrently, so order differs; the multiset of
  // element sizes must not (disjoint partitions, union = all files).
  const auto a = Drain(*base);
  const auto b = Drain(*split);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(SizeFingerprint(a), SizeFingerprint(b));
}

TEST(ShardSourceTest, ShardsReadAgainstOwnDevices) {
  PipelineTestEnv env;
  CreateVariedFiles(env.fs, 6, 10);
  // Attach a metered device so the pipeline grows a ShardDevicePool
  // cloned from its spec.
  StorageDevice primary(DeviceSpec::TokenBucketLimit(512e6));
  env.fs.set_device(&primary);

  GraphDef graph = VariedReaderGraph();
  ASSERT_TRUE(rewriter::ShardSource(&graph, "reader", 2).ok());
  auto pipeline =
      std::move(Pipeline::Create(std::move(graph), env.Options())).value();
  ShardDevicePool* pool = pipeline->context()->shard_devices;
  ASSERT_NE(pool, nullptr);
  const auto out = Drain(*pipeline);
  EXPECT_EQ(out.size(), 60u);
  // Both shard devices were instantiated and carried reads; the
  // original device saw none of the shard traffic.
  ASSERT_EQ(pool->num_devices(), 2);
  EXPECT_GT(pool->DeviceFor(0)->total_bytes_read(), 0u);
  EXPECT_GT(pool->DeviceFor(1)->total_bytes_read(), 0u);
  EXPECT_EQ(primary.total_bytes_read(), 0u);
}

TEST(ShardSourceTest, RejectsBadArguments) {
  PipelineTestEnv env;
  CreateVariedFiles(env.fs, 4, 5);
  GraphDef graph = VariedReaderGraph();
  EXPECT_EQ(rewriter::ShardSource(&graph, "reader", 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rewriter::ShardSource(&graph, "nope", 2).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(rewriter::ShardSource(&graph, "m", 2).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(rewriter::ShardSource(&graph, "reader", 2).ok());
  // Re-sharding a sharded graph is refused (no reader is unsharded).
  for (const NodeDef& node : graph.nodes()) {
    if (node.op != "tfrecord") continue;
    EXPECT_EQ(rewriter::ShardSource(&graph, node.name, 2).status().code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(ShardSourceTest, ExtractShardYieldsRunnableSingleShardPrograms) {
  PipelineTestEnv env;
  CreateVariedFiles(env.fs, 5, 10);

  GraphDef unsharded = VariedReaderGraph();
  GraphDef sharded = unsharded;
  ASSERT_TRUE(rewriter::ShardSource(&sharded, "reader", 3).ok());
  // The merged graph holds several shards: no single pin.
  EXPECT_EQ(rewriter::GraphShardIndex(sharded), -1);
  EXPECT_EQ(rewriter::GraphShardIndex(unsharded), -1);

  std::vector<Element> all;
  for (int shard = 0; shard < 3; ++shard) {
    auto cut = rewriter::ExtractShard(sharded, shard);
    ASSERT_TRUE(cut.ok()) << cut.status();
    EXPECT_EQ(rewriter::GraphShardIndex(*cut), shard);
    EXPECT_FALSE(rewriter::HasOp(*cut, "shard_merge"));
    auto pipeline =
        std::move(Pipeline::Create(std::move(*cut), env.Options())).value();
    for (auto& e : Drain(*pipeline)) all.push_back(std::move(e));
  }
  EXPECT_EQ(rewriter::ExtractShard(sharded, 9).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(rewriter::ExtractShard(unsharded, 0).status().code(),
            StatusCode::kFailedPrecondition);

  // The three single-shard programs together produce exactly the
  // unsharded multiset.
  auto base =
      std::move(Pipeline::Create(std::move(unsharded), env.Options())).value();
  EXPECT_EQ(SizeFingerprint(all), SizeFingerprint(Drain(*base)));
}

// ------------------------------------------------------- fleet pinning

TEST(FleetShardPinningTest, ShardProgramsPinToDistinctHosts) {
  FleetSessionOptions fo;
  fo.hosts = {MachineSpec::SetupA(), MachineSpec::SetupA(),
              MachineSpec::SetupA()};
  fo.fleet.policy = fleet::DispatchPolicy::kLocality;
  fo.fleet.work_stealing = false;
  FleetSession cluster(fo);
  ASSERT_TRUE(cluster.CreateRecordFiles("data/f", 6, 10, 64).ok());

  GraphBuilder b;
  auto n = b.TfRecord("reader", b.FileList("files", "data/"));
  n = b.Map("m", n, "noop");
  GraphDef graph = std::move(b.Build(n)).value();
  ASSERT_TRUE(cluster.env().RegisterUdf([] {
                UdfSpec noop;
                noop.name = "noop";
                return noop;
              }())
                  .ok());
  ASSERT_TRUE(rewriter::ShardSource(&graph, "reader", 3).ok());

  std::vector<fleet::FleetJobHandle> handles;
  for (int shard = 0; shard < 3; ++shard) {
    auto cut = rewriter::ExtractShard(graph, shard);
    ASSERT_TRUE(cut.ok()) << cut.status();
    handles.push_back(cluster.Submit(std::move(*cut)));
  }
  for (int shard = 0; shard < 3; ++shard) {
    ASSERT_TRUE(handles[shard].Wait().ok());
    EXPECT_EQ(handles[shard].Stats().host, shard) << "shard " << shard;
  }

  // An explicit pin always wins over the shard-derived one.
  auto cut = rewriter::ExtractShard(graph, 0);
  ASSERT_TRUE(cut.ok());
  fleet::FleetJobOptions jopts;
  jopts.pinned_host = 2;
  auto pinned = cluster.Submit(std::move(*cut), jopts);
  ASSERT_TRUE(pinned.Wait().ok());
  EXPECT_EQ(pinned.Stats().host, 2);
}

}  // namespace
}  // namespace plumber
