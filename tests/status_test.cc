#include "src/util/status.h"

#include <gtest/gtest.h>

namespace plumber {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad knob");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

Status FailingFn() { return OutOfRangeError("nope"); }
Status PassThrough() {
  RETURN_IF_ERROR(FailingFn());
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PassThrough().code(), StatusCode::kOutOfRange);
}

StatusOr<int> ProduceValue(bool ok) {
  if (!ok) return InternalError("boom");
  return 5;
}
StatusOr<int> Doubler(bool ok) {
  ASSIGN_OR_RETURN(int v, ProduceValue(ok));
  return 2 * v;
}

TEST(StatusMacroTest, AssignOrReturnHappyPath) {
  auto v = Doubler(true);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 10);
}

TEST(StatusMacroTest, AssignOrReturnErrorPath) {
  auto v = Doubler(false);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace plumber
