#include "src/core/rewriter.h"

#include <gtest/gtest.h>

#include "src/pipeline/graph_builder.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

GraphDef TestGraph() {
  GraphBuilder b;
  auto n = b.Interleave("interleave", b.FileList("files", "data/"), 4, 2);
  n = b.Map("decode", n, "decode", /*parallelism=*/3);
  n = b.SequentialMap("pack", n, "pack");
  n = b.Batch("batch", n, 8);
  return std::move(b.Build(n)).value();
}

TEST(RewriterTest, GetSetParallelism) {
  GraphDef g = TestGraph();
  EXPECT_EQ(*rewriter::GetParallelism(g, "decode"), 3);
  EXPECT_EQ(*rewriter::GetParallelism(g, "interleave"), 2);
  ASSERT_TRUE(rewriter::SetParallelism(&g, "decode", 9).ok());
  EXPECT_EQ(*rewriter::GetParallelism(g, "decode"), 9);
}

TEST(RewriterTest, ParallelismRejectsBadInputs) {
  GraphDef g = TestGraph();
  EXPECT_FALSE(rewriter::SetParallelism(&g, "decode", 0).ok());
  EXPECT_FALSE(rewriter::SetParallelism(&g, "ghost", 2).ok());
  // batch has no knob; pack is explicitly non-tunable.
  EXPECT_FALSE(rewriter::SetParallelism(&g, "batch", 2).ok());
  EXPECT_FALSE(rewriter::SetParallelism(&g, "pack", 2).ok());
  EXPECT_FALSE(rewriter::GetParallelism(g, "batch").ok());
}

TEST(RewriterTest, TunableNodesExcludesSequentialStages) {
  const GraphDef g = TestGraph();
  const auto tunables = rewriter::TunableNodes(g);
  EXPECT_EQ(tunables.size(), 2u);
  EXPECT_NE(std::find(tunables.begin(), tunables.end(), "interleave"),
            tunables.end());
  EXPECT_NE(std::find(tunables.begin(), tunables.end(), "decode"),
            tunables.end());
}

TEST(RewriterTest, SetAllParallelism) {
  GraphDef g = TestGraph();
  ASSERT_TRUE(rewriter::SetAllParallelism(&g, 16).ok());
  EXPECT_EQ(*rewriter::GetParallelism(g, "decode"), 16);
  EXPECT_EQ(*rewriter::GetParallelism(g, "interleave"), 16);
  // Non-tunable stage untouched.
  EXPECT_EQ(g.FindNode("pack")->GetInt(kAttrParallelism, 1), 1);
}

TEST(RewriterTest, InjectPrefetchAfterNode) {
  GraphDef g = TestGraph();
  auto name = rewriter::InjectPrefetch(&g, "decode", 6);
  ASSERT_TRUE(name.ok());
  const NodeDef* p = g.FindNode(*name);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->op, "prefetch");
  EXPECT_EQ(p->GetInt(kAttrBufferSize), 6);
  EXPECT_EQ(p->inputs, std::vector<std::string>{"decode"});
  EXPECT_EQ(g.FindNode("pack")->inputs, std::vector<std::string>{*name});
  EXPECT_TRUE(g.Validate().ok());
}

TEST(RewriterTest, InjectCacheAfterNode) {
  GraphDef g = TestGraph();
  auto name = rewriter::InjectCache(&g, "decode");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(g.FindNode(*name)->op, "cache");
  EXPECT_TRUE(rewriter::HasOp(g, "cache"));
  EXPECT_TRUE(g.Validate().ok());
}

TEST(RewriterTest, EnsureRootPrefetchInjects) {
  GraphDef g = TestGraph();
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&g, 5).ok());
  const NodeDef* root = g.FindNode(g.output());
  EXPECT_EQ(root->op, "prefetch");
  EXPECT_EQ(root->GetInt(kAttrBufferSize), 5);
}

TEST(RewriterTest, EnsureRootPrefetchUpdatesExisting) {
  GraphDef g = TestGraph();
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&g, 5).ok());
  const std::string first_root = g.output();
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&g, 9).ok());
  EXPECT_EQ(g.output(), first_root);  // no second prefetch stacked
  EXPECT_EQ(g.FindNode(g.output())->GetInt(kAttrBufferSize), 9);
}

TEST(RewriterTest, BufferSizeAccessors) {
  GraphDef g = TestGraph();
  ASSERT_TRUE(rewriter::EnsureRootPrefetch(&g, 3).ok());
  const std::string root = g.output();
  EXPECT_EQ(*rewriter::GetBufferSize(g, root), 3);
  ASSERT_TRUE(rewriter::SetBufferSize(&g, root, 12).ok());
  EXPECT_EQ(*rewriter::GetBufferSize(g, root), 12);
  EXPECT_FALSE(rewriter::SetBufferSize(&g, root, 0).ok());
}

TEST(RewriterTest, ApplyParallelismPlanSkipsUnknownNodes) {
  GraphDef g = TestGraph();
  LpPlan plan;
  plan.parallelism["decode"] = 7;
  plan.parallelism["ghost"] = 3;   // silently skipped
  plan.parallelism["batch"] = 2;   // no knob: skipped
  ASSERT_TRUE(rewriter::ApplyParallelismPlan(&g, plan).ok());
  EXPECT_EQ(*rewriter::GetParallelism(g, "decode"), 7);
}

}  // namespace
}  // namespace plumber
