// A flat ring buffer for restoring deterministic order from dense,
// monotonically increasing tickets.
//
// Parallel operators tag results with a pull-time ticket and the
// consumer re-emits them in ticket order. The natural structure is a
// ring indexed by `ticket & mask`: insert and extract are O(1) array
// stores with no per-element allocation, unlike the std::map reorder
// buffer it replaces (rebalancing red-black nodes on the hot path).
//
// Invariant: at any moment every buffered ticket lies in
// [expected, expected + capacity), where `expected` is the next ticket
// the consumer will emit. Insert grows the ring (rarely — only when a
// resize raised the number of in-flight elements past the initial
// sizing) to preserve the invariant, re-mapping buffered slots.
//
// Single-threaded: owned and touched only by the consuming thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace plumber {

template <typename T>
class ReorderRing {
 public:
  explicit ReorderRing(size_t capacity) {
    size_t c = 2;
    while (c < capacity) c <<= 1;
    slots_.resize(c);
    present_.assign(c, 0);
  }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t capacity() const { return slots_.size(); }

  // Buffers the item with ticket `order`. `expected` is the next ticket
  // the consumer will extract; `order` must be >= expected.
  void Insert(uint64_t expected, uint64_t order, T item) {
    if (order - expected >= slots_.size()) Grow(expected, order - expected + 1);
    const size_t i = static_cast<size_t>(order & Mask());
    slots_[i] = std::move(item);
    present_[i] = 1;
    ++count_;
  }

  // Extracts the item with ticket `expected` if buffered.
  bool TakeIfPresent(uint64_t expected, T* out) {
    const size_t i = static_cast<size_t>(expected & Mask());
    if (!present_[i]) return false;
    *out = std::move(slots_[i]);
    present_[i] = 0;
    --count_;
    return true;
  }

 private:
  uint64_t Mask() const { return slots_.size() - 1; }

  void Grow(uint64_t expected, size_t need) {
    size_t c = slots_.size();
    while (c < need) c <<= 1;
    std::vector<T> slots(c);
    std::vector<uint8_t> present(c, 0);
    // Every buffered ticket is in [expected, expected + old_capacity),
    // so offset enumeration recovers each slot's ticket and re-maps it.
    for (uint64_t off = 0; off < slots_.size(); ++off) {
      const uint64_t order = expected + off;
      const size_t from = static_cast<size_t>(order & Mask());
      if (!present_[from]) continue;
      const size_t to = static_cast<size_t>(order & (c - 1));
      slots[to] = std::move(slots_[from]);
      present[to] = 1;
    }
    slots_ = std::move(slots);
    present_ = std::move(present);
  }

  std::vector<T> slots_;
  std::vector<uint8_t> present_;  // not vector<bool>: plain byte flags
  size_t count_ = 0;
};

}  // namespace plumber
