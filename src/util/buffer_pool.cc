#include "src/util/buffer_pool.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>

namespace plumber {
namespace {

// Size classes by capacity: 2^12 (4 KiB) .. 2^20 (1 MiB).
constexpr size_t kMinClassLog2 = 12;
constexpr size_t kMaxClassLog2 = 20;
constexpr size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

// Requests at or below this go straight to the allocator: its
// thread-cache path beats magazine bookkeeping for small blocks
// (measured ~9% on the tiny-element cheap-UDF chain), while blocks
// above it cross into the allocator's contended central lists — the
// regime the pool exists for.
constexpr size_t kBypassBytes = (size_t{1} << kMinClassLog2) / 2;

// Per-thread, per-class magazine depth: the sync-free working set.
constexpr size_t kMagazineDepth = 8;
// Per-shard, per-class depot depth.
constexpr size_t kDepotDepth = 64;
constexpr size_t kNumShards = 8;

// Smallest class whose buffers can serve `bytes`; kNumClasses when the
// request bypasses the pool (too small or too large).
size_t ClassForAcquire(size_t bytes) {
  if (bytes <= kBypassBytes) return kNumClasses;
  size_t log2 = kMinClassLog2;
  while (log2 <= kMaxClassLog2 && (size_t{1} << log2) < bytes) ++log2;
  return log2 > kMaxClassLog2 ? kNumClasses : log2 - kMinClassLog2;
}

// Largest class whose floor the capacity reaches: every buffer binned
// here has capacity >= the class size, so ClassForAcquire stays sound.
size_t ClassForRelease(size_t capacity) {
  if (capacity < (size_t{1} << kMinClassLog2)) return kNumClasses;
  size_t log2 = kMinClassLog2;
  while (log2 < kMaxClassLog2 && (size_t{1} << (log2 + 1)) <= capacity) {
    ++log2;
  }
  return log2 - kMinClassLog2;
}

// Per-thread statistics block. Written only by the owning thread
// (relaxed atomics on a line no other core writes), read by GetStats —
// a shared global counter would put one contended cache line on the
// per-element fast path of every worker.
struct StatBlock {
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> acquire_hits{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> release_drops{0};
};

struct StatRegistry {
  std::mutex mu;
  std::vector<StatBlock*> live;
  // Totals folded in from exited threads (under mu).
  BufferPool::Stats retired;
};

StatRegistry& GlobalStatRegistry() {
  static StatRegistry* registry = new StatRegistry();  // leaked, see Get()
  return *registry;
}

}  // namespace

struct BufferPool::Shard {
  std::mutex mu;
  std::array<std::vector<Buffer>, kNumClasses> free_lists;
};

namespace {

BufferPool::Shard* GlobalShards() {
  // Leaked: worker threads may flush magazines during static teardown.
  static BufferPool::Shard* shards = new BufferPool::Shard[kNumShards];
  return shards;
}

}  // namespace

struct ThreadMagazine {
  std::array<std::vector<Buffer>, kNumClasses> stacks;
  StatBlock* stats;

  ThreadMagazine() : stats(new StatBlock()) {
    StatRegistry& registry = GlobalStatRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.live.push_back(stats);
  }

  ~ThreadMagazine() {
    // Thread exit: spill the working set to the depot so another
    // thread can reuse it (drops if the depot is full), and fold this
    // thread's counters into the retired totals.
    for (size_t c = 0; c < kNumClasses; ++c) {
      for (auto& buffer : stacks[c]) {
        BufferPool::Get()->DepotRelease(c, std::move(buffer));
      }
    }
    StatRegistry& registry = GlobalStatRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.retired.acquires += stats->acquires.load();
    registry.retired.acquire_hits += stats->acquire_hits.load();
    registry.retired.releases += stats->releases.load();
    registry.retired.release_drops += stats->release_drops.load();
    for (auto it = registry.live.begin(); it != registry.live.end(); ++it) {
      if (*it == stats) {
        registry.live.erase(it);
        break;
      }
    }
    delete stats;
  }
};

namespace {

ThreadMagazine& Magazine() {
  thread_local ThreadMagazine magazine;
  return magazine;
}

}  // namespace

BufferPool* BufferPool::Get() {
  static BufferPool* pool = new BufferPool();  // leaked, see GlobalShards
  return pool;
}

bool BufferPool::Enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("PLUMBER_BUFFER_POOL");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return enabled;
}

BufferPool::Shard* BufferPool::HomeShard() {
  // Stable per-thread shard choice: spreads cross-thread traffic
  // without coordinating.
  thread_local const size_t home =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kNumShards;
  return &GlobalShards()[home];
}

bool BufferPool::DepotAcquire(size_t class_index, Buffer* out) {
  Shard* shard = HomeShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  auto& list = shard->free_lists[class_index];
  if (list.empty()) return false;
  *out = std::move(list.back());
  list.pop_back();
  return true;
}

bool BufferPool::DepotRelease(size_t class_index, Buffer buffer) {
  Shard* shard = HomeShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  auto& list = shard->free_lists[class_index];
  if (list.size() >= kDepotDepth) return false;
  list.push_back(std::move(buffer));
  return true;
}

Buffer BufferPool::Acquire(size_t bytes) {
  // Stats count only pool-eligible traffic: bypassed small/huge
  // requests are ordinary allocations, not pool misses.
  const size_t c = ClassForAcquire(bytes);
  if (!Enabled() || c >= kNumClasses) return Buffer(bytes);
  ThreadMagazine& magazine = Magazine();
  magazine.stats->acquires.fetch_add(1, std::memory_order_relaxed);
  auto& stack = magazine.stacks[c];
  Buffer buffer;
  bool hit = false;
  if (!stack.empty()) {
    buffer = std::move(stack.back());
    stack.pop_back();
    hit = true;
  } else {
    hit = DepotAcquire(c, &buffer);
  }
  if (hit) {
    magazine.stats->acquire_hits.fetch_add(1, std::memory_order_relaxed);
    buffer.resize(bytes);
    return buffer;
  }
  return Buffer(bytes);
}

void BufferPool::Release(Buffer buffer) {
  const size_t c = ClassForRelease(buffer.capacity());
  if (!Enabled() || c >= kNumClasses) return;  // freed by ~Buffer
  ThreadMagazine& magazine = Magazine();
  magazine.stats->releases.fetch_add(1, std::memory_order_relaxed);
  auto& stack = magazine.stacks[c];
  if (stack.size() < kMagazineDepth) {
    stack.push_back(std::move(buffer));
    return;
  }
  if (!DepotRelease(c, std::move(buffer))) {
    magazine.stats->release_drops.fetch_add(1, std::memory_order_relaxed);
  }
}

BufferPool::Stats BufferPool::GetStats() const {
  StatRegistry& registry = GlobalStatRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Stats out = registry.retired;
  for (const StatBlock* block : registry.live) {
    out.acquires += block->acquires.load(std::memory_order_relaxed);
    out.acquire_hits += block->acquire_hits.load(std::memory_order_relaxed);
    out.releases += block->releases.load(std::memory_order_relaxed);
    out.release_drops +=
        block->release_drops.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace plumber
