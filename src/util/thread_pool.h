// A fixed-size thread pool with a blocking work queue.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace plumber {

class ThreadPool {
 public:
  // Creates `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues work; returns false if the pool is shutting down.
  bool Schedule(std::function<void()> fn);

  // Blocks until all currently queued and running work is complete.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Runs fn(i) for i in [0, n) across up to `parallelism` threads created
// on the spot; blocks until done. Convenience for inner-parallel UDFs.
void ParallelFor(int n, int parallelism, const std::function<void(int)>& fn);

}  // namespace plumber
