// Lightweight Status / StatusOr error-handling types.
//
// The pipeline engine is exception-free on its hot paths (an iterator
// GetNext call happens millions of times per run); Status is a cheap
// value type whose OK state carries no allocation.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace plumber {

enum class StatusCode {
  kOk = 0,
  kCancelled,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus();
Status CancelledError(std::string_view msg);
Status InvalidArgumentError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status UnimplementedError(std::string_view msg);
Status InternalError(std::string_view msg);

// A value-or-error holder. Accessing value() on an error aborts in debug
// builds; callers are expected to check ok() first (see I.5/I.7 in the
// Core Guidelines: preconditions stated, checked at runtime).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define PLUMBER_CONCAT_INNER(a, b) a##b
#define PLUMBER_CONCAT(a, b) PLUMBER_CONCAT_INNER(a, b)

#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::plumber::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define ASSIGN_OR_RETURN(lhs, expr)                                    \
  auto PLUMBER_CONCAT(_st_or_, __LINE__) = (expr);                     \
  if (!PLUMBER_CONCAT(_st_or_, __LINE__).ok())                         \
    return PLUMBER_CONCAT(_st_or_, __LINE__).status();                 \
  lhs = std::move(PLUMBER_CONCAT(_st_or_, __LINE__)).value()

}  // namespace plumber
