#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace plumber {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace plumber
