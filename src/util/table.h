// ASCII table rendering for benchmark harness output.
#pragma once

#include <string>
#include <vector>

namespace plumber {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  std::string Render() const;
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plumber
