#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace plumber {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * Normal());
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  double u = UniformDouble();
  while (u <= 0) u = UniformDouble();
  return -std::log(u) / rate;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace plumber
