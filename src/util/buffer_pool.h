// A recycling arena for Element component buffers.
//
// Hot paths allocate one Buffer (std::vector<uint8_t>) per element per
// op — source decode, UDF output — and free it one handoff later, so at
// high parallelism the global allocator becomes a contended side
// channel next to the lock-free data plane. The pool keeps retired
// buffers' heap blocks alive and hands them back to the next acquire
// of a compatible size instead:
//
//   * Power-of-two size classes (4 KiB .. 1 MiB by capacity). Releases
//     bin by the buffer's actual capacity; an acquire of `n` bytes is
//     served from the class whose buffers all have capacity >= n.
//     Requests at or below 2 KiB bypass the pool entirely: the
//     allocator's thread cache already wins for small blocks, and it
//     is the large blocks that hit its contended central lists.
//   * Thread-local magazines: each thread keeps a small per-class stack
//     of buffers, so the steady-state acquire/release pair is a plain
//     pointer move with no synchronization at all.
//   * Sharded global depot: magazine overflow (and thread exit) spills
//     to one of several mutex-guarded shards; a magazine miss refills
//     from the thread's home shard. This is what lets producer threads
//     retire buffers that consumer threads acquired (and vice versa)
//     without a single contended free list.
//   * Bounded: both layers cap their buffer counts; overflow falls
//     through to the real allocator. Sizes outside the class range are
//     never pooled.
//
// Acquired buffers have size() == requested bytes but arbitrary
// contents — every producer in this codebase fully overwrites its
// output buffer (TransformBuffer, FillDeterministicBytes, ReadRecord),
// which is what makes recycling safe.
//
// The knob: set PLUMBER_BUFFER_POOL=0 to disable recycling (every
// Acquire allocates, every Release frees); read once at first use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plumber {

using Buffer = std::vector<uint8_t>;

class BufferPool {
 public:
  // Process-wide pool (leaked singleton: outlives every worker thread's
  // magazine flush at exit).
  static BufferPool* Get();

  // False when PLUMBER_BUFFER_POOL=0; Acquire/Release still work but
  // degrade to plain allocate/free.
  static bool Enabled();

  // Returns a buffer with size() == bytes and unspecified contents.
  Buffer Acquire(size_t bytes);

  // Retires a buffer's storage into the pool (or frees it when the
  // pool is disabled, the buffer is out of class range, or all layers
  // are full).
  void Release(Buffer buffer);

  // Retires every component buffer of consumed elements — the drain-
  // side hook that closes the recycling loop.
  template <typename ElementT>
  void ReleaseElement(ElementT&& element) {
    for (auto& component : element.components) {
      Release(std::move(component));
    }
    element.components.clear();
  }

  struct Stats {
    uint64_t acquires = 0;       // total Acquire calls
    uint64_t acquire_hits = 0;   // served from magazine or depot
    uint64_t releases = 0;       // total Release calls
    uint64_t release_drops = 0;  // fell through to the allocator
  };
  Stats GetStats() const;

  // Depot shard; defined in buffer_pool.cc.
  struct Shard;

 private:
  BufferPool() = default;
  friend struct ThreadMagazine;

  Shard* HomeShard();

  // Depot access for magazine miss/overflow; class_index is a valid
  // size-class slot.
  bool DepotAcquire(size_t class_index, Buffer* out);
  bool DepotRelease(size_t class_index, Buffer buffer);
};

}  // namespace plumber
