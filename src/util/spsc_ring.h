// A lock-free single-producer / single-consumer bounded ring channel.
//
// The zero-contention fast path of the data plane: structurally 1:1
// edges (prefetch fill->GetNext, single-worker pools) hand elements off
// through this ring instead of a mutex-guarded queue. Design:
//
//   * Power-of-two capacity; monotonically increasing head/tail indices
//     masked into slots, so full/empty tests are plain subtractions and
//     no index ever wraps ambiguously.
//   * Producer and consumer indices live on separate cache lines, and
//     each side keeps a cached copy of the other's index so the common
//     push/pop refreshes the shared line only when the cached view says
//     the ring might be full/empty (one acquire load per capacity
//     window, not per element).
//   * Batch claim/publish: PushBatch moves a whole span of items into
//     claimed slots and publishes them with one release store; PopBatch
//     drains a span with one release store of the head.
//   * Spin-then-park waiting: a stalled side spins briefly (the
//     neighbor is usually nanoseconds away), then parks on a condvar so
//     an idle consumer doesn't burn a core. The park protocol is a
//     Dekker handshake: the waiter advertises itself (seq_cst), re-checks
//     the ring, then sleeps; the publisher stores the new index and then
//     checks the advertisement (seq_cst), so at least one side always
//     sees the other and no wakeup is lost.
//
// Thread contract: at most one thread pushes and one thread pops at any
// time. Cancel() and the metric accessors are safe from any thread.
// Semantics match BoundedQueue (see Channel<T> in src/util/channel.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "src/util/channel.h"
#include "src/util/cpu_timer.h"

namespace plumber {

template <typename T>
class SpscRing final : public Channel<T> {
 public:
  // Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity)
      : capacity_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  bool Push(T item) override {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (!WaitForSpace(tail)) return false;
    slots_[tail & mask_] = std::move(item);
    Publish(tail + 1, /*pushed=*/1);
    return true;
  }

  bool TryPush(T item) override {
    if (cancelled_.load(std::memory_order_acquire)) return false;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (FreeSlots(tail) == 0) return false;
    slots_[tail & mask_] = std::move(item);
    Publish(tail + 1, /*pushed=*/1);
    return true;
  }

  bool PushBatch(std::vector<T> items) override {
    if (items.empty()) return !cancelled();
    size_t offset = 0;
    while (offset < items.size()) {
      const uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (!WaitForSpace(tail)) return false;
      const size_t n =
          std::min(items.size() - offset, FreeSlots(tail));
      for (size_t i = 0; i < n; ++i) {
        slots_[(tail + i) & mask_] = std::move(items[offset + i]);
      }
      offset += n;
      Publish(tail + n, /*pushed=*/n);
    }
    return true;
  }

  std::optional<T> Pop() override {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const bool was_empty = AvailableItems(head) == 0;
    if (!WaitForItems(head)) {
      empty_pops_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (was_empty) empty_pops_.fetch_add(1, std::memory_order_relaxed);
    T item = std::move(slots_[head & mask_]);
    Release(head + 1);
    return item;
  }

  std::optional<T> TryPop() override {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (AvailableItems(head) == 0) return std::nullopt;
    T item = std::move(slots_[head & mask_]);
    Release(head + 1);
    return item;
  }

  size_t PopBatch(size_t max_items, std::vector<T>* out) override {
    if (max_items == 0) return 0;
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const bool was_empty = AvailableItems(head) == 0;
    if (!WaitForItems(head)) {
      empty_pops_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    const size_t n = std::min(max_items, AvailableItems(head));
    // EmptyPopFraction's denominator counts elements, so a stalled batch
    // claim counts every element it delayed (see BoundedQueue::PopBatch).
    if (was_empty) {
      empty_pops_.fetch_add(n, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[(head + i) & mask_]));
    }
    Release(head + n);
    return n;
  }

  void Cancel() override {
    cancelled_.store(true, std::memory_order_seq_cst);
    // Lock before notifying so a waiter past its predicate re-check but
    // not yet asleep cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(wait_mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool cancelled() const override {
    return cancelled_.load(std::memory_order_acquire);
  }

  size_t size() const override {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const override { return capacity_; }

  double EmptyPopFraction() const override {
    const uint64_t pushed = total_pushed_.load(std::memory_order_relaxed);
    const uint64_t empty = empty_pops_.load(std::memory_order_relaxed);
    const uint64_t pops = pushed + empty;
    return pops == 0 ? 0.0 : static_cast<double>(empty) / pops;
  }

  double MeanOccupancy() const override {
    const uint64_t samples =
        occupancy_samples_.load(std::memory_order_relaxed);
    return samples == 0 ? 0.0
                        : static_cast<double>(occupancy_sum_.load(
                              std::memory_order_relaxed)) /
                              samples;
  }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  // Brief spin before parking: the peer is usually mid-batch and will
  // advance the ring within a microsecond; parking costs two syscalls.
  static constexpr int kSpinRounds = 4096;

  size_t FreeSlots(uint64_t tail) {
    // Producer-side: refresh the cached head only when the cache says
    // full — the single acquire load per capacity window.
    if (capacity_ - (tail - head_cache_) == 0) {
      head_cache_ = head_.load(std::memory_order_acquire);
    }
    return capacity_ - static_cast<size_t>(tail - head_cache_);
  }

  size_t AvailableItems(uint64_t head) {
    if (tail_cache_ - head == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
    }
    return static_cast<size_t>(tail_cache_ - head);
  }

  // Park-loop re-checks: seq_cst index loads so the Dekker handshake
  // with Publish/Release is airtight (the fast paths keep acquire).
  size_t FreeSlotsSlow(uint64_t tail) {
    head_cache_ = head_.load(std::memory_order_seq_cst);
    return capacity_ - static_cast<size_t>(tail - head_cache_);
  }

  size_t AvailableItemsSlow(uint64_t head) {
    tail_cache_ = tail_.load(std::memory_order_seq_cst);
    return static_cast<size_t>(tail_cache_ - head);
  }

  // Blocks (spin then park) until at least one slot is free. False once
  // cancelled.
  bool WaitForSpace(uint64_t tail) {
    if (cancelled_.load(std::memory_order_acquire)) return false;
    if (FreeSlots(tail) > 0) return true;
    for (int i = 0; i < kSpinRounds; ++i) {
      if (cancelled_.load(std::memory_order_acquire)) return false;
      if (FreeSlots(tail) > 0) return true;
    }
    BlockedRegion blocked;  // producer stall: not CPU work
    std::unique_lock<std::mutex> lock(wait_mu_);
    producer_parked_.store(true, std::memory_order_seq_cst);
    while (!cancelled_.load(std::memory_order_seq_cst) &&
           FreeSlotsSlow(tail) == 0) {
      not_full_.wait(lock);
    }
    producer_parked_.store(false, std::memory_order_seq_cst);
    return !cancelled_.load(std::memory_order_acquire);
  }

  // Blocks until at least one item is visible. False only when
  // cancelled AND drained (matching BoundedQueue's drain-then-stop).
  bool WaitForItems(uint64_t head) {
    if (AvailableItems(head) > 0) return true;
    if (!cancelled_.load(std::memory_order_acquire)) {
      for (int i = 0; i < kSpinRounds; ++i) {
        if (AvailableItems(head) > 0) return true;
        if (cancelled_.load(std::memory_order_acquire)) break;
      }
      BlockedRegion blocked;  // consumer stall: not CPU work
      std::unique_lock<std::mutex> lock(wait_mu_);
      consumer_parked_.store(true, std::memory_order_seq_cst);
      while (!cancelled_.load(std::memory_order_seq_cst) &&
             AvailableItemsSlow(head) == 0) {
        not_empty_.wait(lock);
      }
      consumer_parked_.store(false, std::memory_order_seq_cst);
    }
    return AvailableItems(head) > 0;
  }

  // Publishes claimed slots and wakes a parked consumer.
  void Publish(uint64_t new_tail, size_t pushed) {
    tail_.store(new_tail, std::memory_order_seq_cst);
    total_pushed_.fetch_add(pushed, std::memory_order_relaxed);
    occupancy_sum_.fetch_add(
        new_tail - head_cache_, std::memory_order_relaxed);
    occupancy_samples_.fetch_add(1, std::memory_order_relaxed);
    if (consumer_parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(wait_mu_);
      not_empty_.notify_one();
    }
  }

  // Releases consumed slots and wakes a parked producer.
  void Release(uint64_t new_head) {
    head_.store(new_head, std::memory_order_seq_cst);
    if (producer_parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(wait_mu_);
      not_full_.notify_one();
    }
  }

  const size_t capacity_;
  const uint64_t mask_;
  std::vector<T> slots_;

  // Producer side: owns tail_, caches the consumer's head.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  // Consumer side: owns head_, caches the producer's tail.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;

  alignas(64) std::atomic<bool> cancelled_{false};
  std::atomic<bool> producer_parked_{false};
  std::atomic<bool> consumer_parked_{false};
  std::mutex wait_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;

  // Metrics (relaxed: read cross-thread by the planner, exactness of
  // interleaving does not matter).
  std::atomic<uint64_t> total_pushed_{0};
  std::atomic<uint64_t> empty_pops_{0};
  std::atomic<uint64_t> occupancy_sum_{0};
  std::atomic<uint64_t> occupancy_samples_{0};
};

}  // namespace plumber
