// Minimal leveled logging to stderr.
#pragma once

#include <sstream>
#include <string>

namespace plumber {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace plumber

#define PLOG(level)                                                     \
  ::plumber::internal::LogMessage(::plumber::LogLevel::k##level,        \
                                  __FILE__, __LINE__)
