// Wall-clock and per-thread CPU-time clocks.
//
// Plumber's tracing design depends on thread-CPU timers: time a thread
// spends blocked (e.g. on a token-bucket-limited read or an empty queue)
// must not count as CPU work, so that I/O-bound Datasets are accounted
// correctly (paper §B "Measuring CPU").
#pragma once

#include <cstdint>

namespace plumber {

// Monotonic wall clock, nanoseconds.
int64_t WallNanos();

// CPU time consumed by the calling thread, nanoseconds
// (CLOCK_THREAD_CPUTIME_ID). NOTE: many kernels account this clock at
// scheduler-tick (10ms) granularity, which is far too coarse for
// per-Next-call attribution; prefer ThreadVirtualCpuNanos below.
int64_t ThreadCpuNanos();

// CPU time consumed by the whole process, nanoseconds.
int64_t ProcessCpuNanos();

// --- Virtual thread-CPU clock -------------------------------------
// Wall time minus explicitly declared blocked time on this thread.
// All blocking sites in the runtime (token-bucket stalls, bounded-queue
// waits, simulated device latency) mark themselves with BlockedRegion,
// so for the engine's spin-kernel workloads this clock matches true
// thread CPU time at nanosecond granularity without depending on the
// kernel's (often 10ms-granular) CLOCK_THREAD_CPUTIME_ID.
int64_t ThreadVirtualCpuNanos();

// Adds `ns` to the calling thread's blocked-time ledger.
void AddBlockedNanos(int64_t ns);

// RAII marker for a region where the thread is blocked, not computing.
class BlockedRegion {
 public:
  BlockedRegion() : start_(WallNanos()) {}
  ~BlockedRegion() { AddBlockedNanos(WallNanos() - start_); }
  BlockedRegion(const BlockedRegion&) = delete;
  BlockedRegion& operator=(const BlockedRegion&) = delete;

 private:
  int64_t start_;
};

// Scoped wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(WallNanos()) {}
  void Reset() { start_ = WallNanos(); }
  int64_t ElapsedNanos() const { return WallNanos() - start_; }
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }

 private:
  int64_t start_;
};

}  // namespace plumber
