#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace plumber {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / count_;
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const int64_t n = count_ + other.count_;
  const double delta = other.mean_ - mean_;
  const double mean = mean_ + delta * other.count_ / n;
  m2_ += other.m2_ + delta * delta * count_ * other.count_ / n;
  mean_ = mean;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / (count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ConfidenceInterval95() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void QuantileSketch::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double QuantileSketch::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * (values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - lo;
  return values_[lo] * (1 - frac) + values_[hi] * frac;
}

double QuantileSketch::FractionAbove(double x) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(values_.end() - it) / values_.size();
}

LogHistogram::LogHistogram(double min_value, double max_value,
                           int buckets_per_decade)
    : min_value_(min_value),
      log_min_(std::log10(min_value)),
      bucket_width_(1.0 / buckets_per_decade) {
  assert(min_value > 0 && max_value > min_value && buckets_per_decade > 0);
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(static_cast<size_t>(decades * buckets_per_decade) + 2, 0);
}

size_t LogHistogram::BucketIndex(double x) const {
  if (x <= min_value_) return 0;
  const double pos = (std::log10(x) - log_min_) / bucket_width_;
  const size_t idx = static_cast<size_t>(pos) + 1;
  return std::min(idx, counts_.size() - 1);
}

void LogHistogram::Add(double x) {
  ++counts_[BucketIndex(x)];
  ++total_;
}

std::vector<LogHistogram::Bucket> LogHistogram::NonEmptyBuckets() const {
  std::vector<Bucket> out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lower =
        i == 0 ? 0 : std::pow(10, log_min_ + (i - 1) * bucket_width_);
    const double upper = std::pow(10, log_min_ + i * bucket_width_);
    out.push_back({lower, upper, counts_[i]});
  }
  return out;
}

double LogHistogram::Cdf(double x) const {
  if (total_ == 0) return 0.0;
  const size_t idx = BucketIndex(x);
  int64_t below = 0;
  for (size_t i = 0; i <= idx; ++i) below += counts_[i];
  return static_cast<double>(below) / total_;
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  for (const auto& b : NonEmptyBuckets()) {
    os << "[" << b.lower << ", " << b.upper << "): " << b.count << "\n";
  }
  return os.str();
}

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const size_t n = x.size();
  if (n == 0) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace plumber
