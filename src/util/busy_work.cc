#include "src/util/busy_work.h"

#include <cerrno>
#include <ctime>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "src/util/cpu_timer.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

// One round of the spin kernel: a few dependent xorshift-multiply steps.
inline uint64_t SpinRound(uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  x *= 0x2545f4914f6cdd1dULL;
  return x;
}

uint64_t RunRounds(uint64_t state, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) state = SpinRound(state);
  return state;
}

double CalibrateRoundsPerNano() {
  // Warm up, then time a fixed number of rounds with the wall clock
  // (the spin kernel is pure CPU, so uninterrupted wall == CPU; taking
  // the max rate over repetitions discards preempted runs).
  volatile uint64_t sink = RunRounds(1, 100000);
  (void)sink;
  double best = 0;
  for (int rep = 0; rep < 5; ++rep) {
    constexpr int64_t kRounds = 4000000;
    const int64_t t0 = WallNanos();
    sink = RunRounds(rep + 1, kRounds);
    const int64_t t1 = WallNanos();
    if (t1 > t0) {
      best = std::max(best, static_cast<double>(kRounds) / (t1 - t0));
    }
  }
  return best > 0 ? best : 1.0;
}

std::atomic<double> g_rounds_per_nano{0.0};
std::once_flag g_calibrate_once;

}  // namespace

double SpinRoundsPerNano() {
  std::call_once(g_calibrate_once, [] {
    // Calibration is harness overhead, not pipeline work: exclude its
    // wall time from the virtual thread-CPU clock so the first UDF call
    // in a process is not over-charged the calibration cost.
    BlockedRegion not_pipeline_work;
    g_rounds_per_nano.store(CalibrateRoundsPerNano(),
                            std::memory_order_relaxed);
  });
  return g_rounds_per_nano.load(std::memory_order_relaxed);
}

uint64_t BurnCpuNanos(int64_t ns, uint64_t seed) {
  if (ns <= 0) return seed;
  const double rpn = SpinRoundsPerNano();
  const int64_t rounds = static_cast<int64_t>(ns * rpn);
  // A fixed round count is the correct notion of "CPU work": it costs
  // the same CPU regardless of preemption or oversubscription.
  return RunRounds(seed | 1, rounds);
}

uint64_t OccupyWallNanos(int64_t ns, uint64_t seed) {
  if (ns <= 0) return seed;
  // Sleep up to the spin tail, then spin-wait the rest: nanosleep alone
  // overshoots by the kernel timer slack (~50us), which would distort
  // per-element costs in the hundreds-of-microseconds range.
  constexpr int64_t kSpinTailNanos = 50000;
  const int64_t deadline = WallNanos() + ns;
  if (ns > kSpinTailNanos) {
    const int64_t wake = deadline - kSpinTailNanos;
    timespec ts;
    ts.tv_sec = static_cast<time_t>(wake / 1000000000LL);
    ts.tv_nsec = static_cast<long>(wake % 1000000000LL);
    while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr) ==
           EINTR) {
    }
  }
  uint64_t state = seed | 1;
  while (WallNanos() < deadline) state = RunRounds(state, 64);
  return state;
}

void TransformBuffer(const std::vector<uint8_t>& input, size_t output_bytes,
                     uint64_t seed, std::vector<uint8_t>* output) {
  output->resize(output_bytes);
  uint64_t h = SplitMix64(seed);
  // Fold the input through a rolling hash so the transform depends on
  // every input byte (a decoder reads everything it decodes).
  for (size_t i = 0; i < input.size(); i += 8) {
    uint64_t chunk = 0;
    const size_t n = std::min<size_t>(8, input.size() - i);
    for (size_t j = 0; j < n; ++j) {
      chunk |= static_cast<uint64_t>(input[i + j]) << (8 * j);
    }
    h = SpinRound(h ^ chunk);
  }
  uint64_t x = h;
  size_t i = 0;
  while (i < output_bytes) {
    x = SpinRound(x);
    const size_t n = std::min<size_t>(8, output_bytes - i);
    for (size_t j = 0; j < n; ++j) {
      (*output)[i + j] = static_cast<uint8_t>(x >> (8 * j));
    }
    i += n;
  }
}

void FillDeterministicBytes(uint64_t seed, size_t n,
                            std::vector<uint8_t>* out) {
  out->resize(n);
  uint64_t x = SplitMix64(seed);
  size_t i = 0;
  while (i < n) {
    x = SpinRound(x | 1);
    const size_t m = std::min<size_t>(8, n - i);
    for (size_t j = 0; j < m; ++j) {
      (*out)[i + j] = static_cast<uint8_t>(x >> (8 * j));
    }
    i += m;
  }
}

}  // namespace plumber
