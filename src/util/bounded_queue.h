// A bounded multi-producer multi-consumer blocking queue.
//
// Used by Prefetch and ParallelMap iterators. Supports cancellation so
// iterator destruction can unblock worker threads, and tracks simple
// occupancy statistics used by the prefetch planner (idleness signal).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "src/util/cpu_timer.h"

namespace plumber {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks until space is available or the queue is cancelled.
  // Returns false if cancelled.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cancelled_ && items_.size() >= capacity_) {
      BlockedRegion blocked;  // producer stall: not CPU work
      not_full_.wait(lock,
                     [&] { return cancelled_ || items_.size() < capacity_; });
    }
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    occupancy_sum_ += items_.size();
    ++occupancy_samples_;
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false if full or cancelled.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    occupancy_sum_ += items_.size();
    ++occupancy_samples_;
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is cancelled and
  // drained. Returns nullopt on cancellation with an empty queue.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      ++empty_pops_;
      if (!cancelled_) {
        BlockedRegion blocked;  // consumer stall: not CPU work
        not_empty_.wait(lock, [&] { return cancelled_ || !items_.empty(); });
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Unblocks all waiters; subsequent pushes fail, pops drain remaining
  // items then return nullopt.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  // Fraction of Pop calls that found the queue empty (consumer stalls).
  double EmptyPopFraction() const {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t pops = total_pushed_ + empty_pops_;
    return pops == 0 ? 0.0 : static_cast<double>(empty_pops_) / pops;
  }

  // Mean queue occupancy observed at push time.
  double MeanOccupancy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return occupancy_samples_ == 0
               ? 0.0
               : static_cast<double>(occupancy_sum_) / occupancy_samples_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool cancelled_ = false;
  uint64_t total_pushed_ = 0;
  uint64_t empty_pops_ = 0;
  uint64_t occupancy_sum_ = 0;
  uint64_t occupancy_samples_ = 0;
};

}  // namespace plumber
