// A bounded multi-producer multi-consumer blocking queue.
//
// The MPMC implementation of Channel<T> (src/util/channel.h): the safe
// choice for edges with many workers per side, or edges the
// ParallelismGovernor can retarget above one worker. Supports
// cancellation so iterator destruction can unblock worker threads, and
// tracks simple occupancy statistics used by the prefetch planner
// (idleness signal).
//
// Besides the classic one-item Push/Pop, the queue moves whole element
// batches per lock acquisition (PushBatch/PopBatch) — the engine's
// batched execution mode, where per-element mutex traffic would
// otherwise dominate cheap UDF work at high parallelism. Wakeups are
// waiter-counted: each side tracks how many threads are parked, and a
// push/pop notifies only as many as can actually make progress, so a
// large batch doesn't stampede every sleeping worker at once.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/util/channel.h"
#include "src/util/cpu_timer.h"

namespace plumber {

template <typename T>
class BoundedQueue final : public Channel<T> {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks until space is available or the queue is cancelled.
  // Returns false if cancelled.
  bool Push(T item) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cancelled_ && items_.size() >= capacity_) {
      BlockedRegion blocked;  // producer stall: not CPU work
      ++full_waiters_;
      not_full_.wait(lock,
                     [&] { return cancelled_ || items_.size() < capacity_; });
      --full_waiters_;
    }
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    occupancy_sum_ += items_.size();
    ++occupancy_samples_;
    WakeConsumers(1);
    return true;
  }

  // Non-blocking push; returns false if full or cancelled.
  bool TryPush(T item) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    occupancy_sum_ += items_.size();
    ++occupancy_samples_;
    WakeConsumers(1);
    return true;
  }

  // Blocks until an item is available or the queue is cancelled and
  // drained. Returns nullopt on cancellation with an empty queue.
  std::optional<T> Pop() override {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      ++empty_pops_;
      if (!cancelled_) {
        BlockedRegion blocked;  // consumer stall: not CPU work
        ++empty_waiters_;
        not_empty_.wait(lock, [&] { return cancelled_ || !items_.empty(); });
        --empty_waiters_;
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    WakeProducers(1);
    return item;
  }

  std::optional<T> TryPop() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    WakeProducers(1);
    return item;
  }

  // Pushes every item in `items`, taking the lock once per capacity
  // window instead of once per element. Blocks while full. Returns
  // false if cancelled (remaining items are dropped, matching Push).
  bool PushBatch(std::vector<T> items) override {
    if (items.empty()) return !cancelled();
    std::unique_lock<std::mutex> lock(mu_);
    size_t offset = 0;
    while (offset < items.size()) {
      if (!cancelled_ && items_.size() >= capacity_) {
        BlockedRegion blocked;  // producer stall: not CPU work
        ++full_waiters_;
        not_full_.wait(lock,
                       [&] { return cancelled_ || items_.size() < capacity_; });
        --full_waiters_;
      }
      if (cancelled_) return false;
      const size_t n =
          std::min(items.size() - offset, capacity_ - items_.size());
      for (size_t i = 0; i < n; ++i) {
        items_.push_back(std::move(items[offset + i]));
      }
      offset += n;
      total_pushed_ += n;
      occupancy_sum_ += items_.size();
      ++occupancy_samples_;
      WakeConsumers(n);
    }
    return true;
  }

  // Pops up to `max_items` in one lock acquisition, appending to *out.
  // Blocks until at least one item is available or the queue is
  // cancelled and drained; returns the number of items appended (0 only
  // on cancellation with an empty queue).
  size_t PopBatch(size_t max_items, std::vector<T>* out) override {
    if (max_items == 0) return 0;
    std::unique_lock<std::mutex> lock(mu_);
    const bool was_empty = items_.empty();
    if (was_empty && !cancelled_) {
      BlockedRegion blocked;  // consumer stall: not CPU work
      ++empty_waiters_;
      not_empty_.wait(lock, [&] { return cancelled_ || !items_.empty(); });
      --empty_waiters_;
    }
    const size_t n = std::min(max_items, items_.size());
    // EmptyPopFraction's denominator counts elements, so a stalled
    // batch claim must count every element it delayed — one tick per
    // batch would understate starvation by the batch size.
    if (was_empty) empty_pops_ += n > 0 ? n : 1;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    WakeProducers(n);
    return n;
  }

  // Unblocks all waiters; subsequent pushes fail, pops drain remaining
  // items then return nullopt.
  void Cancel() override {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool cancelled() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const override { return capacity_; }

  // Fraction of Pop calls that found the queue empty (consumer stalls).
  double EmptyPopFraction() const override {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t pops = total_pushed_ + empty_pops_;
    return pops == 0 ? 0.0 : static_cast<double>(empty_pops_) / pops;
  }

  // Mean queue occupancy observed at push time.
  double MeanOccupancy() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return occupancy_samples_ == 0
               ? 0.0
               : static_cast<double>(occupancy_sum_) / occupancy_samples_;
  }

 private:
  // Wake consumers for `n` newly visible items. Called under mu_.
  // `n` items can unblock at most n consumers, and there is no point
  // notifying more threads than are actually parked — a blanket
  // notify_all stampedes every sleeping worker through the mutex just
  // to re-check a predicate most of them will fail.
  void WakeConsumers(size_t n) {
    const size_t wake = std::min(n, empty_waiters_);
    for (size_t i = 0; i < wake; ++i) not_empty_.notify_one();
  }

  // Wake producers for `n` freed slots. Called under mu_.
  void WakeProducers(size_t n) {
    const size_t wake = std::min(n, full_waiters_);
    for (size_t i = 0; i < wake; ++i) not_full_.notify_one();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool cancelled_ = false;
  // Parked-thread counts per side; bound how many wakeups a batch emits.
  size_t full_waiters_ = 0;
  size_t empty_waiters_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t empty_pops_ = 0;
  uint64_t occupancy_sum_ = 0;
  uint64_t occupancy_samples_ = 0;
};

// Consumer-side batch drainer over any Channel; the historical name for
// BatchedChannelConsumer (src/util/channel.h), kept for call sites that
// predate the Channel split.
template <typename T>
using BatchedQueueConsumer = BatchedChannelConsumer<T>;

}  // namespace plumber
