// A bounded multi-producer multi-consumer blocking queue.
//
// Used by Prefetch and ParallelMap iterators. Supports cancellation so
// iterator destruction can unblock worker threads, and tracks simple
// occupancy statistics used by the prefetch planner (idleness signal).
//
// Besides the classic one-item Push/Pop, the queue moves whole element
// batches per lock acquisition (PushBatch/PopBatch) — the engine's
// batched execution mode, where per-element mutex traffic would
// otherwise dominate cheap UDF work at high parallelism.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/util/cpu_timer.h"

namespace plumber {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks until space is available or the queue is cancelled.
  // Returns false if cancelled.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cancelled_ && items_.size() >= capacity_) {
      BlockedRegion blocked;  // producer stall: not CPU work
      not_full_.wait(lock,
                     [&] { return cancelled_ || items_.size() < capacity_; });
    }
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    occupancy_sum_ += items_.size();
    ++occupancy_samples_;
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false if full or cancelled.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    occupancy_sum_ += items_.size();
    ++occupancy_samples_;
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is cancelled and
  // drained. Returns nullopt on cancellation with an empty queue.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      ++empty_pops_;
      if (!cancelled_) {
        BlockedRegion blocked;  // consumer stall: not CPU work
        not_empty_.wait(lock, [&] { return cancelled_ || !items_.empty(); });
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Pushes every item in `items`, taking the lock once per capacity
  // window instead of once per element. Blocks while full. Returns
  // false if cancelled (remaining items are dropped, matching Push).
  bool PushBatch(std::vector<T> items) {
    if (items.empty()) return !cancelled();
    std::unique_lock<std::mutex> lock(mu_);
    size_t offset = 0;
    while (offset < items.size()) {
      if (!cancelled_ && items_.size() >= capacity_) {
        BlockedRegion blocked;  // producer stall: not CPU work
        not_full_.wait(lock,
                       [&] { return cancelled_ || items_.size() < capacity_; });
      }
      if (cancelled_) return false;
      const size_t n =
          std::min(items.size() - offset, capacity_ - items_.size());
      for (size_t i = 0; i < n; ++i) {
        items_.push_back(std::move(items[offset + i]));
      }
      offset += n;
      total_pushed_ += n;
      occupancy_sum_ += items_.size();
      ++occupancy_samples_;
      // n items can unblock up to n consumers; notify_one would strand
      // all but one of them until the next push.
      if (n > 1) {
        not_empty_.notify_all();
      } else {
        not_empty_.notify_one();
      }
    }
    return true;
  }

  // Pops up to `max_items` in one lock acquisition, appending to *out.
  // Blocks until at least one item is available or the queue is
  // cancelled and drained; returns the number of items appended (0 only
  // on cancellation with an empty queue).
  size_t PopBatch(size_t max_items, std::vector<T>* out) {
    if (max_items == 0) return 0;
    std::unique_lock<std::mutex> lock(mu_);
    const bool was_empty = items_.empty();
    if (was_empty && !cancelled_) {
      BlockedRegion blocked;  // consumer stall: not CPU work
      not_empty_.wait(lock, [&] { return cancelled_ || !items_.empty(); });
    }
    const size_t n = std::min(max_items, items_.size());
    // EmptyPopFraction's denominator counts elements, so a stalled
    // batch claim must count every element it delayed — one tick per
    // batch would understate starvation by the batch size.
    if (was_empty) empty_pops_ += n > 0 ? n : 1;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    // n freed slots can unblock up to n producers.
    if (n > 1) {
      not_full_.notify_all();
    } else if (n == 1) {
      not_full_.notify_one();
    }
    return n;
  }

  // Unblocks all waiters; subsequent pushes fail, pops drain remaining
  // items then return nullopt.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  // Fraction of Pop calls that found the queue empty (consumer stalls).
  double EmptyPopFraction() const {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t pops = total_pushed_ + empty_pops_;
    return pops == 0 ? 0.0 : static_cast<double>(empty_pops_) / pops;
  }

  // Mean queue occupancy observed at push time.
  double MeanOccupancy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return occupancy_samples_ == 0
               ? 0.0
               : static_cast<double>(occupancy_sum_) / occupancy_samples_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool cancelled_ = false;
  uint64_t total_pushed_ = 0;
  uint64_t empty_pops_ = 0;
  uint64_t occupancy_sum_ = 0;
  uint64_t occupancy_samples_ = 0;
};

// Clamps an engine batch-size request to a queue's capacity (and to a
// minimum of one element).
inline size_t ClampBatchToCapacity(int requested, size_t capacity) {
  return std::min(static_cast<size_t>(requested < 1 ? 1 : requested),
                  capacity);
}

// Consumer-side batch drainer: pops whole batches off a BoundedQueue
// and serves them one item at a time, keeping the queue lock off the
// per-element path. Single-consumer (the GetNext thread).
template <typename T>
class BatchedQueueConsumer {
 public:
  BatchedQueueConsumer(BoundedQueue<T>* queue, size_t batch_size)
      : queue_(queue), batch_size_(batch_size) {}

  bool NeedsRefill() const { return pos_ >= local_.size(); }

  // Blocks for the next batch; false when cancelled and drained.
  bool Refill() {
    local_.clear();
    pos_ = 0;
    return queue_->PopBatch(batch_size_, &local_) != 0;
  }

  // Precondition: !NeedsRefill().
  void Take(T* out) { *out = std::move(local_[pos_++]); }

  // Serves the next item; false when the queue is cancelled and empty.
  bool Next(T* out) {
    if (NeedsRefill() && !Refill()) return false;
    Take(out);
    return true;
  }

 private:
  BoundedQueue<T>* queue_;
  const size_t batch_size_;
  std::vector<T> local_;
  size_t pos_ = 0;
};

}  // namespace plumber
