// Channel<T>: the inter-operator handoff interface of the data plane.
//
// Every edge between a producing worker pool (or fill thread) and its
// consumer moves elements through a Channel. Two implementations exist:
//
//   * BoundedQueue<T> (src/util/bounded_queue.h): mutex-guarded MPMC
//     blocking queue — any number of producers and consumers, waiter-
//     counted wakeups. The only safe choice when an edge has (or can be
//     retargeted to) more than one thread per side.
//   * SpscRing<T> (src/util/spsc_ring.h): lock-free single-producer /
//     single-consumer ring — cache-line-padded indices, batch
//     claim/publish, spin-then-park waiting. Chosen for edges the
//     topology proves are 1:1 for their whole lifetime.
//
// Pipeline operators pick between them per edge at iterator
// instantiation (see MakeEdgeChannel in src/pipeline/channels.h); the
// conformance suite in tests/channel_test.cc runs against both.
//
// Blocking semantics shared by all implementations (the BoundedQueue
// contract, unchanged): Push/PushBatch block while full and return
// false once cancelled (remaining items dropped); Pop/PopBatch block
// while empty, drain remaining items after cancellation, and report
// exhaustion (nullopt / 0) only when cancelled AND empty.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace plumber {

template <typename T>
class Channel {
 public:
  virtual ~Channel() = default;

  // Blocks until space is available or the channel is cancelled.
  // Returns false if cancelled.
  virtual bool Push(T item) = 0;

  // Non-blocking push; returns false if full or cancelled.
  virtual bool TryPush(T item) = 0;

  // Blocks until an item is available or the channel is cancelled and
  // drained. Returns nullopt on cancellation with an empty channel.
  virtual std::optional<T> Pop() = 0;

  // Non-blocking pop; nullopt when empty.
  virtual std::optional<T> TryPop() = 0;

  // Pushes every item, moving whole capacity windows per synchronization
  // point instead of one element at a time. Blocks while full. Returns
  // false if cancelled (remaining items are dropped, matching Push).
  virtual bool PushBatch(std::vector<T> items) = 0;

  // Pops up to `max_items` per synchronization point, appending to
  // *out. Blocks until at least one item is available or the channel is
  // cancelled and drained; returns the number appended (0 only on
  // cancellation with an empty channel).
  virtual size_t PopBatch(size_t max_items, std::vector<T>* out) = 0;

  // Unblocks all waiters; subsequent pushes fail, pops drain remaining
  // items then report exhaustion.
  virtual void Cancel() = 0;

  virtual bool cancelled() const = 0;
  virtual size_t size() const = 0;
  virtual size_t capacity() const = 0;

  // Fraction of popped elements that found the channel empty first
  // (consumer stalls) — the prefetch planner's idleness signal.
  virtual double EmptyPopFraction() const = 0;

  // Mean occupancy observed at push time.
  virtual double MeanOccupancy() const = 0;
};

// Clamps an engine batch-size request to a channel's capacity (and to a
// minimum of one element).
inline size_t ClampBatchToCapacity(int requested, size_t capacity) {
  return std::min(static_cast<size_t>(requested < 1 ? 1 : requested),
                  capacity);
}

// Consumer-side batch drainer: pops whole batches off a Channel and
// serves them one item at a time, keeping channel synchronization off
// the per-element path. Single-consumer (the GetNext thread).
template <typename T>
class BatchedChannelConsumer {
 public:
  BatchedChannelConsumer(Channel<T>* channel, size_t batch_size)
      : channel_(channel), batch_size_(batch_size) {}

  bool NeedsRefill() const { return pos_ >= local_.size(); }

  // Blocks for the next batch; false when cancelled and drained.
  bool Refill() {
    local_.clear();
    pos_ = 0;
    return channel_->PopBatch(batch_size_, &local_) != 0;
  }

  // Precondition: !NeedsRefill().
  void Take(T* out) { *out = std::move(local_[pos_++]); }

  // Serves the next item; false when the channel is cancelled and empty.
  bool Next(T* out) {
    if (NeedsRefill() && !Refill()) return false;
    Take(out);
    return true;
  }

 private:
  Channel<T>* channel_;
  const size_t batch_size_;
  std::vector<T> local_;
  size_t pos_ = 0;
};

}  // namespace plumber
