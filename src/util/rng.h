// Deterministic, fast random number generation.
//
// All randomness in the repository flows through these generators with
// explicit seeds so that pipelines, workload generators, and the fleet
// simulator are reproducible run-to-run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace plumber {

// SplitMix64: used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** by Blackman & Vigna; public-domain algorithm.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  uint64_t Next();

  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  // Uniform in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);
  // Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);
  // Uniform real in [0, 1).
  double UniformDouble();
  // Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }
  // Log-normal with given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);
  // Exponential with given rate.
  double Exponential(double rate);
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Samples an index according to (unnormalized, non-negative) weights.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace plumber
