#include "src/util/cpu_timer.h"

#include <ctime>

namespace plumber {
namespace {

inline int64_t ReadClock(clockid_t clock) {
  timespec ts;
  clock_gettime(clock, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}

}  // namespace

int64_t WallNanos() { return ReadClock(CLOCK_MONOTONIC); }

int64_t ThreadCpuNanos() { return ReadClock(CLOCK_THREAD_CPUTIME_ID); }

int64_t ProcessCpuNanos() { return ReadClock(CLOCK_PROCESS_CPUTIME_ID); }

namespace {
thread_local int64_t t_blocked_ns = 0;
}  // namespace

void AddBlockedNanos(int64_t ns) {
  if (ns > 0) t_blocked_ns += ns;
}

int64_t ThreadVirtualCpuNanos() { return WallNanos() - t_blocked_ns; }

}  // namespace plumber
