// Calibrated synthetic CPU work.
//
// Workload UDFs (JPEG decode, parse, crop, tokenize, ...) are replaced
// by a spin kernel that burns a requested amount of *thread CPU time*.
// The kernel mixes state with xorshift rounds so it cannot be optimized
// away and exercises the ALU like a real decoder inner loop. Calibration
// measures rounds-per-nanosecond once per process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plumber {

// Burns approximately `ns` nanoseconds of CPU time on the calling
// thread. Returns the mixed state so callers can fold it into output
// (keeping the work observable). ns <= 0 is a no-op.
uint64_t BurnCpuNanos(int64_t ns, uint64_t seed = 0);

// Occupies one core of the *modeled* machine for `ns` wall-nanoseconds
// without monopolizing a physical core: sleeps toward an absolute
// deadline, then spin-waits the final stretch for sub-timer-slack
// precision. Unlike BurnCpuNanos, concurrent callers overlap even when
// the host has fewer physical cores than the machine being simulated.
// Callers account the time as CPU work (it is deliberately NOT a
// BlockedRegion, so the virtual thread-CPU clock charges it in full).
// Returns the mixed state like BurnCpuNanos. ns <= 0 is a no-op.
uint64_t OccupyWallNanos(int64_t ns, uint64_t seed = 0);

// Rounds of the spin kernel per nanosecond (calibrated on first use).
double SpinRoundsPerNano();

// Deterministically transforms `input` into `output_bytes` bytes,
// touching every input byte once; used to model decode/parse output.
void TransformBuffer(const std::vector<uint8_t>& input, size_t output_bytes,
                     uint64_t seed, std::vector<uint8_t>* output);

// Fills `out` with `n` deterministic pseudo-random bytes derived from
// `seed`; cheap (about 1 byte per cycle).
void FillDeterministicBytes(uint64_t seed, size_t n,
                            std::vector<uint8_t>* out);

}  // namespace plumber
