// Streaming statistics, quantiles, and log-scale histograms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace plumber {

// Welford-style running mean/variance with min/max.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * count_; }

  // Half-width of the normal-approximation 95% confidence interval.
  double ConfidenceInterval95() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact quantile over a retained sample vector (fine for <= millions).
class QuantileSketch {
 public:
  void Add(double x) { values_.push_back(x); sorted_ = false; }
  // q in [0, 1].
  double Quantile(double q) const;
  // Fraction of samples strictly greater than x.
  double FractionAbove(double x) const;
  size_t size() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Histogram with logarithmically spaced bucket boundaries; used for
// latency distributions (Fig. 3 style CDFs).
class LogHistogram {
 public:
  // Buckets span [min_value, max_value] with `buckets_per_decade`
  // buckets per power of ten; values outside are clamped.
  LogHistogram(double min_value, double max_value, int buckets_per_decade);

  void Add(double x);
  int64_t TotalCount() const { return total_; }

  struct Bucket {
    double lower;
    double upper;
    int64_t count;
  };
  std::vector<Bucket> NonEmptyBuckets() const;

  // CDF evaluated at x: fraction of samples <= x (bucket-granular).
  double Cdf(double x) const;

  std::string ToString() const;

 private:
  double min_value_;
  double log_min_;
  double bucket_width_;  // in log10 space
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  size_t BucketIndex(double x) const;
};

// Linear least squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
};
LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace plumber
