#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace plumber {

ThreadPool::ThreadPool(int num_threads, std::string name) {
  (void)name;
  num_threads = std::max(1, num_threads);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) work_done_.notify_all();
    }
  }
}

void ParallelFor(int n, int parallelism, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  parallelism = std::clamp(parallelism, 1, n);
  if (parallelism == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(parallelism - 1);
  std::atomic<int> next{0};
  auto body = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  for (int t = 1; t < parallelism; ++t) workers.emplace_back(body);
  body();
  for (auto& w : workers) w.join();
}

}  // namespace plumber
