#include "src/fleet/arrival_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/util/rng.h"

namespace plumber {
namespace fleet {
namespace {

constexpr char kHeader[] = "plumber_arrival_trace v1";

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips every finite double, keeping Serialize/Parse an
  // exact identity for generated traces.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status LineError(int line, const std::string& what) {
  return InvalidArgumentError("trace line " + std::to_string(line) + ": " +
                              what);
}

// Splits on runs of spaces/tabs.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(std::move(token));
  return tokens;
}

bool ParseDoubleToken(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && !token.empty();
}

bool ParseIntToken(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end == token.c_str() + token.size() && !token.empty();
}

bool ParseSloToken(const std::string& token, runtime::SloClass* out) {
  for (int i = 0; i < runtime::kNumSloClasses; ++i) {
    const auto slo = static_cast<runtime::SloClass>(i);
    if (token == runtime::SloClassName(slo)) {
      *out = slo;
      return true;
    }
  }
  return false;
}

int PickPin(Rng& rng, double pin_fraction, int num_hosts) {
  if (pin_fraction <= 0 || num_hosts <= 0) return -1;
  if (!rng.Bernoulli(pin_fraction)) return -1;
  return static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_hosts)));
}

// Draws one event's class and size from the mixture.
ArrivalEvent DrawEvent(Rng& rng, const std::vector<TraceJobClass>& classes,
                       const std::vector<double>& weights, double arrival_s,
                       double pin_fraction, int num_hosts) {
  ArrivalEvent event;
  event.arrival_s = arrival_s;
  event.job_class = static_cast<int>(rng.Categorical(weights));
  const double mean =
      std::max(1.0, classes[event.job_class].mean_elements);
  // Exponential sizes around the class mean: heavy enough tails that
  // dispatch policy matters, never zero-length.
  event.elements = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(rng.Exponential(1.0 / mean))));
  event.pinned_host = PickPin(rng, pin_fraction, num_hosts);
  return event;
}

std::vector<double> Weights(const std::vector<TraceJobClass>& classes) {
  std::vector<double> weights;
  weights.reserve(classes.size());
  for (const TraceJobClass& c : classes) weights.push_back(c.weight);
  return weights;
}

}  // namespace

std::string ArrivalTrace::Serialize() const {
  std::string out = kHeader;
  out += '\n';
  for (const TraceJobClass& c : classes) {
    out += "class " + c.name + ' ' + FormatDouble(c.weight) + ' ' +
           FormatDouble(c.cost_ns) + ' ' + std::to_string(c.parallelism) +
           ' ' + FormatDouble(c.mean_elements) + ' ' +
           runtime::SloClassName(c.slo) + ' ' + FormatDouble(c.priority) +
           ' ' + FormatDouble(c.latency_target_s) + '\n';
  }
  for (const ArrivalEvent& e : events) {
    out += "event " + FormatDouble(e.arrival_s) + ' ' +
           std::to_string(e.job_class) + ' ' + std::to_string(e.elements) +
           ' ' + std::to_string(e.pinned_host) + '\n';
  }
  return out;
}

StatusOr<ArrivalTrace> ArrivalTrace::Parse(const std::string& text) {
  ArrivalTrace trace;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  double last_arrival = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (!saw_header) {
      if (line.find(kHeader) != 0) {
        return LineError(line_no,
                         "expected header '" + std::string(kHeader) + "'");
      }
      saw_header = true;
      continue;
    }
    if (tokens[0] == "class") {
      // 5 fields is the pre-SLO format; 7 adds <slo> <priority>; 8 adds
      // <latency_target_s>.
      if (tokens.size() != 6 && tokens.size() != 8 && tokens.size() != 9) {
        return LineError(line_no, "class takes 5, 7, or 8 fields, got " +
                                      std::to_string(tokens.size() - 1));
      }
      TraceJobClass c;
      c.name = tokens[1];
      int64_t parallelism = 0;
      if (!ParseDoubleToken(tokens[2], &c.weight) || c.weight < 0) {
        return LineError(line_no, "bad class weight '" + tokens[2] + "'");
      }
      if (!ParseDoubleToken(tokens[3], &c.cost_ns) || c.cost_ns < 0) {
        return LineError(line_no, "bad class cost_ns '" + tokens[3] + "'");
      }
      if (!ParseIntToken(tokens[4], &parallelism) || parallelism < 1) {
        return LineError(line_no,
                         "bad class parallelism '" + tokens[4] + "'");
      }
      if (!ParseDoubleToken(tokens[5], &c.mean_elements) ||
          c.mean_elements < 1) {
        return LineError(line_no,
                         "bad class mean_elements '" + tokens[5] + "'");
      }
      c.parallelism = static_cast<int>(parallelism);
      if (tokens.size() >= 8) {
        if (!ParseSloToken(tokens[6], &c.slo)) {
          return LineError(line_no, "bad class slo '" + tokens[6] +
                                        "' (want interactive|batch|"
                                        "best_effort)");
        }
        if (!ParseDoubleToken(tokens[7], &c.priority) || c.priority <= 0) {
          return LineError(line_no, "bad class priority '" + tokens[7] + "'");
        }
      }
      if (tokens.size() == 9) {
        if (!ParseDoubleToken(tokens[8], &c.latency_target_s) ||
            c.latency_target_s < 0) {
          return LineError(line_no,
                           "bad class latency_target_s '" + tokens[8] + "'");
        }
      }
      trace.classes.push_back(std::move(c));
      continue;
    }
    if (tokens[0] == "event") {
      if (tokens.size() != 5) {
        return LineError(line_no, "event takes 4 fields, got " +
                                      std::to_string(tokens.size() - 1));
      }
      ArrivalEvent e;
      int64_t job_class = 0, pinned = 0;
      if (!ParseDoubleToken(tokens[1], &e.arrival_s) || e.arrival_s < 0) {
        return LineError(line_no, "bad arrival_s '" + tokens[1] + "'");
      }
      if (!ParseIntToken(tokens[2], &job_class) || job_class < 0 ||
          job_class >= static_cast<int64_t>(trace.classes.size())) {
        return LineError(
            line_no, "class index '" + tokens[2] + "' out of range (have " +
                         std::to_string(trace.classes.size()) + " classes)");
      }
      if (!ParseIntToken(tokens[3], &e.elements) || e.elements < 1) {
        return LineError(line_no, "bad elements '" + tokens[3] + "'");
      }
      if (!ParseIntToken(tokens[4], &pinned) || pinned < -1) {
        return LineError(line_no, "bad pinned_host '" + tokens[4] + "'");
      }
      if (e.arrival_s < last_arrival) {
        return LineError(line_no, "arrivals must be nondecreasing");
      }
      last_arrival = e.arrival_s;
      e.job_class = static_cast<int>(job_class);
      e.pinned_host = static_cast<int>(pinned);
      trace.events.push_back(e);
      continue;
    }
    return LineError(line_no, "unknown directive '" + tokens[0] + "'");
  }
  if (!saw_header) return InvalidArgumentError("trace is empty (no header)");
  return trace;
}

std::vector<TraceJobClass> CalibratedJobClasses() {
  // Weights follow the fleet simulator's calibrated mixture
  // (src/fleet/fleet_sim.cc); per-element costs place each class in
  // its latency decade while keeping a full replay affordable.
  return {
      {"well_configured", 0.08, 2.0e4, 2, 16},
      {"mildly_stalled", 0.30, 1.0e5, 2, 16},
      {"software_bottleneck", 0.46, 1.0e6, 3, 16},
      {"severely_input_bound", 0.16, 8.0e6, 4, 16},
  };
}

ArrivalTrace MakePoissonTrace(std::vector<TraceJobClass> classes,
                              const PoissonTraceOptions& options) {
  ArrivalTrace trace;
  trace.classes = std::move(classes);
  Rng rng(SplitMix64(options.seed));
  const std::vector<double> weights = Weights(trace.classes);
  double now = 0;
  const double rate = 1.0 / std::max(1e-9, options.mean_interarrival_s);
  for (int i = 0; i < options.num_jobs; ++i) {
    now += rng.Exponential(rate);
    trace.events.push_back(DrawEvent(rng, trace.classes, weights, now,
                                     options.pin_fraction,
                                     options.num_hosts));
  }
  return trace;
}

ArrivalTrace MakeBurstyTrace(std::vector<TraceJobClass> classes,
                             const BurstyTraceOptions& options) {
  ArrivalTrace trace;
  trace.classes = std::move(classes);
  Rng rng(SplitMix64(options.seed ^ 0x9e3779b97f4a7c15ULL));
  const std::vector<double> weights = Weights(trace.classes);
  const double burst_rate =
      1.0 / std::max(1e-9, options.burst_interarrival_s);
  const double gap_rate = 1.0 / std::max(1e-9, options.idle_gap_s);
  // Geometric burst length with the given mean: continue probability
  // p = 1 - 1/mean.
  const double p_continue =
      1.0 - 1.0 / std::max(1.0, options.mean_burst_len);
  double now = 0;
  int emitted = 0;
  while (emitted < options.num_jobs) {
    now += rng.Exponential(gap_rate);  // idle gap before the burst
    do {
      trace.events.push_back(DrawEvent(rng, trace.classes, weights, now,
                                       options.pin_fraction,
                                       options.num_hosts));
      ++emitted;
      now += rng.Exponential(burst_rate);
    } while (emitted < options.num_jobs && rng.Bernoulli(p_continue));
  }
  return trace;
}

ArrivalTrace MakeTimeVaryingTrace(std::vector<TraceJobClass> classes,
                                  const TimeVaryingTraceOptions& options) {
  ArrivalTrace trace;
  trace.classes = std::move(classes);
  Rng rng(SplitMix64(options.seed ^ 0xd1b54a32d192ed03ULL));
  const std::vector<double> weights = Weights(trace.classes);
  const double base = std::max(1e-9, options.base_rate);
  const double amplitude = std::clamp(options.amplitude, 0.0, 1.0);
  const double duration = std::max(1e-9, options.duration_s);
  const double period = std::max(1e-9, options.period_s);
  const auto rate_at = [&](double t) {
    switch (options.shape) {
      case TimeVaryingShape::kSinusoid:
        return base * (1.0 + amplitude * std::sin(2.0 * M_PI * t / period));
      case TimeVaryingShape::kRamp:
        return base * (1.0 - amplitude + 2.0 * amplitude * t / duration);
    }
    return base;
  };
  // Thinning: homogeneous candidates at the peak rate, each kept with
  // probability rate(t)/peak — the standard exact sampler for a
  // non-homogeneous Poisson process with a bounded rate.
  const double peak = base * (1.0 + amplitude);
  double now = 0;
  for (;;) {
    now += rng.Exponential(peak);
    if (now >= duration) break;
    if (!rng.Bernoulli(rate_at(now) / peak)) continue;
    trace.events.push_back(DrawEvent(rng, trace.classes, weights, now,
                                     options.pin_fraction,
                                     options.num_hosts));
  }
  return trace;
}

}  // namespace fleet
}  // namespace plumber
