// Trace replay: the fleet runtime's front door.
//
// TraceReplayDriver turns an ArrivalTrace into live load: for each
// event it builds a range -> map program from the event's job class
// (registering one modeled UDF per class), submits it to the
// FleetRuntime at the event's (time-scaled) arrival offset, then waits
// out every job and folds the per-job FleetJobStats into a
// FleetReport — fleet-wide latency quantiles, per-host modeled
// utilization, and the steal counter.
//
// Utilization is modeled, not measured: a host's busy core-seconds are
// the sum over its jobs of elements x class cost x the host's
// cpu_scale, divided by (makespan x modeled cores). Under the kTimed
// work model that equals what a real host would have burned, while
// staying exact on any build machine.
#pragma once

#include <string>
#include <vector>

#include "src/fleet/arrival_trace.h"
#include "src/fleet/fleet_runtime.h"
#include "src/pipeline/udf.h"

namespace plumber {
namespace fleet {

struct TraceReplayOptions {
  // Divides every arrival offset: 2 replays the trace twice as fast.
  double time_scale = 1.0;
  // false = ignore arrival times and submit everything immediately
  // (a pure backlog drain; useful in tests).
  bool respect_arrivals = true;
};

// Latency quantiles for one SLO class's slice of a replay — the view
// that shows whether interactive traffic actually got its latency
// while batch kept its throughput.
struct FleetClassLatency {
  runtime::SloClass slo = runtime::SloClass::kBatch;
  int64_t num_jobs = 0;
  double p50_queue_s = 0, p95_queue_s = 0;
  double p50_completion_s = 0, p95_completion_s = 0;
  double mean_completion_s = 0;
  // Deadline scoring for the slice of this class's jobs that carried a
  // latency target (trace classes with latency_target_s > 0):
  // attainment = completed within target / jobs with a target, and
  // shed_jobs counts admissions the executors refused because the
  // deadline was already hopeless. 0/0 attainment reports as 1.
  int64_t target_jobs = 0;
  int64_t shed_jobs = 0;
  double attainment = 1.0;
  // Smallest target among this class's trace classes (reporting aid).
  double latency_target_s = 0;
};

struct FleetReport {
  int num_hosts = 0;
  int64_t num_jobs = 0;
  int64_t failed_jobs = 0;
  // Jobs the executors refused to run because their deadline was
  // already unmeetable at dispatch (not counted in failed_jobs).
  int64_t shed_jobs = 0;
  int64_t steal_count = 0;
  // Serialized program bytes moved between hosts by work stealing.
  uint64_t transfer_bytes = 0;
  double makespan_s = 0;  // first submit -> last completion
  // Queue latency = fleet queue + executor queue (submit -> running).
  double p50_queue_s = 0, p95_queue_s = 0, p99_queue_s = 0;
  // Completion latency = queue + run (submit -> finished).
  double p50_completion_s = 0, p95_completion_s = 0, p99_completion_s = 0;
  double mean_completion_s = 0;
  // Per-SLO-class breakdown of the same latencies; only classes with
  // at least one completed job appear, in tier order.
  std::vector<FleetClassLatency> by_class;
  // Modeled busy-core fraction per host over the makespan, and the
  // core-weighted fleet mean.
  std::vector<double> host_utilization;
  double mean_utilization = 0;
  // Modeled NIC busy fraction per host over the makespan — bytes the
  // host's NetworkDevice carried during the replay divided by
  // (makespan x NIC bandwidth); 0 for unlimited NICs. Sits next to
  // host_utilization so a network-bound fleet is as visible as a
  // CPU-bound one.
  std::vector<double> host_network_utilization;
  double mean_network_utilization = 0;

  std::string ToString() const;
};

class TraceReplayDriver {
 public:
  // Both pointers must outlive the driver; `udfs` must be the registry
  // the runtime's pipeline_options hands to every host.
  TraceReplayDriver(FleetRuntime* fleet, UdfRegistry* udfs)
      : fleet_(fleet), udfs_(udfs) {}

  // Registers the trace's class UDFs (idempotent across calls),
  // submits every event, waits for all jobs, reports. The registry
  // must not be mutated elsewhere while jobs are live.
  StatusOr<FleetReport> Replay(const ArrivalTrace& trace,
                               const TraceReplayOptions& options = {});

 private:
  FleetRuntime* fleet_;
  UdfRegistry* udfs_;
};

// Sorted-percentile helper shared by the report and the benches
// (nearest-rank on p in [0, 1]).
double LatencyPercentile(std::vector<double> values, double p);

}  // namespace fleet
}  // namespace plumber
