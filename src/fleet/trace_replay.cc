#include "src/fleet/trace_replay.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "src/pipeline/ops.h"
#include "src/util/cpu_timer.h"

namespace plumber {
namespace fleet {
namespace {

std::string ClassUdfName(const TraceJobClass& job_class) {
  return "fleet_class_" + job_class.name;
}

// The per-event program: a finite range through one modeled map stage
// shaped like the event's class.
GraphDef MakeJobGraph(const ArrivalTrace& trace, const ArrivalEvent& event) {
  const TraceJobClass& job_class = trace.classes[event.job_class];
  GraphDef graph;
  NodeDef src;
  src.name = "src";
  src.op = "range";
  src.attrs[kAttrCount] = AttrValue(event.elements);
  (void)graph.AddNode(std::move(src));
  NodeDef work;
  work.name = "work";
  work.op = "map";
  work.inputs = {"src"};
  work.attrs[kAttrUdf] = AttrValue(ClassUdfName(job_class));
  work.attrs[kAttrParallelism] = AttrValue(job_class.parallelism);
  (void)graph.AddNode(std::move(work));
  graph.SetOutput("work");
  return graph;
}

}  // namespace

double LatencyPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[idx];
}

StatusOr<FleetReport> TraceReplayDriver::Replay(
    const ArrivalTrace& trace, const TraceReplayOptions& options) {
  if (trace.classes.empty()) {
    return InvalidArgumentError("trace has no job classes");
  }
  if (options.time_scale <= 0) {
    return InvalidArgumentError("time_scale must be positive");
  }
  for (const TraceJobClass& job_class : trace.classes) {
    if (udfs_->Find(ClassUdfName(job_class)) != nullptr) continue;
    UdfSpec spec;
    spec.name = ClassUdfName(job_class);
    spec.cost_ns_per_element = job_class.cost_ns;
    RETURN_IF_ERROR(udfs_->Register(std::move(spec)));
  }

  const int64_t t0 = WallNanos();
  std::vector<FleetJobHandle> handles;
  handles.reserve(trace.events.size());
  for (const ArrivalEvent& event : trace.events) {
    if (options.respect_arrivals) {
      const double due_s = event.arrival_s / options.time_scale;
      const double now_s = (WallNanos() - t0) * 1e-9;
      if (due_s > now_s) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due_s - now_s));
      }
    }
    FleetJobOptions jopts;
    jopts.pinned_host = event.pinned_host;
    // The class's scheduling identity rides along: hosts tier/weight
    // the job, the kSloAware dispatcher routes interactive traffic.
    jopts.job.slo = trace.classes[event.job_class].slo;
    jopts.job.priority = trace.classes[event.job_class].priority;
    handles.push_back(fleet_->Submit(MakeJobGraph(trace, event), jopts));
  }

  FleetReport report;
  report.num_hosts = fleet_->num_hosts();
  report.num_jobs = static_cast<int64_t>(handles.size());
  std::vector<double> queue_s, completion_s;
  std::array<std::vector<double>, runtime::kNumSloClasses> class_queue_s;
  std::array<std::vector<double>, runtime::kNumSloClasses> class_completion_s;
  std::vector<double> busy_core_s(report.num_hosts, 0);
  queue_s.reserve(handles.size());
  completion_s.reserve(handles.size());
  double completion_sum = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    const Status status = handles[i].Wait();
    if (!status.ok()) {
      ++report.failed_jobs;
      continue;
    }
    const FleetJobStats stats = handles[i].Stats();
    queue_s.push_back(stats.fleet_queue_s + stats.exec_queue_s);
    completion_s.push_back(stats.completion_s);
    completion_sum += stats.completion_s;
    const auto slo_idx = static_cast<size_t>(stats.slo);
    class_queue_s[slo_idx].push_back(stats.fleet_queue_s +
                                     stats.exec_queue_s);
    class_completion_s[slo_idx].push_back(stats.completion_s);
    if (stats.host >= 0 && stats.host < report.num_hosts) {
      const TraceJobClass& job_class =
          trace.classes[trace.events[i].job_class];
      busy_core_s[stats.host] +=
          static_cast<double>(trace.events[i].elements) *
          job_class.cost_ns * 1e-9 *
          fleet_->host_machine(stats.host).cpu_scale;
    }
  }
  report.makespan_s = (WallNanos() - t0) * 1e-9;
  report.steal_count = fleet_->steal_count();
  report.p50_queue_s = LatencyPercentile(queue_s, 0.50);
  report.p95_queue_s = LatencyPercentile(queue_s, 0.95);
  report.p99_queue_s = LatencyPercentile(queue_s, 0.99);
  report.p50_completion_s = LatencyPercentile(completion_s, 0.50);
  report.p95_completion_s = LatencyPercentile(completion_s, 0.95);
  report.p99_completion_s = LatencyPercentile(completion_s, 0.99);
  if (!completion_s.empty()) {
    report.mean_completion_s =
        completion_sum / static_cast<double>(completion_s.size());
  }
  for (int c = 0; c < runtime::kNumSloClasses; ++c) {
    const std::vector<double>& cq = class_queue_s[c];
    const std::vector<double>& cc = class_completion_s[c];
    if (cc.empty()) continue;
    FleetClassLatency latency;
    latency.slo = static_cast<runtime::SloClass>(c);
    latency.num_jobs = static_cast<int64_t>(cc.size());
    latency.p50_queue_s = LatencyPercentile(cq, 0.50);
    latency.p95_queue_s = LatencyPercentile(cq, 0.95);
    latency.p50_completion_s = LatencyPercentile(cc, 0.50);
    latency.p95_completion_s = LatencyPercentile(cc, 0.95);
    double sum = 0;
    for (double v : cc) sum += v;
    latency.mean_completion_s = sum / static_cast<double>(cc.size());
    report.by_class.push_back(latency);
  }
  double total_cores = 0, weighted = 0;
  for (int h = 0; h < report.num_hosts; ++h) {
    const double cores =
        std::max(1, fleet_->host_machine(h).num_cores);
    const double util =
        report.makespan_s > 0
            ? std::min(1.0, busy_core_s[h] / (report.makespan_s * cores))
            : 0;
    report.host_utilization.push_back(util);
    total_cores += cores;
    weighted += util * cores;
  }
  if (total_cores > 0) report.mean_utilization = weighted / total_cores;
  return report;
}

std::string FleetReport::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "fleet replay: %lld jobs on %d hosts, makespan %.2fs, "
                "%lld failed, %lld stolen\n",
                static_cast<long long>(num_jobs), num_hosts, makespan_s,
                static_cast<long long>(failed_jobs),
                static_cast<long long>(steal_count));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  queue      p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
                p50_queue_s, p95_queue_s, p99_queue_s);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  completion p50 %.3fs  p95 %.3fs  p99 %.3fs  mean %.3fs\n",
                p50_completion_s, p95_completion_s, p99_completion_s,
                mean_completion_s);
  out += buf;
  for (const FleetClassLatency& c : by_class) {
    std::snprintf(buf, sizeof(buf),
                  "  class %-11s %6lld jobs  queue p50 %.3fs p95 %.3fs  "
                  "completion p50 %.3fs p95 %.3fs mean %.3fs\n",
                  runtime::SloClassName(c.slo),
                  static_cast<long long>(c.num_jobs), c.p50_queue_s,
                  c.p95_queue_s, c.p50_completion_s, c.p95_completion_s,
                  c.mean_completion_s);
    out += buf;
  }
  out += "  utilization";
  for (size_t h = 0; h < host_utilization.size(); ++h) {
    std::snprintf(buf, sizeof(buf), " host%zu=%.2f", h, host_utilization[h]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " mean=%.2f\n", mean_utilization);
  out += buf;
  return out;
}

}  // namespace fleet
}  // namespace plumber
