#include "src/fleet/trace_replay.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "src/pipeline/ops.h"
#include "src/util/cpu_timer.h"

namespace plumber {
namespace fleet {
namespace {

std::string ClassUdfName(const TraceJobClass& job_class) {
  return "fleet_class_" + job_class.name;
}

// The per-event program: a finite range through one modeled map stage
// shaped like the event's class.
GraphDef MakeJobGraph(const ArrivalTrace& trace, const ArrivalEvent& event) {
  const TraceJobClass& job_class = trace.classes[event.job_class];
  GraphDef graph;
  NodeDef src;
  src.name = "src";
  src.op = "range";
  src.attrs[kAttrCount] = AttrValue(event.elements);
  (void)graph.AddNode(std::move(src));
  NodeDef work;
  work.name = "work";
  work.op = "map";
  work.inputs = {"src"};
  work.attrs[kAttrUdf] = AttrValue(ClassUdfName(job_class));
  work.attrs[kAttrParallelism] = AttrValue(job_class.parallelism);
  (void)graph.AddNode(std::move(work));
  graph.SetOutput("work");
  return graph;
}

}  // namespace

double LatencyPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[idx];
}

StatusOr<FleetReport> TraceReplayDriver::Replay(
    const ArrivalTrace& trace, const TraceReplayOptions& options) {
  if (trace.classes.empty()) {
    return InvalidArgumentError("trace has no job classes");
  }
  if (options.time_scale <= 0) {
    return InvalidArgumentError("time_scale must be positive");
  }
  for (const TraceJobClass& job_class : trace.classes) {
    if (udfs_->Find(ClassUdfName(job_class)) != nullptr) continue;
    UdfSpec spec;
    spec.name = ClassUdfName(job_class);
    spec.cost_ns_per_element = job_class.cost_ns;
    RETURN_IF_ERROR(udfs_->Register(std::move(spec)));
  }

  // NIC byte counters are cumulative over the runtime's life; diff
  // against a baseline so back-to-back replays report their own bytes.
  std::vector<uint64_t> nic_bytes_before(fleet_->num_hosts(), 0);
  for (int h = 0; h < fleet_->num_hosts(); ++h) {
    nic_bytes_before[h] = fleet_->host_nic(h)->total_bytes();
  }
  const uint64_t transfer_bytes_before = fleet_->transfer_bytes();
  const int64_t steals_before = fleet_->steal_count();

  const int64_t t0 = WallNanos();
  std::vector<FleetJobHandle> handles;
  handles.reserve(trace.events.size());
  for (const ArrivalEvent& event : trace.events) {
    if (options.respect_arrivals) {
      const double due_s = event.arrival_s / options.time_scale;
      const double now_s = (WallNanos() - t0) * 1e-9;
      if (due_s > now_s) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due_s - now_s));
      }
    }
    FleetJobOptions jopts;
    jopts.pinned_host = event.pinned_host;
    // The class's scheduling identity rides along: hosts tier/weight
    // the job, the kSloAware dispatcher routes interactive traffic.
    jopts.job.slo = trace.classes[event.job_class].slo;
    jopts.job.priority = trace.classes[event.job_class].priority;
    // Deadline too: host executors order same-class jobs by it and
    // shed queued jobs it has already passed beyond rescue.
    jopts.job.latency_target_s = trace.classes[event.job_class].latency_target_s;
    handles.push_back(fleet_->Submit(MakeJobGraph(trace, event), jopts));
  }

  FleetReport report;
  report.num_hosts = fleet_->num_hosts();
  report.num_jobs = static_cast<int64_t>(handles.size());
  std::vector<double> queue_s, completion_s;
  std::array<std::vector<double>, runtime::kNumSloClasses> class_queue_s;
  std::array<std::vector<double>, runtime::kNumSloClasses> class_completion_s;
  std::array<int64_t, runtime::kNumSloClasses> class_target_jobs = {};
  std::array<int64_t, runtime::kNumSloClasses> class_attained = {};
  std::array<int64_t, runtime::kNumSloClasses> class_shed = {};
  std::array<double, runtime::kNumSloClasses> class_target_s = {};
  std::vector<double> busy_core_s(report.num_hosts, 0);
  queue_s.reserve(handles.size());
  completion_s.reserve(handles.size());
  double completion_sum = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    const double target_s =
        trace.classes[trace.events[i].job_class].latency_target_s;
    const auto event_slo =
        static_cast<size_t>(trace.classes[trace.events[i].job_class].slo);
    if (target_s > 0 &&
        (class_target_s[event_slo] == 0 ||
         target_s < class_target_s[event_slo])) {
      class_target_s[event_slo] = target_s;
    }
    const Status status = handles[i].Wait();
    if (!status.ok()) {
      // A deadline shed is an admission decision, not a failure: the
      // executor refused work it could no longer finish in time.
      if (status.code() == StatusCode::kResourceExhausted) {
        ++report.shed_jobs;
        ++class_shed[event_slo];
        if (target_s > 0) ++class_target_jobs[event_slo];
      } else {
        ++report.failed_jobs;
      }
      continue;
    }
    const FleetJobStats stats = handles[i].Stats();
    queue_s.push_back(stats.fleet_queue_s + stats.exec_queue_s);
    completion_s.push_back(stats.completion_s);
    completion_sum += stats.completion_s;
    const auto slo_idx = static_cast<size_t>(stats.slo);
    if (target_s > 0) {
      ++class_target_jobs[slo_idx];
      if (stats.completion_s <= target_s) ++class_attained[slo_idx];
    }
    class_queue_s[slo_idx].push_back(stats.fleet_queue_s +
                                     stats.exec_queue_s);
    class_completion_s[slo_idx].push_back(stats.completion_s);
    if (stats.host >= 0 && stats.host < report.num_hosts) {
      const TraceJobClass& job_class =
          trace.classes[trace.events[i].job_class];
      busy_core_s[stats.host] +=
          static_cast<double>(trace.events[i].elements) *
          job_class.cost_ns * 1e-9 *
          fleet_->host_machine(stats.host).cpu_scale;
    }
  }
  report.makespan_s = (WallNanos() - t0) * 1e-9;
  report.steal_count = fleet_->steal_count() - steals_before;
  report.transfer_bytes = fleet_->transfer_bytes() - transfer_bytes_before;
  report.p50_queue_s = LatencyPercentile(queue_s, 0.50);
  report.p95_queue_s = LatencyPercentile(queue_s, 0.95);
  report.p99_queue_s = LatencyPercentile(queue_s, 0.99);
  report.p50_completion_s = LatencyPercentile(completion_s, 0.50);
  report.p95_completion_s = LatencyPercentile(completion_s, 0.95);
  report.p99_completion_s = LatencyPercentile(completion_s, 0.99);
  if (!completion_s.empty()) {
    report.mean_completion_s =
        completion_sum / static_cast<double>(completion_s.size());
  }
  for (int c = 0; c < runtime::kNumSloClasses; ++c) {
    const std::vector<double>& cq = class_queue_s[c];
    const std::vector<double>& cc = class_completion_s[c];
    if (cc.empty() && class_shed[c] == 0) continue;
    FleetClassLatency latency;
    latency.slo = static_cast<runtime::SloClass>(c);
    latency.num_jobs = static_cast<int64_t>(cc.size());
    latency.p50_queue_s = LatencyPercentile(cq, 0.50);
    latency.p95_queue_s = LatencyPercentile(cq, 0.95);
    latency.p50_completion_s = LatencyPercentile(cc, 0.50);
    latency.p95_completion_s = LatencyPercentile(cc, 0.95);
    double sum = 0;
    for (double v : cc) sum += v;
    if (!cc.empty()) {
      latency.mean_completion_s = sum / static_cast<double>(cc.size());
    }
    latency.target_jobs = class_target_jobs[c];
    latency.shed_jobs = class_shed[c];
    latency.latency_target_s = class_target_s[c];
    // A shed job counts against attainment: its deadline was missed by
    // construction, just without burning cores on it.
    if (class_target_jobs[c] > 0) {
      latency.attainment = static_cast<double>(class_attained[c]) /
                           static_cast<double>(class_target_jobs[c]);
    }
    report.by_class.push_back(latency);
  }
  double total_cores = 0, weighted = 0;
  double net_sum = 0;
  int net_hosts = 0;
  for (int h = 0; h < report.num_hosts; ++h) {
    const double cores =
        std::max(1, fleet_->host_machine(h).num_cores);
    const double util =
        report.makespan_s > 0
            ? std::min(1.0, busy_core_s[h] / (report.makespan_s * cores))
            : 0;
    report.host_utilization.push_back(util);
    total_cores += cores;
    weighted += util * cores;
    // NIC busy fraction from the device's own byte counter — the same
    // counter remote_read metering and migration charging feed.
    const double nic_bw = fleet_->host_nic(h)->spec().max_bandwidth;
    const uint64_t nic_bytes =
        fleet_->host_nic(h)->total_bytes() - nic_bytes_before[h];
    double net_util = 0;
    if (nic_bw > 0 && report.makespan_s > 0) {
      net_util = std::min(
          1.0, static_cast<double>(nic_bytes) / (report.makespan_s * nic_bw));
      ++net_hosts;
      net_sum += net_util;
    }
    report.host_network_utilization.push_back(net_util);
  }
  if (total_cores > 0) report.mean_utilization = weighted / total_cores;
  if (net_hosts > 0) report.mean_network_utilization = net_sum / net_hosts;
  return report;
}

std::string FleetReport::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "fleet replay: %lld jobs on %d hosts, makespan %.2fs, "
                "%lld failed, %lld shed, %lld stolen (%llu wire bytes)\n",
                static_cast<long long>(num_jobs), num_hosts, makespan_s,
                static_cast<long long>(failed_jobs),
                static_cast<long long>(shed_jobs),
                static_cast<long long>(steal_count),
                static_cast<unsigned long long>(transfer_bytes));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  queue      p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
                p50_queue_s, p95_queue_s, p99_queue_s);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  completion p50 %.3fs  p95 %.3fs  p99 %.3fs  mean %.3fs\n",
                p50_completion_s, p95_completion_s, p99_completion_s,
                mean_completion_s);
  out += buf;
  for (const FleetClassLatency& c : by_class) {
    std::snprintf(buf, sizeof(buf),
                  "  class %-11s %6lld jobs  queue p50 %.3fs p95 %.3fs  "
                  "completion p50 %.3fs p95 %.3fs mean %.3fs\n",
                  runtime::SloClassName(c.slo),
                  static_cast<long long>(c.num_jobs), c.p50_queue_s,
                  c.p95_queue_s, c.p50_completion_s, c.p95_completion_s,
                  c.mean_completion_s);
    out += buf;
    if (c.target_jobs > 0 || c.shed_jobs > 0) {
      std::snprintf(buf, sizeof(buf),
                    "    slo target %.3fs: attainment %.1f%% over %lld jobs, "
                    "%lld shed\n",
                    c.latency_target_s, c.attainment * 100,
                    static_cast<long long>(c.target_jobs),
                    static_cast<long long>(c.shed_jobs));
      out += buf;
    }
  }
  out += "  utilization";
  for (size_t h = 0; h < host_utilization.size(); ++h) {
    std::snprintf(buf, sizeof(buf), " host%zu=%.2f", h, host_utilization[h]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " mean=%.2f\n", mean_utilization);
  out += buf;
  out += "  network    ";
  for (size_t h = 0; h < host_network_utilization.size(); ++h) {
    std::snprintf(buf, sizeof(buf), " host%zu=%.2f", h,
                  host_network_utilization[h]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " mean=%.2f\n", mean_network_utilization);
  out += buf;
  return out;
}

}  // namespace fleet
}  // namespace plumber
