#include "src/fleet/fleet_runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/util/cpu_timer.h"

namespace plumber {
namespace fleet {
namespace internal {

// The shared record behind one fleet job: written by the submitter
// (identity), the pump (dispatch), and read by any number of handles.
struct FleetJobRecord {
  uint64_t id = 0;
  GraphDef graph;
  runtime::JobOptions options;
  int pinned_host = -1;
  int64_t submit_ns = 0;

  std::mutex mu;
  std::condition_variable cv;
  int host = -1;            // set at dispatch
  bool stolen = false;
  int64_t dispatch_ns = 0;
  uint64_t transfer_bytes = 0;  // wire bytes paid to move this job
  runtime::JobPtr job;      // non-null once dispatched
  Status dispatch_status;   // non-OK if shutdown beat dispatch
  bool terminal = false;    // dispatched or dispatch-failed
};

}  // namespace internal

using internal::FleetJobRecord;

const char* DispatchPolicyName(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round_robin";
    case DispatchPolicy::kLeastLoaded:
      return "least_loaded";
    case DispatchPolicy::kLocality:
      return "locality";
    case DispatchPolicy::kSloAware:
      return "slo_aware";
  }
  return "unknown";
}

namespace {
// Sliding-window depth for per-host interactive queue-latency samples:
// enough for a stable p95, small enough to track load shifts.
constexpr size_t kLatencyWindow = 64;
}  // namespace

Status FleetJobHandle::Wait() const {
  if (record_ == nullptr) {
    return FailedPreconditionError("empty fleet job handle");
  }
  runtime::JobPtr job;
  {
    std::unique_lock<std::mutex> lock(record_->mu);
    record_->cv.wait(lock, [&] { return record_->terminal; });
    if (!record_->dispatch_status.ok()) return record_->dispatch_status;
    job = record_->job;
  }
  job->Wait();
  return job->result().status;
}

FleetJobStats FleetJobHandle::Stats() const {
  FleetJobStats stats;
  if (record_ == nullptr) return stats;
  runtime::JobPtr job;
  {
    std::lock_guard<std::mutex> lock(record_->mu);
    stats.host = record_->host;
    stats.stolen = record_->stolen;
    stats.slo = record_->options.slo;
    stats.transfer_bytes = record_->transfer_bytes;
    if (record_->dispatch_ns > 0) {
      stats.fleet_queue_s =
          (record_->dispatch_ns - record_->submit_ns) * 1e-9;
    }
    job = record_->job;
  }
  if (job != nullptr) {
    const runtime::JobProgress progress = job->Progress();
    stats.exec_queue_s = progress.queue_seconds;
    stats.run_s = progress.run_seconds;
    stats.elements = progress.elements;
  }
  stats.completion_s = stats.fleet_queue_s + stats.exec_queue_s + stats.run_s;
  return stats;
}

FleetRuntime::FleetRuntime(
    FleetOptions options,
    std::function<PipelineOptions(int host)> pipeline_options)
    : options_(std::move(options)),
      pipeline_options_(std::move(pipeline_options)) {
  if (options_.hosts.empty()) options_.hosts.push_back(MachineSpec{});
  options_.host_concurrent_jobs = std::max(1, options_.host_concurrent_jobs);
  options_.dispatch_depth = std::max(0, options_.dispatch_depth);
  nics_.reserve(options_.hosts.size());
  for (const MachineSpec& machine : options_.hosts) {
    nics_.push_back(std::make_unique<NetworkDevice>(machine.nic));
  }
  executors_.reserve(options_.hosts.size());
  for (size_t h = 0; h < options_.hosts.size(); ++h) {
    runtime::ExecutorOptions eopts;
    eopts.max_concurrent_jobs = options_.host_concurrent_jobs;
    eopts.slo_preemption = options_.slo_preemption;
    eopts.admission = options_.admission;
    const int host = static_cast<int>(h);
    executors_.push_back(std::make_unique<runtime::Executor>(
        [this, host] {
          // Overlay the host's own NIC so every pipeline the executor
          // instantiates meters remote reads through it — the same
          // device the migration path charges, so one counter pair
          // tells the whole per-host network story.
          PipelineOptions popts = pipeline_options_(host);
          popts.nic = nics_[host].get();
          return popts;
        },
        [this, host] { return options_.hosts[host]; }, eopts));
  }
  queues_.resize(options_.hosts.size());
  interactive_queue_s_.resize(options_.hosts.size());
  pump_ = std::thread([this] { PumpLoop(); });
}

FleetRuntime::~FleetRuntime() {
  std::vector<RecordPtr> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& queue : queues_) {
      for (RecordPtr& record : queue) orphans.push_back(std::move(record));
      queue.clear();
    }
    cv_.notify_all();
  }
  pump_.join();
  for (const RecordPtr& record : orphans) {
    std::lock_guard<std::mutex> rlock(record->mu);
    record->dispatch_status = CancelledError("fleet runtime shut down");
    record->terminal = true;
    record->cv.notify_all();
  }
  // Executor destructors cancel and join every dispatched job.
  executors_.clear();
}

FleetJobHandle FleetRuntime::Submit(GraphDef graph, FleetJobOptions options) {
  auto record = std::make_shared<FleetJobRecord>();
  record->graph = std::move(graph);
  record->options = std::move(options.job);
  record->pinned_host = options.pinned_host;
  record->submit_ns = WallNanos();
  std::lock_guard<std::mutex> lock(mu_);
  record->id = next_id_++;
  if (record->options.name.empty()) {
    record->options.name = "fleet-job-" + std::to_string(record->id);
  }
  if (stop_) {
    std::lock_guard<std::mutex> rlock(record->mu);
    record->dispatch_status = CancelledError("fleet runtime shut down");
    record->terminal = true;
    record->cv.notify_all();
    return FleetJobHandle(std::move(record));
  }
  const int host = RouteLocked(*record);
  queues_[host].push_back(record);
  cv_.notify_all();
  return FleetJobHandle(std::move(record));
}

int FleetRuntime::RouteLocked(const FleetJobRecord& record) {
  const int hosts = num_hosts();
  switch (options_.policy) {
    case DispatchPolicy::kRoundRobin: {
      const int host = rr_next_;
      rr_next_ = (rr_next_ + 1) % hosts;
      return host;
    }
    case DispatchPolicy::kLeastLoaded:
      return LeastLoadedLocked();
    case DispatchPolicy::kLocality:
      if (record.pinned_host >= 0) return record.pinned_host % hosts;
      return LeastLoadedLocked();
    case DispatchPolicy::kSloAware:
      if (record.options.slo == runtime::SloClass::kInteractive) {
        return LowestInteractiveLatencyLocked();
      }
      return LeastLoadedLocked();
  }
  return 0;
}

int FleetRuntime::LowestInteractiveLatencyLocked() const {
  // Route to the host whose recent interactive arrivals queued the
  // least. An unobserved host scores 0 — optimistic on purpose, so the
  // dispatcher explores every host before trusting the windows — and
  // the least-loaded score breaks ties (including the all-unobserved
  // cold start).
  int best = 0;
  double best_p95 = std::numeric_limits<double>::infinity();
  double best_load = std::numeric_limits<double>::infinity();
  for (int h = 0; h < num_hosts(); ++h) {
    const double p95 = InteractiveP95Locked(h);
    const runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
    const double cores = std::max(1, options_.hosts[h].num_cores);
    const double load = (snap.queued_jobs + snap.running_jobs +
                         static_cast<double>(queues_[h].size())) /
                        cores;
    if (p95 < best_p95 - 1e-12 ||
        (std::abs(p95 - best_p95) <= 1e-12 && load < best_load)) {
      best_p95 = p95;
      best_load = load;
      best = h;
    }
  }
  return best;
}

double FleetRuntime::InteractiveP95Locked(int host) const {
  const std::deque<double>& window = interactive_queue_s_[host];
  if (window.empty()) return 0;
  std::vector<double> sorted(window.begin(), window.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t idx =
      static_cast<size_t>(0.95 * (sorted.size() - 1) + 0.5);  // nearest rank
  return sorted[idx];
}

void FleetRuntime::SampleInteractiveLatencyLocked() {
  for (auto it = latency_watch_.begin(); it != latency_watch_.end();) {
    RecordPtr& record = *it;
    runtime::JobPtr job;
    int host = -1;
    int64_t fleet_queue_ns = 0;
    {
      std::lock_guard<std::mutex> rlock(record->mu);
      job = record->job;
      host = record->host;
      fleet_queue_ns = record->dispatch_ns - record->submit_ns;
    }
    // Queueing ends when the driver starts (or the job finishes
    // without ever starting — cancelled/failed in the queue, whose
    // queue_seconds froze at that point).
    if (job == nullptr || (!job->started() && !job->finished())) {
      ++it;
      continue;
    }
    if (host >= 0 && host < static_cast<int>(interactive_queue_s_.size())) {
      std::deque<double>& window = interactive_queue_s_[host];
      window.push_back(fleet_queue_ns * 1e-9 + job->queue_seconds());
      while (window.size() > kLatencyWindow) window.pop_front();
    }
    it = latency_watch_.erase(it);
  }
}

int FleetRuntime::LeastLoadedLocked() const {
  int best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (int h = 0; h < num_hosts(); ++h) {
    const runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
    // Jobs in flight anywhere on the host (executor + fleet queue) per
    // modeled core, so a big host absorbs proportionally more.
    const double cores = std::max(1, options_.hosts[h].num_cores);
    const double load =
        (snap.queued_jobs + snap.running_jobs +
         static_cast<double>(queues_[h].size())) /
        cores;
    if (load < best_load) {
      best_load = load;
      best = h;
    }
  }
  return best;
}

void FleetRuntime::DispatchLocked(RecordPtr record, int host, int from) {
  uint64_t payload = 0;
  if (from >= 0 && from != host) {
    // Migration is not free: the serialized program crosses the wire
    // from the host that held it to the one that runs it, paying both
    // endpoints' NIC latency and bandwidth before the job can start.
    payload = record->graph.Serialize().size();
    nics_[from]->Transfer(payload);
    nics_[host]->Transfer(payload);
    transfer_bytes_.fetch_add(payload, std::memory_order_relaxed);
  }
  runtime::JobPtr job =
      executors_[host]->Submit(record->graph, record->options);
  const bool interactive =
      record->options.slo == runtime::SloClass::kInteractive;
  {
    std::lock_guard<std::mutex> rlock(record->mu);
    record->host = host;
    record->transfer_bytes = payload;
    record->dispatch_ns = WallNanos();
    record->job = std::move(job);
    record->terminal = true;
    record->cv.notify_all();
  }
  // Feed the kSloAware latency signal: watch this job until its
  // queueing ends, then record how long it queued on this host.
  if (interactive) latency_watch_.push_back(std::move(record));
}

FleetHostLoad FleetRuntime::HostLoad(int host) const {
  FleetHostLoad load;
  std::lock_guard<std::mutex> lock(mu_);
  load.executor = executors_[host]->LoadSnapshot();
  load.fleet_queued = static_cast<int>(queues_[host].size());
  load.interactive_p95_queue_s = InteractiveP95Locked(host);
  return load;
}

void FleetRuntime::PumpLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  // Each host's executor is kept topped up to cap jobs (running +
  // queued inside the executor); the surplus stays in the fleet queue
  // where the stealing pass below can still re-route it.
  const int cap = options_.host_concurrent_jobs + options_.dispatch_depth;
  for (;;) {
    if (stop_) return;
    SampleInteractiveLatencyLocked();
    bool any_queued = false;
    for (int h = 0; h < num_hosts(); ++h) {
      runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
      while (snap.queued_jobs + snap.running_jobs < cap &&
             !queues_[h].empty()) {
        RecordPtr record = std::move(queues_[h].front());
        queues_[h].pop_front();
        DispatchLocked(std::move(record), h);
        ++snap.queued_jobs;
      }
      any_queued = any_queued || !queues_[h].empty();
    }
    if (options_.work_stealing && any_queued) {
      for (int h = 0; h < num_hosts(); ++h) {
        if (!queues_[h].empty()) continue;  // has local work
        runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
        while (snap.queued_jobs + snap.running_jobs < cap) {
          // Steal from the deepest backlog; take the newest arrival so
          // the victim's oldest jobs keep their locality.
          int victim = -1;
          size_t victim_depth = 0;
          for (int v = 0; v < num_hosts(); ++v) {
            if (v == h || queues_[v].empty()) continue;
            if (queues_[v].size() > victim_depth) {
              victim_depth = queues_[v].size();
              victim = v;
            }
          }
          if (victim < 0) break;
          RecordPtr record = std::move(queues_[victim].back());
          queues_[victim].pop_back();
          {
            std::lock_guard<std::mutex> rlock(record->mu);
            record->stolen = true;
          }
          steal_count_.fetch_add(1, std::memory_order_relaxed);
          DispatchLocked(std::move(record), h, /*from=*/victim);
          ++snap.queued_jobs;
        }
      }
    }
    // Executor completions have no wakeup channel into the pump, so
    // poll on a short tick while work is waiting; otherwise sleep
    // until a Submit (or shutdown) notifies.
    cv_.wait_for(lock, any_queued ? std::chrono::milliseconds(1)
                                  : std::chrono::milliseconds(50));
  }
}

}  // namespace fleet
}  // namespace plumber
