#include "src/fleet/fleet_runtime.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "src/util/cpu_timer.h"

namespace plumber {
namespace fleet {
namespace internal {

// The shared record behind one fleet job: written by the submitter
// (identity), the pump (dispatch), and read by any number of handles.
struct FleetJobRecord {
  uint64_t id = 0;
  GraphDef graph;
  runtime::JobOptions options;
  int pinned_host = -1;
  int64_t submit_ns = 0;

  std::mutex mu;
  std::condition_variable cv;
  int host = -1;            // set at dispatch
  bool stolen = false;
  int64_t dispatch_ns = 0;
  runtime::JobPtr job;      // non-null once dispatched
  Status dispatch_status;   // non-OK if shutdown beat dispatch
  bool terminal = false;    // dispatched or dispatch-failed
};

}  // namespace internal

using internal::FleetJobRecord;

const char* DispatchPolicyName(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin:
      return "round_robin";
    case DispatchPolicy::kLeastLoaded:
      return "least_loaded";
    case DispatchPolicy::kLocality:
      return "locality";
  }
  return "unknown";
}

Status FleetJobHandle::Wait() const {
  if (record_ == nullptr) {
    return FailedPreconditionError("empty fleet job handle");
  }
  runtime::JobPtr job;
  {
    std::unique_lock<std::mutex> lock(record_->mu);
    record_->cv.wait(lock, [&] { return record_->terminal; });
    if (!record_->dispatch_status.ok()) return record_->dispatch_status;
    job = record_->job;
  }
  job->Wait();
  return job->result().status;
}

FleetJobStats FleetJobHandle::Stats() const {
  FleetJobStats stats;
  if (record_ == nullptr) return stats;
  runtime::JobPtr job;
  {
    std::lock_guard<std::mutex> lock(record_->mu);
    stats.host = record_->host;
    stats.stolen = record_->stolen;
    if (record_->dispatch_ns > 0) {
      stats.fleet_queue_s =
          (record_->dispatch_ns - record_->submit_ns) * 1e-9;
    }
    job = record_->job;
  }
  if (job != nullptr) {
    const runtime::JobProgress progress = job->Progress();
    stats.exec_queue_s = progress.queue_seconds;
    stats.run_s = progress.run_seconds;
    stats.elements = progress.elements;
  }
  stats.completion_s = stats.fleet_queue_s + stats.exec_queue_s + stats.run_s;
  return stats;
}

FleetRuntime::FleetRuntime(
    FleetOptions options,
    std::function<PipelineOptions(int host)> pipeline_options)
    : options_(std::move(options)),
      pipeline_options_(std::move(pipeline_options)) {
  if (options_.hosts.empty()) options_.hosts.push_back(MachineSpec{});
  options_.host_concurrent_jobs = std::max(1, options_.host_concurrent_jobs);
  options_.dispatch_depth = std::max(0, options_.dispatch_depth);
  executors_.reserve(options_.hosts.size());
  for (size_t h = 0; h < options_.hosts.size(); ++h) {
    runtime::ExecutorOptions eopts;
    eopts.max_concurrent_jobs = options_.host_concurrent_jobs;
    const int host = static_cast<int>(h);
    executors_.push_back(std::make_unique<runtime::Executor>(
        [this, host] { return pipeline_options_(host); },
        [this, host] { return options_.hosts[host]; }, eopts));
  }
  queues_.resize(options_.hosts.size());
  pump_ = std::thread([this] { PumpLoop(); });
}

FleetRuntime::~FleetRuntime() {
  std::vector<RecordPtr> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& queue : queues_) {
      for (RecordPtr& record : queue) orphans.push_back(std::move(record));
      queue.clear();
    }
    cv_.notify_all();
  }
  pump_.join();
  for (const RecordPtr& record : orphans) {
    std::lock_guard<std::mutex> rlock(record->mu);
    record->dispatch_status = CancelledError("fleet runtime shut down");
    record->terminal = true;
    record->cv.notify_all();
  }
  // Executor destructors cancel and join every dispatched job.
  executors_.clear();
}

FleetJobHandle FleetRuntime::Submit(GraphDef graph, FleetJobOptions options) {
  auto record = std::make_shared<FleetJobRecord>();
  record->graph = std::move(graph);
  record->options = std::move(options.job);
  record->pinned_host = options.pinned_host;
  record->submit_ns = WallNanos();
  std::lock_guard<std::mutex> lock(mu_);
  record->id = next_id_++;
  if (record->options.name.empty()) {
    record->options.name = "fleet-job-" + std::to_string(record->id);
  }
  if (stop_) {
    std::lock_guard<std::mutex> rlock(record->mu);
    record->dispatch_status = CancelledError("fleet runtime shut down");
    record->terminal = true;
    record->cv.notify_all();
    return FleetJobHandle(std::move(record));
  }
  const int host = RouteLocked(*record);
  queues_[host].push_back(record);
  cv_.notify_all();
  return FleetJobHandle(std::move(record));
}

int FleetRuntime::RouteLocked(const FleetJobRecord& record) {
  const int hosts = num_hosts();
  switch (options_.policy) {
    case DispatchPolicy::kRoundRobin: {
      const int host = rr_next_;
      rr_next_ = (rr_next_ + 1) % hosts;
      return host;
    }
    case DispatchPolicy::kLeastLoaded:
      return LeastLoadedLocked();
    case DispatchPolicy::kLocality:
      if (record.pinned_host >= 0) return record.pinned_host % hosts;
      return LeastLoadedLocked();
  }
  return 0;
}

int FleetRuntime::LeastLoadedLocked() const {
  int best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (int h = 0; h < num_hosts(); ++h) {
    const runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
    // Jobs in flight anywhere on the host (executor + fleet queue) per
    // modeled core, so a big host absorbs proportionally more.
    const double cores = std::max(1, options_.hosts[h].num_cores);
    const double load =
        (snap.queued_jobs + snap.running_jobs +
         static_cast<double>(queues_[h].size())) /
        cores;
    if (load < best_load) {
      best_load = load;
      best = h;
    }
  }
  return best;
}

void FleetRuntime::DispatchLocked(RecordPtr record, int host) {
  runtime::JobPtr job =
      executors_[host]->Submit(record->graph, record->options);
  std::lock_guard<std::mutex> rlock(record->mu);
  record->host = host;
  record->dispatch_ns = WallNanos();
  record->job = std::move(job);
  record->terminal = true;
  record->cv.notify_all();
}

FleetHostLoad FleetRuntime::HostLoad(int host) const {
  FleetHostLoad load;
  std::lock_guard<std::mutex> lock(mu_);
  load.executor = executors_[host]->LoadSnapshot();
  load.fleet_queued = static_cast<int>(queues_[host].size());
  return load;
}

void FleetRuntime::PumpLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  // Each host's executor is kept topped up to cap jobs (running +
  // queued inside the executor); the surplus stays in the fleet queue
  // where the stealing pass below can still re-route it.
  const int cap = options_.host_concurrent_jobs + options_.dispatch_depth;
  for (;;) {
    if (stop_) return;
    bool any_queued = false;
    for (int h = 0; h < num_hosts(); ++h) {
      runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
      while (snap.queued_jobs + snap.running_jobs < cap &&
             !queues_[h].empty()) {
        RecordPtr record = std::move(queues_[h].front());
        queues_[h].pop_front();
        DispatchLocked(std::move(record), h);
        ++snap.queued_jobs;
      }
      any_queued = any_queued || !queues_[h].empty();
    }
    if (options_.work_stealing && any_queued) {
      for (int h = 0; h < num_hosts(); ++h) {
        if (!queues_[h].empty()) continue;  // has local work
        runtime::ExecutorLoadSnapshot snap = executors_[h]->LoadSnapshot();
        while (snap.queued_jobs + snap.running_jobs < cap) {
          // Steal from the deepest backlog; take the newest arrival so
          // the victim's oldest jobs keep their locality.
          int victim = -1;
          size_t victim_depth = 0;
          for (int v = 0; v < num_hosts(); ++v) {
            if (v == h || queues_[v].empty()) continue;
            if (queues_[v].size() > victim_depth) {
              victim_depth = queues_[v].size();
              victim = v;
            }
          }
          if (victim < 0) break;
          RecordPtr record = std::move(queues_[victim].back());
          queues_[victim].pop_back();
          {
            std::lock_guard<std::mutex> rlock(record->mu);
            record->stolen = true;
          }
          steal_count_.fetch_add(1, std::memory_order_relaxed);
          DispatchLocked(std::move(record), h);
          ++snap.queued_jobs;
        }
      }
    }
    // Executor completions have no wakeup channel into the pump, so
    // poll on a short tick while work is waiting; otherwise sleep
    // until a Submit (or shutdown) notifies.
    cv_.wait_for(lock, any_queued ? std::chrono::milliseconds(1)
                                  : std::chrono::milliseconds(50));
  }
}

}  // namespace fleet
}  // namespace plumber
