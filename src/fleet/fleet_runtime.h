// FleetRuntime: a modeled multi-host serving cluster.
//
// The runtime owns N modeled hosts, each a MachineSpec plus its own
// runtime::Executor — the exact Submit/JobHandle machinery a
// single-host Session uses, unchanged; a host's executor still
// arbitrates its own modeled cores across its live jobs with the
// maximin planner. On top, a Dispatcher routes every submitted job to
// a host by pluggable policy:
//
//   kRoundRobin   next host in line, load-oblivious (the baseline)
//   kLeastLoaded  fewest (executor queued + running + fleet-queued)
//                 jobs per modeled core, from live LoadSnapshots
//   kLocality     a job's pinned_host when set, least-loaded otherwise
//   kSloAware     interactive jobs go to the host whose recently
//                 observed interactive queue latency p95 is lowest
//                 (ties and unobserved hosts by load); other classes
//                 dispatch least-loaded
//
// Jobs wait in per-host fleet queues; a pump thread feeds each host's
// executor only as many jobs as it can admit (plus a small dispatch
// depth), keeping the remainder visible for cross-host work stealing:
// when a host drains while another is backlogged, the pump re-routes
// the victim's newest queued job to the idle host (pins are a locality
// preference, not a placement constraint — stealing overrides them and
// counts each override in steal_count()).
//
// Timing model of one job's life:
//   Submit -> dispatch (fleet queue)          FleetJobStats.fleet_queue_s
//   dispatch -> driver start (executor queue) FleetJobStats.exec_queue_s
//   driver start -> finish                    FleetJobStats.run_s
// completion_s is the sum: what a caller waits end to end.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/network_device.h"
#include "src/runtime/executor.h"

namespace plumber {
namespace fleet {

enum class DispatchPolicy { kRoundRobin, kLeastLoaded, kLocality, kSloAware };

const char* DispatchPolicyName(DispatchPolicy policy);

struct FleetOptions {
  // One modeled machine per host; empty gets one default host.
  std::vector<MachineSpec> hosts;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  bool work_stealing = true;
  // Jobs one host's executor runs concurrently (its modeled cores are
  // arbitrated across them). Fleet-level queueing happens beyond this.
  int host_concurrent_jobs = 2;
  // Extra jobs handed to an executor beyond the concurrency cap so a
  // host never idles between completions; everything past this stays
  // in the (stealable) fleet queue.
  int dispatch_depth = 1;
  // Forwarded to every host executor (see runtime::ExecutorOptions):
  // SLO class tiers within each host's core arbitration, and per-class
  // admission backpressure.
  bool slo_preemption = true;
  std::array<runtime::ClassAdmission, runtime::kNumSloClasses> admission = {};
};

struct FleetJobOptions {
  // Per-job runtime options; job.slo carries the SLO class across the
  // fleet — the kSloAware dispatcher routes on it and every host
  // executor schedules by it.
  runtime::JobOptions job;
  // Locality preference: the kLocality policy dispatches to this host;
  // work stealing may still move the job if the host is backlogged.
  int pinned_host = -1;
};

// Final per-job accounting (valid once Wait() returned OK).
struct FleetJobStats {
  int host = -1;            // host that ran the job
  bool stolen = false;      // re-routed by work stealing
  runtime::SloClass slo = runtime::SloClass::kBatch;
  double fleet_queue_s = 0;
  double exec_queue_s = 0;
  double run_s = 0;
  double completion_s = 0;  // fleet_queue + exec_queue + run
  int64_t elements = 0;
  // Serialized program bytes moved across the wire when this job was
  // re-routed off the host that held it (0 when it ran where queued).
  uint64_t transfer_bytes = 0;
};

namespace internal {
struct FleetJobRecord;
}  // namespace internal

// Cheap copyable handle to one fleet job; usable after the runtime is
// gone (a job already handed to a host keeps running under that
// host's executor lifetime rules).
class FleetJobHandle {
 public:
  FleetJobHandle() = default;

  bool valid() const { return record_ != nullptr; }
  // Blocks until the job finishes everywhere (fleet queue, executor
  // queue, run). Shutdown before dispatch or a failed run surfaces as
  // the error.
  Status Wait() const;
  // Accounting snapshot; call after Wait() returned.
  FleetJobStats Stats() const;

 private:
  friend class FleetRuntime;
  explicit FleetJobHandle(std::shared_ptr<internal::FleetJobRecord> record)
      : record_(std::move(record)) {}

  std::shared_ptr<internal::FleetJobRecord> record_;
};

// Combined load view of one host.
struct FleetHostLoad {
  runtime::ExecutorLoadSnapshot executor;
  int fleet_queued = 0;  // waiting in this host's stealable queue
  // p95 of the host's recently observed interactive queue latencies
  // (fleet queue + executor queue, seconds); 0 until a sample lands.
  // The signal the kSloAware dispatcher routes interactive jobs by.
  double interactive_p95_queue_s = 0;
};

class FleetRuntime {
 public:
  // `pipeline_options(host)` derives instantiation options for one
  // host's executor (filesystem/UDF pointers, that host's cpu_scale
  // and memory budget); invoked on executor threads, must stay valid
  // for the runtime's life. FleetSession (src/api/fleet_session.h)
  // wires this from a Session environment.
  FleetRuntime(FleetOptions options,
               std::function<PipelineOptions(int host)> pipeline_options);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  // Routes the job to a host queue by policy and returns immediately.
  FleetJobHandle Submit(GraphDef graph, FleetJobOptions options = {});

  int num_hosts() const { return static_cast<int>(executors_.size()); }
  const MachineSpec& host_machine(int host) const {
    return options_.hosts[host];
  }
  FleetHostLoad HostLoad(int host) const;
  // Jobs re-routed across hosts by work stealing so far.
  int64_t steal_count() const {
    return steal_count_.load(std::memory_order_relaxed);
  }
  // This host's modeled NIC (never null): remote_read wire bytes and
  // migration payloads all land on its counters, so per-host network
  // utilization comes from one place.
  NetworkDevice* host_nic(int host) const { return nics_[host].get(); }
  // Total serialized program bytes moved between hosts by stealing.
  uint64_t transfer_bytes() const {
    return transfer_bytes_.load(std::memory_order_relaxed);
  }

 private:
  using RecordPtr = std::shared_ptr<internal::FleetJobRecord>;

  void PumpLoop();
  // Picks the target host for a new job (mu_ held).
  int RouteLocked(const internal::FleetJobRecord& record);
  int LeastLoadedLocked() const;
  // The kSloAware choice for an interactive job: lowest observed
  // interactive queue-latency p95, load as tiebreak (mu_ held).
  int LowestInteractiveLatencyLocked() const;
  double InteractiveP95Locked(int host) const;
  // Sweeps dispatched interactive jobs whose queueing has ended into
  // the per-host latency windows (mu_ held).
  void SampleInteractiveLatencyLocked();
  // Hands one queued record to a host's executor (mu_ held). A
  // non-negative `from` different from `host` means the job is
  // migrating: its serialized graph is charged through both endpoints'
  // NICs before it runs.
  void DispatchLocked(RecordPtr record, int host, int from = -1);

  FleetOptions options_;
  const std::function<PipelineOptions(int host)> pipeline_options_;
  // Per-host NICs, built from hosts[h].nic; declared before the
  // executors so running pipelines (which borrow the pointers) are
  // torn down first.
  std::vector<std::unique_ptr<NetworkDevice>> nics_;
  std::vector<std::unique_ptr<runtime::Executor>> executors_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t next_id_ = 1;
  int rr_next_ = 0;
  std::vector<std::deque<RecordPtr>> queues_;  // per-host, stealable
  std::atomic<int64_t> steal_count_{0};
  std::atomic<uint64_t> transfer_bytes_{0};
  // Interactive jobs dispatched but not yet sampled: once a job's
  // driver starts (queueing over), its fleet+executor queue latency
  // lands in its host's sliding window below and it leaves this list.
  std::vector<RecordPtr> latency_watch_;
  std::vector<std::deque<double>> interactive_queue_s_;  // per-host window
  std::thread pump_;
};

}  // namespace fleet
}  // namespace plumber
