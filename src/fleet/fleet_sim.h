// Fleet analysis simulator (paper §3 "Spot the Leak").
//
// The paper analyzes >2M proprietary Google ML jobs; we substitute a
// calibrated generative model: jobs are drawn from a mixture of classes
// (well-provisioned, software-bottlenecked, I/O-bound, severely
// input-bound) whose Next-latency and host-utilization distributions
// are fit to the quantiles the paper reports — 92% of jobs above 50us,
// 62% above 1ms, 16% above 100ms, and the low-utilization cluster for
// jobs slower than 100ms (Fig. 3 and Fig. 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace plumber {

struct FleetJob {
  // Mean Next-call latency per training step, seconds.
  double next_latency_s = 0;
  // Host CPU utilization in [0, 1].
  double cpu_utilization = 0;
  // Host memory-bandwidth utilization in [0, 1].
  double membw_utilization = 0;
  int job_class = 0;
};

struct FleetModelOptions {
  uint64_t seed = 20200701;
  int64_t num_jobs = 200000;
};

// Draws the synthetic fleet.
std::vector<FleetJob> SimulateFleet(const FleetModelOptions& options = {});

struct FleetSummary {
  int64_t num_jobs = 0;
  double frac_above_50us = 0;
  double frac_above_1ms = 0;
  double frac_above_100ms = 0;
  // Mean utilizations for jobs with latency >= 100ms (the "large blue
  // dots" of Fig. 4; paper: ~11% CPU, ~18% memory bandwidth).
  double slow_mean_cpu = 0;
  double slow_mean_membw = 0;
  // Mean utilizations for the 50us..100ms band.
  double mid_mean_cpu = 0;
  double mid_mean_membw = 0;
};

FleetSummary SummarizeFleet(const std::vector<FleetJob>& jobs);

// CDF points of Next latency (for Fig. 3): pairs of (latency_s,
// fraction of jobs <= latency).
std::vector<std::pair<double, double>> FleetLatencyCdf(
    const std::vector<FleetJob>& jobs, const std::vector<double>& points);

}  // namespace plumber
