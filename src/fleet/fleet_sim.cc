#include "src/fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace plumber {
namespace {

// Job classes and mixture weights chosen so the aggregate reproduces
// the paper's reported quantiles:
//   8%  well-configured     latency ~ 10-50us
//  30%  mildly stalled      latency ~ 50us-1ms
//  46%  software-bottleneck latency ~ 1ms-100ms, moderate utilization
//  16%  severely input-bound latency > 100ms, low utilization
struct JobClass {
  double weight;
  double log10_latency_mean;   // latency drawn log-normal (log10 space)
  double log10_latency_sigma;
  double cpu_mean, cpu_sigma;
  double membw_mean, membw_sigma;
};

constexpr JobClass kClasses[] = {
    {0.08, -4.6, 0.20, 0.45, 0.18, 0.40, 0.18},  // well-configured
    {0.30, -3.5, 0.35, 0.38, 0.18, 0.35, 0.18},  // mildly stalled
    {0.46, -1.9, 0.55, 0.25, 0.14, 0.30, 0.16},  // software bottleneck
    {0.16, -0.4, 0.45, 0.11, 0.07, 0.18, 0.10},  // severely input-bound
};

double ClampUnit(double x) { return std::clamp(x, 0.005, 0.98); }

}  // namespace

std::vector<FleetJob> SimulateFleet(const FleetModelOptions& options) {
  Rng rng(options.seed);
  std::vector<double> weights;
  for (const auto& c : kClasses) weights.push_back(c.weight);
  std::vector<FleetJob> jobs;
  jobs.reserve(options.num_jobs);
  for (int64_t i = 0; i < options.num_jobs; ++i) {
    const size_t k = rng.Categorical(weights);
    const JobClass& c = kClasses[k];
    FleetJob job;
    job.job_class = static_cast<int>(k);
    job.next_latency_s = std::pow(
        10.0, rng.Normal(c.log10_latency_mean, c.log10_latency_sigma));
    job.cpu_utilization = ClampUnit(rng.Normal(c.cpu_mean, c.cpu_sigma));
    job.membw_utilization =
        ClampUnit(rng.Normal(c.membw_mean, c.membw_sigma));
    jobs.push_back(job);
  }
  return jobs;
}

FleetSummary SummarizeFleet(const std::vector<FleetJob>& jobs) {
  FleetSummary s;
  s.num_jobs = static_cast<int64_t>(jobs.size());
  if (jobs.empty()) return s;
  int64_t above_50us = 0, above_1ms = 0, above_100ms = 0;
  RunningStat slow_cpu, slow_membw, mid_cpu, mid_membw;
  for (const auto& job : jobs) {
    if (job.next_latency_s > 50e-6) ++above_50us;
    if (job.next_latency_s > 1e-3) ++above_1ms;
    if (job.next_latency_s > 100e-3) ++above_100ms;
    if (job.next_latency_s >= 100e-3) {
      slow_cpu.Add(job.cpu_utilization);
      slow_membw.Add(job.membw_utilization);
    } else if (job.next_latency_s >= 50e-6) {
      mid_cpu.Add(job.cpu_utilization);
      mid_membw.Add(job.membw_utilization);
    }
  }
  const double n = static_cast<double>(jobs.size());
  s.frac_above_50us = above_50us / n;
  s.frac_above_1ms = above_1ms / n;
  s.frac_above_100ms = above_100ms / n;
  s.slow_mean_cpu = slow_cpu.mean();
  s.slow_mean_membw = slow_membw.mean();
  s.mid_mean_cpu = mid_cpu.mean();
  s.mid_mean_membw = mid_membw.mean();
  return s;
}

std::vector<std::pair<double, double>> FleetLatencyCdf(
    const std::vector<FleetJob>& jobs, const std::vector<double>& points) {
  std::vector<double> latencies;
  latencies.reserve(jobs.size());
  for (const auto& job : jobs) latencies.push_back(job.next_latency_s);
  std::sort(latencies.begin(), latencies.end());
  std::vector<std::pair<double, double>> out;
  for (double p : points) {
    const auto it =
        std::upper_bound(latencies.begin(), latencies.end(), p);
    out.emplace_back(
        p, latencies.empty()
               ? 0.0
               : static_cast<double>(it - latencies.begin()) /
                     latencies.size());
  }
  return out;
}

}  // namespace plumber
