// Arrival traces: the front-door workload format of the fleet serving
// runtime (paper §3's fleet view, made executable).
//
// A trace is a job-class table plus a time-ordered list of arrival
// events. Classes carry the modeled work shape (per-element UDF cost,
// configured map parallelism, mean job size); events pick a class,
// a concrete element count, and optionally a locality pin. The
// TraceReplayDriver (src/fleet/trace_replay.h) turns each event into a
// range -> map program and submits it to a FleetRuntime at (scaled)
// arrival time.
//
// Text format (line-oriented, '#' comments, parse errors carry line
// numbers):
//   plumber_arrival_trace v1
//   class <name> <weight> <cost_ns> <parallelism> <mean_elements>
//         ... [<slo> <priority> [<latency_target_s>]]
//                                  (continuation of the class line)
//   event <arrival_s> <class_index> <elements> <pinned_host>
// The trailing class fields are optional for back-compat with traces
// serialized before SLO scheduling existed: <slo> is one of
// interactive|batch|best_effort (default batch), <priority> the
// within-class water-fill weight (default 1), and <latency_target_s>
// the per-request completion deadline (default 0 = none). Serialize
// always emits all three.
//
// Three seeded generators cover the serving-paper workload shapes: a
// homogeneous-rate Poisson process, a bursty on/off process (burst
// arrivals at a fast rate, geometric burst lengths, long idle gaps),
// and a time-varying open-loop process (sinusoidal or ramp arrival
// rate, thinned non-homogeneous Poisson) for streaming/online-
// inference front doors. All draw job classes from the trace's
// weighted mixture and are deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/job.h"
#include "src/util/status.h"

namespace plumber {
namespace fleet {

// One class of jobs: the work shape every event of this class shares.
struct TraceJobClass {
  std::string name;
  double weight = 1.0;        // mixture weight (unnormalized)
  double cost_ns = 1e6;       // modeled UDF cost per element
  int parallelism = 1;        // configured map parallelism
  double mean_elements = 16;  // mean job size (elements)
  // Scheduling identity every job of the class carries (JobOptions'
  // slo/priority): the replay driver forwards both so host executors
  // tier and weight the class accordingly.
  runtime::SloClass slo = runtime::SloClass::kBatch;
  double priority = 1.0;
  // Per-request completion deadline, seconds from submit; 0 = none.
  // The replay driver forwards it as JobOptions::latency_target_s so
  // executors order and shed by it, and FleetClassLatency reports the
  // class's attainment against it.
  double latency_target_s = 0;
};

// One job arrival.
struct ArrivalEvent {
  double arrival_s = 0;  // offset from trace start, nondecreasing
  int job_class = 0;     // index into ArrivalTrace::classes
  int64_t elements = 1;  // this job's concrete size
  int pinned_host = -1;  // locality preference; -1 = unpinned
};

struct ArrivalTrace {
  std::vector<TraceJobClass> classes;
  std::vector<ArrivalEvent> events;

  // Round-trippable text form (doubles at full precision).
  std::string Serialize() const;
  // Parses the text form. Malformed input fails with the 1-based line
  // number and what was wrong with it.
  static StatusOr<ArrivalTrace> Parse(const std::string& text);
};

// The four-class mixture calibrated against the paper's fleet
// quantiles (src/fleet/fleet_sim.cc), recast as serveable job classes:
// same weights, per-element costs spanning the well-configured ..
// severely-input-bound latency decades.
std::vector<TraceJobClass> CalibratedJobClasses();

struct PoissonTraceOptions {
  uint64_t seed = 1;
  int num_jobs = 1000;
  double mean_interarrival_s = 0.01;
  // Fraction of jobs carrying a locality pin, spread uniformly over
  // [0, num_hosts) pin targets.
  double pin_fraction = 0;
  int num_hosts = 1;
};

// Homogeneous Poisson arrivals over the weighted class mixture. Job
// sizes are exponential around each class's mean (min 1 element).
ArrivalTrace MakePoissonTrace(std::vector<TraceJobClass> classes,
                              const PoissonTraceOptions& options);

struct BurstyTraceOptions {
  uint64_t seed = 1;
  int num_jobs = 1000;
  // Interarrival inside a burst (fast) and between bursts (slow).
  double burst_interarrival_s = 0.001;
  double idle_gap_s = 0.25;
  // Mean jobs per burst (geometric).
  double mean_burst_len = 20;
  double pin_fraction = 0;
  int num_hosts = 1;
};

// On/off arrivals: geometric-length bursts at the fast rate separated
// by exponential idle gaps — the pattern that punishes load-oblivious
// dispatch hardest.
ArrivalTrace MakeBurstyTrace(std::vector<TraceJobClass> classes,
                             const BurstyTraceOptions& options);

// Deterministic rate shapes for the time-varying generator.
enum class TimeVaryingShape {
  // rate(t) = base * (1 + amplitude * sin(2*pi * t / period_s))
  kSinusoid,
  // rate(t) climbs linearly from base*(1-amplitude) at t=0 to
  // base*(1+amplitude) at t=duration_s.
  kRamp,
};

struct TimeVaryingTraceOptions {
  uint64_t seed = 1;
  double duration_s = 10;
  TimeVaryingShape shape = TimeVaryingShape::kSinusoid;
  // Mean arrival rate, jobs/sec, and the swing around it (in [0, 1]).
  double base_rate = 100;
  double amplitude = 0.8;
  double period_s = 2;  // sinusoid only
  double pin_fraction = 0;
  int num_hosts = 1;
};

// Open-loop arrivals whose rate varies over the trace window — the
// diurnal/spike shapes a streaming or online-inference front door
// sees. Implemented as a thinned non-homogeneous Poisson process
// (candidates at the peak rate, accepted with probability
// rate(t)/peak), so the instantaneous rate tracks the shape exactly
// in expectation.
ArrivalTrace MakeTimeVaryingTrace(std::vector<TraceJobClass> classes,
                                  const TimeVaryingTraceOptions& options);

}  // namespace fleet
}  // namespace plumber
