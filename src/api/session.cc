#include "src/api/session.h"

#include "src/pipeline/ops.h"

namespace plumber {
namespace internal {

PipelineOptions MakePipelineOptions(SessionState& state) {
  const SessionOptions& so = state.options;
  PipelineOptions popts;
  popts.fs = &state.fs;
  popts.udfs = &state.udfs;
  popts.cpu_scale = so.machine.cpu_scale;
  popts.work_model = so.work_model;
  popts.seed = so.seed;
  popts.tracing_enabled = so.tracing_enabled;
  popts.memory_budget_bytes = so.memory_budget_bytes > 0
                                  ? so.memory_budget_bytes
                                  : so.machine.memory_bytes;
  popts.engine_batch_size = so.engine_batch_size;
  popts.scratch = so.machine.scratch;
  popts.scratch_budget_bytes = so.machine.scratch_bytes;
  popts.nic = state.nic.get();
  return popts;
}

void ApplyEnvironment(SessionState& state, OptimizeOptions* options) {
  const SessionOptions& so = state.options;
  options->machine = so.machine;
  // The memory cap bounds the planning budget too, so the optimizer
  // never plans a cache the runtime budget would reject.
  if (so.memory_budget_bytes > 0) {
    options->machine.memory_bytes = so.memory_budget_bytes;
  }
  options->fs = &state.fs;
  options->udfs = &state.udfs;
  options->seed = so.seed;
  options->work_model = so.work_model;
  // Unlike the true environment fields above, an explicit per-call
  // engine_batch_size is a tuning knob and wins over the session's.
  if (options->engine_batch_size <= 0) {
    options->engine_batch_size = so.engine_batch_size;
  }
  // The planner's network constraint defaults to the machine's NIC so
  // attaching one device keeps runtime metering and planning aligned;
  // an explicit per-call bandwidth wins.
  if (options->lp_options.network_bandwidth <= 0) {
    options->lp_options.network_bandwidth = so.machine.nic.max_bandwidth;
  }
}

runtime::Executor& GetExecutor(SessionState& state) {
  std::lock_guard<std::mutex> lock(state.executor_mu);
  if (state.executor == nullptr) {
    // The factories capture the owning state: the executor is a member
    // of it and is destroyed (cancelling + joining every job) first.
    SessionState* raw = &state;
    runtime::ExecutorOptions eopts;
    eopts.max_concurrent_jobs = state.options.max_concurrent_jobs;
    eopts.slo_preemption = state.options.slo_preemption;
    eopts.admission = state.options.admission;
    state.executor = std::make_unique<runtime::Executor>(
        [raw] { return MakePipelineOptions(*raw); },
        [raw] { return raw->options.machine; }, eopts);
  }
  return *state.executor;
}

}  // namespace internal

Session::Session(SessionOptions options)
    : state_(std::make_shared<internal::SessionState>()) {
  state_->options = std::move(options);
}

Status Session::CreateRecordFiles(const std::string& prefix, int num_files,
                                  int records_per_file,
                                  uint64_t bytes_per_record) {
  if (num_files <= 0 || records_per_file <= 0) {
    return InvalidArgumentError("CreateRecordFiles: counts must be positive");
  }
  for (int f = 0; f < num_files; ++f) {
    std::vector<uint64_t> sizes(records_per_file, bytes_per_record);
    RETURN_IF_ERROR(state_->fs.CreateRecordFile(prefix + std::to_string(f),
                                                state_->options.seed + f,
                                                std::move(sizes)));
  }
  return OkStatus();
}

Status Session::RegisterUdf(UdfSpec spec) {
  return state_->udfs.Register(std::move(spec));
}

void Session::AttachStorage(const DeviceSpec& spec) {
  state_->storage = std::make_unique<StorageDevice>(spec);
  state_->fs.set_device(state_->storage.get());
}

void Session::AttachNic(const NicSpec& spec) {
  state_->nic = std::make_unique<NetworkDevice>(spec);
  state_->options.machine.nic = spec;
}

Flow Session::Files(const std::string& prefix) {
  NodeDef def;
  def.op = "file_list";
  def.attrs[kAttrPrefix] = AttrValue(prefix);
  return Flow(state_, GraphDef(), "").Append(std::move(def));
}

Flow Session::Range(int64_t count) {
  NodeDef def;
  def.op = "range";
  def.attrs[kAttrCount] = AttrValue(count);
  return Flow(state_, GraphDef(), "").Append(std::move(def));
}

Flow Session::FromGraph(GraphDef graph) {
  const std::string tip = graph.output();
  Flow flow(state_, std::move(graph), tip);
  if (tip.empty()) {
    flow.status_ = InvalidArgumentError("FromGraph: graph has no output set");
  }
  return flow;
}

JobHandle Session::Submit(const Flow& flow, JobOptions options) {
  if (flow.status().ok() && flow.state_ != state_) {
    return JobHandle(
        InvalidArgumentError("Submit: flow belongs to a different session"));
  }
  return flow.Submit(std::move(options));
}

StatusOr<OptimizedFlow> Session::OptimizeBest(
    const std::vector<GraphDef>& variants, OptimizeOptions options) {
  internal::ApplyEnvironment(*state_, &options);
  PlumberOptimizer optimizer(std::move(options));
  ASSIGN_OR_RETURN(OptimizeResult result, optimizer.PickBest(variants));
  return Flow::MakeOptimizedFlow(state_, std::move(result));
}

}  // namespace plumber
