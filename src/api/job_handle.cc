#include "src/api/job_handle.h"

namespace plumber {

const std::string& JobHandle::name() const {
  static const std::string kEmpty;
  return job_ != nullptr ? job_->name() : kEmpty;
}

JobPhase JobHandle::phase() const {
  return job_ != nullptr ? job_->phase() : JobPhase::kFailed;
}

void JobHandle::Cancel() const {
  if (job_ != nullptr) job_->Cancel();
}

StatusOr<RunReport> JobHandle::Wait() const {
  RETURN_IF_ERROR(status_);
  if (job_ == nullptr) {
    return FailedPreconditionError("empty JobHandle: nothing was submitted");
  }
  job_->Wait();
  const RunResult& result = job_->result();
  if (!job_->started()) {
    // Never ran: pipeline instantiation failed or the job was
    // cancelled while queued. There is no run to report on.
    return result.status.ok()
               ? CancelledError("job cancelled before admission")
               : result.status;
  }
  RunReport report;
  report.status = result.status;
  report.batches = result.batches;
  report.elements = result.examples;
  report.wall_seconds = result.wall_seconds;
  report.queue_seconds = job_->queue_seconds();
  report.batches_per_second = result.batches_per_second;
  report.elements_per_second = result.examples_per_second;
  report.mean_next_latency_seconds = result.mean_next_latency_seconds;
  report.mean_cores_used = result.mean_cores_used;
  report.reached_end = result.reached_end;
  report.node_stats = job_->final_stats();
  if (const IteratorStatsSnapshot* root =
          report.FindNode(job_->output_node())) {
    report.bytes_produced = root->bytes_produced;
  }
  return report;
}

JobProgress JobHandle::Progress() const {
  if (job_ == nullptr) return JobProgress{};
  return job_->Progress();
}

}  // namespace plumber
