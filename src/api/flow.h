// Flow: the fluent, value-semantic pipeline builder of the unified
// Plumber API (the paper's "one line of code" front door).
//
// A Flow is an immutable value describing a pipeline program bound to a
// Session (the environment: filesystem, UDFs, machine, seed). Each
// operator returns a new Flow; nodes are auto-named after their op
// ("map", "map_1", ...) so users never thread node names by hand, and
// Named() pins a stable name when one is wanted. A Flow compiles to the
// same GraphDef the low-level GraphBuilder produces, so the tracer,
// rewriter, and planner layers see identical programs either way.
//
//   Flow flow = session.Files("train/")
//                   .Interleave(4)
//                   .Map("decode")
//                   .ShuffleAndRepeat(128)
//                   .Batch(32);
//   RunOptions window;
//   window.max_seconds = 1;
//   auto report    = flow.Run(window);
//   auto optimized = flow.Optimize();
//
// Errors (unknown session, name collisions, cross-session Zip) are
// deferred: the first failure is carried in the Flow and surfaced by
// Graph()/Run()/Optimize(), keeping chains unconditional.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/model.h"
#include "src/core/optimizer.h"
#include "src/core/tracer.h"
#include "src/pipeline/runner.h"
#include "src/runtime/job.h"

namespace plumber {

class Session;
class JobHandle;
struct OptimizedFlow;

// Api-level alias for the submission options (see JobHandle in
// job_handle.h for the rest of the job vocabulary).
using JobOptions = runtime::JobOptions;

namespace internal {
struct SessionState;
}  // namespace internal

// The result of one job's run window (Flow::Run / JobHandle::Wait):
// throughput, latency, resource use, job timing, and a per-node stats
// snapshot for diagnosis.
struct RunReport {
  Status status;            // error observed mid-run, if any
  int64_t batches = 0;
  int64_t elements = 0;     // total components across batches
  uint64_t bytes_produced = 0;  // bytes out of the root node
  // Job timing: queue_seconds is the admission wait (Submit -> run
  // start; ~0 unless the executor's concurrency cap queued the job),
  // wall_seconds the measured execution window.
  double queue_seconds = 0;
  double wall_seconds = 0;
  double batches_per_second = 0;
  double elements_per_second = 0;
  double mean_next_latency_seconds = 0;
  double mean_cores_used = 0;
  bool reached_end = false;
  std::vector<IteratorStatsSnapshot> node_stats;

  const IteratorStatsSnapshot* FindNode(const std::string& name) const;
};

class Flow {
 public:
  // An unbound Flow; using it reports FailedPrecondition. Real Flows
  // come from Session::Files/Range/FromGraph or Zip/Concatenate.
  Flow();

  // -- Operators (each appends one node and returns the new Flow) ----
  Flow TfRecord() const;
  Flow Interleave(int cycle_length, int parallelism = 1,
                  int block_length = 1) const;
  Flow Map(const std::string& udf, int parallelism = 1,
           bool deterministic = true) const;
  // A map stage the framework cannot parallelize (tunable=false).
  Flow SequentialMap(const std::string& udf) const;
  Flow Filter(const std::string& udf) const;
  Flow Shuffle(int64_t buffer_size, int64_t seed = 7) const;
  Flow ShuffleAndRepeat(int64_t buffer_size, int64_t count = -1,
                        int64_t seed = 11) const;
  Flow Repeat(int64_t count = -1) const;
  Flow Take(int64_t count) const;
  Flow Skip(int64_t count) const;
  Flow Batch(int64_t batch_size, bool drop_remainder = true) const;
  Flow Prefetch(int64_t buffer_size) const;
  Flow Cache() const;
  Flow MapAndBatch(const std::string& udf, int64_t batch_size,
                   int parallelism = 1, bool drop_remainder = true) const;

  // Multi-input combinators. Input flows must share a Session; their
  // graphs are merged (common prefixes unified, colliding suffix names
  // renamed) under a new zip/concatenate root.
  static Flow Zip(const std::vector<Flow>& inputs);
  static Flow Concatenate(const std::vector<Flow>& inputs);

  // Renames the tip node (auto-named by default) for stable references,
  // e.g. .Map("decode").Named("decode"). Fails if the name is taken.
  Flow Named(const std::string& name) const;

  // -- Entry points --------------------------------------------------
  // Compiles to the low-level GraphDef (the escape hatch: hand this to
  // GraphBuilder-era tooling, the rewriter, or Pipeline::Create).
  StatusOr<GraphDef> Graph() const;

  // Blocking-run sugar over the async job API: exactly Submit(options)
  // + JobHandle::Wait(). The job goes through the session's shared
  // Executor like any other submission — run alone it owns the machine
  // and behaves as the classic single-tenant run (same RunReport, same
  // deterministic results); submitted alongside other jobs it shares
  // the modeled cores under the maximin arbiter. Honors
  // RunOptions.warmup_seconds (cache fill on the same iterator tree).
  StatusOr<RunReport> Run(const RunOptions& options) const;

  // Asynchronous execution: enqueue this flow as a job on the
  // session's shared Executor and return immediately. The handle
  // exposes Wait/Cancel/Progress and stays valid after the Session is
  // gone. Equivalent to Session::Submit(flow, options).
  JobHandle Submit(JobOptions options = {}) const;

  // Hands the pipeline to the Plumber optimizer. The Session is the
  // source of truth for the environment: machine, fs, udfs, seed, and
  // work model in `options` are overwritten from it; pass only tuning
  // knobs (trace windows, schedule, lp_options, enable_* switches).
  StatusOr<OptimizedFlow> Optimize(OptimizeOptions options = {}) const;

  // Optimize with an explicit pass schedule, e.g.
  // "parallelism,prefetch,cache,parallelism,batch". Pass names resolve
  // through PassRegistry::Global(); unknown names are InvalidArgument.
  // An empty schedule runs no passes: the flow is traced once (so
  // traced_rate is measured) and returned unchanged.
  StatusOr<OptimizedFlow> OptimizeWith(const std::string& schedule,
                                       OptimizeOptions options = {}) const;

  // Traces the pipeline for a bounded window (paper §4.1).
  StatusOr<TraceSnapshot> Trace(double trace_seconds = 0.3) const;

  // Trace + model build: the per-Dataset resource-accounted rates the
  // interactive "explain-plan" workflow consumes.
  StatusOr<PipelineModel> Diagnose(double trace_seconds = 0.3) const;

  // Name of the tip (output) node; empty for unbound flows.
  const std::string& output_node() const { return tip_; }
  // First deferred construction error, if any.
  const Status& status() const { return status_; }

 private:
  friend class Session;

  // Flows share their Session's environment, so they stay valid across
  // Session moves and may even outlive the Session object.
  Flow(std::shared_ptr<internal::SessionState> state, GraphDef graph,
       std::string tip);
  // Wraps an optimizer result (from Optimize or PickBest) as an
  // OptimizedFlow bound to `state` — the one place the field folding
  // lives, shared by Flow::Optimize and Session::OptimizeBest.
  static OptimizedFlow MakeOptimizedFlow(
      std::shared_ptr<internal::SessionState> state, OptimizeResult result);
  // Appends a node (auto-named from def.op when def.name is empty) and
  // returns the extended flow. def.inputs must already be set.
  Flow Append(NodeDef def) const;
  // Appends a unary node consuming the current tip.
  Flow AppendAfterTip(NodeDef def) const;
  static Flow Combine(const std::string& op,
                      const std::vector<Flow>& inputs);

  std::shared_ptr<internal::SessionState> state_;
  GraphDef graph_;
  std::string tip_;
  Status status_;
};

// An optimized program plus the optimizer's decisions, ready to run.
struct OptimizedFlow {
  Flow flow;                  // rewritten program, same Session
  LpPlan plan;                // last parallelism pass's LP allocation
  CacheDecision cache;        // last cache pass's decision
  PrefetchDecision prefetch;  // last prefetch pass's decision
  double traced_rate = 0;     // observed rate in the final trace
  // Per-pass reports in execution order (what each scheduled pass
  // decided and whether it rewrote the graph).
  std::vector<PassReport> pass_reports;
  std::vector<std::string> log;
  int picked_variant = 0;     // Session::OptimizeBest only

  StatusOr<RunReport> Run(const RunOptions& options) const {
    return flow.Run(options);
  }
  StatusOr<GraphDef> Graph() const { return flow.Graph(); }
};

}  // namespace plumber
