// FleetSession: the unified-API bridge into the fleet serving runtime.
//
// A FleetSession is to FleetRuntime what Session is to Executor: it
// owns the shared environment (one Session supplies the simulated
// filesystem, UDF registry, seed, and work model for every host) and
// wires a per-host PipelineOptions factory that overrides cpu_scale
// and the memory budget from each host's own MachineSpec, so a
// heterogeneous fleet models heterogeneous hardware while serving one
// program namespace.
//
//   FleetSessionOptions fo;
//   fo.hosts = {MachineSpec::SetupA(), MachineSpec::SetupA(),
//               MachineSpec::SetupB(), MachineSpec::SetupB()};
//   fo.fleet.policy = fleet::DispatchPolicy::kLeastLoaded;
//   FleetSession cluster(fo);
//   auto trace = fleet::MakeBurstyTrace(fleet::CalibratedJobClasses(), {});
//   auto report = cluster.Replay(trace);   // FleetReport quantiles
//
// Individual programs go through Submit(GraphDef) with an optional
// locality pin; trace replay goes through Replay(). The single-host
// Session path is untouched — a FleetSession is an additive layer.
#pragma once

#include <memory>
#include <vector>

#include "src/api/session.h"
#include "src/fleet/fleet_runtime.h"
#include "src/fleet/trace_replay.h"

namespace plumber {

struct FleetSessionOptions {
  // One modeled machine per host; empty gets one default host. The
  // machine of fleet.hosts is ignored — set hosts here.
  std::vector<MachineSpec> hosts;
  // Dispatch policy, stealing, per-host concurrency (hosts above wins
  // over fleet.hosts).
  fleet::FleetOptions fleet;
  uint64_t seed = 42;
  CpuWorkModel work_model = CpuWorkModel::kTimed;
  int engine_batch_size = 0;
};

class FleetSession {
 public:
  explicit FleetSession(FleetSessionOptions options = {});

  // The factories handed to host executors capture `this`.
  FleetSession(const FleetSession&) = delete;
  FleetSession& operator=(const FleetSession&) = delete;
  FleetSession(FleetSession&&) = delete;
  FleetSession& operator=(FleetSession&&) = delete;

  // Environment setup, shared by every host (set up before submitting;
  // the single-Session environment contract applies fleet-wide).
  Status RegisterUdf(UdfSpec spec) { return env_.RegisterUdf(std::move(spec)); }
  Status CreateRecordFiles(const std::string& prefix, int num_files,
                           int records_per_file, uint64_t bytes_per_record) {
    return env_.CreateRecordFiles(prefix, num_files, records_per_file,
                                  bytes_per_record);
  }

  // Routes one program into the fleet (see FleetRuntime::Submit). A
  // per-shard program cut out by rewriter::ExtractShard carries its
  // shard index in the graph; when the caller leaves pinned_host unset,
  // Submit pins such a program to host (shard index % num hosts), so
  // the shards of one ShardSource rewrite land on distinct hosts and
  // read against distinct modeled devices.
  fleet::FleetJobHandle Submit(GraphDef graph,
                               fleet::FleetJobOptions options = {});

  // Replays an arrival trace through the fleet and reports fleet-wide
  // latency quantiles and per-host utilization.
  StatusOr<fleet::FleetReport> Replay(
      const fleet::ArrivalTrace& trace,
      const fleet::TraceReplayOptions& options = {});

  // The environment Session (filesystem, UDFs, seed — one namespace
  // for all hosts) and the runtime underneath.
  Session& env() { return env_; }
  fleet::FleetRuntime& runtime() { return *runtime_; }

 private:
  FleetSessionOptions options_;
  Session env_;
  std::unique_ptr<fleet::FleetRuntime> runtime_;
};

}  // namespace plumber
