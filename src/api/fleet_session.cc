#include "src/api/fleet_session.h"

#include "src/core/rewriter.h"

namespace plumber {

FleetSession::FleetSession(FleetSessionOptions options)
    : options_(std::move(options)),
      env_([&] {
        SessionOptions so;
        so.seed = options_.seed;
        so.work_model = options_.work_model;
        so.engine_batch_size = options_.engine_batch_size;
        return so;
      }()) {
  fleet::FleetOptions fopts = options_.fleet;
  fopts.hosts = options_.hosts;
  if (fopts.hosts.empty()) fopts.hosts.push_back(MachineSpec{});
  options_.hosts = fopts.hosts;
  runtime_ = std::make_unique<fleet::FleetRuntime>(
      std::move(fopts), [this](int host) {
        // Start from the environment Session's options (filesystem,
        // UDFs, seed, work model), then overlay the host's own
        // hardware: its core speed and memory budget. Per-host seeds
        // decorrelate modeled randomness across hosts.
        PipelineOptions popts = env_.MakePipelineOptions();
        const MachineSpec& machine = options_.hosts[host];
        popts.cpu_scale = machine.cpu_scale;
        popts.memory_budget_bytes = machine.memory_bytes;
        popts.scratch = machine.scratch;
        popts.scratch_budget_bytes = machine.scratch_bytes;
        popts.seed = options_.seed + static_cast<uint64_t>(host);
        return popts;
      });
}

fleet::FleetJobHandle FleetSession::Submit(GraphDef graph,
                                           fleet::FleetJobOptions options) {
  if (options.pinned_host < 0) {
    // Shard-stamped programs get locality by default: shard i of a
    // ShardSource rewrite runs on host i mod fleet size. An explicit
    // pin (>= 0) always wins.
    const int shard = rewriter::GraphShardIndex(graph);
    if (shard >= 0) {
      options.pinned_host =
          shard % static_cast<int>(options_.hosts.size());
    }
  }
  return runtime_->Submit(std::move(graph), std::move(options));
}

StatusOr<fleet::FleetReport> FleetSession::Replay(
    const fleet::ArrivalTrace& trace,
    const fleet::TraceReplayOptions& options) {
  fleet::TraceReplayDriver driver(runtime_.get(), &env_.udfs());
  return driver.Replay(trace, options);
}

}  // namespace plumber
