// Session: the single environment object of the unified Plumber API.
//
// A Session owns everything a pipeline needs to exist — the simulated
// filesystem (optionally backed by an owned StorageDevice), the UDF
// registry, the MachineSpec being modeled, the seed, and the CPU work
// model — and is the one source of truth for all of them: Flow::Run and
// Flow::Optimize derive their PipelineOptions/OptimizeOptions from the
// Session, so cpu_scale/seed/memory can no longer be wired twice and
// drift (formerly: MachineSpec vs PipelineOptions vs OptimizeOptions).
//
//   Session session;
//   session.machine().num_cores = 8;
//   session.CreateRecordFiles("train/part-", 8, 200, 1024);
//   session.RegisterUdf(decode_spec);
//   Flow flow = session.Files("train/").Interleave(4).Map("decode")
//                   .ShuffleAndRepeat(128).Batch(32);
//
// The GraphBuilder + PipelineOptions + Pipeline::Create layer remains
// public underneath for tooling that needs manual control; FromGraph()
// bridges a hand-built GraphDef into the Session world.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/flow.h"
#include "src/api/job_handle.h"
#include "src/core/machine.h"
#include "src/runtime/executor.h"

namespace plumber {

// Api-level aliases for the admission vocabulary (SloClass is aliased
// in job_handle.h next to the other job types).
using AdmissionPolicy = runtime::AdmissionPolicy;
using ClassAdmission = runtime::ClassAdmission;

struct SessionOptions {
  MachineSpec machine = MachineSpec::SetupA();
  uint64_t seed = 42;
  CpuWorkModel work_model = CpuWorkModel::kTimed;
  bool tracing_enabled = true;
  // Memory cap override: bounds both the runtime cache budget of
  // instantiated pipelines and the optimizer's planning budget. 0
  // derives both from machine.memory_bytes.
  uint64_t memory_budget_bytes = 0;
  // Engine batch size for every pipeline built from this session: how
  // many elements parallel operators claim and hand off per lock
  // acquisition. 0 = unset: runs element-at-a-time, but the optimizer's
  // "batch" pass may autotune it. 1 = explicitly element-at-a-time
  // (identical results, classic engine; the batch pass respects it);
  // larger amortizes queue/lock overhead for cheap UDFs.
  // RunOptions.engine_batch_size overrides per run.
  int engine_batch_size = 0;
  // Jobs the session's executor runs concurrently; 0 = unlimited
  // (every Submit is admitted immediately and the maximin arbiter
  // splits the modeled cores). >0 queues excess submissions, which
  // shows up as RunReport::queue_seconds.
  int max_concurrent_jobs = 0;
  // SLO-aware scheduling (see docs/scheduling.md): when true (default)
  // JobOptions::slo tiers the core arbitration — interactive arrivals
  // park batch worker pools to their floor and queued interactive jobs
  // jump the admission queue. False = flat single-tier fair share.
  bool slo_preemption = true;
  // Per-SLO-class admission backpressure (queue / reject / shed),
  // indexed by runtime::SloClass ordinal. Default: queue unbounded.
  std::array<runtime::ClassAdmission, runtime::kNumSloClasses> admission = {};
};

namespace internal {

// The shared environment behind a Session. Flows hold a reference too,
// so a Flow (and anything built from it) stays valid across Session
// moves and even outlives its Session.
struct SessionState {
  SessionOptions options;
  std::unique_ptr<StorageDevice> storage;
  // Local NIC endpoint, attached by AttachNic. Every pipeline built
  // from this session meters its remote_read wire bytes through this
  // one device, so its counters aggregate across concurrent jobs the
  // way a real host's NIC would.
  std::unique_ptr<NetworkDevice> nic;
  SimFilesystem fs;
  UdfRegistry udfs;
  // The shared multi-tenant runtime, created on first Submit (or the
  // first Flow::Run, which is Submit + Wait). Declared last so it is
  // destroyed first: shutdown cancels and joins every job while the
  // filesystem/UDF registry above are still alive.
  std::mutex executor_mu;
  std::unique_ptr<runtime::Executor> executor;
};

// The only place the unified API turns session state into
// PipelineOptions. (Non-const: pipelines mutate the filesystem.)
PipelineOptions MakePipelineOptions(SessionState& state);
// Overwrites the environment half of OptimizeOptions (machine, fs,
// udfs, seed, work model, memory cap) from the session state.
void ApplyEnvironment(SessionState& state, OptimizeOptions* options);
// The session's executor, lazily created (thread-safe).
runtime::Executor& GetExecutor(SessionState& state);

}  // namespace internal

class Session {
 public:
  explicit Session(SessionOptions options = {});
  // Sessions are movable handles to their (shared) environment; copy is
  // disabled to keep ownership explicit. Flows created earlier remain
  // valid after a move.
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // -- Environment setup --------------------------------------------
  // Registers `num_files` record files named "<prefix>0".."<prefix>N-1"
  // of records_per_file x bytes_per_record each.
  Status CreateRecordFiles(const std::string& prefix, int num_files,
                           int records_per_file, uint64_t bytes_per_record);
  Status RegisterUdf(UdfSpec spec);
  // Attaches an owned storage device (bandwidth/latency modeling) to
  // the filesystem. Replaces any previously attached device.
  void AttachStorage(const DeviceSpec& spec);
  // Attaches an owned network device modeling this host's NIC; every
  // pipeline built from the session charges remote_read wire bytes
  // through it. Also records the spec in machine().nic so the
  // optimizer's network bound is derived from the same numbers.
  // Replaces any previously attached device.
  void AttachNic(const NicSpec& spec);

  // -- Flow sources --------------------------------------------------
  // Files matching the prefix (a file_list node).
  Flow Files(const std::string& prefix);
  Flow Range(int64_t count);
  // Wraps an existing GraphDef (low-level escape hatch); the flow's tip
  // is the graph's output node.
  Flow FromGraph(GraphDef graph);

  // Optimizes each signature-equivalent variant and picks the fastest
  // under a benchmark run (the paper's pick_best annotation, §B).
  StatusOr<OptimizedFlow> OptimizeBest(const std::vector<GraphDef>& variants,
                                       OptimizeOptions options = {});

  // -- Asynchronous execution ----------------------------------------
  // Enqueues the flow as a job on this session's shared Executor and
  // returns immediately. Concurrent jobs share the machine: the
  // executor re-plans the modeled core budget across all live jobs
  // (maximin across job rates) on every arrival and departure, and
  // retargets running worker pools in place. The flow must belong to
  // this session. See JobHandle for Wait/Cancel/Progress.
  //
  // Environment contract: running jobs read the session's filesystem
  // and UDF registry through unsynchronized pointers, so environment
  // mutation (CreateRecordFiles, RegisterUdf, AttachStorage, machine()
  // edits) must not race live jobs — set the environment up first, or
  // wait out submitted jobs before changing it. Submitting from
  // multiple threads is safe.
  JobHandle Submit(const Flow& flow, JobOptions options = {});

  // -- Accessors (the one source of truth) ---------------------------
  SimFilesystem& fs() { return state_->fs; }
  UdfRegistry& udfs() { return state_->udfs; }
  const UdfRegistry& udfs() const { return state_->udfs; }
  MachineSpec& machine() { return state_->options.machine; }
  const MachineSpec& machine() const { return state_->options.machine; }
  StorageDevice* storage() const { return state_->storage.get(); }
  NetworkDevice* nic() const { return state_->nic.get(); }
  uint64_t seed() const { return state_->options.seed; }
  void set_seed(uint64_t seed) { state_->options.seed = seed; }
  CpuWorkModel work_model() const { return state_->options.work_model; }
  void set_work_model(CpuWorkModel m) { state_->options.work_model = m; }

  // Derives instantiation options from the session state.
  PipelineOptions MakePipelineOptions() const {
    return internal::MakePipelineOptions(*state_);
  }
  // Fills the environment half of OptimizeOptions from the session,
  // keeping the tuning knobs.
  void ApplyTo(OptimizeOptions* options) {
    internal::ApplyEnvironment(*state_, options);
  }

 private:
  std::shared_ptr<internal::SessionState> state_;
};

}  // namespace plumber
