#include "src/api/flow.h"

#include <map>

#include "src/api/job_handle.h"
#include "src/api/session.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

// Structural node equality (used to unify shared prefixes when merging
// flow graphs). Attr values compare via their serialized form.
bool SameNode(const NodeDef& a, const NodeDef& b) {
  if (a.name != b.name || a.op != b.op || a.inputs != b.inputs) return false;
  if (a.attrs.size() != b.attrs.size()) return false;
  for (const auto& [key, value] : a.attrs) {
    auto it = b.attrs.find(key);
    if (it == b.attrs.end()) return false;
    if (it->second.Serialize() != value.Serialize()) return false;
  }
  return true;
}

// Merges `src` into `dst`. Nodes identical to an existing dst node are
// unified (flows branched off a common prefix share it); name
// collisions between distinct nodes are renamed, with references inside
// the remainder of `src` (and `rename`d tips) following. Relies on
// flow graphs being stored children-first, so every input reference
// points at an already-processed node.
Status MergeGraph(GraphDef* dst, const GraphDef& src,
                  std::map<std::string, std::string>* rename) {
  for (const NodeDef& node : src.nodes()) {
    NodeDef copy = node;
    for (auto& input : copy.inputs) {
      auto it = rename->find(input);
      if (it != rename->end()) input = it->second;
    }
    const NodeDef* existing = dst->FindNode(copy.name);
    if (existing != nullptr && SameNode(*existing, copy)) continue;
    if (existing != nullptr) {
      const std::string fresh = dst->UniqueName(copy.name);
      (*rename)[copy.name] = fresh;
      copy.name = fresh;
    }
    RETURN_IF_ERROR(dst->AddNode(std::move(copy)));
  }
  return OkStatus();
}

}  // namespace

const IteratorStatsSnapshot* RunReport::FindNode(
    const std::string& name) const {
  for (const auto& s : node_stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Flow::Flow()
    : status_(FailedPreconditionError(
          "unbound Flow: use Session::Files/Range/FromGraph")) {}

Flow::Flow(std::shared_ptr<internal::SessionState> state, GraphDef graph,
           std::string tip)
    : state_(std::move(state)),
      graph_(std::move(graph)),
      tip_(std::move(tip)) {}

Flow Flow::Append(NodeDef def) const {
  Flow out = *this;
  if (!out.status_.ok()) return out;
  if (def.name.empty()) def.name = out.graph_.UniqueName(def.op);
  const std::string name = def.name;
  out.status_ = out.graph_.AddNode(std::move(def));
  if (out.status_.ok()) out.tip_ = name;
  return out;
}

Flow Flow::AppendAfterTip(NodeDef def) const {
  def.inputs = {tip_};
  return Append(std::move(def));
}

Flow Flow::TfRecord() const {
  NodeDef def;
  def.op = "tfrecord";
  return AppendAfterTip(std::move(def));
}

Flow Flow::Interleave(int cycle_length, int parallelism,
                      int block_length) const {
  NodeDef def;
  def.op = "interleave";
  def.attrs[kAttrCycleLength] = AttrValue(cycle_length);
  def.attrs[kAttrParallelism] = AttrValue(parallelism);
  def.attrs[kAttrBlockLength] = AttrValue(block_length);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Map(const std::string& udf, int parallelism,
               bool deterministic) const {
  NodeDef def;
  def.op = "map";
  def.attrs[kAttrUdf] = AttrValue(udf);
  def.attrs[kAttrParallelism] = AttrValue(parallelism);
  def.attrs[kAttrDeterministic] = AttrValue(deterministic);
  return AppendAfterTip(std::move(def));
}

Flow Flow::SequentialMap(const std::string& udf) const {
  NodeDef def;
  def.op = "map";
  def.attrs[kAttrUdf] = AttrValue(udf);
  def.attrs[kAttrParallelism] = AttrValue(1);
  def.attrs[kAttrTunable] = AttrValue(false);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Filter(const std::string& udf) const {
  NodeDef def;
  def.op = "filter";
  def.attrs[kAttrUdf] = AttrValue(udf);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Shuffle(int64_t buffer_size, int64_t seed) const {
  NodeDef def;
  def.op = "shuffle";
  def.attrs[kAttrBufferSize] = AttrValue(buffer_size);
  def.attrs[kAttrSeed] = AttrValue(seed);
  return AppendAfterTip(std::move(def));
}

Flow Flow::ShuffleAndRepeat(int64_t buffer_size, int64_t count,
                            int64_t seed) const {
  NodeDef def;
  def.op = "shuffle_and_repeat";
  def.attrs[kAttrBufferSize] = AttrValue(buffer_size);
  def.attrs[kAttrCount] = AttrValue(count);
  def.attrs[kAttrSeed] = AttrValue(seed);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Repeat(int64_t count) const {
  NodeDef def;
  def.op = "repeat";
  def.attrs[kAttrCount] = AttrValue(count);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Take(int64_t count) const {
  NodeDef def;
  def.op = "take";
  def.attrs[kAttrCount] = AttrValue(count);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Skip(int64_t count) const {
  NodeDef def;
  def.op = "skip";
  def.attrs[kAttrCount] = AttrValue(count);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Batch(int64_t batch_size, bool drop_remainder) const {
  NodeDef def;
  def.op = "batch";
  def.attrs[kAttrBatchSize] = AttrValue(batch_size);
  def.attrs[kAttrDropRemainder] = AttrValue(drop_remainder);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Prefetch(int64_t buffer_size) const {
  NodeDef def;
  def.op = "prefetch";
  def.attrs[kAttrBufferSize] = AttrValue(buffer_size);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Cache() const {
  NodeDef def;
  def.op = "cache";
  return AppendAfterTip(std::move(def));
}

Flow Flow::MapAndBatch(const std::string& udf, int64_t batch_size,
                       int parallelism, bool drop_remainder) const {
  NodeDef def;
  def.op = "map_and_batch";
  def.attrs[kAttrUdf] = AttrValue(udf);
  def.attrs[kAttrBatchSize] = AttrValue(batch_size);
  def.attrs[kAttrParallelism] = AttrValue(static_cast<int64_t>(parallelism));
  def.attrs[kAttrDropRemainder] = AttrValue(drop_remainder);
  return AppendAfterTip(std::move(def));
}

Flow Flow::Combine(const std::string& op, const std::vector<Flow>& inputs) {
  Flow out;
  if (inputs.size() < 2) {
    out.status_ = InvalidArgumentError(op + " needs at least two flows");
    return out;
  }
  out = inputs[0];
  if (!out.status_.ok()) return out;
  std::vector<std::string> tips = {out.tip_};
  for (size_t i = 1; i < inputs.size(); ++i) {
    const Flow& in = inputs[i];
    if (!in.status_.ok()) {
      out.status_ = in.status_;
      return out;
    }
    if (in.state_ != out.state_) {
      out.status_ =
          InvalidArgumentError(op + ": flows belong to different sessions");
      return out;
    }
    std::map<std::string, std::string> rename;
    out.status_ = MergeGraph(&out.graph_, in.graph_, &rename);
    if (!out.status_.ok()) return out;
    auto it = rename.find(in.tip_);
    tips.push_back(it == rename.end() ? in.tip_ : it->second);
  }
  NodeDef def;
  def.op = op;
  def.inputs = std::move(tips);
  return out.Append(std::move(def));
}

Flow Flow::Zip(const std::vector<Flow>& inputs) {
  return Combine("zip", inputs);
}

Flow Flow::Concatenate(const std::vector<Flow>& inputs) {
  return Combine("concatenate", inputs);
}

Flow Flow::Named(const std::string& name) const {
  Flow out = *this;
  if (!out.status_.ok()) return out;
  if (name.empty()) {
    out.status_ = InvalidArgumentError("Named: empty name");
    return out;
  }
  if (name == out.tip_) return out;
  if (out.graph_.FindNode(name) != nullptr) {
    out.status_ = InvalidArgumentError("Named: name already in use: " + name);
    return out;
  }
  // The tip is always the most recently appended node, so nothing in
  // this flow's graph references it yet.
  out.graph_.MutableNode(out.tip_)->name = name;
  out.tip_ = name;
  return out;
}

StatusOr<GraphDef> Flow::Graph() const {
  RETURN_IF_ERROR(status_);
  if (state_ == nullptr) {
    return FailedPreconditionError("Flow has no session");
  }
  GraphDef graph = graph_;
  graph.SetOutput(tip_);
  RETURN_IF_ERROR(graph.Validate());
  return graph;
}

JobHandle Flow::Submit(JobOptions options) const {
  auto graph_or = Graph();
  if (!graph_or.ok()) return JobHandle(graph_or.status());
  runtime::JobPtr job = internal::GetExecutor(*state_).Submit(
      std::move(graph_or).value(), std::move(options));
  return JobHandle(state_, std::move(job));
}

StatusOr<RunReport> Flow::Run(const RunOptions& options) const {
  // Sugar over the async job API: one submission, blocked on. The
  // executor's driver reproduces the classic inline sequence (warmup
  // window on the same iterator tree, stats reset, measured window),
  // and a job running alone is never arbitrated, so the report and the
  // produced elements match the pre-executor blocking path.
  JobOptions jopts;
  jopts.run = options;
  return Submit(std::move(jopts)).Wait();
}

OptimizedFlow Flow::MakeOptimizedFlow(
    std::shared_ptr<internal::SessionState> state, OptimizeResult result) {
  OptimizedFlow out;
  out.flow = Flow(std::move(state), result.graph, result.graph.output());
  out.plan = std::move(result.plan);
  out.cache = std::move(result.cache);
  out.prefetch = std::move(result.prefetch);
  out.traced_rate = result.traced_rate;
  out.pass_reports = std::move(result.pass_reports);
  out.log = std::move(result.log);
  out.picked_variant = result.picked_variant;
  return out;
}

StatusOr<OptimizedFlow> Flow::Optimize(OptimizeOptions options) const {
  ASSIGN_OR_RETURN(GraphDef graph, Graph());
  internal::ApplyEnvironment(*state_, &options);
  PlumberOptimizer optimizer(std::move(options));
  ASSIGN_OR_RETURN(OptimizeResult result, optimizer.Optimize(graph));
  return MakeOptimizedFlow(state_, std::move(result));
}

StatusOr<OptimizedFlow> Flow::OptimizeWith(const std::string& schedule,
                                           OptimizeOptions options) const {
  // An explicitly passed empty schedule means "run no passes" (trace
  // only), not "fall back to the legacy-knob derivation" — callers
  // sweeping schedule strings expect "" to be the no-op baseline.
  options.schedule = schedule.empty() ? "none" : schedule;
  return Optimize(std::move(options));
}

StatusOr<TraceSnapshot> Flow::Trace(double trace_seconds) const {
  ASSIGN_OR_RETURN(GraphDef graph, Graph());
  ASSIGN_OR_RETURN(auto pipeline,
                   Pipeline::Create(std::move(graph),
                                    internal::MakePipelineOptions(*state_)));
  TraceOptions topts;
  topts.trace_seconds = trace_seconds;
  topts.machine = state_->options.machine;
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  return trace;
}

StatusOr<PipelineModel> Flow::Diagnose(double trace_seconds) const {
  ASSIGN_OR_RETURN(TraceSnapshot trace, Trace(trace_seconds));
  return PipelineModel::Build(trace, &state_->udfs);
}

}  // namespace plumber
