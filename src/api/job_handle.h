// JobHandle: the user-facing handle to one asynchronously submitted
// pipeline run (Session::Submit / Flow::Submit).
//
//   Session session;
//   Flow flow = session.Files("train/").Map("decode", 4).Batch(16);
//   JobOptions opts;
//   opts.run.max_seconds = 1;
//   JobHandle job = session.Submit(flow, opts);   // returns immediately
//   ... submit more jobs; the executor arbitrates the machine ...
//   JobProgress live = job.Progress();            // live node stats
//   auto report = job.Wait();                     // final RunReport
//
// A handle is a cheap copyable reference: it shares ownership of both
// the job record and the session environment, so it remains fully
// usable (Wait, Progress, Cancel) after the Session object itself is
// gone. Dropping every handle does not cancel the job — it keeps
// running to completion under the session's executor (fire and
// forget); Cancel is always explicit.
#pragma once

#include <memory>
#include <string>

#include "src/api/flow.h"
#include "src/runtime/job.h"

namespace plumber {

class Session;

// Api-level aliases for the runtime vocabulary (JobOptions is aliased
// in flow.h next to Flow::Submit).
using JobPhase = runtime::JobPhase;
using JobProgress = runtime::JobProgress;
using SloClass = runtime::SloClass;

class JobHandle {
 public:
  // An empty handle; Wait/Progress report FailedPrecondition. Real
  // handles come from Session::Submit / Flow::Submit.
  JobHandle() = default;

  bool valid() const { return job_ != nullptr; }
  // Submit-time error (e.g. an invalid flow), surfaced by Wait too.
  const Status& status() const { return status_; }
  // The job's label ("job-<id>" unless JobOptions named it).
  const std::string& name() const;
  JobPhase phase() const;

  // Requests cooperative cancellation (idempotent; safe in any phase).
  // The job finishes as kCancelled with its partial counts standing.
  void Cancel() const;

  // Blocks until the job finishes and assembles the final RunReport —
  // the same report the blocking Flow::Run returns, plus
  // queue_seconds. Instantiation failures and pre-admission cancels
  // come back as the error status itself.
  StatusOr<RunReport> Wait() const;

  // Live snapshot: phase, driver counters, and per-node IteratorStats
  // of the running pipeline (the final stats once finished).
  JobProgress Progress() const;

 private:
  friend class Flow;
  friend class Session;

  JobHandle(std::shared_ptr<internal::SessionState> state,
            runtime::JobPtr job)
      : state_(std::move(state)), job_(std::move(job)) {}
  explicit JobHandle(Status status) : status_(std::move(status)) {}

  // Keeps the environment (filesystem, UDFs, executor) alive for as
  // long as anyone can still observe the job.
  std::shared_ptr<internal::SessionState> state_;
  runtime::JobPtr job_;
  Status status_;
};

}  // namespace plumber
