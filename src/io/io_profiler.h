// fio-equivalent I/O profiler.
//
// Measures achievable read bandwidth of a SimFilesystem-backed training
// directory at several parallelism levels and fits the piecewise-linear
// parallelism->bandwidth curve the LP consumes (paper §4.3/§4.4: "which
// Plumber measures by profiling the training directory using fio").
#pragma once

#include <string>
#include <vector>

#include "src/io/piecewise_linear.h"
#include "src/io/sim_filesystem.h"

namespace plumber {

struct IoProfileOptions {
  // Parallelism levels to probe. Empty = {1, 2, 4, 8, 16}.
  std::vector<int> parallelism_levels;
  // Wall-clock budget per probe.
  double seconds_per_probe = 0.05;
  // Read chunk size per call.
  uint64_t chunk_bytes = 1 << 16;
};

struct IoProfileResult {
  PiecewiseLinear parallelism_to_bandwidth;  // bytes/sec
  double max_bandwidth = 0;                  // bytes/sec
  double min_parallelism_for_max = 1;        // knee of the curve
};

// Probes read bandwidth over the files under `prefix`. The filesystem's
// device limits apply, so the result reflects per-stream caps.
IoProfileResult ProfileReadBandwidth(SimFilesystem* fs,
                                     const std::string& prefix,
                                     const IoProfileOptions& options = {});

// Single-parallelism probe; returns bytes/sec.
double MeasureBandwidth(SimFilesystem* fs, const std::string& prefix,
                        int parallelism, double seconds, uint64_t chunk_bytes);

}  // namespace plumber
