#include "src/io/storage_device.h"

#include <chrono>
#include <thread>

#include "src/util/cpu_timer.h"

namespace plumber {

DeviceSpec DeviceSpec::Unlimited() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::Hdd() {
  DeviceSpec s;
  s.name = "hdd";
  s.max_bandwidth = 180e6;
  s.read_latency_s = 4e-3 / 1000;  // amortized seek cost per read
  return s;
}

DeviceSpec DeviceSpec::NvmeSsd() {
  DeviceSpec s;
  s.name = "nvme";
  s.max_bandwidth = 2e9;
  s.read_latency_s = 0;
  return s;
}

DeviceSpec DeviceSpec::CloudStorage(double aggregate, double per_stream) {
  DeviceSpec s;
  s.name = "cloud";
  s.max_bandwidth = aggregate;
  s.per_stream_bandwidth = per_stream;
  s.read_latency_s = 0;
  return s;
}

DeviceSpec DeviceSpec::TokenBucketLimit(double bytes_per_sec) {
  DeviceSpec s;
  s.name = "token_bucket";
  s.max_bandwidth = bytes_per_sec;
  return s;
}

ReadStream::ReadStream(StorageDevice* device) : device_(device) {
  if (device_->spec().per_stream_bandwidth > 0) {
    // Small burst (20ms of tokens) so short-lived probes measure the
    // sustained rate, not the bucket's initial fill.
    stream_bucket_ = std::make_unique<TokenBucket>(
        device_->spec().per_stream_bandwidth,
        device_->spec().per_stream_bandwidth * 0.02);
  }
}

void ReadStream::Charge(uint64_t bytes) {
  if (stream_bucket_) stream_bucket_->Acquire(static_cast<double>(bytes));
  device_->Charge(bytes);
}

StorageDevice::StorageDevice(DeviceSpec spec)
    : spec_(std::move(spec)),
      global_bucket_(spec_.max_bandwidth, spec_.max_bandwidth * 0.02) {}

std::unique_ptr<ReadStream> StorageDevice::OpenStream() {
  return std::make_unique<ReadStream>(this);
}

void StorageDevice::SetBandwidth(double bytes_per_sec) {
  spec_.max_bandwidth = bytes_per_sec;
  global_bucket_.SetRate(bytes_per_sec);
}

void StorageDevice::ResetCounters() {
  total_bytes_.store(0, std::memory_order_relaxed);
  total_reads_.store(0, std::memory_order_relaxed);
}

StorageDevice* ShardDevicePool::DeviceFor(int index) {
  if (index < 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  while (devices_.size() <= static_cast<size_t>(index)) {
    devices_.push_back(std::make_unique<StorageDevice>(spec_));
  }
  return devices_[static_cast<size_t>(index)].get();
}

int ShardDevicePool::num_devices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(devices_.size());
}

void StorageDevice::Charge(uint64_t bytes) {
  if (spec_.read_latency_s > 0) {
    BlockedRegion blocked;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec_.read_latency_s));
  }
  global_bucket_.Acquire(static_cast<double>(bytes));
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_reads_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace plumber
