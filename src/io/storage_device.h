// Simulated storage devices.
//
// A StorageDevice models the bandwidth behaviour the paper evaluates
// against: a device-wide bandwidth cap (HDD ~180MB/s, NVMe ~2GB/s, or a
// token-bucket-limited sweep), an optional per-stream cap (cloud object
// stores serve each connection at a fraction of aggregate bandwidth, so
// read parallelism matters), and a fixed per-read latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/io/token_bucket.h"

namespace plumber {

struct DeviceSpec {
  std::string name = "unlimited";
  // Aggregate bandwidth cap in bytes/sec; 0 = unlimited.
  double max_bandwidth = 0;
  // Per-stream bandwidth cap in bytes/sec; 0 = no per-stream cap.
  double per_stream_bandwidth = 0;
  // Fixed latency charged per read call, seconds.
  double read_latency_s = 0;

  static DeviceSpec Unlimited();
  static DeviceSpec Hdd();           // ~180 MB/s sequential
  static DeviceSpec NvmeSsd();       // ~2 GB/s
  static DeviceSpec CloudStorage(double aggregate, double per_stream);
  static DeviceSpec TokenBucketLimit(double bytes_per_sec);
};

// One logical read stream (e.g. one open file being read by one
// interleave worker). Owns the per-stream limiter.
class ReadStream {
 public:
  explicit ReadStream(class StorageDevice* device);

  // Blocks to charge `bytes` of I/O against both the per-stream and the
  // device-wide limiter, then accounts it.
  void Charge(uint64_t bytes);

 private:
  StorageDevice* device_;
  std::unique_ptr<TokenBucket> stream_bucket_;  // null if uncapped
};

class StorageDevice {
 public:
  explicit StorageDevice(DeviceSpec spec);

  std::unique_ptr<ReadStream> OpenStream();

  const DeviceSpec& spec() const { return spec_; }

  // Changes the aggregate bandwidth cap (token-bucket sweeps).
  void SetBandwidth(double bytes_per_sec);

  uint64_t total_bytes_read() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_reads() const {
    return total_reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

 private:
  friend class ReadStream;
  void Charge(uint64_t bytes);

  DeviceSpec spec_;
  TokenBucket global_bucket_;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_reads_{0};
};

// A lazily grown set of identical modeled devices, one per source
// shard: the ShardSourcesPass splits a source across N disks, and each
// shard must meter its reads against its *own* bandwidth cap (that is
// the whole point — N shards reach N x the single-device bandwidth).
// Thread-safe; devices live as long as the pool.
class ShardDevicePool {
 public:
  explicit ShardDevicePool(DeviceSpec spec) : spec_(std::move(spec)) {}

  // The device for shard `index` (>= 0), created on first use.
  StorageDevice* DeviceFor(int index);

  int num_devices() const;

 private:
  const DeviceSpec spec_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<StorageDevice>> devices_;
};

}  // namespace plumber
