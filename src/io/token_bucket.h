// Token-bucket rate limiter.
//
// The paper's disk microbenchmarks (§5.2) use a token-bucket bandwidth
// limiter patched into the TensorFlow filesystem layer; this is the
// equivalent standalone component. Acquire() blocks the calling thread
// (wall-clock sleep, no CPU burn) until enough tokens accumulate, so
// thread-CPU-time accounting correctly sees I/O waits as idle.
#pragma once

#include <cstdint>
#include <mutex>

namespace plumber {

class TokenBucket {
 public:
  // rate == 0 means unlimited. burst defaults to one second of tokens.
  explicit TokenBucket(double rate_tokens_per_sec, double burst_tokens = 0);

  // Blocks until `tokens` tokens are consumed. Thread-safe.
  void Acquire(double tokens);

  // Non-blocking variant; returns false if tokens are not available now.
  bool TryAcquire(double tokens);

  bool unlimited() const { return rate_ <= 0; }
  double rate() const { return rate_; }

  // Dynamically adjust the rate (used by bandwidth sweep benchmarks).
  void SetRate(double rate_tokens_per_sec);

 private:
  void RefillLocked(int64_t now_ns);

  std::mutex mu_;
  double rate_;
  double burst_;
  double available_;
  int64_t last_refill_ns_;
};

}  // namespace plumber
