// An in-memory simulated filesystem of record-structured files.
//
// Files are described by metadata (per-record payload sizes plus a seed)
// rather than materialized bytes: readers regenerate payload bytes
// deterministically on demand, while every read is charged against the
// attached StorageDevice and logged in the filesystem-wide ReadLog.
// The ReadLog is exactly the "system-wide map tracking filename to bytes
// used" that Plumber's cache-size estimator consumes (paper §4.4/App. A).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/io/storage_device.h"
#include "src/util/status.h"

namespace plumber {

// Framing overhead per record (length prefix + checksum), mimicking the
// TFRecord on-disk format (8-byte length + 4-byte masked crc x2).
inline constexpr uint64_t kRecordFramingBytes = 16;

struct SimFileMeta {
  std::string name;
  uint64_t seed = 0;
  std::vector<uint64_t> record_payload_sizes;
  // Total on-disk size: payloads + framing. Raw (record-less) files have
  // record_payload_sizes empty and raw_size set.
  uint64_t raw_size = 0;

  uint64_t TotalBytes() const;
  uint64_t NumRecords() const { return record_payload_sizes.size(); }
};

// Per-file read accounting; Plumber's tracer snapshots this.
struct FileReadEntry {
  uint64_t bytes_read = 0;
  uint64_t file_size = 0;
  bool fully_read = false;
};

class SimFilesystem;

// Sequential reader over a record file. Not thread-safe; each reader is
// owned by one worker.
class RecordReader {
 public:
  RecordReader(const SimFileMeta* meta, SimFilesystem* fs,
               std::unique_ptr<ReadStream> stream);

  // Reads the next record payload. Sets *end=true at end of file.
  Status ReadRecord(std::vector<uint8_t>* payload, bool* end);

  uint64_t records_read() const { return next_record_; }
  const std::string& filename() const { return meta_->name; }

 private:
  const SimFileMeta* meta_;
  SimFilesystem* fs_;
  std::unique_ptr<ReadStream> stream_;
  uint64_t next_record_ = 0;
};

// Sequential raw byte reader (used by the I/O profiler).
class RawReader {
 public:
  RawReader(const SimFileMeta* meta, SimFilesystem* fs,
            std::unique_ptr<ReadStream> stream);

  // Reads up to n bytes; returns bytes read (0 at EOF). Wraps around if
  // `loop` is set (for open-ended bandwidth probes).
  uint64_t Read(uint64_t n, bool loop = false);

 private:
  const SimFileMeta* meta_;
  SimFilesystem* fs_;
  std::unique_ptr<ReadStream> stream_;
  uint64_t offset_ = 0;
};

class SimFilesystem {
 public:
  // The filesystem does not own the device; pass nullptr for unlimited
  // I/O with no accounting against a device.
  explicit SimFilesystem(StorageDevice* device = nullptr);

  // Registers a record file whose payload sizes are drawn by the caller.
  Status CreateRecordFile(const std::string& name, uint64_t seed,
                          std::vector<uint64_t> record_payload_sizes);

  // Registers a raw file of `size` bytes.
  Status CreateRawFile(const std::string& name, uint64_t seed, uint64_t size);

  bool Exists(const std::string& name) const;
  StatusOr<uint64_t> FileSize(const std::string& name) const;
  const SimFileMeta* FindMeta(const std::string& name) const;

  // Lexicographically sorted names matching the prefix.
  std::vector<std::string> List(const std::string& prefix) const;

  StatusOr<std::unique_ptr<RecordReader>> OpenRecord(const std::string& name);
  // Opens a reader charged against `device` instead of the
  // filesystem's attached device (nullptr = unmetered). Sharded
  // sources use this to meter each shard against its own modeled disk.
  StatusOr<std::unique_ptr<RecordReader>> OpenRecord(const std::string& name,
                                                     StorageDevice* device);
  StatusOr<std::unique_ptr<RawReader>> OpenRaw(const std::string& name);

  StorageDevice* device() const { return device_; }
  void set_device(StorageDevice* device) { device_ = device; }

  // -- Read log (Plumber tracing hook) ------------------------------
  void RecordRead(const std::string& name, uint64_t bytes, bool fully_read);
  std::map<std::string, FileReadEntry> SnapshotReadLog() const;
  void ClearReadLog();
  uint64_t total_bytes_read() const;

  // Total size of every registered file (ground truth for tests).
  uint64_t TotalRegisteredBytes() const;
  size_t NumFiles() const;

 private:
  StorageDevice* device_;
  mutable std::mutex mu_;
  std::map<std::string, SimFileMeta> files_;
  std::map<std::string, FileReadEntry> read_log_;
  uint64_t total_bytes_read_ = 0;
};

}  // namespace plumber
