#include "src/io/piecewise_linear.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace plumber {

void PiecewiseLinear::AddPoint(double x, double y) {
  assert(xs_.empty() || x > xs_.back());
  xs_.push_back(x);
  ys_.push_back(y);
}

double PiecewiseLinear::Eval(double x) const {
  if (xs_.empty()) return 0;
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const size_t hi = it - xs_.begin();
  const size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinear::InverseMin(double y) const {
  if (xs_.empty()) return 0;
  if (ys_.front() >= y) return xs_.front();
  for (size_t i = 1; i < xs_.size(); ++i) {
    if (ys_[i] >= y) {
      // Interpolate within the segment [i-1, i].
      const double dy = ys_[i] - ys_[i - 1];
      if (dy <= 0) return xs_[i];
      const double t = (y - ys_[i - 1]) / dy;
      return xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
    }
  }
  return xs_.back();
}

double PiecewiseLinear::MaxY() const {
  double best = 0;
  for (double y : ys_) best = std::max(best, y);
  return best;
}

double PiecewiseLinear::SaturationX(double tolerance) const {
  return InverseMin((1.0 - tolerance) * MaxY());
}

std::string PiecewiseLinear::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < xs_.size(); ++i) {
    if (i) os << ", ";
    os << "(" << xs_[i] << ", " << ys_[i] << ")";
  }
  return os.str();
}

}  // namespace plumber
