#include "src/io/io_profiler.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "src/util/cpu_timer.h"
#include "src/util/logging.h"

namespace plumber {

double MeasureBandwidth(SimFilesystem* fs, const std::string& prefix,
                        int parallelism, double seconds,
                        uint64_t chunk_bytes) {
  const std::vector<std::string> files = fs->List(prefix);
  if (files.empty()) return 0;
  std::atomic<uint64_t> bytes{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(parallelism);
  const int64_t start = WallNanos();
  for (int t = 0; t < parallelism; ++t) {
    workers.emplace_back([&, t] {
      auto reader_or = fs->OpenRaw(files[t % files.size()]);
      if (!reader_or.ok()) return;
      auto reader = std::move(reader_or).value();
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t n = reader->Read(chunk_bytes, /*loop=*/true);
        if (n == 0) break;
        bytes.fetch_add(n, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed_s = (WallNanos() - start) * 1e-9;
  return elapsed_s > 0 ? bytes.load() / elapsed_s : 0;
}

IoProfileResult ProfileReadBandwidth(SimFilesystem* fs,
                                     const std::string& prefix,
                                     const IoProfileOptions& options) {
  std::vector<int> levels = options.parallelism_levels;
  if (levels.empty()) levels = {1, 2, 4, 8, 16};
  IoProfileResult result;
  for (int p : levels) {
    const double bw = MeasureBandwidth(fs, prefix, p,
                                       options.seconds_per_probe,
                                       options.chunk_bytes);
    result.parallelism_to_bandwidth.AddPoint(p, bw);
    PLOG(Debug) << "io_profile parallelism=" << p << " bw=" << bw / 1e6
                << " MB/s";
  }
  result.max_bandwidth = result.parallelism_to_bandwidth.MaxY();
  result.min_parallelism_for_max =
      result.parallelism_to_bandwidth.SaturationX();
  return result;
}

}  // namespace plumber
