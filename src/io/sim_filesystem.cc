#include "src/io/sim_filesystem.h"

#include <algorithm>

#include "src/util/busy_work.h"
#include "src/util/rng.h"

namespace plumber {

uint64_t SimFileMeta::TotalBytes() const {
  if (record_payload_sizes.empty()) return raw_size;
  uint64_t total = 0;
  for (uint64_t s : record_payload_sizes) total += s + kRecordFramingBytes;
  return total;
}

RecordReader::RecordReader(const SimFileMeta* meta, SimFilesystem* fs,
                           std::unique_ptr<ReadStream> stream)
    : meta_(meta), fs_(fs), stream_(std::move(stream)) {}

Status RecordReader::ReadRecord(std::vector<uint8_t>* payload, bool* end) {
  if (next_record_ >= meta_->NumRecords()) {
    *end = true;
    return OkStatus();
  }
  *end = false;
  const uint64_t payload_size = meta_->record_payload_sizes[next_record_];
  const uint64_t disk_bytes = payload_size + kRecordFramingBytes;
  if (stream_) stream_->Charge(disk_bytes);
  // Payload content is deterministic in (file seed, record index).
  FillDeterministicBytes(SplitMix64(meta_->seed ^ (next_record_ + 1)),
                         payload_size, payload);
  ++next_record_;
  fs_->RecordRead(meta_->name, disk_bytes,
                  /*fully_read=*/next_record_ == meta_->NumRecords());
  return OkStatus();
}

RawReader::RawReader(const SimFileMeta* meta, SimFilesystem* fs,
                     std::unique_ptr<ReadStream> stream)
    : meta_(meta), fs_(fs), stream_(std::move(stream)) {}

uint64_t RawReader::Read(uint64_t n, bool loop) {
  const uint64_t size = meta_->TotalBytes();
  if (offset_ >= size) {
    if (!loop) return 0;
    offset_ = 0;
  }
  const uint64_t take = std::min(n, size - offset_);
  if (stream_) stream_->Charge(take);
  offset_ += take;
  fs_->RecordRead(meta_->name, take, /*fully_read=*/offset_ >= size);
  return take;
}

SimFilesystem::SimFilesystem(StorageDevice* device) : device_(device) {}

Status SimFilesystem::CreateRecordFile(
    const std::string& name, uint64_t seed,
    std::vector<uint64_t> record_payload_sizes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(name)) {
    return AlreadyExistsError("file exists: " + name);
  }
  SimFileMeta meta;
  meta.name = name;
  meta.seed = seed;
  meta.record_payload_sizes = std::move(record_payload_sizes);
  files_.emplace(name, std::move(meta));
  return OkStatus();
}

Status SimFilesystem::CreateRawFile(const std::string& name, uint64_t seed,
                                    uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(name)) {
    return AlreadyExistsError("file exists: " + name);
  }
  SimFileMeta meta;
  meta.name = name;
  meta.seed = seed;
  meta.raw_size = size;
  files_.emplace(name, std::move(meta));
  return OkStatus();
}

bool SimFilesystem::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

StatusOr<uint64_t> SimFilesystem::FileSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return NotFoundError("no such file: " + name);
  return it->second.TotalBytes();
}

const SimFileMeta* SimFilesystem::FindMeta(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string> SimFilesystem::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

StatusOr<std::unique_ptr<RecordReader>> SimFilesystem::OpenRecord(
    const std::string& name) {
  return OpenRecord(name, device_);
}

StatusOr<std::unique_ptr<RecordReader>> SimFilesystem::OpenRecord(
    const std::string& name, StorageDevice* device) {
  const SimFileMeta* meta = FindMeta(name);
  if (meta == nullptr) return NotFoundError("no such file: " + name);
  std::unique_ptr<ReadStream> stream;
  if (device != nullptr) stream = device->OpenStream();
  return std::make_unique<RecordReader>(meta, this, std::move(stream));
}

StatusOr<std::unique_ptr<RawReader>> SimFilesystem::OpenRaw(
    const std::string& name) {
  const SimFileMeta* meta = FindMeta(name);
  if (meta == nullptr) return NotFoundError("no such file: " + name);
  std::unique_ptr<ReadStream> stream;
  if (device_ != nullptr) stream = device_->OpenStream();
  return std::make_unique<RawReader>(meta, this, std::move(stream));
}

void SimFilesystem::RecordRead(const std::string& name, uint64_t bytes,
                               bool fully_read) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = read_log_[name];
  entry.bytes_read += bytes;
  if (entry.file_size == 0) {
    auto it = files_.find(name);
    if (it != files_.end()) entry.file_size = it->second.TotalBytes();
  }
  entry.fully_read = entry.fully_read || fully_read;
  total_bytes_read_ += bytes;
}

std::map<std::string, FileReadEntry> SimFilesystem::SnapshotReadLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_log_;
}

void SimFilesystem::ClearReadLog() {
  std::lock_guard<std::mutex> lock(mu_);
  read_log_.clear();
  total_bytes_read_ = 0;
}

uint64_t SimFilesystem::total_bytes_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_read_;
}

uint64_t SimFilesystem::TotalRegisteredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, meta] : files_) total += meta.TotalBytes();
  return total;
}

size_t SimFilesystem::NumFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

}  // namespace plumber
