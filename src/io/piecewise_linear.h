// Monotone piecewise-linear curves.
//
// Plumber fits an empirical parallelism -> bandwidth curve for a data
// source and injects it into the optimizer to find the minimal read
// parallelism that reaches peak bandwidth (paper §4.3 "Disk").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace plumber {

class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  // Points must be added with strictly increasing x.
  void AddPoint(double x, double y);

  // Linear interpolation; clamps outside [x_front, x_back].
  double Eval(double x) const;

  // Smallest x with Eval(x) >= y, or the last x if y is unreachable.
  double InverseMin(double y) const;

  // Largest y over all points.
  double MaxY() const;

  // Smallest x achieving (1 - tolerance) * MaxY(): the "knee".
  double SaturationX(double tolerance = 0.05) const;

  size_t NumPoints() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  std::string ToString() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace plumber
