#include "src/io/token_bucket.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/util/cpu_timer.h"

namespace plumber {

TokenBucket::TokenBucket(double rate_tokens_per_sec, double burst_tokens)
    : rate_(rate_tokens_per_sec),
      burst_(burst_tokens > 0 ? burst_tokens : rate_tokens_per_sec),
      available_(burst_),
      last_refill_ns_(WallNanos()) {}

void TokenBucket::RefillLocked(int64_t now_ns) {
  const double elapsed_s = (now_ns - last_refill_ns_) * 1e-9;
  if (elapsed_s > 0) {
    available_ = std::min(burst_, available_ + elapsed_s * rate_);
    last_refill_ns_ = now_ns;
  }
}

void TokenBucket::Acquire(double tokens) {
  if (unlimited() || tokens <= 0) return;
  for (;;) {
    double wait_s = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      RefillLocked(WallNanos());
      // Requests larger than the burst capacity are granted once the
      // bucket is full, driving the balance negative ("debt"); the
      // long-run rate is conserved and no request can deadlock.
      const double grant_threshold = std::min(tokens, burst_ - 1e-9);
      if (available_ >= grant_threshold) {
        available_ -= tokens;
        return;
      }
      wait_s = (grant_threshold - available_) / rate_;
    }
    // Sleep outside the lock so other threads can make progress; cap
    // the sleep so rate changes take effect promptly. The wait is
    // declared blocked so CPU accounting excludes it.
    wait_s = std::min(wait_s, 0.05);
    BlockedRegion blocked;
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
  }
}

bool TokenBucket::TryAcquire(double tokens) {
  if (unlimited() || tokens <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(WallNanos());
  if (available_ >= tokens) {
    available_ -= tokens;
    return true;
  }
  return false;
}

void TokenBucket::SetRate(double rate_tokens_per_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(WallNanos());
  rate_ = rate_tokens_per_sec;
  // Keep a short (20ms) burst so sweeps measure sustained rates.
  burst_ = rate_tokens_per_sec > 0 ? rate_tokens_per_sec * 0.02 : burst_;
  available_ = std::min(available_, burst_);
}

}  // namespace plumber
