#include "src/tuners/autotune.h"

#include <algorithm>
#include <cmath>

#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"
#include "src/queueing/mm1k.h"

namespace plumber {
namespace {

int KnobParallelism(const std::map<std::string, int>& parallelism,
                    const NodeModel& node) {
  auto it = parallelism.find(node.name);
  if (it != parallelism.end()) return std::max(1, it->second);
  return std::max(1, node.parallelism);
}

}  // namespace

double AutotuneEstimateLatency(const PipelineModel& model,
                               const std::map<std::string, int>& parallelism,
                               const AutotuneOptions& options) {
  // Output latency = sum over nodes of (service time per element x
  // elements per minibatch / parallelism), where any node strictly
  // below an async boundary contributes only the M/M/1/k-empty
  // fraction of its latency (the buffer hides the rest). Crucially, no
  // term accounts for the shared CPU: parallelism divides latency
  // without bound.
  double latency = 0;
  for (const auto& node : model.nodes()) {
    if (node.completions == 0) continue;
    const int p = KnobParallelism(parallelism, node);
    double term = node.service_seconds * node.visit_ratio / p;
    // Count async boundaries on the path from this node to the root;
    // each boundary's buffer hides a further fraction of the latency.
    const NodeModel* current = &node;
    int guard = 0;
    while (current != nullptr && ++guard < 64) {
      const auto consumers = model.trace().graph.Consumers(current->name);
      if (consumers.empty()) break;
      const NodeModel* parent = model.Find(consumers[0]);
      if (parent == nullptr) break;
      const NodeDef* parent_def = model.trace().graph.FindNode(parent->name);
      if (parent->op == "prefetch") {
        const int k = std::max<int64_t>(
            1, parent_def->GetInt(kAttrBufferSize, 2));
        term = Mm1kOverlappedLatency(term, options.assumed_rho, k);
      } else if (parent->parallelizable &&
                 KnobParallelism(parallelism, *parent) > 1) {
        const int k = 2 * KnobParallelism(parallelism, *parent);
        term = Mm1kOverlappedLatency(term, options.assumed_rho, k);
      }
      current = parent;
    }
    latency += term;
  }
  return latency;
}

double AutotuneEstimateRate(const PipelineModel& model,
                            const AutotuneOptions& options) {
  const double latency = AutotuneEstimateLatency(model, {}, options);
  return latency > 0 ? 1.0 / latency : 0.0;
}

StatusOr<AutotuneResult> AutotuneConfiguration(
    const GraphDef& graph, const PipelineModel& traced_model,
    const AutotuneOptions& options) {
  AutotuneResult result;
  result.graph = graph;
  // Start every knob at 1 and hill-climb: each iteration takes the
  // single +1 move that most reduces modeled latency, stopping at a
  // plateau or when all knobs hit the per-knob cap.
  for (const std::string& node : rewriter::TunableNodes(graph)) {
    result.parallelism[node] = 1;
  }
  double latency =
      AutotuneEstimateLatency(traced_model, result.parallelism, options);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::string best_knob;
    double best_latency = latency;
    for (auto& [knob, value] : result.parallelism) {
      if (value >= options.max_parallelism) continue;
      ++value;
      const double candidate =
          AutotuneEstimateLatency(traced_model, result.parallelism, options);
      --value;
      if (candidate < best_latency) {
        best_latency = candidate;
        best_knob = knob;
      }
    }
    if (best_knob.empty() ||
        (latency - best_latency) < options.plateau_threshold * latency) {
      break;
    }
    ++result.parallelism[best_knob];
    latency = best_latency;
  }
  result.predicted_latency_seconds = latency;
  result.predicted_rate = latency > 0 ? 1.0 / latency : 0.0;
  for (const auto& [knob, value] : result.parallelism) {
    RETURN_IF_ERROR(rewriter::SetParallelism(&result.graph, knob, value));
  }
  RETURN_IF_ERROR(rewriter::EnsureRootPrefetch(&result.graph, 8));
  return result;
}

}  // namespace plumber
