// AUTOTUNE baseline (paper §2.2).
//
// tf.data's AUTOTUNE models each Iterator as an M/M/1/k queue: each
// node's processing time is normalized by its parallelism and
// input/output ratio, combined with children "input latencies" into an
// "output latency", which hill climbing then minimizes. Two properties
// the paper criticizes — and which this implementation deliberately
// reproduces — are:
//   1. resource-obliviousness: the latency model can be driven toward
//      zero by raising parallelism, so the implied throughput estimate
//      1/latency is unbounded (Fig. 7-9 "Estimated AUTOTUNE Rate"),
//   2. over-allocation: hill climbing keeps adding parallelism while
//      the modeled latency improves, so heavy UDF pipelines (RCNN)
//      oversubscribe the CPU.
#pragma once

#include <map>
#include <string>

#include "src/core/model.h"
#include "src/pipeline/graph_def.h"

namespace plumber {

struct AutotuneOptions {
  // Per-knob parallelism cap (the real implementation caps each knob at
  // the core count — a heuristic constraint, not a resource model).
  int max_parallelism = 16;
  // Hill climbing stops when the relative latency improvement of the
  // best single move falls below this plateau threshold.
  double plateau_threshold = 1e-3;
  int max_iterations = 512;
  // Assumed producer/consumer rate ratio for the M/M/1/k overlap term.
  double assumed_rho = 0.95;
};

struct AutotuneResult {
  GraphDef graph;  // input graph with chosen parallelism applied
  std::map<std::string, int> parallelism;
  double predicted_latency_seconds = 0;  // per minibatch
  double predicted_rate = 0;             // 1 / latency
};

// Expected per-minibatch output latency of the pipeline under the given
// parallelism assignment, from the traced model's per-element service
// times and visit ratios. Subtrees below an async boundary (prefetch /
// parallel stages) are discounted by the M/M/1/k empty probability.
double AutotuneEstimateLatency(const PipelineModel& model,
                               const std::map<std::string, int>& parallelism,
                               const AutotuneOptions& options = {});

// Estimate for the model's *current* parallelism settings — the
// "Estimated AUTOTUNE Rate" series of Fig. 7-9.
double AutotuneEstimateRate(const PipelineModel& model,
                            const AutotuneOptions& options = {});

// Full AUTOTUNE: hill-climb parallelism knobs against the latency model.
StatusOr<AutotuneResult> AutotuneConfiguration(
    const GraphDef& graph, const PipelineModel& traced_model,
    const AutotuneOptions& options = {});

}  // namespace plumber
