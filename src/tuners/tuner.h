// Tuner interfaces and baseline configurators (paper §5).
//
// The evaluation compares four policies:
//   Naive      — parallelism 1 everywhere (optionally with prefetching)
//   HEURISTIC  — every tunable set to the machine's core count
//   AUTOTUNE   — M/M/1/k output-latency model + hill climbing (autotune.h)
//   Plumber    — step tuner (rank by parallelism-scaled rates) and the
//                full LP optimizer (core/optimizer.h)
// plus an uninformed Random walk for Fig. 6.
#pragma once

#include <memory>
#include <string>

#include "src/core/model.h"
#include "src/pipeline/graph_def.h"
#include "src/util/rng.h"

namespace plumber {

// Context handed to step tuners each optimization step.
struct TunerContext {
  // Model built from the most recent trace of the current config; may
  // be null for tuners that do not need it (random walk).
  const PipelineModel* model = nullptr;
  MachineSpec machine;
  Rng* rng = nullptr;
};

// A tuner that improves the configuration one step at a time (the
// Fig. 6 sequential-tuning protocol).
class StepTuner {
 public:
  virtual ~StepTuner() = default;
  virtual std::string name() const = 0;
  // Returns the next configuration; returning the input unchanged means
  // the tuner has converged.
  virtual StatusOr<GraphDef> Step(const GraphDef& current,
                                  const TunerContext& context) = 0;
};

// Plumber's step tuner: parallelize the node with the lowest
// parallelism-scaled rate (paper §5.1).
std::unique_ptr<StepTuner> MakePlumberStepTuner();

// Uninformed baseline: +1 parallelism on a uniformly random tunable.
std::unique_ptr<StepTuner> MakeRandomWalkTuner();

// "Local" allocator for Fig. 7's baseline: like Plumber's step tuner
// but its *prediction* assigns all remaining cores to the current
// bottleneck (see autotune.h's estimators for the prediction side).
double LocalEstimateMaxRate(const PipelineModel& model);

// One-shot configurators.
GraphDef NaiveConfiguration(GraphDef graph, bool with_prefetch = true,
                            int prefetch_buffer = 2);
GraphDef HeuristicConfiguration(GraphDef graph, int num_cores);

}  // namespace plumber
