#include "src/tuners/tuner.h"

#include <algorithm>

#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

class PlumberStepTuner : public StepTuner {
 public:
  std::string name() const override { return "plumber"; }

  StatusOr<GraphDef> Step(const GraphDef& current,
                          const TunerContext& context) override {
    if (context.model == nullptr) {
      return FailedPreconditionError("plumber step tuner needs a model");
    }
    GraphDef next = current;
    for (const std::string& node : context.model->RankBottlenecks()) {
      ASSIGN_OR_RETURN(int parallelism,
                       rewriter::GetParallelism(next, node));
      if (parallelism >= context.machine.num_cores) continue;
      RETURN_IF_ERROR(
          rewriter::SetParallelism(&next, node, parallelism + 1));
      return next;
    }
    return next;  // converged: every tunable at the core limit
  }
};

class RandomWalkTuner : public StepTuner {
 public:
  std::string name() const override { return "random"; }

  StatusOr<GraphDef> Step(const GraphDef& current,
                          const TunerContext& context) override {
    if (context.rng == nullptr) {
      return FailedPreconditionError("random walk needs an rng");
    }
    GraphDef next = current;
    const std::vector<std::string> tunables = rewriter::TunableNodes(next);
    if (tunables.empty()) return next;
    const std::string& node =
        tunables[context.rng->UniformInt(tunables.size())];
    ASSIGN_OR_RETURN(int parallelism, rewriter::GetParallelism(next, node));
    if (parallelism < context.machine.num_cores) {
      RETURN_IF_ERROR(
          rewriter::SetParallelism(&next, node, parallelism + 1));
    }
    return next;
  }
};

}  // namespace

std::unique_ptr<StepTuner> MakePlumberStepTuner() {
  return std::make_unique<PlumberStepTuner>();
}

std::unique_ptr<StepTuner> MakeRandomWalkTuner() {
  return std::make_unique<RandomWalkTuner>();
}

double LocalEstimateMaxRate(const PipelineModel& model) {
  // Allocate every core not used by other stages to the current
  // bottleneck; predicted rate is the bottleneck's scaled capacity.
  // Oscillates as the bottleneck changes (paper §5.1).
  const auto ranking = model.RankBottlenecks();
  if (ranking.empty()) return model.observed_rate();
  const NodeModel* bottleneck = model.Find(ranking.front());
  double other_cores = 0;
  for (const auto& node : model.nodes()) {
    if (node.name != bottleneck->name) other_cores += node.observed_cores;
  }
  const double available =
      std::max(1.0, model.machine().num_cores - other_cores);
  return bottleneck->rate_per_core * available;
}

GraphDef NaiveConfiguration(GraphDef graph, bool with_prefetch,
                            int prefetch_buffer) {
  Status status = rewriter::SetAllParallelism(&graph, 1);
  (void)status;
  if (with_prefetch) {
    status = rewriter::EnsureRootPrefetch(&graph, prefetch_buffer);
    (void)status;
  }
  return graph;
}

GraphDef HeuristicConfiguration(GraphDef graph, int num_cores) {
  Status status =
      rewriter::SetAllParallelism(&graph, std::max(1, num_cores));
  (void)status;
  status = rewriter::EnsureRootPrefetch(&graph, std::max(2, num_cores / 4));
  (void)status;
  return graph;
}

}  // namespace plumber
