// The five MLPerf-style evaluation workloads (paper §5 "Workloads"),
// rebuilt as synthetic pipelines over the scaled datasets:
//
//   resnet18 / resnet50  ImageNet classification: interleave -> parse ->
//                        decode(6x) -> [cache point] -> shuffle+repeat ->
//                        random crop -> transpose -> batch. resnet50
//                        differs only in its (lower) model consumption
//                        cap. A fused decode+crop variant (cheaper CPU,
//                        uncacheable past parse) backs pick_best (§B).
//   resnet_linear        linear model over the ImageNet validation set;
//                        small enough that decoded images fit in memory.
//   rcnn                 COCO detection: one heavy randomized UDF with
//                        internal parallelism ~3 (the §5.1 hazard) plus
//                        a much cheaper map.
//   multibox_ssd         COCO detection: decode(6x) -> filter(~99% keep)
//                        -> random augment; cacheable after the filter.
//   transformer / gnmt   WMT text: many tiny ops; framework overhead
//                        dominates, model cap binds end-to-end.
//   transformer_small    Flax-style on-the-fly tokenize/pack with a
//                        sequential (non-tunable) pack stage; caching is
//                        the only way past it.
#pragma once

#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/pipeline/graph_def.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/udf.h"
#include "src/workloads/datagen.h"

namespace plumber {

struct Workload {
  std::string name;
  // Canonical program: minimal parallelism, prefetch hard-coded at the
  // root (the dataset authors' defaults, per §5.4 HEURISTIC setup).
  GraphDef graph;
  // Signature-equivalent variants for pick_best (empty if none);
  // variants[0] == graph.
  std::vector<GraphDef> variants;
  int batch_size = 32;
  // Model consumption cap for end-to-end runs (examples/sec on the
  // Setup C consumer); 0 = uncapped (microbenchmarks).
  double model_cap_examples_per_sec = 0;
  std::string dataset_prefix;
  // Storage device for Setup C end-to-end runs (cloud object store with
  // per-stream caps, scaled like the datasets). Microbenchmarks use an
  // unlimited device unless stated.
  DeviceSpec storage = DeviceSpec::Unlimited();

  // Seconds the consumer spends per batch at the model cap.
  double ModelStepSeconds() const {
    return model_cap_examples_per_sec > 0
               ? batch_size / model_cap_examples_per_sec
               : 0.0;
  }
};

// Registers every UDF used by the workloads (idempotent per registry).
Status RegisterWorkloadUdfs(UdfRegistry* udfs);

// Builds a workload by name: resnet18, resnet50, resnet_linear, rcnn,
// multibox_ssd, transformer, transformer_small, gnmt.
StatusOr<Workload> MakeWorkload(const std::string& name);

std::vector<std::string> AllWorkloadNames();

// One-call environment as a Session (the unified API): standard
// datasets + all workload UDFs, modeling `machine`; the overload with a
// DeviceSpec attaches an owned storage device to the filesystem.
Session MakeWorkloadSession(const MachineSpec& machine);
Session MakeWorkloadSession(const MachineSpec& machine,
                            const DeviceSpec& storage);

// Convenience: one-call environment = filesystem with standard datasets
// + registry with all UDFs (the pre-Session, hand-wired layer).
struct WorkloadEnv {
  SimFilesystem fs;
  UdfRegistry udfs;

  explicit WorkloadEnv(StorageDevice* device = nullptr);

  PipelineOptions MakePipelineOptions(double cpu_scale = 1.0,
                                      uint64_t memory_budget = 0);
};

}  // namespace plumber
