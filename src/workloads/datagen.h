// Synthetic dataset generation.
//
// Registers TFRecord-style files in a SimFilesystem with record-size
// distributions scaled down from the paper's datasets (ImageNet, COCO,
// WMT). All byte quantities in the repository share kByteScale and all
// cardinalities share kCountScale, so every ratio the analysis depends
// on (decode amplification, cache-fit decisions, I/O cost per
// minibatch) matches the full-size system while keeping experiment
// wall time tractable.
#pragma once

#include <cstdint>
#include <string>

#include "src/io/sim_filesystem.h"

namespace plumber {

// Record payload sizes are ~1/100 of the real datasets and element
// counts ~1/160; memory budgets in MachineSpec::Setup*(byte_scale) must
// use kMemoryScale = kByteScale * kCountScale.
inline constexpr double kByteScale = 0.01;
inline constexpr double kCountScale = 1.0 / 160.0;
inline constexpr double kMemoryScale = kByteScale * kCountScale;

struct RecordDatasetSpec {
  std::string prefix;       // file names: <prefix>00000, <prefix>00001, ...
  int num_files = 8;
  int records_per_file = 100;
  double mean_record_bytes = 1024;
  // Relative standard deviation of record sizes (normal, clamped > 16).
  double rel_stddev = 0.15;
  uint64_t seed = 1;
};

// Registers the files; fails if any already exist.
Status GenerateRecordDataset(SimFilesystem* fs, const RecordDatasetSpec& spec);

// Ground-truth total on-disk bytes for a registered prefix.
uint64_t DatasetBytes(const SimFilesystem& fs, const std::string& prefix);

// Ground-truth record count for a registered prefix.
uint64_t DatasetRecords(const SimFilesystem& fs, const std::string& prefix);

// Registers the standard evaluation datasets (paper App. D, scaled):
//   imagenet/train-   64 files x 120 records x ~1.1KB   (~148GB full)
//   imagenet/valid-    8 files x  60 records x ~1.1KB   (validation set)
//   coco/train-       16 files x  80 records x ~2.6KB   (~20GB full)
//   wmt17/train-       8 files x 300 records x ~45B     (~1.2GB full)
//   wmt16/train-       8 files x 400 records x ~55B     (~1.9GB full)
Status RegisterStandardDatasets(SimFilesystem* fs, uint64_t seed = 2022);

}  // namespace plumber
