#include "src/workloads/datagen.h"

#include <algorithm>
#include <cstdio>

#include "src/util/rng.h"

namespace plumber {

Status GenerateRecordDataset(SimFilesystem* fs,
                             const RecordDatasetSpec& spec) {
  if (spec.num_files <= 0 || spec.records_per_file <= 0) {
    return InvalidArgumentError("dataset must have files and records");
  }
  Rng rng(SplitMix64(spec.seed));
  for (int f = 0; f < spec.num_files; ++f) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%05d", f);
    std::vector<uint64_t> sizes;
    sizes.reserve(spec.records_per_file);
    for (int r = 0; r < spec.records_per_file; ++r) {
      const double s = rng.Normal(spec.mean_record_bytes,
                                  spec.rel_stddev * spec.mean_record_bytes);
      sizes.push_back(static_cast<uint64_t>(std::max(16.0, s)));
    }
    RETURN_IF_ERROR(fs->CreateRecordFile(
        spec.prefix + suffix, SplitMix64(spec.seed ^ (f + 1)),
        std::move(sizes)));
  }
  return OkStatus();
}

uint64_t DatasetBytes(const SimFilesystem& fs, const std::string& prefix) {
  uint64_t total = 0;
  for (const auto& name : fs.List(prefix)) {
    const SimFileMeta* meta = fs.FindMeta(name);
    if (meta != nullptr) total += meta->TotalBytes();
  }
  return total;
}

uint64_t DatasetRecords(const SimFilesystem& fs, const std::string& prefix) {
  uint64_t total = 0;
  for (const auto& name : fs.List(prefix)) {
    const SimFileMeta* meta = fs.FindMeta(name);
    if (meta != nullptr) total += meta->NumRecords();
  }
  return total;
}

Status RegisterStandardDatasets(SimFilesystem* fs, uint64_t seed) {
  RecordDatasetSpec imagenet;
  imagenet.prefix = "imagenet/train-";
  imagenet.num_files = 64;
  imagenet.records_per_file = 120;
  imagenet.mean_record_bytes = 1100;  // ~110KB * kByteScale
  imagenet.seed = seed ^ 0x11;
  RETURN_IF_ERROR(GenerateRecordDataset(fs, imagenet));

  RecordDatasetSpec imagenet_valid;
  imagenet_valid.prefix = "imagenet/valid-";
  imagenet_valid.num_files = 8;
  imagenet_valid.records_per_file = 60;
  imagenet_valid.mean_record_bytes = 1100;
  imagenet_valid.seed = seed ^ 0x12;
  RETURN_IF_ERROR(GenerateRecordDataset(fs, imagenet_valid));

  // 16 x 80 x 1000B = 1.28MB ~ the paper's 20GB COCO * kMemoryScale.
  // Keeping COCO on the same scale as RAM matters: decoded COCO (6x)
  // must fit in Setup C's scaled 300GB so MultiBoxSSD can cache after
  // filtering, as in §5.4.
  RecordDatasetSpec coco;
  coco.prefix = "coco/train-";
  coco.num_files = 16;
  coco.records_per_file = 80;
  coco.mean_record_bytes = 1000;
  coco.seed = seed ^ 0x13;
  RETURN_IF_ERROR(GenerateRecordDataset(fs, coco));

  RecordDatasetSpec wmt17;
  wmt17.prefix = "wmt17/train-";
  wmt17.num_files = 8;
  wmt17.records_per_file = 300;
  wmt17.mean_record_bytes = 45;
  wmt17.rel_stddev = 0.4;
  wmt17.seed = seed ^ 0x14;
  RETURN_IF_ERROR(GenerateRecordDataset(fs, wmt17));

  RecordDatasetSpec wmt16;
  wmt16.prefix = "wmt16/train-";
  wmt16.num_files = 8;
  wmt16.records_per_file = 400;
  wmt16.mean_record_bytes = 55;
  wmt16.rel_stddev = 0.4;
  wmt16.seed = seed ^ 0x15;
  return GenerateRecordDataset(fs, wmt16);
}

}  // namespace plumber
