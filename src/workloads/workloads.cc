#include "src/workloads/workloads.h"

#include "src/pipeline/graph_builder.h"

namespace plumber {
namespace {

// CPU costs are the paper's measured magnitudes scaled by ~1/5 (the
// same wall-time compression the datasets get via kCountScale); ratios
// between stages — which drive every tuning decision — are preserved.
// e.g. "decode" is 600us/element vs. the paper's ~3.1ms/image on
// Setup A (2.5 minibatches/s/core at batch 128).
Status RegisterUdfsImpl(UdfRegistry* udfs) {
  auto add = [&](UdfSpec spec) { return udfs->Register(std::move(spec)); };

  // --- ResNet / ImageNet ---
  UdfSpec parse;
  parse.name = "parse";
  parse.cost_ns_per_element = 40e3;
  RETURN_IF_ERROR(add(parse));

  UdfSpec decode;
  decode.name = "decode";
  decode.cost_ns_per_element = 600e3;
  decode.size_ratio = 6.0;  // JPEG decompression amplification
  RETURN_IF_ERROR(add(decode));

  UdfSpec crop;
  crop.name = "crop_flip";
  crop.cost_ns_per_element = 60e3;
  crop.size_ratio = 0.5;
  crop.accesses_random_seed = true;  // random augmentation
  RETURN_IF_ERROR(add(crop));

  UdfSpec fused;
  fused.name = "fused_decode_crop";
  fused.cost_ns_per_element = 620e3;  // cheaper than decode + crop
  fused.size_ratio = 3.0;
  fused.calls = {"crop_flip"};  // transitively random (paper Fig. 11)
  RETURN_IF_ERROR(add(fused));

  UdfSpec transpose;
  transpose.name = "transpose";
  transpose.cost_ns_per_element = 150e3;  // the second bottleneck (§5.1)
  RETURN_IF_ERROR(add(transpose));

  // --- RCNN / COCO ---
  UdfSpec rcnn_rand;
  rcnn_rand.name = "rcnn_random_aug";
  rcnn_rand.accesses_random_seed = true;
  RETURN_IF_ERROR(add(rcnn_rand));

  UdfSpec rcnn_heavy;
  rcnn_heavy.name = "rcnn_heavy";
  rcnn_heavy.cost_ns_per_element = 2500e3;
  rcnn_heavy.size_ratio = 4.0;
  // One logical call transparently uses ~3 cores (§5.1 hazard).
  rcnn_heavy.internal_parallelism = 3;
  rcnn_heavy.calls = {"rcnn_random_aug"};
  RETURN_IF_ERROR(add(rcnn_heavy));

  UdfSpec rcnn_light;
  rcnn_light.name = "rcnn_light";
  rcnn_light.cost_ns_per_element = 60e3;  // ~2 orders cheaper
  RETURN_IF_ERROR(add(rcnn_light));

  // --- MultiBoxSSD / COCO ---
  UdfSpec ssd_decode;
  ssd_decode.name = "ssd_decode";
  ssd_decode.cost_ns_per_element = 220e3;
  ssd_decode.size_ratio = 6.0;
  RETURN_IF_ERROR(add(ssd_decode));

  UdfSpec ssd_filter;
  ssd_filter.name = "ssd_is_valid";
  ssd_filter.cost_ns_per_element = 3e3;
  ssd_filter.keep_fraction = 0.99;  // filter reduces the dataset <1% (§5.3)
  RETURN_IF_ERROR(add(ssd_filter));

  UdfSpec ssd_augment;
  ssd_augment.name = "ssd_augment";
  ssd_augment.cost_ns_per_element = 70e3;
  ssd_augment.size_ratio = 0.5;
  ssd_augment.accesses_random_seed = true;
  RETURN_IF_ERROR(add(ssd_augment));

  // --- Transformer / WMT ---
  UdfSpec tokenize;
  tokenize.name = "tokenize";
  tokenize.cost_ns_per_element = 4e3;
  tokenize.size_ratio = 1.2;
  RETURN_IF_ERROR(add(tokenize));

  UdfSpec pack;
  pack.name = "pack";
  pack.cost_ns_per_element = 3e3;
  RETURN_IF_ERROR(add(pack));

  UdfSpec len_filter;
  len_filter.name = "len_filter";
  len_filter.cost_ns_per_element = 2e3;
  len_filter.keep_fraction = 0.95;
  RETURN_IF_ERROR(add(len_filter));

  // --- TransformerSmall (Flax, on-the-fly processing) ---
  // The Flax pipeline tokenizes and packs on the fly (§5.4); the
  // tokenizer dominates and parallelizes, the packer is sequential, so
  // tuners gain ~3-4x from parallelism while only caching (which skips
  // both) reaches peak.
  UdfSpec flax_tokenize;
  flax_tokenize.name = "flax_tokenize";
  flax_tokenize.cost_ns_per_element = 120e3;
  flax_tokenize.size_ratio = 1.3;
  RETURN_IF_ERROR(add(flax_tokenize));

  UdfSpec flax_pack;
  flax_pack.name = "flax_pack";
  flax_pack.cost_ns_per_element = 30e3;
  RETURN_IF_ERROR(add(flax_pack));

  // --- GNMT / WMT ---
  UdfSpec gnmt_tokenize;
  gnmt_tokenize.name = "gnmt_tokenize";
  gnmt_tokenize.cost_ns_per_element = 5e3;
  gnmt_tokenize.size_ratio = 1.2;
  return add(gnmt_tokenize);
}

GraphDef ResNetGraph(const std::string& prefix, bool fused, int batch) {
  GraphBuilder b;
  auto n = b.FileList("files", prefix);
  n = b.Interleave("interleave", n, /*cycle_length=*/8, /*parallelism=*/1);
  n = b.Map("parse", n, "parse");
  if (fused) {
    n = b.Map("fused_decode_crop", n, "fused_decode_crop");
  } else {
    n = b.Map("decode", n, "decode");
  }
  n = b.ShuffleAndRepeat("shuffle_repeat", n, /*buffer_size=*/256);
  if (!fused) n = b.Map("crop", n, "crop_flip");
  n = b.Map("transpose", n, "transpose");
  n = b.Batch("batch", n, batch);
  n = b.Prefetch("prefetch", n, 4);
  auto graph_or = b.Build(n);
  return std::move(graph_or).value();
}

GraphDef RcnnGraph(int batch) {
  GraphBuilder b;
  auto n = b.FileList("files", "coco/train-");
  n = b.Interleave("interleave", n, 8, 1);
  n = b.Map("heavy_udf", n, "rcnn_heavy");
  n = b.Map("light_udf", n, "rcnn_light");
  n = b.ShuffleAndRepeat("shuffle_repeat", n, 128);
  n = b.Batch("batch", n, batch);
  n = b.Prefetch("prefetch", n, 4);
  return std::move(b.Build(n)).value();
}

GraphDef SsdGraph(int batch) {
  GraphBuilder b;
  auto n = b.FileList("files", "coco/train-");
  n = b.Interleave("interleave", n, 8, 1);
  n = b.Map("decode", n, "ssd_decode");
  n = b.Filter("filter", n, "ssd_is_valid");
  n = b.ShuffleAndRepeat("shuffle_repeat", n, 256);
  n = b.Map("augment", n, "ssd_augment");
  n = b.Batch("batch", n, batch);
  n = b.Prefetch("prefetch", n, 4);
  return std::move(b.Build(n)).value();
}

GraphDef TransformerGraph(int batch) {
  GraphBuilder b;
  auto n = b.FileList("files", "wmt17/train-");
  n = b.Interleave("interleave", n, 4, 1);
  n = b.Map("tokenize", n, "tokenize");
  n = b.Map("pack", n, "pack");
  n = b.Filter("length_filter", n, "len_filter");
  n = b.ShuffleAndRepeat("shuffle_repeat", n, 1024);
  n = b.Batch("batch", n, batch);
  n = b.Prefetch("prefetch", n, 4);
  return std::move(b.Build(n)).value();
}

GraphDef TransformerSmallGraph(int batch) {
  GraphBuilder b;
  auto n = b.FileList("files", "wmt17/train-");
  n = b.Interleave("interleave", n, 4, 1);
  n = b.Map("flax_tokenize", n, "flax_tokenize");
  // Flax's packing is sequential: no parallelism knob exists, so the
  // only way past it is materializing its output.
  n = b.SequentialMap("flax_pack", n, "flax_pack");
  n = b.ShuffleAndRepeat("shuffle_repeat", n, 1024);
  n = b.Batch("batch", n, batch);
  n = b.Prefetch("prefetch", n, 4);
  return std::move(b.Build(n)).value();
}

GraphDef GnmtGraph(int batch) {
  GraphBuilder b;
  auto n = b.FileList("files", "wmt16/train-");
  n = b.Interleave("interleave", n, 4, 1);
  n = b.Map("tokenize", n, "gnmt_tokenize");
  n = b.ShuffleAndRepeat("shuffle_repeat", n, 4096);
  n = b.Batch("batch", n, batch);
  n = b.Prefetch("prefetch", n, 4);
  return std::move(b.Build(n)).value();
}

}  // namespace

Status RegisterWorkloadUdfs(UdfRegistry* udfs) {
  if (udfs->Find("parse") != nullptr) return OkStatus();  // already done
  return RegisterUdfsImpl(udfs);
}

StatusOr<Workload> MakeWorkload(const std::string& name) {
  Workload w;
  w.name = name;
  if (name == "resnet18" || name == "resnet50") {
    w.batch_size = 32;
    w.dataset_prefix = "imagenet/train-";
    w.graph = ResNetGraph(w.dataset_prefix, /*fused=*/false, w.batch_size);
    w.variants = {w.graph,
                  ResNetGraph(w.dataset_prefix, /*fused=*/true, w.batch_size)};
    // resnet50's heavier model consumes fewer examples/sec (the paper's
    // 8k images/s TPU bound, scaled): every tuner saturates it, so the
    // cap sits below the cloud-storage I/O bound and all tuners tie.
    w.model_cap_examples_per_sec = name == "resnet18" ? 48000 : 8600;
    // Cloud object store whose aggregate bandwidth bounds the uncached
    // pipeline below its CPU peak (the paper's 11k images/s source
    // bottleneck vs 14k images/s cached): ~10MB/s over ~35KB minibatches
    // is ~285 minibatches/s, under the ~380 mb/s CPU peak.
    w.storage = DeviceSpec::CloudStorage(10e6, 2.5e6);
  } else if (name == "resnet_linear") {
    w.batch_size = 32;
    w.dataset_prefix = "imagenet/valid-";
    w.graph = ResNetGraph(w.dataset_prefix, /*fused=*/false, w.batch_size);
    w.variants = {w.graph,
                  ResNetGraph(w.dataset_prefix, /*fused=*/true, w.batch_size)};
    w.model_cap_examples_per_sec = 60000;
    w.storage = DeviceSpec::CloudStorage(10e6, 2.5e6);
  } else if (name == "rcnn") {
    w.batch_size = 32;
    w.dataset_prefix = "coco/train-";
    w.graph = RcnnGraph(w.batch_size);
    w.model_cap_examples_per_sec = 12000;
    w.storage = DeviceSpec::CloudStorage(60e6, 6e6);
  } else if (name == "multibox_ssd") {
    w.batch_size = 32;
    w.dataset_prefix = "coco/train-";
    w.graph = SsdGraph(w.batch_size);
    w.model_cap_examples_per_sec = 30000;
    w.storage = DeviceSpec::CloudStorage(60e6, 6e6);
  } else if (name == "transformer") {
    w.batch_size = 128;
    w.dataset_prefix = "wmt17/train-";
    w.graph = TransformerGraph(w.batch_size);
    // The full Transformer model is slow enough that even the naive
    // pipeline outpaces it (paper Fig. 12: 859-860 mb/s for all four
    // tuners) — every configuration ties at the model cap.
    w.model_cap_examples_per_sec = 9000;
    w.storage = DeviceSpec::CloudStorage(30e6, 5e6);
  } else if (name == "transformer_small") {
    w.batch_size = 128;
    w.dataset_prefix = "wmt17/train-";
    w.graph = TransformerSmallGraph(w.batch_size);
    w.model_cap_examples_per_sec = 90000;
    w.storage = DeviceSpec::CloudStorage(30e6, 5e6);
  } else if (name == "gnmt") {
    w.batch_size = 128;
    w.dataset_prefix = "wmt16/train-";
    w.graph = GnmtGraph(w.batch_size);
    // Like Transformer: model-bound regardless of tuner (paper Fig. 12:
    // 5598-5606 mb/s across all four configurations).
    w.model_cap_examples_per_sec = 10500;
    w.storage = DeviceSpec::CloudStorage(30e6, 5e6);
  } else {
    return NotFoundError("unknown workload: " + name);
  }
  if (w.variants.empty()) w.variants = {w.graph};
  return w;
}

std::vector<std::string> AllWorkloadNames() {
  return {"resnet18",    "resnet50",          "resnet_linear",
          "rcnn",        "multibox_ssd",      "transformer",
          "transformer_small", "gnmt"};
}

Session MakeWorkloadSession(const MachineSpec& machine) {
  SessionOptions options;
  options.machine = machine;
  Session session(std::move(options));
  Status status = RegisterStandardDatasets(&session.fs());
  (void)status;
  status = RegisterWorkloadUdfs(&session.udfs());
  (void)status;
  return session;
}

Session MakeWorkloadSession(const MachineSpec& machine,
                            const DeviceSpec& storage) {
  Session session = MakeWorkloadSession(machine);
  session.AttachStorage(storage);
  return session;
}

WorkloadEnv::WorkloadEnv(StorageDevice* device) : fs(device) {
  Status status = RegisterStandardDatasets(&fs);
  (void)status;
  status = RegisterWorkloadUdfs(&udfs);
  (void)status;
}

PipelineOptions WorkloadEnv::MakePipelineOptions(double cpu_scale,
                                                 uint64_t memory_budget) {
  PipelineOptions options;
  options.fs = &fs;
  options.udfs = &udfs;
  options.cpu_scale = cpu_scale;
  options.memory_budget_bytes = memory_budget;
  return options;
}

}  // namespace plumber
