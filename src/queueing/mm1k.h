// M/M/1/k queue formulas.
//
// tf.data's AUTOTUNE represents each Iterator as an M/M/1/k queue
// (paper §2.2). These closed forms back our AUTOTUNE baseline: the
// probability a k-slot buffer is empty determines how much upstream
// latency a prefetch stage hides, and the blocking probability models
// producer stalls. As the paper notes, open-system formulas make
// throughput depend only on arrival rates — which is exactly why the
// AUTOTUNE estimator is unbounded; we reproduce that property.
#pragma once

namespace plumber {

// rho = lambda / mu (arrival rate over service rate); k = buffer slots.
// Probability the queue is empty (consumer must wait).
double Mm1kProbEmpty(double rho, int k);

// Probability the queue is full (producer blocks).
double Mm1kProbFull(double rho, int k);

// Expected number of items in the queue.
double Mm1kExpectedOccupancy(double rho, int k);

// Effective throughput of the station given arrival rate lambda:
// lambda * (1 - P_full).
double Mm1kThroughput(double lambda, double rho, int k);

// Expected consumer-visible latency contribution of a stage whose
// upstream produces with latency `upstream_latency` into a k-buffer:
// P_empty * upstream_latency (the consumer only waits when empty).
double Mm1kOverlappedLatency(double upstream_latency, double rho, int k);

}  // namespace plumber
