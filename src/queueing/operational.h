// Operational analysis primitives (Denning & Buzen 1978).
//
// Plumber models the input pipeline as a closed system under
// operational analysis: visit ratios convert per-operation completion
// counts into root units (minibatches), the utilization law relates
// throughput to per-resource demand, and the bottleneck law bounds
// system throughput by the slowest resource.
#pragma once

#include <vector>

namespace plumber {

// Visit ratio recurrence: V_i = (C_i / C_parent) * V_parent, V_root = 1.
// Returns 0 when the parent has no completions.
double VisitRatio(double completions, double parent_completions,
                  double parent_visit_ratio);

// Utilization law: U = X * D, where X is system throughput and D = V*S
// is the per-root-completion service demand at the resource.
double UtilizationLaw(double throughput, double service_demand);

// Bottleneck law: X <= 1 / max_i(D_i). Input: service demands in
// seconds of resource time per root completion.
double BottleneckBound(const std::vector<double>& service_demands);

// Interactive response-time law lower bound on latency for a closed
// system with N customers and think time Z: R >= max(D_total, N*D_max - Z).
double ResponseTimeBound(double total_demand, double max_demand,
                         int customers, double think_time);

}  // namespace plumber
