#include "src/queueing/operational.h"

#include <algorithm>

namespace plumber {

double VisitRatio(double completions, double parent_completions,
                  double parent_visit_ratio) {
  if (parent_completions <= 0) return 0;
  return (completions / parent_completions) * parent_visit_ratio;
}

double UtilizationLaw(double throughput, double service_demand) {
  return throughput * service_demand;
}

double BottleneckBound(const std::vector<double>& service_demands) {
  double max_demand = 0;
  for (double d : service_demands) max_demand = std::max(max_demand, d);
  if (max_demand <= 0) return 0;
  return 1.0 / max_demand;
}

double ResponseTimeBound(double total_demand, double max_demand,
                         int customers, double think_time) {
  return std::max(total_demand, customers * max_demand - think_time);
}

}  // namespace plumber
