#include "src/queueing/mm1k.h"

#include <cmath>

namespace plumber {
namespace {

// p_n = rho^n * (1 - rho) / (1 - rho^{k+1}) for rho != 1, else 1/(k+1).
double Mm1kProbN(double rho, int k, int n) {
  if (k < 1) k = 1;
  if (n < 0 || n > k) return 0;
  if (std::abs(rho - 1.0) < 1e-12) return 1.0 / (k + 1);
  return std::pow(rho, n) * (1.0 - rho) / (1.0 - std::pow(rho, k + 1));
}

}  // namespace

double Mm1kProbEmpty(double rho, int k) {
  if (rho <= 0) return 1.0;
  return Mm1kProbN(rho, k, 0);
}

double Mm1kProbFull(double rho, int k) {
  if (rho <= 0) return 0.0;
  return Mm1kProbN(rho, k, k);
}

double Mm1kExpectedOccupancy(double rho, int k) {
  double total = 0;
  for (int n = 1; n <= k; ++n) total += n * Mm1kProbN(rho, k, n);
  return total;
}

double Mm1kThroughput(double lambda, double rho, int k) {
  return lambda * (1.0 - Mm1kProbFull(rho, k));
}

double Mm1kOverlappedLatency(double upstream_latency, double rho, int k) {
  return Mm1kProbEmpty(rho, k) * upstream_latency;
}

}  // namespace plumber
