// Machine resource descriptions (paper §5 "Hardware").
//
// The analysis only needs core count, memory capacity, a CPU speed
// scale, and the storage device behind the training data. The three
// evaluation setups are provided as presets; byte-denominated fields
// are scaled by the same factor the synthetic datasets use (see
// workloads/datagen.h) so every ratio the paper reports is preserved.
#pragma once

#include <cstdint>
#include <string>

#include "src/io/storage_device.h"
#include "src/net/network_device.h"

namespace plumber {

struct MachineSpec {
  std::string name;
  int num_cores = 8;
  uint64_t memory_bytes = 1ULL << 30;
  // Multiplies UDF CPU cost: >1 means slower cores.
  double cpu_scale = 1.0;
  DeviceSpec storage = DeviceSpec::Unlimited();
  // Local scratch tier (SSD) for disk-tier cache materialization
  // (paper §4.1 extensions). Disabled until both a bandwidth and a
  // capacity are set: scratch_bytes = 0 or scratch.max_bandwidth = 0
  // means there is no disk tier and CachePlacementPass only considers
  // DRAM.
  DeviceSpec scratch = DeviceSpec::Unlimited();
  uint64_t scratch_bytes = 0;
  // Host NIC (src/net). Unlimited by default, so single-host machines
  // without a network model behave exactly as before; fleet hosts and
  // remote-read sessions set a real bandwidth/latency here.
  NicSpec nic = NicSpec::Unlimited();

  // Setup A: consumer-grade AMD 2700X, 16 cores, 32 GiB.
  static MachineSpec SetupA(double byte_scale = 1.0);
  // Setup B: enterprise Xeon E5-2698Bv3, 32 slower cores, 64 GiB.
  static MachineSpec SetupB(double byte_scale = 1.0);
  // Setup C: TPUv3-8 host, 96 cores, 300 GB, cloud storage.
  static MachineSpec SetupC(double byte_scale = 1.0);
};

inline MachineSpec MachineSpec::SetupA(double byte_scale) {
  MachineSpec m;
  m.name = "setup_a";
  m.num_cores = 16;
  m.memory_bytes = static_cast<uint64_t>(32.0 * (1ULL << 30) * byte_scale);
  m.cpu_scale = 1.0;
  return m;
}

inline MachineSpec MachineSpec::SetupB(double byte_scale) {
  MachineSpec m;
  m.name = "setup_b";
  m.num_cores = 32;
  m.memory_bytes = static_cast<uint64_t>(64.0 * (1ULL << 30) * byte_scale);
  // Older 2GHz cores: lower per-core decode rate (paper: B's per-core
  // rates are lower, 2x cores only buys ~1.2x throughput).
  m.cpu_scale = 1.65;
  return m;
}

inline MachineSpec MachineSpec::SetupC(double byte_scale) {
  MachineSpec m;
  m.name = "setup_c";
  m.num_cores = 96;
  m.memory_bytes = static_cast<uint64_t>(300e9 * byte_scale);
  m.cpu_scale = 1.0;
  return m;
}

}  // namespace plumber
