#include "src/core/rewriter.h"

#include <algorithm>
#include <set>
#include <string>

#include "src/pipeline/ops.h"

namespace plumber {
namespace rewriter {

StatusOr<int> GetParallelism(const GraphDef& graph, const std::string& node) {
  const NodeDef* def = graph.FindNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  if (!OpSupportsParallelism(def->op)) {
    return FailedPreconditionError(node + " has no parallelism knob");
  }
  return static_cast<int>(def->GetInt(kAttrParallelism, 1));
}

Status SetParallelism(GraphDef* graph, const std::string& node,
                      int parallelism) {
  NodeDef* def = graph->MutableNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  if (!OpSupportsParallelism(def->op) || !def->GetBool(kAttrTunable, true)) {
    return FailedPreconditionError(node + " has no parallelism knob");
  }
  if (parallelism < 1) return InvalidArgumentError("parallelism < 1");
  def->attrs[kAttrParallelism] = AttrValue(parallelism);
  return OkStatus();
}

Status SetAllParallelism(GraphDef* graph, int parallelism) {
  for (const std::string& node : TunableNodes(*graph)) {
    RETURN_IF_ERROR(SetParallelism(graph, node, parallelism));
  }
  return OkStatus();
}

StatusOr<int> GetBufferSize(const GraphDef& graph, const std::string& node) {
  const NodeDef* def = graph.FindNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  return static_cast<int>(def->GetInt(kAttrBufferSize, 0));
}

Status SetBufferSize(GraphDef* graph, const std::string& node, int size) {
  NodeDef* def = graph->MutableNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  if (size < 1) return InvalidArgumentError("buffer size < 1");
  def->attrs[kAttrBufferSize] = AttrValue(size);
  return OkStatus();
}

StatusOr<std::string> InjectPrefetch(GraphDef* graph,
                                     const std::string& after, int buffer) {
  NodeDef node;
  node.name = graph->UniqueName(after + "_prefetch");
  node.op = "prefetch";
  node.attrs[kAttrBufferSize] = AttrValue(buffer);
  RETURN_IF_ERROR(graph->InsertAfter(after, node));
  return node.name;
}

StatusOr<std::string> InjectCache(GraphDef* graph, const std::string& after) {
  NodeDef node;
  node.name = graph->UniqueName(after + "_cache");
  node.op = "cache";
  RETURN_IF_ERROR(graph->InsertAfter(after, node));
  return node.name;
}

StatusOr<std::string> InjectCache(GraphDef* graph, const std::string& after,
                                  CacheTier tier) {
  if (tier == CacheTier::kNone) {
    return InvalidArgumentError("cache tier must be memory or disk");
  }
  if (tier == CacheTier::kMemory) {
    // No tier attr: the memory-tier rewrite is bit-identical to the
    // untiered overload (and to legacy CachePass output).
    return InjectCache(graph, after);
  }
  NodeDef node;
  node.name = graph->UniqueName(after + "_cache");
  node.op = "cache";
  node.attrs[kAttrCacheTier] = AttrValue("disk");
  RETURN_IF_ERROR(graph->InsertAfter(after, node));
  return node.name;
}

bool HasCacheOp(const GraphDef& graph) { return HasOp(graph, "cache"); }

StatusOr<std::string> ShardSource(GraphDef* graph, const std::string& reader,
                                  int shards) {
  if (shards < 2) return InvalidArgumentError("shard count must be >= 2");
  const NodeDef* reader_def = graph->FindNode(reader);
  if (reader_def == nullptr) return NotFoundError("no such node: " + reader);
  if ((reader_def->op != "tfrecord" && reader_def->op != "interleave") ||
      reader_def->inputs.size() != 1) {
    return FailedPreconditionError(reader +
                                   " is not a file-backed source reader");
  }
  const NodeDef* list_def = graph->FindNode(reader_def->inputs[0]);
  if (list_def == nullptr || list_def->op != "file_list") {
    return FailedPreconditionError(reader + " does not read from a file_list");
  }
  if (reader_def->HasAttr(kAttrShardCount) ||
      list_def->HasAttr(kAttrShardCount)) {
    return FailedPreconditionError(reader + " is already sharded");
  }
  // Copy before mutating: AddNode may reallocate the node vector.
  const NodeDef reader_copy = *reader_def;
  const NodeDef list_copy = *list_def;

  std::vector<std::string> shard_readers;
  for (int i = 0; i < shards; ++i) {
    NodeDef list_shard = list_copy;
    list_shard.name =
        graph->UniqueName(list_copy.name + "_shard" + std::to_string(i));
    list_shard.attrs[kAttrShardIndex] = AttrValue(i);
    list_shard.attrs[kAttrShardCount] = AttrValue(shards);
    RETURN_IF_ERROR(graph->AddNode(list_shard));

    NodeDef reader_shard = reader_copy;
    reader_shard.name =
        graph->UniqueName(reader_copy.name + "_shard" + std::to_string(i));
    reader_shard.inputs = {list_shard.name};
    reader_shard.attrs[kAttrShardIndex] = AttrValue(i);
    reader_shard.attrs[kAttrShardCount] = AttrValue(shards);
    RETURN_IF_ERROR(graph->AddNode(reader_shard));
    shard_readers.push_back(reader_shard.name);
  }

  NodeDef merge;
  merge.name = graph->UniqueName(reader + "_merge");
  merge.op = "shard_merge";
  merge.inputs = shard_readers;
  RETURN_IF_ERROR(graph->AddNode(merge));

  for (const std::string& consumer : graph->Consumers(reader)) {
    NodeDef* def = graph->MutableNode(consumer);
    for (std::string& input : def->inputs) {
      if (input == reader) input = merge.name;
    }
  }
  if (graph->output() == reader) graph->SetOutput(merge.name);

  // The original reader and its file_list are orphans now; RemoveNode
  // only handles single-input pass-throughs, so erase them directly.
  auto& nodes = graph->mutable_nodes();
  nodes.erase(std::remove_if(nodes.begin(), nodes.end(),
                             [&](const NodeDef& n) {
                               return n.name == reader ||
                                      n.name == list_copy.name;
                             }),
              nodes.end());
  RETURN_IF_ERROR(graph->Validate());
  return merge.name;
}

int GraphShardIndex(const GraphDef& graph) {
  int index = -1;
  for (const auto& node : graph.nodes()) {
    if (!node.HasAttr(kAttrShardIndex)) continue;
    const int shard = static_cast<int>(node.GetInt(kAttrShardIndex, -1));
    if (shard < 0) continue;
    if (index >= 0 && shard != index) return -1;  // multi-shard graph
    index = shard;
  }
  return index;
}

StatusOr<GraphDef> ExtractShard(const GraphDef& graph, int shard) {
  const NodeDef* merge = nullptr;
  for (const auto& node : graph.nodes()) {
    if (node.op != "shard_merge") continue;
    if (merge != nullptr) {
      return FailedPreconditionError("multiple shard_merge nodes");
    }
    merge = &node;
  }
  if (merge == nullptr) {
    return FailedPreconditionError("graph has no shard_merge node");
  }
  std::string kept;
  std::set<std::string> dropped = {merge->name};
  for (const std::string& input : merge->inputs) {
    const NodeDef* reader = graph.FindNode(input);
    if (reader == nullptr) return NotFoundError("no such node: " + input);
    if (static_cast<int>(reader->GetInt(kAttrShardIndex, -1)) == shard) {
      kept = reader->name;
      continue;
    }
    dropped.insert(reader->name);
    for (const std::string& child : reader->inputs) dropped.insert(child);
  }
  if (kept.empty()) {
    return NotFoundError("no shard with index " + std::to_string(shard));
  }
  GraphDef out;
  for (const auto& node : graph.nodes()) {
    if (dropped.count(node.name) > 0) continue;
    NodeDef copy = node;
    for (std::string& input : copy.inputs) {
      if (input == merge->name) input = kept;
    }
    RETURN_IF_ERROR(out.AddNode(std::move(copy)));
  }
  out.SetOutput(graph.output() == merge->name ? kept : graph.output());
  RETURN_IF_ERROR(out.Validate());
  return out;
}

Status EnsureRootPrefetch(GraphDef* graph, int buffer) {
  const NodeDef* root = graph->FindNode(graph->output());
  if (root == nullptr) return FailedPreconditionError("no output node");
  if (root->op == "prefetch") {
    return SetBufferSize(graph, root->name, buffer);
  }
  return InjectPrefetch(graph, root->name, buffer).status();
}

Status SetEngineBatchSize(GraphDef* graph, int batch) {
  if (batch < 1) return InvalidArgumentError("engine batch size < 1");
  NodeDef* root = graph->MutableNode(graph->output());
  if (root == nullptr) return FailedPreconditionError("no output node");
  // One recording per graph: clear stale attrs (e.g. on a node that was
  // the output before a later prefetch injection) before setting.
  for (NodeDef& node : graph->mutable_nodes()) {
    node.attrs.erase(kAttrEngineBatchSize);
  }
  root->attrs[kAttrEngineBatchSize] = AttrValue(batch);
  return OkStatus();
}

int GetEngineBatchSize(const GraphDef& graph) {
  return GraphEngineBatchSize(graph);
}

Status SetTracedRate(GraphDef* graph, const std::string& node, double rate) {
  if (rate <= 0) return InvalidArgumentError("traced rate must be positive");
  NodeDef* def = graph->MutableNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  def->attrs[kAttrTracedRate] = AttrValue(rate);
  return OkStatus();
}

double GetTracedRate(const GraphDef& graph, const std::string& node) {
  const NodeDef* def = graph.FindNode(node);
  return def == nullptr ? 0.0 : def->GetDouble(kAttrTracedRate, 0.0);
}

bool HasOp(const GraphDef& graph, const std::string& op) {
  for (const auto& node : graph.nodes()) {
    if (node.op == op) return true;
  }
  return false;
}

Status ApplyParallelismPlan(GraphDef* graph, const LpPlan& plan) {
  for (const auto& [node, parallelism] : plan.parallelism) {
    const NodeDef* def = graph->FindNode(node);
    // Nodes without a knob — or pinned non-tunable by the user — are
    // skipped, not errors: a plan entry for them must not abort the
    // whole rewrite and leave the graph untuned.
    if (def == nullptr || !OpSupportsParallelism(def->op) ||
        !def->GetBool(kAttrTunable, true)) {
      continue;
    }
    RETURN_IF_ERROR(SetParallelism(graph, node, parallelism));
  }
  return OkStatus();
}

std::vector<std::string> TunableNodes(const GraphDef& graph) {
  std::vector<std::string> out;
  for (const auto& node : graph.nodes()) {
    if (OpSupportsParallelism(node.op) && node.GetBool(kAttrTunable, true)) {
      out.push_back(node.name);
    }
  }
  return out;
}

}  // namespace rewriter
}  // namespace plumber
