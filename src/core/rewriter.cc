#include "src/core/rewriter.h"

#include <algorithm>

#include "src/pipeline/ops.h"

namespace plumber {
namespace rewriter {

StatusOr<int> GetParallelism(const GraphDef& graph, const std::string& node) {
  const NodeDef* def = graph.FindNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  if (!OpSupportsParallelism(def->op)) {
    return FailedPreconditionError(node + " has no parallelism knob");
  }
  return static_cast<int>(def->GetInt(kAttrParallelism, 1));
}

Status SetParallelism(GraphDef* graph, const std::string& node,
                      int parallelism) {
  NodeDef* def = graph->MutableNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  if (!OpSupportsParallelism(def->op) || !def->GetBool(kAttrTunable, true)) {
    return FailedPreconditionError(node + " has no parallelism knob");
  }
  if (parallelism < 1) return InvalidArgumentError("parallelism < 1");
  def->attrs[kAttrParallelism] = AttrValue(parallelism);
  return OkStatus();
}

Status SetAllParallelism(GraphDef* graph, int parallelism) {
  for (const std::string& node : TunableNodes(*graph)) {
    RETURN_IF_ERROR(SetParallelism(graph, node, parallelism));
  }
  return OkStatus();
}

StatusOr<int> GetBufferSize(const GraphDef& graph, const std::string& node) {
  const NodeDef* def = graph.FindNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  return static_cast<int>(def->GetInt(kAttrBufferSize, 0));
}

Status SetBufferSize(GraphDef* graph, const std::string& node, int size) {
  NodeDef* def = graph->MutableNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  if (size < 1) return InvalidArgumentError("buffer size < 1");
  def->attrs[kAttrBufferSize] = AttrValue(size);
  return OkStatus();
}

StatusOr<std::string> InjectPrefetch(GraphDef* graph,
                                     const std::string& after, int buffer) {
  NodeDef node;
  node.name = graph->UniqueName(after + "_prefetch");
  node.op = "prefetch";
  node.attrs[kAttrBufferSize] = AttrValue(buffer);
  RETURN_IF_ERROR(graph->InsertAfter(after, node));
  return node.name;
}

StatusOr<std::string> InjectCache(GraphDef* graph, const std::string& after) {
  NodeDef node;
  node.name = graph->UniqueName(after + "_cache");
  node.op = "cache";
  RETURN_IF_ERROR(graph->InsertAfter(after, node));
  return node.name;
}

Status EnsureRootPrefetch(GraphDef* graph, int buffer) {
  const NodeDef* root = graph->FindNode(graph->output());
  if (root == nullptr) return FailedPreconditionError("no output node");
  if (root->op == "prefetch") {
    return SetBufferSize(graph, root->name, buffer);
  }
  return InjectPrefetch(graph, root->name, buffer).status();
}

Status SetEngineBatchSize(GraphDef* graph, int batch) {
  if (batch < 1) return InvalidArgumentError("engine batch size < 1");
  NodeDef* root = graph->MutableNode(graph->output());
  if (root == nullptr) return FailedPreconditionError("no output node");
  // One recording per graph: clear stale attrs (e.g. on a node that was
  // the output before a later prefetch injection) before setting.
  for (NodeDef& node : graph->mutable_nodes()) {
    node.attrs.erase(kAttrEngineBatchSize);
  }
  root->attrs[kAttrEngineBatchSize] = AttrValue(batch);
  return OkStatus();
}

int GetEngineBatchSize(const GraphDef& graph) {
  return GraphEngineBatchSize(graph);
}

Status SetTracedRate(GraphDef* graph, const std::string& node, double rate) {
  if (rate <= 0) return InvalidArgumentError("traced rate must be positive");
  NodeDef* def = graph->MutableNode(node);
  if (def == nullptr) return NotFoundError("no such node: " + node);
  def->attrs[kAttrTracedRate] = AttrValue(rate);
  return OkStatus();
}

double GetTracedRate(const GraphDef& graph, const std::string& node) {
  const NodeDef* def = graph.FindNode(node);
  return def == nullptr ? 0.0 : def->GetDouble(kAttrTracedRate, 0.0);
}

bool HasOp(const GraphDef& graph, const std::string& op) {
  for (const auto& node : graph.nodes()) {
    if (node.op == op) return true;
  }
  return false;
}

Status ApplyParallelismPlan(GraphDef* graph, const LpPlan& plan) {
  for (const auto& [node, parallelism] : plan.parallelism) {
    const NodeDef* def = graph->FindNode(node);
    // Nodes without a knob — or pinned non-tunable by the user — are
    // skipped, not errors: a plan entry for them must not abort the
    // whole rewrite and leave the graph untuned.
    if (def == nullptr || !OpSupportsParallelism(def->op) ||
        !def->GetBool(kAttrTunable, true)) {
      continue;
    }
    RETURN_IF_ERROR(SetParallelism(graph, node, parallelism));
  }
  return OkStatus();
}

std::vector<std::string> TunableNodes(const GraphDef& graph) {
  std::vector<std::string> out;
  for (const auto& node : graph.nodes()) {
    if (OpSupportsParallelism(node.op) && node.GetBool(kAttrTunable, true)) {
      out.push_back(node.name);
    }
  }
  return out;
}

}  // namespace rewriter
}  // namespace plumber
