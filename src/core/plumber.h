// Umbrella header: the Plumber public API.
//
// Typical use (the "one line of code" experience, via Session + Flow):
//
//   plumber::Session session;
//   auto flow = session.Files("train/").Interleave(4).Map("decode")
//                   .ShuffleAndRepeat(128).Batch(32);
//   auto optimized = flow.Optimize();       // trace -> LP -> rewrite
//   auto report    = optimized->Run(opts);  // measured run
//
// Underneath sits the documented low-level layer — GraphBuilder,
// PipelineOptions, Pipeline::Create, RunIterator — for tooling that
// needs manual control; CaptureTrace + PipelineModel expose the
// per-Dataset resource-accounted rates directly.
#pragma once

#include "src/api/flow.h"
#include "src/api/job_handle.h"
#include "src/api/session.h"
#include "src/core/cache_tiers.h"
#include "src/core/multi_job_planner.h"
#include "src/core/machine.h"
#include "src/core/model.h"
#include "src/core/optimizer.h"
#include "src/core/passes/builtin_passes.h"
#include "src/core/passes/pass_registry.h"
#include "src/core/planner.h"
#include "src/core/provisioner.h"
#include "src/core/rewriter.h"
#include "src/core/roofline.h"
#include "src/core/tracer.h"
#include "src/pipeline/graph_builder.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/runner.h"
