// Umbrella header: the Plumber public API.
//
// Typical use (the "one line of code" experience):
//
//   plumber::PlumberOptimizer optimizer(options);
//   auto optimized = optimizer.Optimize(my_pipeline_graph);
//   auto pipeline  = plumber::Pipeline::Create(optimized->graph, popts);
//
// For interactive debugging, CaptureTrace + PipelineModel expose the
// per-Dataset resource-accounted rates directly.
#pragma once

#include "src/core/cache_tiers.h"
#include "src/core/machine.h"
#include "src/core/model.h"
#include "src/core/optimizer.h"
#include "src/core/planner.h"
#include "src/core/provisioner.h"
#include "src/core/rewriter.h"
#include "src/core/roofline.h"
#include "src/core/tracer.h"
#include "src/pipeline/graph_builder.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/runner.h"
