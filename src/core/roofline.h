// Roofline-style bound analysis for input pipelines.
//
// The paper's related-work section notes Plumber "generates similar
// plots [to Roofline] using Dataset and resource limits": each stage
// has a compute roof (all machine cores running the stage's
// resource-accounted rate) and the pipeline has an I/O roof (device
// bandwidth over bytes-per-minibatch). The achieved rate sits under the
// lower roof; the gap between achieved and the binding roof is the
// optimization headroom Plumber's passes go after.
#pragma once

#include <string>
#include <vector>

#include "src/core/model.h"

namespace plumber {

struct RooflinePoint {
  std::string name;
  std::string op;
  // Rate if the whole machine ran only this stage (minibatches/sec).
  double cpu_roof = 0;
  // Sequential stages cap at one core regardless of machine size.
  bool sequential = false;
  // Arithmetic-intensity analogue: minibatches per CPU core-second.
  double rate_per_core = 0;
  // Fraction of the trace window's total CPU the stage consumed.
  double cpu_share = 0;
};

struct RooflineReport {
  // Per-stage compute roofs, ascending (first = binding stage).
  std::vector<RooflinePoint> stages;
  // Pipeline-wide roofs and the observation.
  double io_roof = 0;        // disk bandwidth / bytes-per-minibatch; 0 = none
  double compute_roof = 0;   // min over stage cpu_roofs
  double achieved_rate = 0;  // observed during the trace
  // min(io_roof, compute_roof) when both exist.
  double binding_roof = 0;
  std::string binding_stage;  // stage name or "io"
  // achieved / binding_roof: 1.0 means the pipeline sits on the roof.
  double roof_fraction = 0;

  std::string ToString() const;
};

// Builds the roofline report from a traced model; `disk_bandwidth` = 0
// omits the I/O roof.
RooflineReport BuildRoofline(const PipelineModel& model,
                             double disk_bandwidth = 0);

}  // namespace plumber
