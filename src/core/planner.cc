#include "src/core/planner.h"

#include <algorithm>
#include <cmath>

#include "src/lp/simplex.h"

namespace plumber {
namespace {

// Encodes the max-min allocation as an explicit LP and solves it with
// simplex:  max t  s.t.  t - theta_i * R_i <= 0, sum theta <= cores,
// theta_seq <= 1, optional t <= disk_cap.
MaxMinSolution SolveWithSimplex(const std::vector<MaxMinStage>& stages,
                                double cores, double disk_cap) {
  LpProblem lp;
  const int t = lp.AddVariable("t", /*objective=*/1.0);
  std::vector<int> theta(stages.size(), -1);
  std::vector<std::pair<int, double>> budget;
  for (size_t i = 0; i < stages.size(); ++i) {
    const double upper = stages[i].sequential
                             ? 1.0
                             : std::numeric_limits<double>::infinity();
    theta[i] = lp.AddVariable("theta:" + stages[i].name, 0.0, upper);
    lp.AddConstraint({{t, 1.0}, {theta[i], -stages[i].rate_per_core}},
                     ConstraintSense::kLe, 0.0, "rate:" + stages[i].name);
    budget.push_back({theta[i], 1.0});
  }
  lp.AddConstraint(budget, ConstraintSense::kLe, cores, "cores");
  if (disk_cap >= 0) {
    lp.AddConstraint({{t, 1.0}}, ConstraintSense::kLe, disk_cap, "disk");
  }
  const LpSolution solution = SolveSimplex(lp);
  MaxMinSolution out;
  if (!solution.feasible || !solution.bounded) return out;
  out.throughput = solution.x[t];
  out.theta.resize(stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    out.theta[i] = solution.x[theta[i]];
    out.cores_used += out.theta[i];
  }
  out.core_limited = out.cores_used >= cores - 1e-6;
  double max_theta = -1;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (out.theta[i] > max_theta) {
      max_theta = out.theta[i];
      out.bottleneck = static_cast<int>(i);
    }
  }
  return out;
}

LpPlan PlanFromStages(const std::vector<MaxMinStage>& stages,
                      const PipelineModel& model,
                      const LpPlanOptions& options) {
  LpPlan plan;
  const double cores = model.machine().num_cores;

  const double disk_demand = model.DiskBytesPerMinibatch();
  if (options.disk_bandwidth > 0 && disk_demand > 0) {
    plan.disk_bound_rate = options.disk_bandwidth / disk_demand;
  }
  const double network_demand = model.NetworkBytesPerMinibatch();
  if (options.network_bandwidth > 0 && network_demand > 0) {
    plan.network_bound_rate = options.network_bandwidth / network_demand;
  }

  MaxMinSolution solution;
  if (options.use_simplex) {
    solution = SolveWithSimplex(stages, cores,
                                options.disk_bandwidth > 0 && disk_demand > 0
                                    ? plan.disk_bound_rate
                                    : -1.0);
  } else {
    solution = SolveMaxMin(stages, cores);
  }
  plan.cpu_bound_rate = options.use_simplex && plan.disk_bound_rate >= 0
                            ? SolveMaxMin(stages, cores).throughput
                            : solution.throughput;
  plan.cores_used = solution.cores_used;
  plan.core_limited = solution.core_limited;
  if (solution.bottleneck >= 0) {
    plan.bottleneck = stages[solution.bottleneck].name;
  }

  plan.predicted_rate = solution.throughput;
  if (plan.disk_bound_rate >= 0 &&
      plan.disk_bound_rate < plan.predicted_rate) {
    plan.predicted_rate = plan.disk_bound_rate;
    plan.disk_limited = true;
  }
  // The network cap applies after the disk cap; when the NIC is the
  // lower of the two it owns the bottleneck label.
  if (plan.network_bound_rate >= 0 &&
      plan.network_bound_rate < plan.predicted_rate) {
    plan.predicted_rate = plan.network_bound_rate;
    plan.network_limited = true;
    plan.disk_limited = false;
  }

  // Integer parallelism from fractional theta. Rounding every stage up
  // overcommits the LP's own core budget — theta 7.9 becomes 8 workers,
  // every near-zero stage becomes 1 more — so the extra threads contend
  // with the sequential stages and the consumer, and the "tuned"
  // pipeline can measure slower than its input. Grant floor(theta)
  // (min 1) to each parallelizable stage, then hand out any whole cores
  // the plan still has left by largest fractional remainder.
  double sequential_demand = 0;
  std::vector<std::pair<double, std::string>> remainders;
  int granted = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    plan.theta[stages[i].name] = solution.theta[i];
    const NodeModel* node = model.Find(stages[i].name);
    if (node == nullptr || !node->parallelizable) {
      sequential_demand += solution.theta[i];
      continue;
    }
    const double theta = solution.theta[i];
    const double whole = std::floor(theta + 1e-9);
    const int base = std::max<int>(1, static_cast<int>(whole));
    plan.parallelism[stages[i].name] = base;
    // A near-idle stage's minimum worker (theta < 1) is demand-free —
    // it mostly blocks — so it must not eat the budget ahead of the
    // bottleneck's fractional remainder.
    if (theta >= 1.0 - 1e-9) granted += base;
    const double frac = theta - whole;
    if (frac > 1e-6) remainders.emplace_back(frac, stages[i].name);
  }
  const int budget = std::max(
      1, static_cast<int>(std::floor(cores - sequential_demand + 1e-9)));
  std::sort(remainders.rbegin(), remainders.rend());
  for (const auto& [frac, name] : remainders) {
    if (granted >= budget) break;
    ++plan.parallelism[name];
    ++granted;
  }

  if (!options.io_curve.empty() && disk_demand > 0) {
    const double required_bw = plan.predicted_rate * disk_demand;
    plan.suggested_io_parallelism = std::max<int>(
        1,
        static_cast<int>(std::ceil(options.io_curve.InverseMin(required_bw))));
  }
  return plan;
}

}  // namespace

LpPlan PlanAllocation(const PipelineModel& model,
                      const LpPlanOptions& options) {
  LpPlan plan = PlanFromStages(model.LpStages(), model, options);
  // Stages excluded from the LP (behind a warm cache, or negligible
  // cost) must release any parallelism a previous pass granted them:
  // their threads do no useful work at steady state but still compete
  // for cores with the real bottleneck.
  for (const auto& node : model.nodes()) {
    if (!node.parallelizable) continue;
    if ((node.below_cache || node.negligible_cost) &&
        plan.parallelism.find(node.name) == plan.parallelism.end()) {
      plan.parallelism[node.name] = 1;
      plan.theta[node.name] = 0;
    }
  }
  return plan;
}

void ForEachCacheCandidate(const PipelineModel& model,
                           const std::function<void(const NodeModel&)>& fn) {
  for (const auto& node : model.nodes()) {
    if (!node.cacheable || node.materialized_bytes < 0) continue;
    fn(node);
  }
}

CacheDecision PlanCache(const PipelineModel& model,
                        const CachePlanOptions& options) {
  CacheDecision decision;
  const double budget = options.memory_bytes * options.safety_factor;
  // Candidates come root-first, so the first fitting one is closest to
  // the root (greedy-optimal on chains).
  ForEachCacheCandidate(model, [&](const NodeModel& node) {
    CacheCandidate candidate;
    candidate.node = node.name;
    candidate.materialized_bytes = node.materialized_bytes;
    candidate.fits = node.materialized_bytes <= budget;
    decision.candidates.push_back(candidate);
    if (candidate.fits && !decision.feasible) {
      decision.feasible = true;
      decision.node = node.name;
      decision.materialized_bytes = node.materialized_bytes;
    }
  });
  return decision;
}

double PredictedRateWithCacheAt(const PipelineModel& model,
                                const std::string& node,
                                const LpPlanOptions& lp_options) {
  // Free every stage at or upstream of `node`: breadth-first over the
  // input edges from the cache point.
  std::vector<std::string> frontier{node};
  std::vector<std::string> freed;
  while (!frontier.empty()) {
    const std::string current = frontier.back();
    frontier.pop_back();
    freed.push_back(current);
    const NodeModel* nm = model.Find(current);
    if (nm == nullptr) continue;
    for (const auto& input : nm->inputs) frontier.push_back(input);
  }
  std::vector<MaxMinStage> stages;
  for (MaxMinStage stage : model.LpStages()) {
    if (std::find(freed.begin(), freed.end(), stage.name) != freed.end()) {
      continue;
    }
    stages.push_back(std::move(stage));
  }
  LpPlanOptions opts = lp_options;
  // A cached pipeline no longer reads from storage or the network.
  opts.disk_bandwidth = 0;
  opts.network_bandwidth = 0;
  if (stages.empty()) {
    // Everything is free: rate is bounded elsewhere (consumer).
    return std::numeric_limits<double>::infinity();
  }
  return PlanFromStages(stages, model, opts).predicted_rate;
}

CacheDecision PlanCacheByEnumeration(const PipelineModel& model,
                                     const CachePlanOptions& cache_options,
                                     const LpPlanOptions& lp_options) {
  CacheDecision decision;
  const double budget =
      cache_options.memory_bytes * cache_options.safety_factor;
  double best_rate = -1;
  ForEachCacheCandidate(model, [&](const NodeModel& node) {
    CacheCandidate candidate;
    candidate.node = node.name;
    candidate.materialized_bytes = node.materialized_bytes;
    candidate.fits = node.materialized_bytes <= budget;
    decision.candidates.push_back(candidate);
    if (!candidate.fits) return;
    const double rate =
        PredictedRateWithCacheAt(model, node.name, lp_options);
    if (rate > best_rate) {
      best_rate = rate;
      decision.feasible = true;
      decision.node = node.name;
      decision.materialized_bytes = node.materialized_bytes;
    }
  });
  return decision;
}

PrefetchDecision PlanPrefetch(const PipelineModel& model) {
  PrefetchDecision decision;
  double used_cores = 0;
  for (const auto& node : model.nodes()) used_cores += node.observed_cores;
  const double total = std::max(1, model.machine().num_cores);
  decision.pipeline_idleness = std::clamp(1.0 - used_cores / total, 0.0, 1.0);
  bool has_root_prefetch = false;
  if (!model.nodes().empty() && model.nodes().front().op == "prefetch") {
    has_root_prefetch = true;
  }
  decision.inject_root = !has_root_prefetch;
  decision.root_buffer = std::clamp(
      static_cast<int>(std::ceil(decision.pipeline_idleness * total / 2)), 2,
      32);
  return decision;
}

}  // namespace plumber
