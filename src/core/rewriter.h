// Graph rewriting utilities (paper §B "Graph Rewrites").
//
// The three mechanisms the paper requires of a graph-rewriting utility:
// (1) get a node's performance parameter, (2) set a node's parallelism,
// (3) insert a new node after a selected node (caching, prefetching).
// All rewrites preserve the Dataset signature: the rewritten graph is a
// drop-in replacement for the original.
#pragma once

#include "src/core/planner.h"
#include "src/pipeline/graph_def.h"

namespace plumber {
namespace rewriter {

StatusOr<int> GetParallelism(const GraphDef& graph, const std::string& node);
Status SetParallelism(GraphDef* graph, const std::string& node,
                      int parallelism);

// Sets every tunable parallelism knob to `parallelism` (HEURISTIC).
Status SetAllParallelism(GraphDef* graph, int parallelism);

StatusOr<int> GetBufferSize(const GraphDef& graph, const std::string& node);
Status SetBufferSize(GraphDef* graph, const std::string& node, int size);

// Inserts a prefetch node after `after` with the given buffer size.
// Returns the new node's name.
StatusOr<std::string> InjectPrefetch(GraphDef* graph,
                                     const std::string& after, int buffer);

// Inserts a cache node after `after`. Returns the new node's name.
StatusOr<std::string> InjectCache(GraphDef* graph, const std::string& after);

// Ensures the graph root is a prefetch (injects one if missing).
Status EnsureRootPrefetch(GraphDef* graph, int buffer);

// Records the execution engine's batch size in the graph (attr on the
// output node; any previous recording is cleared), so the optimizer's
// batch decision travels with the program instead of living only in
// PipelineOptions. Pipeline::Create honors it whenever the options
// leave the knob unset; an explicit options value wins.
Status SetEngineBatchSize(GraphDef* graph, int batch);

// The graph-recorded engine batch size; 0 if none was recorded.
int GetEngineBatchSize(const GraphDef& graph);

// Records a traced per-core processing rate (minibatches/sec/core) on
// a node, so measured demand travels with the program the way the
// batch decision does. The optimizer stamps these after its final
// trace; the multi-job arbiter's DemandFromGraph reads them back.
Status SetTracedRate(GraphDef* graph, const std::string& node, double rate);

// The node's recorded traced rate; 0 when none was recorded.
double GetTracedRate(const GraphDef& graph, const std::string& node);

// True if any node of the given op kind exists.
bool HasOp(const GraphDef& graph, const std::string& op);

// Applies an LP plan's integer parallelism suggestions.
Status ApplyParallelismPlan(GraphDef* graph, const LpPlan& plan);

// Names of nodes with a tunable parallelism knob.
std::vector<std::string> TunableNodes(const GraphDef& graph);

}  // namespace rewriter
}  // namespace plumber
