// Graph rewriting utilities (paper §B "Graph Rewrites").
//
// The three mechanisms the paper requires of a graph-rewriting utility:
// (1) get a node's performance parameter, (2) set a node's parallelism,
// (3) insert a new node after a selected node (caching, prefetching).
// All rewrites preserve the Dataset signature: the rewritten graph is a
// drop-in replacement for the original.
#pragma once

#include "src/core/cache_tiers.h"
#include "src/core/planner.h"
#include "src/pipeline/graph_def.h"

namespace plumber {
namespace rewriter {

StatusOr<int> GetParallelism(const GraphDef& graph, const std::string& node);
Status SetParallelism(GraphDef* graph, const std::string& node,
                      int parallelism);

// Sets every tunable parallelism knob to `parallelism` (HEURISTIC).
Status SetAllParallelism(GraphDef* graph, int parallelism);

StatusOr<int> GetBufferSize(const GraphDef& graph, const std::string& node);
Status SetBufferSize(GraphDef* graph, const std::string& node, int size);

// Inserts a prefetch node after `after` with the given buffer size.
// Returns the new node's name.
StatusOr<std::string> InjectPrefetch(GraphDef* graph,
                                     const std::string& after, int buffer);

// Inserts a cache node after `after`. Returns the new node's name.
StatusOr<std::string> InjectCache(GraphDef* graph, const std::string& after);

// Tier-aware variant. kMemory emits a node identical to the overload
// above (no tier attr), so a memory-tier placement is bit-identical to
// the legacy CachePass rewrite; kDisk stamps kAttrCacheTier = "disk",
// which the execution layer serves through the machine's modeled
// scratch device. kNone is an error.
StatusOr<std::string> InjectCache(GraphDef* graph, const std::string& after,
                                  CacheTier tier);

// True if any cache node exists, regardless of tier. Passes that skip
// already-cached graphs must use this (not an op+attr match) so a
// disk-tier cache blocks a second memory-tier insertion and vice versa.
bool HasCacheOp(const GraphDef& graph);

// Splits the source subtree feeding `reader` (a tfrecord/interleave
// node over a file_list child) into `shards` clones, each stamped with
// kAttrShardIndex/kAttrShardCount so (a) its file_list keeps only its
// round-robin partition of the file list and (b) the execution layer
// reads it against its own modeled shard device (ShardDevicePool).
// The clones feed a new "shard_merge" node that replaces `reader` for
// all consumers (and the graph output). Returns the merge node's name.
StatusOr<std::string> ShardSource(GraphDef* graph, const std::string& reader,
                                  int shards);

// The unique kAttrShardIndex stamped across the graph's nodes — e.g.
// on a per-shard subgraph cut out by ExtractShard — or -1 when the
// graph is unsharded or holds several shards (a full ShardSource
// rewrite). FleetSession uses this to pin single-shard jobs to hosts.
int GraphShardIndex(const GraphDef& graph);

// Cuts the per-shard subgraph for `shard` out of a graph rewritten by
// ShardSource: keeps that shard's source chain, drops the shard_merge
// and the other shards, and rewires the merge's consumers to the kept
// reader. The result is a complete single-shard program a fleet host
// can run alone; GraphShardIndex on it returns `shard`.
StatusOr<GraphDef> ExtractShard(const GraphDef& graph, int shard);

// Ensures the graph root is a prefetch (injects one if missing).
Status EnsureRootPrefetch(GraphDef* graph, int buffer);

// Records the execution engine's batch size in the graph (attr on the
// output node; any previous recording is cleared), so the optimizer's
// batch decision travels with the program instead of living only in
// PipelineOptions. Pipeline::Create honors it whenever the options
// leave the knob unset; an explicit options value wins.
Status SetEngineBatchSize(GraphDef* graph, int batch);

// The graph-recorded engine batch size; 0 if none was recorded.
int GetEngineBatchSize(const GraphDef& graph);

// Records a traced per-core processing rate (minibatches/sec/core) on
// a node, so measured demand travels with the program the way the
// batch decision does. The optimizer stamps these after its final
// trace; the multi-job arbiter's DemandFromGraph reads them back.
Status SetTracedRate(GraphDef* graph, const std::string& node, double rate);

// The node's recorded traced rate; 0 when none was recorded.
double GetTracedRate(const GraphDef& graph, const std::string& node);

// True if any node of the given op kind exists.
bool HasOp(const GraphDef& graph, const std::string& op);

// Applies an LP plan's integer parallelism suggestions.
Status ApplyParallelismPlan(GraphDef* graph, const LpPlan& plan);

// Names of nodes with a tunable parallelism knob.
std::vector<std::string> TunableNodes(const GraphDef& graph);

}  // namespace rewriter
}  // namespace plumber
