// Resource provisioning for a target throughput (paper §4.1: "extending
// Plumber to perform optimal resource provisioning for matching a
// target throughput (e.g., to minimize cost)").
//
// The LP of §4.3 answers "how fast can this machine go"; provisioning
// inverts it: "what is the smallest machine that goes this fast". Both
// rest on the same resource-accounted rates: a stage with rate Ri
// minibatches/sec/core needs theta_i = target / Ri cores, sources need
// target * bytes-per-minibatch of read bandwidth, and a cache needs its
// materialized size in memory (and removes the demands of everything
// beneath it).
#pragma once

#include <string>
#include <vector>

#include "src/core/model.h"
#include "src/core/planner.h"

namespace plumber {

// One purchasable machine shape (e.g. a cloud instance type).
struct MachineOffer {
  std::string name;
  int num_cores = 0;
  uint64_t memory_bytes = 0;
  double disk_bandwidth = 0;  // bytes/sec aggregate read bandwidth
  double cost_per_hour = 0;   // any consistent currency
};

struct ProvisionRequest {
  // Required pipeline rate, minibatches/sec.
  double target_rate = 0;
  // Consider plans that insert a cache (more memory, fewer cores/IO).
  bool allow_cache = true;
  // Headroom multiplier applied to every computed demand (>= 1).
  double headroom = 1.0;
};

// Minimal resource demands to sustain the target on an abstract machine.
struct ProvisionPlan {
  bool feasible = false;
  // Why the plan is infeasible at any core count (e.g. a sequential
  // stage slower than the target with no cache above it).
  std::string infeasible_reason;

  double cores_needed = 0;
  double disk_bandwidth_needed = 0;  // bytes/sec
  uint64_t memory_needed = 0;        // cache materialization; 0 = none
  bool uses_cache = false;
  std::string cache_node;
  // Per-stage fractional core demands at the target rate.
  std::map<std::string, double> theta;
};

// Computes the cheapest (fewest-cores, then least-memory) resource
// vector sustaining `request.target_rate`, optionally using a cache.
ProvisionPlan PlanProvision(const PipelineModel& model,
                            const ProvisionRequest& request);

struct CatalogChoice {
  bool feasible = false;
  MachineOffer offer;
  ProvisionPlan plan;
  double cost_per_hour = 0;
};

// Picks the cheapest offer in `catalog` whose resources cover a
// feasible provisioning plan for the target rate.
CatalogChoice PickCheapestMachine(const PipelineModel& model,
                                  const ProvisionRequest& request,
                                  const std::vector<MachineOffer>& catalog);

}  // namespace plumber
