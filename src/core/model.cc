#include "src/core/model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/pipeline/ops.h"

namespace plumber {
namespace {

// CPU time below this is treated as free for allocation purposes: such
// nodes (shuffle buffers, take/skip) cannot become CPU bottlenecks at
// any realistic rate.
constexpr double kNegligibleCpuSeconds = 1e-5;

bool OpIsInfiniteRepeat(const NodeDef& def) {
  return (def.op == "repeat" || def.op == "shuffle_and_repeat") &&
         def.GetInt(kAttrCount, -1) < 0;
}

}  // namespace

StatusOr<PipelineModel> PipelineModel::Build(const TraceSnapshot& trace,
                                             const UdfRegistry* udfs) {
  PipelineModel model;
  model.trace_ = trace;
  ASSIGN_OR_RETURN(std::vector<std::string> topo,
                   trace.graph.TopologicalOrder());
  // topo is children-first; we want root-first.
  std::vector<std::string> root_first(topo.rbegin(), topo.rend());

  // Pass 1: raw per-node statistics.
  for (const std::string& name : root_first) {
    const NodeDef* def = trace.graph.FindNode(name);
    NodeModel node;
    node.name = name;
    node.op = def->op;
    node.inputs = def->inputs;
    node.parallelizable =
        OpSupportsParallelism(def->op) && def->GetBool(kAttrTunable, true);
    node.is_source = def->op == "tfrecord" || def->op == "remote_read" ||
                     def->op == "interleave";
    node.parallelism = 1;
    if (const auto* s = trace.FindStats(name)) {
      node.completions = s->elements_produced;
      node.cpu_seconds = s->cpu_ns * 1e-9;
      node.bytes_read = s->bytes_read;
      node.network_bytes = s->network_bytes;
      node.parallelism = std::max(1, s->parallelism);
      node.udf_name = s->udf_name;
      if (node.completions > 0) {
        node.bytes_per_element =
            static_cast<double>(s->bytes_produced) / node.completions;
        node.service_seconds = node.cpu_seconds / node.completions;
      }
    }
    if (node.udf_name.empty() && def->HasAttr(kAttrUdf)) {
      node.udf_name = def->GetString(kAttrUdf);
    }
    node.observed_cores =
        trace.wall_seconds > 0 ? node.cpu_seconds / trace.wall_seconds : 0;
    node.negligible_cost = node.cpu_seconds < kNegligibleCpuSeconds;
    model.index_[name] = model.nodes_.size();
    model.nodes_.push_back(std::move(node));
  }

  // Pass 2 (root-down): visit ratios and CPU rates.
  for (auto& node : model.nodes_) {
    if (node.name == trace.graph.output()) {
      node.visit_ratio = 1.0;
      node.local_ratio = 1.0;
    } else {
      const std::vector<std::string> consumers =
          trace.graph.Consumers(node.name);
      if (consumers.empty()) continue;
      const NodeModel* parent = model.Find(consumers[0]);
      if (parent == nullptr || parent->completions == 0) continue;
      node.local_ratio = static_cast<double>(node.completions) /
                         static_cast<double>(parent->completions);
      node.visit_ratio = node.local_ratio * parent->visit_ratio;
    }
    if (node.visit_ratio > 0 && node.cpu_seconds > 0 &&
        node.completions > 0) {
      // Ri = (elements per core-second) / (elements per minibatch).
      node.rate_per_core =
          (node.completions / node.cpu_seconds) / node.visit_ratio;
    }
    if (node.bytes_read > 0 && trace.root_completions > 0) {
      node.disk_bytes_per_minibatch =
          static_cast<double>(node.bytes_read) / trace.root_completions;
    }
    if (node.network_bytes > 0 && trace.root_completions > 0) {
      node.network_bytes_per_minibatch =
          static_cast<double>(node.network_bytes) / trace.root_completions;
    }
  }

  // Pass 3 (source-up, i.e. reverse of root-first order): cardinality,
  // materialization size, random taint, below-cache marking.
  const auto source_sizes = model.EstimateSourceSizes();
  for (auto it = model.nodes_.rbegin(); it != model.nodes_.rend(); ++it) {
    NodeModel& node = *it;
    const NodeDef* def = trace.graph.FindNode(node.name);

    // Child-derived quantities (single-input chains; multi-input nodes
    // aggregate by summing cardinalities).
    double child_cardinality = kModelUnknown;
    bool child_taint = false;
    bool child_below_cache = false;
    for (const std::string& input : node.inputs) {
      const NodeModel* child = model.Find(input);
      if (child == nullptr) continue;
      child_taint = child_taint || child->random_tainted;
      child_below_cache = child_below_cache || child->below_cache;
      if (child->cardinality == kModelInfinite ||
          child_cardinality == kModelInfinite) {
        child_cardinality = kModelInfinite;
      } else if (child->cardinality >= 0) {
        child_cardinality = std::max(0.0, child_cardinality) +
                            child->cardinality;
      }
    }

    // Random taint: a transitively random UDF makes this node and
    // everything downstream uncacheable (paper §B.1).
    node.random_tainted = child_taint;
    if (!node.udf_name.empty() && udfs != nullptr &&
        udfs->IsTransitivelyRandom(node.udf_name)) {
      node.random_tainted = true;
    }

    // Below-cache: children of a cache node have no steady-state cost.
    // (Transitive propagation to the whole upstream subtree happens in
    // the fixed-point loop after this pass.)
    node.below_cache = child_below_cache;
    if (node.op == "cache") {
      for (const std::string& input : node.inputs) {
        NodeModel* child = const_cast<NodeModel*>(model.Find(input));
        if (child != nullptr) child->below_cache = true;
      }
    }

    // Cardinality ni (App. A): sources get total-bytes x records/byte;
    // infinite repeats poison; other nodes scale the child count by
    // their measured local input/output ratio.
    if (node.op == "file_list") {
      auto fp = trace.files_per_prefix.find(def->GetString(kAttrPrefix));
      node.cardinality = fp != trace.files_per_prefix.end()
                             ? static_cast<double>(fp->second)
                             : kModelUnknown;
    } else if (node.is_source) {
      if (node.bytes_read > 0 && node.completions > 0) {
        const double records_per_byte =
            static_cast<double>(node.completions) / node.bytes_read;
        double total_bytes = 0;
        for (const auto& [prefix, est] : source_sizes) {
          total_bytes += est.estimated_bytes;
        }
        node.cardinality = total_bytes * records_per_byte;
      }
    } else if (OpIsInfiniteRepeat(*def)) {
      node.cardinality = kModelInfinite;
    } else if (child_cardinality == kModelInfinite) {
      node.cardinality = kModelInfinite;
    } else if (child_cardinality >= 0) {
      // Measured input/output ratio relative to the (aggregate) child.
      double child_completions = 0;
      for (const std::string& input : node.inputs) {
        const NodeModel* child = model.Find(input);
        if (child != nullptr) child_completions += child->completions;
      }
      if (child_completions > 0) {
        const double io_ratio = node.completions / child_completions;
        node.cardinality = child_cardinality * io_ratio;
      }
    }

    if (node.cardinality >= 0 && node.bytes_per_element > 0) {
      node.materialized_bytes = node.cardinality * node.bytes_per_element;
    }

    node.cacheable = !node.random_tainted && node.cardinality >= 0 &&
                     node.op != "cache" && node.op != "prefetch" &&
                     node.op != "file_list" && !node.below_cache;
  }

  // Propagate below_cache transitively source-ward (a cache's whole
  // upstream subtree is free in steady state).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& node : model.nodes_) {
      if (!node.below_cache) continue;
      for (const std::string& input : node.inputs) {
        NodeModel* child = const_cast<NodeModel*>(model.Find(input));
        if (child != nullptr && !child->below_cache) {
          child->below_cache = true;
          child->cacheable = false;
          changed = true;
        }
      }
    }
  }

  return model;
}

const NodeModel* PipelineModel::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<std::string> PipelineModel::RankBottlenecks() const {
  struct Entry {
    double capacity;
    const NodeModel* node;
  };
  std::vector<Entry> entries;
  for (const auto& node : nodes_) {
    if (!node.parallelizable || node.negligible_cost || node.below_cache) {
      continue;
    }
    if (node.rate_per_core <= 0) continue;
    entries.push_back({node.rate_per_core * node.parallelism, &node});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.capacity < b.capacity;
            });
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.node->name);
  return out;
}

std::vector<MaxMinStage> PipelineModel::LpStages() const {
  std::vector<MaxMinStage> stages;
  for (const auto& node : nodes_) {
    if (node.negligible_cost || node.below_cache) continue;
    if (node.rate_per_core <= 0) continue;
    MaxMinStage stage;
    stage.name = node.name;
    stage.rate_per_core = node.rate_per_core;
    stage.sequential = !node.parallelizable;
    stages.push_back(std::move(stage));
  }
  return stages;
}

double PipelineModel::DiskBytesPerMinibatch() const {
  double total = 0;
  for (const auto& node : nodes_) {
    if (!node.below_cache) total += node.disk_bytes_per_minibatch;
  }
  return total;
}

double PipelineModel::NetworkBytesPerMinibatch() const {
  double total = 0;
  for (const auto& node : nodes_) {
    if (!node.below_cache) total += node.network_bytes_per_minibatch;
  }
  return total;
}

std::map<std::string, PipelineModel::SourceSizeEstimate>
PipelineModel::EstimateSourceSizes() const {
  std::map<std::string, SourceSizeEstimate> out;
  for (const auto& [prefix, total_files] : trace_.files_per_prefix) {
    SourceSizeEstimate est;
    est.files_total = total_files;
    double sum = 0;
    for (const auto& [file, entry] : trace_.read_log) {
      if (file.compare(0, prefix.size(), prefix) != 0) continue;
      ++est.files_seen;
      sum += static_cast<double>(entry.file_size);
    }
    if (est.files_seen > 0) {
      est.estimated_bytes =
          sum / est.files_seen * static_cast<double>(est.files_total);
    }
    out.emplace(prefix, est);
  }
  return out;
}

double PipelineModel::EstimateTotalSourceBytes() const {
  double total = 0;
  for (const auto& [prefix, est] : EstimateSourceSizes()) {
    total += est.estimated_bytes;
  }
  return total;
}

std::string PipelineModel::ToString() const {
  std::ostringstream os;
  os << "PipelineModel rate=" << observed_rate() << " mb/s over "
     << wall_seconds() << "s\n";
  for (const auto& n : nodes_) {
    os << "  " << n.name << " (" << n.op << ")"
       << " C=" << n.completions << " cpu_s=" << n.cpu_seconds
       << " V=" << n.visit_ratio << " R=" << n.rate_per_core
       << " p=" << n.parallelism
       << " b/el=" << n.bytes_per_element << " n=" << n.cardinality
       << " mat=" << n.materialized_bytes
       << (n.cacheable ? " cacheable" : "")
       << (n.random_tainted ? " random" : "")
       << (n.below_cache ? " below_cache" : "") << "\n";
  }
  return os.str();
}

}  // namespace plumber
