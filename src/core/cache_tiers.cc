#include "src/core/cache_tiers.h"

namespace plumber {

const char* CacheTierName(CacheTier tier) {
  switch (tier) {
    case CacheTier::kNone:
      return "none";
    case CacheTier::kMemory:
      return "memory";
    case CacheTier::kDisk:
      return "disk";
  }
  return "none";
}

TieredCacheDecision PlanCacheTiered(const PipelineModel& model,
                                    const TieredCachePlanOptions& options,
                                    const LpPlanOptions& lp_options) {
  TieredCacheDecision decision;
  const double memory_budget =
      options.memory_bytes * options.safety_factor;
  const double disk_budget =
      options.disk_free_bytes * options.safety_factor;
  // Disk caching must not slow the pipeline below what it would do
  // uncached (minus its own source I/O): compare against the LP's
  // prediction for the current configuration.
  const double uncached_rate =
      PlanAllocation(model, lp_options).predicted_rate;

  // Same candidate set as PlanCache — the tiers only change the fit
  // test, never what counts as a placement site.
  ForEachCacheCandidate(model, [&](const NodeModel& node) {
    CacheCandidate candidate;
    candidate.node = node.name;
    candidate.materialized_bytes = node.materialized_bytes;

    const bool fits_memory = options.memory_bytes > 0 &&
                             node.materialized_bytes <= memory_budget;
    bool fits_disk = false;
    double serve_rate = 0;
    if (options.disk_free_bytes > 0 && options.disk_read_bandwidth > 0 &&
        node.materialized_bytes <= disk_budget && node.visit_ratio > 0 &&
        node.bytes_per_element > 0) {
      // Serving the materialization re-reads visit_ratio elements of
      // bytes_per_element for every root minibatch.
      const double bytes_per_minibatch =
          node.visit_ratio * node.bytes_per_element;
      serve_rate = options.disk_read_bandwidth / bytes_per_minibatch;
      fits_disk = serve_rate >= uncached_rate;
    }

    candidate.fits = fits_memory || fits_disk;
    decision.candidates.push_back(candidate);
    if (!decision.feasible && candidate.fits) {
      decision.feasible = true;
      decision.node = node.name;
      decision.materialized_bytes = node.materialized_bytes;
      decision.tier = fits_memory ? CacheTier::kMemory : CacheTier::kDisk;
      decision.disk_serve_rate = fits_memory ? 0 : serve_rate;
    }
  });
  return decision;
}

}  // namespace plumber
