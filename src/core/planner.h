// Resource planners: CPU/disk LP, cache placement, prefetch injection
// (paper §4.3 "Allocating Hardware Resources" and §4.1 "Optimizer").
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/model.h"
#include "src/io/piecewise_linear.h"

namespace plumber {

// ------------------------------------------------------------- CPU/disk
struct LpPlanOptions {
  // Aggregate read bandwidth available to the pipeline, bytes/sec;
  // 0 disables the disk constraint.
  double disk_bandwidth = 0;
  // Aggregate NIC bandwidth available to the pipeline, bytes/sec;
  // 0 disables the network constraint. Sessions default it from
  // MachineSpec::nic when a real NIC is attached.
  double network_bandwidth = 0;
  // Optional empirical parallelism -> bandwidth curve for the source
  // (fit by the I/O profiler); used to pick minimal read parallelism.
  PiecewiseLinear io_curve;
  // Solve with the dense simplex instead of the closed form (identical
  // results on linear pipelines; kept for generality + cross-checks).
  bool use_simplex = false;
};

struct LpPlan {
  // Predicted upper bound on pipeline rate, minibatches/sec.
  double predicted_rate = 0;
  double cpu_bound_rate = 0;
  // Disk-imposed bound; <0 means unconstrained.
  double disk_bound_rate = -1;
  bool disk_limited = false;
  // Network-imposed bound (NIC bandwidth / wire bytes per minibatch);
  // <0 means unconstrained. network_limited marks plans whose rate the
  // NIC caps below both the CPU and the disk bound — the bottleneck
  // class sharding cannot fix (all shards share the wire).
  double network_bound_rate = -1;
  bool network_limited = false;
  // Fractional cores per stage (theta) and integer knob suggestions.
  std::map<std::string, double> theta;
  std::map<std::string, int> parallelism;
  std::string bottleneck;
  bool core_limited = false;
  double cores_used = 0;
  // Minimal source read parallelism that sustains predicted_rate, from
  // the piecewise-linear curve (1 if no curve given).
  int suggested_io_parallelism = 1;
};

LpPlan PlanAllocation(const PipelineModel& model,
                      const LpPlanOptions& options = {});

// ---------------------------------------------------------------- cache
struct CachePlanOptions {
  uint64_t memory_bytes = 0;
  // Shrinks the usable budget to leave headroom (1.0 = use it all).
  double safety_factor = 1.0;
};

struct CacheCandidate {
  std::string node;
  double materialized_bytes = 0;
  bool fits = false;
};

struct CacheDecision {
  bool feasible = false;
  std::string node;  // insert cache after this node
  double materialized_bytes = 0;
  std::vector<CacheCandidate> candidates;  // root-first, for reporting
};

// Invokes `fn` for every cache candidate — a cacheable node with a
// traced materialized size — in model order (root-first, so the first
// fitting candidate is the one closest to the root). The single
// enumeration shared by PlanCache, PlanCacheByEnumeration, and
// PlanCacheTiered: what counts as a candidate is decided once, here.
void ForEachCacheCandidate(const PipelineModel& model,
                           const std::function<void(const NodeModel&)>& fn);

// Greedy-optimal for linear pipelines: pick the cacheable node closest
// to the root whose materialization fits in memory (§4.3 "Memory").
CacheDecision PlanCache(const PipelineModel& model,
                        const CachePlanOptions& options);

// General-topology variant (§4.3: boolean decision variables layered on
// the LP): enumerates cache candidates, re-solves the allocation with
// the cached subtree freed, and returns the candidate with the best
// predicted rate that fits in memory. Equals PlanCache on chains.
CacheDecision PlanCacheByEnumeration(const PipelineModel& model,
                                     const CachePlanOptions& cache_options,
                                     const LpPlanOptions& lp_options = {});

// Predicted rate if a cache were placed after `node` (upstream freed).
double PredictedRateWithCacheAt(const PipelineModel& model,
                                const std::string& node,
                                const LpPlanOptions& lp_options = {});

// ------------------------------------------------------------- prefetch
struct PrefetchDecision {
  bool inject_root = false;
  int root_buffer = 2;
  double pipeline_idleness = 0;  // 1 - used_cores / total_cores
};

// Injects prefetching proportional to pipeline idleness (§4.1).
PrefetchDecision PlanPrefetch(const PipelineModel& model);

}  // namespace plumber
