#include "src/core/roofline.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace plumber {

RooflineReport BuildRoofline(const PipelineModel& model,
                             double disk_bandwidth) {
  RooflineReport report;
  report.achieved_rate = model.observed_rate();

  double total_cpu = 0;
  for (const auto& node : model.nodes()) total_cpu += node.cpu_seconds;

  const double cores = model.machine().num_cores;
  for (const auto& node : model.nodes()) {
    if (node.rate_per_core <= 0 || node.negligible_cost ||
        node.below_cache) {
      continue;
    }
    RooflinePoint point;
    point.name = node.name;
    point.op = node.op;
    point.sequential = !node.parallelizable;
    point.rate_per_core = node.rate_per_core;
    point.cpu_roof =
        node.rate_per_core * (point.sequential ? 1.0 : cores);
    point.cpu_share = total_cpu > 0 ? node.cpu_seconds / total_cpu : 0;
    report.stages.push_back(std::move(point));
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const RooflinePoint& a, const RooflinePoint& b) {
              return a.cpu_roof < b.cpu_roof;
            });

  report.compute_roof = report.stages.empty()
                            ? std::numeric_limits<double>::infinity()
                            : report.stages.front().cpu_roof;
  const double demand = model.DiskBytesPerMinibatch();
  if (disk_bandwidth > 0 && demand > 0) {
    report.io_roof = disk_bandwidth / demand;
  }

  report.binding_roof = report.compute_roof;
  report.binding_stage =
      report.stages.empty() ? "" : report.stages.front().name;
  if (report.io_roof > 0 && report.io_roof < report.binding_roof) {
    report.binding_roof = report.io_roof;
    report.binding_stage = "io";
  }
  if (report.binding_roof > 0 &&
      report.binding_roof != std::numeric_limits<double>::infinity()) {
    report.roof_fraction = report.achieved_rate / report.binding_roof;
  }
  return report;
}

std::string RooflineReport::ToString() const {
  std::ostringstream os;
  os << "roofline: achieved=" << achieved_rate
     << " mb/s, binding=" << binding_stage << " roof=" << binding_roof
     << " (fraction " << roof_fraction << ")\n";
  if (io_roof > 0) os << "  io roof: " << io_roof << " mb/s\n";
  for (const auto& stage : stages) {
    os << "  " << stage.name << " (" << stage.op << ")"
       << (stage.sequential ? " [sequential]" : "")
       << " roof=" << stage.cpu_roof
       << " rate/core=" << stage.rate_per_core
       << " cpu_share=" << stage.cpu_share << "\n";
  }
  return os.str();
}

}  // namespace plumber
