#include "src/core/multi_job_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

// Cores needed to run this demand at unit rate: sum 1/R_i over every
// costed stage — sequential stages occupy a core too, they just cannot
// exceed one (the cap below).
double CoresPerUnitRate(const JobDemand& demand) {
  double cost = 0;
  for (const MaxMinStage& stage : demand.stages) {
    if (stage.rate_per_core <= 0) continue;
    cost += 1.0 / stage.rate_per_core;
  }
  return cost;
}

// The job's rate ceiling: its sequential stages (theta <= 1) and the
// integer caps on its parallel stages both bound the useful rate.
double RateCap(const JobDemand& demand) {
  double cap = std::numeric_limits<double>::infinity();
  for (const MaxMinStage& stage : demand.stages) {
    if (stage.rate_per_core <= 0) continue;
    if (stage.sequential) {
      cap = std::min(cap, stage.rate_per_core);
      continue;
    }
    auto it = demand.max_parallelism.find(stage.name);
    if (it != demand.max_parallelism.end()) {
      cap = std::min(cap, stage.rate_per_core * std::max(1, it->second));
    }
  }
  return cap;
}

// The job's preemption floor: one core per costed stage, the grant the
// integerizer hands out no matter how small theta is (a zero-worker
// pool would deadlock, not pause). Tier budgeting reserves this for
// lower-priority tiers so a hungry tier parks them, never starves them.
double FloorCores(const JobDemand& demand) {
  double floor = 0;
  for (const MaxMinStage& stage : demand.stages) {
    if (stage.rate_per_core > 0) floor += 1;
  }
  return floor;
}

// Integerizes one job's fractional theta into parallelism grants the
// same way the single-pipeline planner does: floor(theta) (min 1) per
// stage, then hand out the whole cores the budget still covers by
// largest fractional remainder, respecting the per-stage caps.
void Integerize(const JobDemand& demand, const MaxMinSolution& solution,
                double budget, LpPlan* plan) {
  const auto cap_for = [&](const std::string& name) {
    auto it = demand.max_parallelism.find(name);
    return it == demand.max_parallelism.end()
               ? std::numeric_limits<int>::max()
               : std::max(1, it->second);
  };
  std::vector<std::pair<double, std::string>> remainders;
  int granted = 0;
  double sequential_demand = 0;
  for (size_t i = 0; i < demand.stages.size(); ++i) {
    const MaxMinStage& stage = demand.stages[i];
    plan->theta[stage.name] = solution.theta[i];
    if (stage.sequential) {
      sequential_demand += solution.theta[i];
      continue;
    }
    const double theta = solution.theta[i];
    const double whole = std::floor(theta + 1e-9);
    const int base =
        std::min(cap_for(stage.name), std::max<int>(1, static_cast<int>(whole)));
    plan->parallelism[stage.name] = base;
    if (theta >= 1.0 - 1e-9) granted += base;
    const double frac = theta - whole;
    if (frac > 1e-6 && base < cap_for(stage.name)) {
      remainders.emplace_back(frac, stage.name);
    }
  }
  const int whole_budget = std::max(
      1, static_cast<int>(std::floor(budget - sequential_demand + 1e-9)));
  std::sort(remainders.rbegin(), remainders.rend());
  for (const auto& [frac, name] : remainders) {
    if (granted >= whole_budget) break;
    ++plan->parallelism[name];
    ++granted;
  }
}

}  // namespace

MultiJobPlan PlanMultiJobAllocation(const std::vector<JobDemand>& demands,
                                    double num_cores) {
  MultiJobPlan out;
  if (demands.empty() || num_cores <= 0) return out;

  struct Entry {
    const JobDemand* demand;
    double cost;    // cores per unit rate
    double cap;     // rate ceiling (sequential stages + integer knobs)
    double weight;  // fair-share multiplier within the tier
    double rate = 0;
  };
  std::vector<Entry> entries;
  entries.reserve(demands.size());
  for (const JobDemand& demand : demands) {
    entries.push_back(Entry{&demand, CoresPerUnitRate(demand),
                            RateCap(demand),
                            demand.weight > 0 ? demand.weight : 1.0});
  }

  // Group the costed demands by tier, ascending: lower tiers (more
  // latency-critical SLO classes) drink first.
  std::map<int, std::vector<Entry*>> tiers;
  for (Entry& e : entries) {
    if (e.cost > 0) tiers[e.demand->tier].push_back(&e);
  }

  double remaining = num_cores;
  bool first_tier = true;
  for (auto& [tier, group] : tiers) {
    // Reserve the preemption floor of every tier still waiting, so
    // this tier can park them (min 1 worker per stage) but not starve
    // them. When even the floors oversubscribe the machine, the tier
    // budget degrades gracefully to whatever is physically left — the
    // integerizer overcommits min-1 grants exactly like the
    // single-pipeline planner does.
    double reserved = 0;
    for (const auto& [later_tier, later_group] : tiers) {
      if (later_tier <= tier) continue;
      for (const Entry* e : later_group) reserved += FloorCores(*e->demand);
    }
    double tier_floor = 0;
    for (const Entry* e : group) tier_floor += FloorCores(*e->demand);
    double budget = std::max(0.0, remaining - reserved);
    if (budget < tier_floor) budget = std::min(tier_floor, remaining);

    // Weighted water-fill within the tier: equalize the normalized
    // rate y = X_j / w_j. A job costs (w_j * cost_j) cores per unit of
    // y; its cap in normalized terms is cap_j / w_j. Jobs frozen at
    // their cap release the surplus back into the tier's pool (work
    // conservation within the tier).
    std::vector<Entry*> active = group;
    double pool = budget;
    while (!active.empty()) {
      double total_cost = 0;
      for (const Entry* e : active) total_cost += e->weight * e->cost;
      const double waterline = std::max(0.0, pool) / total_cost;
      bool froze = false;
      for (auto it = active.begin(); it != active.end();) {
        if ((*it)->cap / (*it)->weight <= waterline) {
          (*it)->rate = (*it)->cap;
          pool -= (*it)->cap * (*it)->cost;
          it = active.erase(it);
          froze = true;
        } else {
          ++it;
        }
      }
      if (!froze) {
        for (Entry* e : active) e->rate = waterline * e->weight;
        if (first_tier) out.fair_rate = waterline;
        break;
      }
    }
    first_tier = false;

    // What this tier actually drank flows out of the shared budget;
    // anything a capped tier could not absorb remains for the next
    // tier (work conservation across tiers). Consumption never counts
    // below the tier's floor — those min-1 grants happen regardless.
    double consumed = 0;
    for (const Entry* e : group) {
      consumed += std::max(e->rate * e->cost, FloorCores(*e->demand));
    }
    remaining = std::max(0.0, remaining - consumed);
  }

  // Per-job: split the job's budget across its own stages with the
  // single-pipeline maximin solver, then integerize.
  for (Entry& e : entries) {
    LpPlan plan;
    const double budget = e.rate * e.cost;
    if (!e.demand->stages.empty() && budget > 0) {
      const MaxMinSolution solution =
          SolveMaxMin(e.demand->stages, budget);
      plan.predicted_rate = solution.throughput;
      plan.cpu_bound_rate = solution.throughput;
      plan.cores_used = solution.cores_used;
      plan.core_limited = solution.core_limited;
      if (solution.bottleneck >= 0) {
        plan.bottleneck = e.demand->stages[solution.bottleneck].name;
      }
      Integerize(*e.demand, solution, budget, &plan);
      out.cores_used += solution.cores_used;
    } else if (!e.demand->stages.empty()) {
      // Budget squeezed to zero (a parked tier under extreme
      // oversubscription): grant the floor explicitly so the governor
      // still receives a target of 1 instead of silence (which would
      // mean "configured knobs", i.e. no preemption at all).
      for (const MaxMinStage& stage : e.demand->stages) {
        plan.theta[stage.name] = stage.sequential ? 1 : 0;
        if (!stage.sequential) plan.parallelism[stage.name] = 1;
      }
    }
    out.jobs[e.demand->job_id] = std::move(plan);
  }
  out.unused_cores = std::max(0.0, num_cores - out.cores_used);
  return out;
}

JobDemand DemandFromGraph(std::string job_id, const GraphDef& graph,
                          std::string* warning) {
  JobDemand demand;
  demand.job_id = std::move(job_id);
  // Traced mode is all-or-nothing: mixing measured rates with the
  // uniform-1.0 guess inside one job would let a fictitious unit-rate
  // stage (cost 1/1.0) dwarf every real stage measured in the
  // thousands per second, so a single stray attr must not distort the
  // split. A graph the optimizer stamped (kAttrTracedRate anywhere)
  // contributes only its stamped nodes as stages; anything unstamped
  // was off the traced critical path and costs ~nothing — but an
  // unstamped TUNABLE node then keeps its configured parallelism
  // unarbitrated, which callers deserve to hear about (see the header
  // contract); `warning` reports that partial coverage.
  bool traced = false;
  for (const NodeDef& node : graph.nodes()) {
    if (node.GetDouble(kAttrTracedRate, 0.0) > 0) {
      traced = true;
      break;
    }
  }
  if (traced) {
    for (const NodeDef& node : graph.nodes()) {
      const double rate = node.GetDouble(kAttrTracedRate, 0.0);
      if (rate <= 0) continue;
      MaxMinStage stage;
      stage.name = node.name;
      stage.rate_per_core = rate;
      const bool tunable = OpSupportsParallelism(node.op) &&
                           node.GetBool(kAttrTunable, true);
      stage.sequential = !tunable;
      demand.stages.push_back(std::move(stage));
      if (tunable) {
        demand.max_parallelism[node.name] =
            std::max(1, static_cast<int>(node.GetInt(kAttrParallelism, 1)));
      }
    }
    if (warning != nullptr) {
      std::vector<std::string> unstamped;
      for (const std::string& node : rewriter::TunableNodes(graph)) {
        const NodeDef* def = graph.FindNode(node);
        if (def->GetDouble(kAttrTracedRate, 0.0) <= 0) {
          unstamped.push_back(node);
        }
      }
      if (!unstamped.empty()) {
        *warning = "graph '" + demand.job_id + "' is partially traced: " +
                   std::to_string(unstamped.size()) +
                   " tunable node(s) without a traced rate (first: '" +
                   unstamped.front() +
                   "') keep their configured parallelism unarbitrated; "
                   "re-optimize so every tunable stage is stamped";
      }
    }
    return demand;
  }
  for (const std::string& node : rewriter::TunableNodes(graph)) {
    MaxMinStage stage;
    stage.name = node;
    stage.rate_per_core = 1.0;  // untraced: assume uniform per-core rates
    demand.stages.push_back(std::move(stage));
    const NodeDef* def = graph.FindNode(node);
    demand.max_parallelism[node] =
        std::max(1, static_cast<int>(def->GetInt(kAttrParallelism, 1)));
  }
  return demand;
}

}  // namespace plumber
