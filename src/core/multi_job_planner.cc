#include "src/core/multi_job_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

// Cores needed to run this demand at unit rate: sum 1/R_i over every
// costed stage — sequential stages occupy a core too, they just cannot
// exceed one (the cap below).
double CoresPerUnitRate(const JobDemand& demand) {
  double cost = 0;
  for (const MaxMinStage& stage : demand.stages) {
    if (stage.rate_per_core <= 0) continue;
    cost += 1.0 / stage.rate_per_core;
  }
  return cost;
}

// The job's rate ceiling: its sequential stages (theta <= 1) and the
// integer caps on its parallel stages both bound the useful rate.
double RateCap(const JobDemand& demand) {
  double cap = std::numeric_limits<double>::infinity();
  for (const MaxMinStage& stage : demand.stages) {
    if (stage.rate_per_core <= 0) continue;
    if (stage.sequential) {
      cap = std::min(cap, stage.rate_per_core);
      continue;
    }
    auto it = demand.max_parallelism.find(stage.name);
    if (it != demand.max_parallelism.end()) {
      cap = std::min(cap, stage.rate_per_core * std::max(1, it->second));
    }
  }
  return cap;
}

// Integerizes one job's fractional theta into parallelism grants the
// same way the single-pipeline planner does: floor(theta) (min 1) per
// stage, then hand out the whole cores the budget still covers by
// largest fractional remainder, respecting the per-stage caps.
void Integerize(const JobDemand& demand, const MaxMinSolution& solution,
                double budget, LpPlan* plan) {
  const auto cap_for = [&](const std::string& name) {
    auto it = demand.max_parallelism.find(name);
    return it == demand.max_parallelism.end()
               ? std::numeric_limits<int>::max()
               : std::max(1, it->second);
  };
  std::vector<std::pair<double, std::string>> remainders;
  int granted = 0;
  double sequential_demand = 0;
  for (size_t i = 0; i < demand.stages.size(); ++i) {
    const MaxMinStage& stage = demand.stages[i];
    plan->theta[stage.name] = solution.theta[i];
    if (stage.sequential) {
      sequential_demand += solution.theta[i];
      continue;
    }
    const double theta = solution.theta[i];
    const double whole = std::floor(theta + 1e-9);
    const int base =
        std::min(cap_for(stage.name), std::max<int>(1, static_cast<int>(whole)));
    plan->parallelism[stage.name] = base;
    if (theta >= 1.0 - 1e-9) granted += base;
    const double frac = theta - whole;
    if (frac > 1e-6 && base < cap_for(stage.name)) {
      remainders.emplace_back(frac, stage.name);
    }
  }
  const int whole_budget = std::max(
      1, static_cast<int>(std::floor(budget - sequential_demand + 1e-9)));
  std::sort(remainders.rbegin(), remainders.rend());
  for (const auto& [frac, name] : remainders) {
    if (granted >= whole_budget) break;
    ++plan->parallelism[name];
    ++granted;
  }
}

}  // namespace

MultiJobPlan PlanMultiJobAllocation(const std::vector<JobDemand>& demands,
                                    double num_cores) {
  MultiJobPlan out;
  if (demands.empty() || num_cores <= 0) return out;

  // Water-fill the maximin job rate X: every job still "active" at the
  // waterline costs cost_j * X cores; jobs whose rate cap sits below
  // the candidate waterline are frozen at their cap (consuming
  // cost_j * cap_j) and the remaining budget re-splits among the rest.
  struct Entry {
    const JobDemand* demand;
    double cost;
    double cap;
    double rate = 0;
  };
  std::vector<Entry> entries;
  for (const JobDemand& demand : demands) {
    Entry e{&demand, CoresPerUnitRate(demand), RateCap(demand)};
    entries.push_back(e);
  }
  double remaining = num_cores;
  std::vector<Entry*> active;
  for (Entry& e : entries) {
    if (e.cost > 0) active.push_back(&e);
  }
  while (!active.empty()) {
    double total_cost = 0;
    for (Entry* e : active) total_cost += e->cost;
    const double waterline = remaining / total_cost;
    // Freeze every job capped below the waterline; if none, the
    // waterline is the final fair rate for the rest.
    bool froze = false;
    for (auto it = active.begin(); it != active.end();) {
      if ((*it)->cap <= waterline) {
        (*it)->rate = (*it)->cap;
        remaining -= (*it)->cap * (*it)->cost;
        it = active.erase(it);
        froze = true;
      } else {
        ++it;
      }
    }
    if (!froze) {
      for (Entry* e : active) e->rate = waterline;
      out.fair_rate = waterline;
      break;
    }
  }

  // Per-job: split the job's budget across its own stages with the
  // single-pipeline maximin solver, then integerize.
  for (Entry& e : entries) {
    LpPlan plan;
    const double budget = e.rate * e.cost;
    if (!e.demand->stages.empty() && budget > 0) {
      const MaxMinSolution solution =
          SolveMaxMin(e.demand->stages, budget);
      plan.predicted_rate = solution.throughput;
      plan.cpu_bound_rate = solution.throughput;
      plan.cores_used = solution.cores_used;
      plan.core_limited = solution.core_limited;
      if (solution.bottleneck >= 0) {
        plan.bottleneck = e.demand->stages[solution.bottleneck].name;
      }
      Integerize(*e.demand, solution, budget, &plan);
      out.cores_used += solution.cores_used;
    }
    out.jobs[e.demand->job_id] = std::move(plan);
  }
  return out;
}

JobDemand DemandFromGraph(std::string job_id, const GraphDef& graph) {
  JobDemand demand;
  demand.job_id = std::move(job_id);
  // Traced mode is all-or-nothing: mixing measured rates with the
  // uniform-1.0 guess inside one job would let a fictitious unit-rate
  // stage (cost 1/1.0) dwarf every real stage measured in the
  // thousands per second, so a single stray attr must not distort the
  // split. A graph the optimizer stamped (kAttrTracedRate anywhere)
  // contributes only its stamped nodes as stages; anything unstamped
  // was off the traced critical path and costs ~nothing.
  bool traced = false;
  for (const NodeDef& node : graph.nodes()) {
    if (node.GetDouble(kAttrTracedRate, 0.0) > 0) {
      traced = true;
      break;
    }
  }
  if (traced) {
    for (const NodeDef& node : graph.nodes()) {
      const double rate = node.GetDouble(kAttrTracedRate, 0.0);
      if (rate <= 0) continue;
      MaxMinStage stage;
      stage.name = node.name;
      stage.rate_per_core = rate;
      const bool tunable = OpSupportsParallelism(node.op) &&
                           node.GetBool(kAttrTunable, true);
      stage.sequential = !tunable;
      demand.stages.push_back(std::move(stage));
      if (tunable) {
        demand.max_parallelism[node.name] =
            std::max(1, static_cast<int>(node.GetInt(kAttrParallelism, 1)));
      }
    }
    return demand;
  }
  for (const std::string& node : rewriter::TunableNodes(graph)) {
    MaxMinStage stage;
    stage.name = node;
    stage.rate_per_core = 1.0;  // untraced: assume uniform per-core rates
    demand.stages.push_back(std::move(stage));
    const NodeDef* def = graph.FindNode(node);
    demand.max_parallelism[node] =
        std::max(1, static_cast<int>(def->GetInt(kAttrParallelism, 1)));
  }
  return demand;
}

}  // namespace plumber
