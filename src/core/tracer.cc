#include "src/core/tracer.h"

#include <sstream>

#include "src/pipeline/ops.h"
#include "src/util/cpu_timer.h"

namespace plumber {

const IteratorStatsSnapshot* TraceSnapshot::FindStats(
    const std::string& name) const {
  for (const auto& s : stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string TraceSnapshot::Serialize() const {
  std::ostringstream os;
  os << "# plumber trace, wall_seconds=" << wall_seconds
     << " machine=" << machine.name << "\n";
  os << graph.Serialize();
  for (const auto& s : stats) {
    os << "stat " << s.name << " produced=" << s.elements_produced
       << " consumed=" << s.elements_consumed
       << " bytes=" << s.bytes_produced << " bytes_read=" << s.bytes_read
       << " network_bytes=" << s.network_bytes
       << " cpu_ns=" << s.cpu_ns << " parallelism=" << s.parallelism
       << "\n";
  }
  for (const auto& [file, entry] : read_log) {
    os << "file " << file << " bytes_read=" << entry.bytes_read
       << " size=" << entry.file_size
       << " complete=" << (entry.fully_read ? 1 : 0) << "\n";
  }
  return os.str();
}

namespace {

void FillMetadata(Pipeline& pipeline, double wall_seconds,
                  const MachineSpec& machine, TraceSnapshot* trace) {
  trace->graph = pipeline.graph();
  trace->stats = pipeline.stats().Snapshot();
  if (pipeline.context()->fs != nullptr) {
    trace->read_log = pipeline.context()->fs->SnapshotReadLog();
    for (const auto& node : trace->graph.nodes()) {
      if (node.op == "file_list") {
        const std::string prefix = node.GetString(kAttrPrefix);
        trace->files_per_prefix[prefix] =
            pipeline.context()->fs->List(prefix).size();
      }
    }
  }
  trace->wall_seconds = wall_seconds;
  trace->machine = machine;
  const auto* root = trace->FindStats(trace->graph.output());
  trace->root_completions = root != nullptr ? root->elements_produced : 0;
  trace->observed_rate =
      wall_seconds > 0 ? trace->root_completions / wall_seconds : 0;
}

}  // namespace

TraceSnapshot CaptureTrace(Pipeline& pipeline, const TraceOptions& options) {
  if (options.warmup_seconds > 0) {
    RunOptions warmup;
    warmup.max_seconds = options.warmup_seconds;
    RunPipeline(pipeline, warmup);
  }
  if (options.simulate_cache_steady_state) {
    pipeline.SimulateSteadyState();
  }
  if (options.reset_stats) {
    pipeline.stats().ResetAll();
    if (pipeline.context()->fs != nullptr) {
      pipeline.context()->fs->ClearReadLog();
    }
  }
  RunOptions run;
  run.max_seconds = options.trace_seconds;
  run.max_batches = options.max_batches;
  const RunResult result = RunPipeline(pipeline, run);
  TraceSnapshot trace;
  FillMetadata(pipeline, result.wall_seconds, options.machine, &trace);
  return trace;
}

TraceSnapshot SnapshotFromPipeline(Pipeline& pipeline, double wall_seconds,
                                   const MachineSpec& machine) {
  TraceSnapshot trace;
  FillMetadata(pipeline, wall_seconds, machine, &trace);
  return trace;
}

}  // namespace plumber
