// Tiered cache planning: memory preferred, disk fallback.
//
// Paper §4.1 "Extensions": "to add the ability to cache materialized
// results to disk in addition to memory, one can reuse all caching
// logic up to the cache decision itself, which would dispatch to
// in-memory caching preferably and disk caching if space and disk
// bandwidth allow it." This module is exactly that dispatch: the
// candidate enumeration and materialized-size estimation are reused
// from the cache planner; only the fit/serve test differs per tier.
#pragma once

#include <string>

#include "src/core/model.h"
#include "src/core/planner.h"

namespace plumber {

enum class CacheTier { kNone, kMemory, kDisk };

const char* CacheTierName(CacheTier tier);

struct TieredCachePlanOptions {
  // Memory tier budget (bytes); 0 disables the tier.
  uint64_t memory_bytes = 0;
  // Disk tier: free capacity and sustained read bandwidth of the
  // scratch device; 0 disables the tier.
  uint64_t disk_free_bytes = 0;
  double disk_read_bandwidth = 0;  // bytes/sec
  double safety_factor = 1.0;
};

struct TieredCacheDecision {
  bool feasible = false;
  CacheTier tier = CacheTier::kNone;
  std::string node;  // insert cache after this node
  double materialized_bytes = 0;
  // For disk-tier decisions: the rate at which the scratch device can
  // serve the materialization (minibatches/sec).
  double disk_serve_rate = 0;
  // Diagnostic trail, root-first.
  std::vector<CacheCandidate> candidates;
};

// Picks the cache placement closest to the root that fits a tier,
// preferring memory. A disk placement is only taken when the scratch
// device can serve it at least as fast as the pipeline's predicted
// uncached rate — otherwise the "cache" would become the bottleneck.
TieredCacheDecision PlanCacheTiered(const PipelineModel& model,
                                    const TieredCachePlanOptions& options,
                                    const LpPlanOptions& lp_options = {});

}  // namespace plumber
