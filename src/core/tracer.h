// Plumber's tracer: joins runtime statistics with the serialized
// program (paper §4.1 "Tracing").
//
// A TraceSnapshot is everything the analysis layer needs: the GraphDef
// (every trace is a valid, rewritable program), per-iterator counters,
// the filesystem read log, and the wall-clock window. CaptureTrace runs
// the pipeline under a benchmark workload for a bounded time and
// snapshots the result.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/io/piecewise_linear.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/runner.h"

namespace plumber {

struct TraceSnapshot {
  GraphDef graph;
  std::vector<IteratorStatsSnapshot> stats;
  std::map<std::string, FileReadEntry> read_log;
  // Total file count per source prefix (from program + filesystem
  // metadata), used by the subsampled size estimator.
  std::map<std::string, uint64_t> files_per_prefix;
  double wall_seconds = 0;
  MachineSpec machine;
  // Root completions and rate observed during the trace window.
  uint64_t root_completions = 0;
  double observed_rate = 0;  // minibatches/sec

  const IteratorStatsSnapshot* FindStats(const std::string& name) const;

  // Serializes the trace (program + counters) to a human-readable dump,
  // mirroring Plumber's periodic stats file.
  std::string Serialize() const;
};

struct TraceOptions {
  double trace_seconds = 0.25;
  int64_t max_batches = 0;  // optional cap
  MachineSpec machine;
  // Clear accumulated stats and read log before tracing.
  bool reset_stats = true;
  // Run the pipeline for this long before the trace window (excluded
  // from the trace) — e.g. to start filling an injected cache.
  double warmup_seconds = 0;
  // After the warmup, freeze partially-filled caches as complete (the
  // paper's §B steady-state simulation). The trace then observes warm-
  // cache rates instead of one-epoch cache-fill rates.
  bool simulate_cache_steady_state = false;
};

// Runs `pipeline` for the trace window and snapshots stats.
TraceSnapshot CaptureTrace(Pipeline& pipeline, const TraceOptions& options);

// Builds a snapshot from already-accumulated pipeline stats without
// running it (anytime tracing: §B "Tracing Time").
TraceSnapshot SnapshotFromPipeline(Pipeline& pipeline, double wall_seconds,
                                   const MachineSpec& machine);

}  // namespace plumber
