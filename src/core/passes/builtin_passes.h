// The built-in optimizer passes, registered in PassRegistry::Global()
// under the names in comments. ParallelismPass / PrefetchPass /
// CachePass are the three rewrites of the original inline optimizer
// (paper §4.1, §B); BatchSizePass autotunes the execution engine's
// batch size from traced per-element cost.
#pragma once

#include "src/core/passes/pass.h"

namespace plumber {

// "parallelism": re-traces the current graph (at cache steady state if
// one is present), solves the CPU/disk LP, and applies the integer
// parallelism suggestions (paper §4.3).
class ParallelismPass : public OptimizerPass {
 public:
  const char* name() const override { return "parallelism"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "prefetch": injects (or resizes) a root prefetch proportional to
// pipeline idleness (paper §4.1). Plans from the latest model;
// idempotent.
class PrefetchPass : public OptimizerPass {
 public:
  const char* name() const override { return "prefetch"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "cache": inserts a cache after the best cacheable node that fits the
// machine's memory budget (paper §4.3 "Memory"); skips graphs that
// already contain one. Honors OptimizeOptions::enumerate_caches.
class CachePass : public OptimizerPass {
 public:
  const char* name() const override { return "cache"; }
  // Caching frees the cores of the cached-away subtree; a re-trace +
  // re-solve redistributes them (the default schedule's trailing
  // "parallelism").
  const char* followup() const override { return "parallelism"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "batch": picks the execution engine's batch size (how many elements
// parallel operators claim and hand off per lock acquisition) from the
// traced per-element cost of the bottleneck parallel stage, and records
// it in the graph via rewriter::SetEngineBatchSize. Cheap UDFs at high
// parallelism are engine-overhead-bound and get a large batch;
// expensive or latency-bound stages stay at 1 (results are identical at
// any batch size, so this is a pure throughput knob). Not in the
// default schedule; opt in via "...,batch" or Flow::OptimizeWith.
class BatchSizePass : public OptimizerPass {
 public:
  // Per-element engine overhead (queue handoff + input-lock traffic)
  // the batch amortizes, from the bench_micro_engine cheap-UDF sweep.
  static constexpr double kPerElementOverheadNs = 2000;
  // The pass sizes the batch so amortized overhead is at most this
  // fraction of the bottleneck stage's per-element work.
  static constexpr double kTargetOverheadFraction = 0.1;
  static constexpr int kMaxEngineBatch = 64;

  const char* name() const override { return "batch"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "cache_tiers": tier-aware cache placement (paper §4.1 "Extensions").
// Dispatches the CachePass decision across storage tiers via
// PlanCacheTiered: in-memory placement when the materialization fits
// the machine's memory budget (then the rewrite is bit-identical to
// CachePass), disk placement onto the machine's modeled scratch device
// when memory is too small but the scratch tier has the capacity AND
// the bandwidth to serve the materialization at least as fast as the
// uncached pipeline would run. Skips graphs that already contain a
// cache of either tier. Not in the default schedule; opt in via
// "...,cache_tiers".
class CachePlacementPass : public OptimizerPass {
 public:
  const char* name() const override { return "cache_tiers"; }
  // Same reason as CachePass: a cache frees the cached-away subtree's
  // cores; a re-solve redistributes them.
  const char* followup() const override { return "parallelism"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "shard_sources": splits a disk-bound pipeline's file source into N
// shard sources merged by a shard_merge op (rewriter::ShardSource).
// Each shard reads its round-robin partition of the file list against
// its own modeled device (ShardDevicePool), so aggregate source
// bandwidth scales by N. N is solved from the trace: the smallest
// shard count whose combined disk bound clears the CPU-bound rate,
// ceil(cpu_bound_rate / disk_bound_rate), clamped to [2, min(kMaxShards,
// num source files)]. No-op unless the LP says the pipeline is
// disk-limited. Not in the default schedule; opt in via
// "...,shard_sources".
class ShardSourcesPass : public OptimizerPass {
 public:
  static constexpr int kMaxShards = 8;

  const char* name() const override { return "shard_sources"; }
  // Sharding shifts the bottleneck from the disk back to the CPU
  // stages; a re-solve retunes their parallelism for the new rate.
  const char* followup() const override { return "parallelism"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

}  // namespace plumber
