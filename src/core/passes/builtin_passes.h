// The built-in optimizer passes, registered in PassRegistry::Global()
// under the names in comments. ParallelismPass / PrefetchPass /
// CachePass are the three rewrites of the original inline optimizer
// (paper §4.1, §B); BatchSizePass autotunes the execution engine's
// batch size from traced per-element cost.
#pragma once

#include "src/core/passes/pass.h"

namespace plumber {

// "parallelism": re-traces the current graph (at cache steady state if
// one is present), solves the CPU/disk LP, and applies the integer
// parallelism suggestions (paper §4.3).
class ParallelismPass : public OptimizerPass {
 public:
  const char* name() const override { return "parallelism"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "prefetch": injects (or resizes) a root prefetch proportional to
// pipeline idleness (paper §4.1). Plans from the latest model;
// idempotent.
class PrefetchPass : public OptimizerPass {
 public:
  const char* name() const override { return "prefetch"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "cache": inserts a cache after the best cacheable node that fits the
// machine's memory budget (paper §4.3 "Memory"); skips graphs that
// already contain one. Honors OptimizeOptions::enumerate_caches.
class CachePass : public OptimizerPass {
 public:
  const char* name() const override { return "cache"; }
  // Caching frees the cores of the cached-away subtree; a re-trace +
  // re-solve redistributes them (the default schedule's trailing
  // "parallelism").
  const char* followup() const override { return "parallelism"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

// "batch": picks the execution engine's batch size (how many elements
// parallel operators claim and hand off per lock acquisition) from the
// traced per-element cost of the bottleneck parallel stage, and records
// it in the graph via rewriter::SetEngineBatchSize. Cheap UDFs at high
// parallelism are engine-overhead-bound and get a large batch;
// expensive or latency-bound stages stay at 1 (results are identical at
// any batch size, so this is a pure throughput knob). Not in the
// default schedule; opt in via "...,batch" or Flow::OptimizeWith.
class BatchSizePass : public OptimizerPass {
 public:
  // Per-element engine overhead (queue handoff + input-lock traffic)
  // the batch amortizes, from the bench_micro_engine cheap-UDF sweep.
  static constexpr double kPerElementOverheadNs = 2000;
  // The pass sizes the batch so amortized overhead is at most this
  // fraction of the bottleneck stage's per-element work.
  static constexpr double kTargetOverheadFraction = 0.1;
  static constexpr int kMaxEngineBatch = 64;

  const char* name() const override { return "batch"; }
  StatusOr<PassReport> Run(OptimizationContext& ctx) const override;
};

}  // namespace plumber
