// PassRegistry: the name -> OptimizerPass factory table, and
// PassSchedule: a validated, ordered list of pass names parsed from a
// string like "parallelism,prefetch,cache,parallelism".
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/passes/pass.h"

namespace plumber {

// The schedule PlumberOptimizer runs when none is specified. It
// reproduces the pre-framework optimizer exactly: one trace feeds LP
// parallelism, prefetch injection, and cache insertion; a second
// parallelism pass re-traces (at cache steady state, if one was
// injected) and redistributes the freed cores.
inline constexpr char kDefaultPassSchedule[] =
    "parallelism,prefetch,cache,parallelism";

class PassRegistry {
 public:
  using Factory = std::function<std::unique_ptr<OptimizerPass>()>;

  // The process-wide registry, pre-populated with the built-in passes
  // in their canonical order: parallelism, prefetch, cache, batch.
  static PassRegistry& Global();

  Status Register(const std::string& name, Factory factory);
  bool Has(const std::string& name) const;
  StatusOr<std::unique_ptr<OptimizerPass>> Create(
      const std::string& name) const;
  // Names in registration order (so schedule generators — the ablation
  // bench — sweep passes in a meaningful cumulative order).
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

// An ordered list of pass names. Parse validates every name against
// the registry up front, so a typo fails with InvalidArgument before
// any tracing happens.
class PassSchedule {
 public:
  // Parses a comma-separated schedule ("parallelism, prefetch" —
  // whitespace around names is ignored). An empty string is the empty
  // schedule; an empty component or unknown pass name is
  // InvalidArgument. Passes may repeat (the default schedule runs
  // parallelism twice).
  static StatusOr<PassSchedule> Parse(
      const std::string& spec,
      const PassRegistry& registry = PassRegistry::Global());

  const std::vector<std::string>& passes() const { return passes_; }
  bool empty() const { return passes_.empty(); }
  std::string ToString() const;

 private:
  std::vector<std::string> passes_;
};

// Joins pass names with `sep` — the inverse of PassSchedule::Parse for
// the default "," separator, shared by every schedule-string builder.
std::string JoinPassNames(const std::vector<std::string>& names,
                          const std::string& sep = ",");

}  // namespace plumber
