#include "src/core/passes/pass_registry.h"

#include "src/core/passes/builtin_passes.h"

namespace plumber {

PassRegistry& PassRegistry::Global() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    (void)r->Register("parallelism",
                      [] { return std::make_unique<ParallelismPass>(); });
    (void)r->Register("prefetch",
                      [] { return std::make_unique<PrefetchPass>(); });
    (void)r->Register("cache", [] { return std::make_unique<CachePass>(); });
    (void)r->Register("batch",
                      [] { return std::make_unique<BatchSizePass>(); });
    (void)r->Register("cache_tiers",
                      [] { return std::make_unique<CachePlacementPass>(); });
    (void)r->Register("shard_sources",
                      [] { return std::make_unique<ShardSourcesPass>(); });
    return r;
  }();
  return *registry;
}

Status PassRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) return InvalidArgumentError("empty pass name");
  if (name.find(',') != std::string::npos ||
      name.find(' ') != std::string::npos) {
    return InvalidArgumentError("pass name must be schedule-safe: " + name);
  }
  if (Has(name)) return AlreadyExistsError("pass already registered: " + name);
  factories_.emplace_back(name, std::move(factory));
  return OkStatus();
}

bool PassRegistry::Has(const std::string& name) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) return true;
  }
  return false;
}

StatusOr<std::unique_ptr<OptimizerPass>> PassRegistry::Create(
    const std::string& name) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) return factory();
  }
  return NotFoundError("no such optimizer pass: " + name);
}

std::vector<std::string> PassRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

StatusOr<PassSchedule> PassSchedule::Parse(const std::string& spec,
                                           const PassRegistry& registry) {
  PassSchedule schedule;
  if (spec.empty()) return schedule;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(start, comma - start);
    // Trim surrounding whitespace.
    const size_t first = name.find_first_not_of(" \t");
    if (first == std::string::npos) {
      return InvalidArgumentError("empty pass name in schedule: \"" + spec +
                                  "\"");
    }
    name = name.substr(first, name.find_last_not_of(" \t") - first + 1);
    if (!registry.Has(name)) {
      return InvalidArgumentError("unknown optimizer pass \"" + name +
                                  "\" in schedule (known: " +
                                  JoinPassNames(registry.Names(), ", ") +
                                  ")");
    }
    schedule.passes_.push_back(std::move(name));
    start = comma + 1;
  }
  return schedule;
}

std::string PassSchedule::ToString() const { return JoinPassNames(passes_); }

std::string JoinPassNames(const std::vector<std::string>& names,
                          const std::string& sep) {
  std::string out;
  for (const std::string& name : names) {
    out += out.empty() ? name : sep + name;
  }
  return out;
}

}  // namespace plumber
