// The optimizer pass framework (paper §4.1 "Optimizer", §B).
//
// The paper describes the optimizer as an extensible sequence of graph
// rewrites; this layer makes that literal. Each rewrite is an
// OptimizerPass with a registry name and a Run method that mutates the
// graph held by an OptimizationContext and returns a typed PassReport.
// PlumberOptimizer::Optimize is now just "parse a PassSchedule, run its
// passes in order" — new rewrites (batch autotuning, sharded sources,
// multi-tier cache placement) plug in without touching the driver, and
// ablations are schedule strings instead of bespoke flag combinations.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cache_tiers.h"
#include "src/core/model.h"
#include "src/core/planner.h"
#include "src/core/tracer.h"

namespace plumber {

struct OptimizeOptions;

// What one pass did: a human-readable summary plus the typed decision
// the pass produced (only the producing pass fills its field). Consumed
// by OptimizeResult::pass_reports, diagnose tooling, and the ablation
// bench.
struct PassReport {
  std::string pass;        // registry name of the pass that ran
  bool changed = false;    // true if the pass rewrote the graph
  // Observed rate (minibatches/sec) of the trace the pass consumed;
  // 0 if the pass did not consult a model.
  double traced_rate = 0;
  std::string summary;     // one line: the decision, or why none

  // Typed decision payloads.
  LpPlan plan;                 // ParallelismPass
  PrefetchDecision prefetch;   // PrefetchPass
  CacheDecision cache;         // CachePass
  int engine_batch_size = 0;   // BatchSizePass (0 = left untouched)
  TieredCacheDecision tiered_cache;  // CachePlacementPass
  int shard_count = 0;         // ShardSourcesPass (0 = not sharded)
};

// The state a pass schedule threads through its passes: the current
// graph, the latest trace/model of it, the budget (via OptimizeOptions,
// which owns the MachineSpec), and the re-trace hook passes use to
// refresh the model after rewrites. Passes mutate graph() and must call
// MarkGraphChanged() so later passes know the model is stale.
class OptimizationContext {
 public:
  using RetraceHook = std::function<StatusOr<TraceSnapshot>(const GraphDef&)>;

  // `options` must outlive the context (PlumberOptimizer owns both).
  // The default re-trace hook instantiates the graph with
  // options.MakePipelineOptions() and captures a bounded trace,
  // reproducing the cache-steady-state semantics of the pre-framework
  // optimizer: once the graph contains a cache, re-traces warm it for
  // options.cache_warmup_seconds and freeze it (§B truncation trick) so
  // the LP can redistribute the cores the cached subtree frees.
  OptimizationContext(GraphDef graph, const OptimizeOptions& options);

  OptimizationContext(const OptimizationContext&) = delete;
  OptimizationContext& operator=(const OptimizationContext&) = delete;

  GraphDef& graph() { return graph_; }
  const GraphDef& graph() const { return graph_; }
  const OptimizeOptions& options() const { return *options_; }

  // Model of the most recent trace, tracing the current graph first if
  // none has been taken yet. The model may be stale with respect to
  // graph() — passes that plan from already-observed behavior (prefetch
  // sizing, cache placement) use this, mirroring the pre-framework
  // optimizer where one trace per iteration fed all three passes.
  StatusOr<const PipelineModel*> LatestModel();

  // Like LatestModel, but re-traces whenever the graph changed since
  // the last trace. Passes whose decisions depend on the rewritten
  // pipeline's empirical rates (the LP parallelism pass) use this.
  StatusOr<const PipelineModel*> FreshModel();

  // Declares that graph() was mutated; the next FreshModel re-traces.
  void MarkGraphChanged() { graph_changed_ = true; }

  const TraceSnapshot& trace() const { return trace_; }
  bool has_model() const { return model_.has_value(); }
  // Observed rate of the last trace taken (0 before any trace).
  double last_traced_rate() const { return last_traced_rate_; }

  // Test seam: replaces pipeline instantiation + tracing.
  void set_retrace_hook(RetraceHook hook) { hook_ = std::move(hook); }

 private:
  Status Retrace();

  const OptimizeOptions* options_;
  GraphDef graph_;
  TraceSnapshot trace_;
  std::optional<PipelineModel> model_;
  bool graph_changed_ = false;
  double last_traced_rate_ = 0;
  RetraceHook hook_;
};

// Interface every optimizer rewrite implements. Passes are stateless
// (all state lives in the context), so one instance can serve any
// number of Run calls.
class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;

  // Registry name, also the token used in schedule strings.
  virtual const char* name() const = 0;

  // Pass to schedule right after this one when generating schedules
  // (the default schedule, the ablation bench's cumulative sweep):
  // e.g. the cache pass wants a re-parallelism so the LP can
  // redistribute the cores a cache frees. nullptr = none. Purely a
  // scheduling hint — explicit schedule strings are run verbatim.
  virtual const char* followup() const { return nullptr; }

  // Runs the pass against the context's current graph. A pass that
  // decides not to rewrite returns an unchanged report (changed=false)
  // with the reason in summary; an error status aborts the schedule.
  virtual StatusOr<PassReport> Run(OptimizationContext& ctx) const = 0;
};

}  // namespace plumber
