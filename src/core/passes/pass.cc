#include "src/core/passes/pass.h"

#include "src/core/optimizer.h"
#include "src/core/rewriter.h"

namespace plumber {

OptimizationContext::OptimizationContext(GraphDef graph,
                                         const OptimizeOptions& options)
    : options_(&options), graph_(std::move(graph)) {
  hook_ = [this](const GraphDef& g) -> StatusOr<TraceSnapshot> {
    ASSIGN_OR_RETURN(auto pipeline,
                     Pipeline::Create(g, options_->MakePipelineOptions()));
    TraceOptions topts;
    topts.trace_seconds = options_->trace_seconds;
    topts.machine = options_->machine;
    if (rewriter::HasOp(g, "cache")) {
      // Re-tracing a pipeline that now contains a cache: fill briefly,
      // then freeze the cache so the trace reflects steady state and
      // the LP can redistribute the cores the cached subtree frees
      // (paper §4.1 "Optimizer" / §B truncation trick).
      topts.warmup_seconds = options_->cache_warmup_seconds;
      topts.simulate_cache_steady_state = true;
    }
    TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    return trace;
  };
}

Status OptimizationContext::Retrace() {
  ASSIGN_OR_RETURN(trace_, hook_(graph_));
  ASSIGN_OR_RETURN(PipelineModel model,
                   PipelineModel::Build(trace_, options_->udfs));
  model_.emplace(std::move(model));
  last_traced_rate_ = model_->observed_rate();
  graph_changed_ = false;
  return OkStatus();
}

StatusOr<const PipelineModel*> OptimizationContext::LatestModel() {
  if (!model_.has_value()) RETURN_IF_ERROR(Retrace());
  return &*model_;
}

StatusOr<const PipelineModel*> OptimizationContext::FreshModel() {
  if (!model_.has_value() || graph_changed_) RETURN_IF_ERROR(Retrace());
  return &*model_;
}

}  // namespace plumber
