#include "src/core/passes/builtin_passes.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/core/optimizer.h"
#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"

namespace plumber {

StatusOr<PassReport> ParallelismPass::Run(OptimizationContext& ctx) const {
  PassReport report;
  report.pass = name();
  ASSIGN_OR_RETURN(const PipelineModel* model, ctx.FreshModel());
  report.traced_rate = model->observed_rate();
  report.plan = PlanAllocation(*model, ctx.options().lp_options);
  RETURN_IF_ERROR(rewriter::ApplyParallelismPlan(&ctx.graph(), report.plan));
  ctx.MarkGraphChanged();
  report.changed = true;
  std::ostringstream os;
  os << "lp rate=" << report.plan.predicted_rate
     << " bottleneck=" << report.plan.bottleneck;
  // Surface the binding resource class next to the rate so a pass log
  // shows *why* the rate stops where it does.
  if (report.plan.network_limited) {
    os << " network_limited";
  } else if (report.plan.disk_limited) {
    os << " disk_limited";
  }
  report.summary = os.str();
  return report;
}

StatusOr<PassReport> PrefetchPass::Run(OptimizationContext& ctx) const {
  PassReport report;
  report.pass = name();
  ASSIGN_OR_RETURN(const PipelineModel* model, ctx.LatestModel());
  report.traced_rate = model->observed_rate();
  report.prefetch = PlanPrefetch(*model);
  RETURN_IF_ERROR(rewriter::EnsureRootPrefetch(&ctx.graph(),
                                               report.prefetch.root_buffer));
  ctx.MarkGraphChanged();
  report.changed = true;
  report.summary =
      "prefetch buffer=" + std::to_string(report.prefetch.root_buffer);
  return report;
}

StatusOr<PassReport> CachePass::Run(OptimizationContext& ctx) const {
  PassReport report;
  report.pass = name();
  // HasCacheOp matches caches of any tier, so "cache,cache_tiers" (in
  // either order) can never double-insert.
  if (rewriter::HasCacheOp(ctx.graph())) {
    report.summary = "cache already present; skipped";
    return report;
  }
  ASSIGN_OR_RETURN(const PipelineModel* model, ctx.LatestModel());
  report.traced_rate = model->observed_rate();
  CachePlanOptions copts;
  copts.memory_bytes = ctx.options().machine.memory_bytes;
  report.cache = ctx.options().enumerate_caches
                     ? PlanCacheByEnumeration(*model, copts,
                                              ctx.options().lp_options)
                     : PlanCache(*model, copts);
  if (!report.cache.feasible) {
    report.summary = "no cacheable materialization fits in memory";
    return report;
  }
  RETURN_IF_ERROR(
      rewriter::InjectCache(&ctx.graph(), report.cache.node).status());
  ctx.MarkGraphChanged();
  report.changed = true;
  std::ostringstream os;
  os << "cache after " << report.cache.node << " ("
     << static_cast<uint64_t>(report.cache.materialized_bytes) << " bytes)";
  report.summary = os.str();
  return report;
}

StatusOr<PassReport> BatchSizePass::Run(OptimizationContext& ctx) const {
  PassReport report;
  report.pass = name();
  // > 0 is an explicit user choice — including 1, the classic
  // element-at-a-time engine; only the unset default (0) is autotuned.
  if (ctx.options().engine_batch_size > 0) {
    report.summary = "explicit engine_batch_size=" +
                     std::to_string(ctx.options().engine_batch_size) +
                     " set; autotune skipped";
    return report;
  }
  ASSIGN_OR_RETURN(const PipelineModel* model, ctx.LatestModel());
  report.traced_rate = model->observed_rate();

  // Engine batching amortizes per-element queue handoffs, which only
  // exist on queue-backed (parallelism >= 2) stages. The stage whose
  // overhead bounds throughput is the parallel stage with the lowest
  // aggregate capacity; its traced per-element cost decides the batch.
  // Parallelism is read from the current graph (post-LP), cost from the
  // latest model (stage service times don't change with parallelism).
  const NodeModel* bottleneck = nullptr;
  int bottleneck_parallelism = 1;
  double bottleneck_capacity = std::numeric_limits<double>::infinity();
  // Stages too cheap for the model to rate (rate_per_core == 0) can't
  // bound throughput; they only stand in when no rated stage exists —
  // then the pipeline is engine-overhead-bound by definition.
  const NodeModel* cheapest_unrated = nullptr;
  int cheapest_unrated_parallelism = 1;
  for (const NodeDef& node : ctx.graph().nodes()) {
    if (!OpSupportsParallelism(node.op)) continue;
    const int parallelism =
        static_cast<int>(node.GetInt(kAttrParallelism, 1));
    if (parallelism < 2) continue;
    const NodeModel* nm = model->Find(node.name);
    if (nm == nullptr || nm->completions == 0) continue;
    if (nm->rate_per_core <= 0) {
      if (cheapest_unrated == nullptr ||
          nm->service_seconds < cheapest_unrated->service_seconds) {
        cheapest_unrated = nm;
        cheapest_unrated_parallelism = parallelism;
      }
      continue;
    }
    const double capacity = nm->rate_per_core * parallelism;
    if (capacity < bottleneck_capacity) {
      bottleneck_capacity = capacity;
      bottleneck = nm;
      bottleneck_parallelism = parallelism;
    }
  }
  if (bottleneck == nullptr) {
    bottleneck = cheapest_unrated;
    bottleneck_parallelism = cheapest_unrated_parallelism;
  }
  if (bottleneck == nullptr) {
    report.summary = "no parallel stage to amortize; engine batch stays 1";
    return report;
  }

  const double service_seconds = bottleneck->service_seconds;
  const double overhead_seconds = kPerElementOverheadNs * 1e-9;
  // Smallest power of two so that overhead/batch <= fraction * service;
  // stages whose work already dwarfs the overhead stay at 1.
  int batch = 1;
  const double needed =
      overhead_seconds /
      std::max(kTargetOverheadFraction * service_seconds, 1e-12);
  while (batch < kMaxEngineBatch && static_cast<double>(batch) < needed) {
    batch *= 2;
  }
  std::ostringstream stage;
  stage << bottleneck->name << " at "
        << static_cast<int64_t>(service_seconds * 1e9) << "ns/elem, p="
        << bottleneck_parallelism;
  if (batch <= 1) {
    report.summary = "per-element work dominates engine overhead (" +
                     stage.str() + "); engine batch stays 1";
    return report;
  }
  RETURN_IF_ERROR(rewriter::SetEngineBatchSize(&ctx.graph(), batch));
  ctx.MarkGraphChanged();
  report.changed = true;
  report.engine_batch_size = batch;
  report.summary =
      "engine batch " + std::to_string(batch) + " (" + stage.str() + ")";
  return report;
}

StatusOr<PassReport> CachePlacementPass::Run(OptimizationContext& ctx) const {
  PassReport report;
  report.pass = name();
  if (rewriter::HasCacheOp(ctx.graph())) {
    report.summary = "cache already present; skipped";
    return report;
  }
  ASSIGN_OR_RETURN(const PipelineModel* model, ctx.LatestModel());
  report.traced_rate = model->observed_rate();
  const MachineSpec& machine = ctx.options().machine;
  TieredCachePlanOptions topts;
  topts.memory_bytes = machine.memory_bytes;
  topts.disk_free_bytes = machine.scratch_bytes;
  topts.disk_read_bandwidth = machine.scratch.max_bandwidth;
  report.tiered_cache =
      PlanCacheTiered(*model, topts, ctx.options().lp_options);
  if (!report.tiered_cache.feasible) {
    report.summary = machine.scratch_bytes > 0
                         ? "no materialization fits memory, and the scratch "
                           "tier cannot hold or serve one; skipped"
                         : "no cacheable materialization fits in memory "
                           "(no scratch tier configured); skipped";
    return report;
  }
  RETURN_IF_ERROR(rewriter::InjectCache(&ctx.graph(),
                                        report.tiered_cache.node,
                                        report.tiered_cache.tier)
                      .status());
  ctx.MarkGraphChanged();
  report.changed = true;
  std::ostringstream os;
  os << "cache (" << CacheTierName(report.tiered_cache.tier) << ") after "
     << report.tiered_cache.node << " ("
     << static_cast<uint64_t>(report.tiered_cache.materialized_bytes)
     << " bytes)";
  if (report.tiered_cache.tier == CacheTier::kDisk) {
    os << " serve_rate=" << report.tiered_cache.disk_serve_rate;
  }
  report.summary = os.str();
  return report;
}

StatusOr<PassReport> ShardSourcesPass::Run(OptimizationContext& ctx) const {
  PassReport report;
  report.pass = name();
  if (rewriter::HasOp(ctx.graph(), "shard_merge")) {
    report.summary = "source already sharded; skipped";
    return report;
  }
  if (ctx.options().lp_options.disk_bandwidth <= 0) {
    report.summary = "no modeled disk bandwidth; skipped";
    return report;
  }
  ASSIGN_OR_RETURN(const PipelineModel* model, ctx.LatestModel());
  report.traced_rate = model->observed_rate();
  const LpPlan plan = PlanAllocation(*model, ctx.options().lp_options);
  report.plan = plan;
  // A NIC-capped pipeline gains nothing from sharding: every shard's
  // bytes still cross the same wire, so N disks cannot feed a rate the
  // network refuses to carry. Refuse rather than spend worker threads.
  if (plan.network_limited) {
    std::ostringstream os;
    os << "pipeline is network-limited (nic bound "
       << plan.network_bound_rate
       << "); sharding disks cannot raise a NIC-capped rate; skipped";
    report.summary = os.str();
    return report;
  }
  if (!plan.disk_limited || plan.disk_bound_rate <= 0) {
    report.summary = "pipeline is not disk-limited; skipped";
    return report;
  }

  // The shardable source: a record reader over a file_list child.
  std::string reader;
  std::string prefix;
  for (const NodeDef& node : ctx.graph().nodes()) {
    if (node.op != "tfrecord" && node.op != "remote_read" &&
        node.op != "interleave") {
      continue;
    }
    if (node.inputs.size() != 1) continue;
    const NodeDef* child = ctx.graph().FindNode(node.inputs[0]);
    if (child == nullptr || child->op != "file_list") continue;
    reader = node.name;
    prefix = child->GetString(kAttrPrefix);
    break;
  }
  if (reader.empty()) {
    report.summary = "no file-backed source reader; skipped";
    return report;
  }
  // Round-robin partitioning caps useful shards at the file count: a
  // shard with no files is a worker thread spinning on an empty list.
  int num_files = kMaxShards;
  if (ctx.options().fs != nullptr) {
    num_files = static_cast<int>(ctx.options().fs->List(prefix).size());
  }
  if (num_files < 2) {
    report.summary = "fewer than 2 source files; cannot shard";
    return report;
  }
  // Smallest N whose combined disk bound clears the target rate: the
  // CPU bound, or the NIC bound when a modeled network would cap the
  // pipeline first — asking for more disks than the wire can feed just
  // wastes reader threads.
  double target_rate = plan.cpu_bound_rate;
  if (plan.network_bound_rate >= 0 && plan.network_bound_rate < target_rate) {
    target_rate = plan.network_bound_rate;
  }
  const int want =
      static_cast<int>(std::ceil(target_rate / plan.disk_bound_rate));
  const int shards =
      std::min({std::max(2, want), kMaxShards, num_files});

  ASSIGN_OR_RETURN(const std::string merge,
                   rewriter::ShardSource(&ctx.graph(), reader, shards));
  ctx.MarkGraphChanged();
  report.changed = true;
  report.shard_count = shards;
  std::ostringstream os;
  os << shards << " shards of " << reader << " (disk bound "
     << plan.disk_bound_rate << " vs cpu bound " << plan.cpu_bound_rate
     << ") merged at " << merge;
  report.summary = os.str();
  return report;
}

}  // namespace plumber
