// Multi-job core arbitration: one machine core budget split across N
// concurrently running pipeline graphs (the serving-side extension of
// paper §4.3's single-pipeline max-min allocation).
//
// Fairness model: *weighted* maximin over job rates, allocated in SLO
// *tiers*. Each job j exposes its parallelizable stages (rate-per-core
// R_i); running job j at rate X costs sum_i X / R_i cores, and a job's
// sequential stages cap its achievable rate. Within one tier,
// water-filling equalizes the weight-normalized rate X_j / w_j of
// every uncapped job — a weight-3 job targets 3x the rate (and so
// ~3x the cores) of a weight-1 peer — so no job starves while another
// hoards cores, and a job whose cap binds releases its surplus to the
// rest of its tier (work conservation within a tier).
//
// Tiers implement SLO preemption: tier 0 (interactive) is allocated
// first from the whole budget minus a *floor reservation* for every
// lower tier (one core per costed stage, so parked jobs keep
// progressing instead of deadlocking on a zero-worker pool); tier 1
// (batch) water-fills whatever tier 0 actually consumed the budget
// down to; and so on. Cores a capped tier cannot absorb flow to the
// next tier rather than idling (work conservation across tiers), and
// MultiJobPlan::unused_cores records what no job could absorb at all.
// With every demand in one tier at weight 1 the plan is bit-identical
// to the original unweighted maximin water-fill.
//
// Within each job the budget is then split across its stages by the
// existing single-pipeline solver, and integerized the same way the
// planner does (floor + largest remainder, min 1 worker per stage —
// the min-1 grant is the preemption floor).
//
// Rates come from the traced PipelineModel when the optimizer stamped
// them into the graph (kAttrTracedRate); DemandFromGraph otherwise
// builds the untraced fallback (uniform rate 1 per tunable stage),
// under which the split degenerates to equal rates = cores
// proportional to stage counts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/lp/maximin_allocator.h"
#include "src/pipeline/graph_def.h"

namespace plumber {

// One live job's demand on the shared machine.
struct JobDemand {
  std::string job_id;
  // Parallelizable stages (name + rate per core); sequential = true
  // entries cap the job's rate at R_i instead of consuming budget.
  std::vector<MaxMinStage> stages;
  // Upper bound on each stage's integer grant (the configured knob):
  // arbitration only ever scales a job down from what the user or
  // optimizer configured, never silently above it. Empty = uncapped.
  std::map<std::string, int> max_parallelism;
  // Weighted-fairness share multiplier within the job's tier (the
  // JobOptions::priority of the submitting job). <= 0 is treated as 1.
  double weight = 1.0;
  // Allocation tier (the SloClass ordinal when SLO preemption is on):
  // lower tiers are allocated first; higher tiers are guaranteed only
  // their floor (one core per stage) while a lower tier is hungry.
  int tier = 0;
};

struct MultiJobPlan {
  // The equalized weight-normalized rate of the *lowest populated
  // tier* (rate of a weight-1 job at its waterline); capped jobs run
  // below it, higher tiers at whatever budget flowed down to them.
  double fair_rate = 0;
  double cores_used = 0;
  // Budget no job could absorb (every demand frozen at its cap with
  // cores left over) — nonzero means the machine is genuinely larger
  // than the configured demand, not a scheduling loss.
  double unused_cores = 0;
  // Per-job plan: theta + integer parallelism grants, keyed by job_id.
  // Feed each to rewriter::ApplyParallelismPlan / the governor.
  std::map<std::string, LpPlan> jobs;
};

// Splits `num_cores` across the demands (see the tier/weight model
// above). Jobs with no parallelizable stages receive an empty plan
// (they run sequentially regardless).
MultiJobPlan PlanMultiJobAllocation(const std::vector<JobDemand>& demands,
                                    double num_cores);

// Demand from a graph. When the optimizer stamped traced per-core
// rates into the graph (kAttrTracedRate, via rewriter::SetTracedRate),
// each stamped node becomes a stage at its measured rate — tunable
// nodes as parallel stages capped at their configured parallelism
// attr, non-tunable stamped nodes as sequential rate caps — so
// unequal-demand jobs get unequal water-fill shares. Untraced graphs
// fall back to the uniform guess: every tunable node is one stage at
// rate 1, capped at its configured parallelism attr.
//
// Contract: traced mode is ALL-OR-NOTHING per graph. A single stamped
// node switches the whole graph to traced demand, and any *unstamped*
// tunable node is then excluded from the demand entirely — the
// arbiter neither grants it cores nor rewrites its knob, so it keeps
// its configured parallelism unarbitrated (a silent over-grant under
// contention). Mixing measured rates with the uniform-1.0 guess would
// be worse (a fictitious unit-rate stage dwarfs stages measured in
// the thousands/sec), so partial coverage is tolerated but flagged:
// when `warning` is non-null and the graph has tunable nodes both
// with and without stamps, it is filled with a one-line description
// (callers log it; the optimizer warns at stamping time through its
// result log). Full coverage or the untraced fallback leave `warning`
// untouched.
JobDemand DemandFromGraph(std::string job_id, const GraphDef& graph,
                          std::string* warning = nullptr);

}  // namespace plumber
