// Multi-job core arbitration: one machine core budget split across N
// concurrently running pipeline graphs (the serving-side extension of
// paper §4.3's single-pipeline max-min allocation).
//
// Fairness model: maximin over *job rates*. Each job j exposes its
// parallelizable stages (rate-per-core R_i); running job j at rate X
// costs sum_i X / R_i cores, and a job's sequential stages cap its
// achievable rate. Water-filling equalizes the rate of every uncapped
// job — the same objective SolveMaxMin applies to stages within one
// pipeline, lifted one level up — so no job starves while another
// hoards cores, and a job whose sequential cap binds releases its
// surplus to the rest. Within each job the budget is then split across
// its stages by the existing single-pipeline solver, and integerized
// the same way the planner does (floor + largest remainder, min 1
// worker per stage).
//
// Rates come from the traced PipelineModel when the optimizer stamped
// them into the graph (kAttrTracedRate); DemandFromGraph otherwise
// builds the untraced fallback (uniform rate 1 per tunable stage),
// under which the split degenerates to equal rates = cores
// proportional to stage counts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/lp/maximin_allocator.h"
#include "src/pipeline/graph_def.h"

namespace plumber {

// One live job's demand on the shared machine.
struct JobDemand {
  std::string job_id;
  // Parallelizable stages (name + rate per core); sequential = true
  // entries cap the job's rate at R_i instead of consuming budget.
  std::vector<MaxMinStage> stages;
  // Upper bound on each stage's integer grant (the configured knob):
  // arbitration only ever scales a job down from what the user or
  // optimizer configured, never silently above it. Empty = uncapped.
  std::map<std::string, int> max_parallelism;
};

struct MultiJobPlan {
  // The equalized (maximin) job rate; capped jobs run below it.
  double fair_rate = 0;
  double cores_used = 0;
  // Per-job plan: theta + integer parallelism grants, keyed by job_id.
  // Feed each to rewriter::ApplyParallelismPlan / the governor.
  std::map<std::string, LpPlan> jobs;
};

// Splits `num_cores` across the demands. Jobs with no parallelizable
// stages receive an empty plan (they run sequentially regardless).
MultiJobPlan PlanMultiJobAllocation(const std::vector<JobDemand>& demands,
                                    double num_cores);

// Demand from a graph. When the optimizer stamped traced per-core
// rates into the graph (kAttrTracedRate, via rewriter::SetTracedRate),
// each stamped node becomes a stage at its measured rate — tunable
// nodes as parallel stages capped at their configured parallelism
// attr, non-tunable stamped nodes as sequential rate caps — so
// unequal-demand jobs get unequal water-fill shares. Untraced graphs
// fall back to the uniform guess: every tunable node is one stage at
// rate 1, capped at its configured parallelism attr.
JobDemand DemandFromGraph(std::string job_id, const GraphDef& graph);

}  // namespace plumber
