#include "src/core/provisioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace plumber {
namespace {

// Demands to run the pipeline at `target` with everything at or
// upstream of `cache_node` freed ("" = no cache).
ProvisionPlan PlanWithCache(const PipelineModel& model, double target,
                            const std::string& cache_node,
                            double materialized_bytes, double headroom) {
  ProvisionPlan plan;
  plan.cache_node = cache_node;
  plan.uses_cache = !cache_node.empty();
  plan.memory_needed =
      plan.uses_cache
          ? static_cast<uint64_t>(std::ceil(materialized_bytes * headroom))
          : 0;

  // Collect the freed subtree (the cache point and everything upstream).
  std::vector<std::string> freed;
  if (plan.uses_cache) {
    std::vector<std::string> frontier{cache_node};
    while (!frontier.empty()) {
      const std::string current = frontier.back();
      frontier.pop_back();
      freed.push_back(current);
      const NodeModel* nm = model.Find(current);
      if (nm == nullptr) continue;
      for (const auto& input : nm->inputs) frontier.push_back(input);
    }
  }
  auto is_freed = [&](const std::string& name) {
    return std::find(freed.begin(), freed.end(), name) != freed.end();
  };

  double cores = 0;
  for (const auto& node : model.nodes()) {
    if (node.negligible_cost || node.below_cache) continue;
    if (node.rate_per_core <= 0) continue;
    if (is_freed(node.name)) continue;
    const double theta = target / node.rate_per_core * headroom;
    if (!node.parallelizable && theta > 1.0) {
      plan.infeasible_reason =
          "sequential stage '" + node.name + "' sustains at most " +
          std::to_string(node.rate_per_core) + " minibatches/sec";
      return plan;
    }
    plan.theta[node.name] = theta;
    cores += theta;
  }
  plan.cores_needed = cores;
  plan.disk_bandwidth_needed =
      plan.uses_cache ? 0
                      : target * model.DiskBytesPerMinibatch() * headroom;
  plan.feasible = true;
  return plan;
}

// Plans are ordered by cores, then memory: the dominant cost dimension
// first, matching the paper's "minimize cost" framing.
bool Better(const ProvisionPlan& a, const ProvisionPlan& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (std::abs(a.cores_needed - b.cores_needed) > 1e-9) {
    return a.cores_needed < b.cores_needed;
  }
  return a.memory_needed < b.memory_needed;
}

}  // namespace

ProvisionPlan PlanProvision(const PipelineModel& model,
                            const ProvisionRequest& request) {
  const double headroom = std::max(1.0, request.headroom);
  ProvisionPlan best =
      PlanWithCache(model, request.target_rate, "", 0, headroom);
  if (!request.allow_cache) return best;
  for (const auto& node : model.nodes()) {
    if (!node.cacheable || node.materialized_bytes < 0) continue;
    ProvisionPlan candidate =
        PlanWithCache(model, request.target_rate, node.name,
                      node.materialized_bytes, headroom);
    if (Better(candidate, best)) best = candidate;
  }
  return best;
}

CatalogChoice PickCheapestMachine(const PipelineModel& model,
                                  const ProvisionRequest& request,
                                  const std::vector<MachineOffer>& catalog) {
  CatalogChoice choice;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& offer : catalog) {
    // Try the cache-free plan and every cache plan; accept the first
    // that fits this offer's resource vector.
    std::vector<ProvisionPlan> plans;
    plans.push_back(PlanWithCache(model, request.target_rate, "", 0,
                                  std::max(1.0, request.headroom)));
    if (request.allow_cache) {
      for (const auto& node : model.nodes()) {
        if (!node.cacheable || node.materialized_bytes < 0) continue;
        plans.push_back(PlanWithCache(model, request.target_rate, node.name,
                                      node.materialized_bytes,
                                      std::max(1.0, request.headroom)));
      }
    }
    std::sort(plans.begin(), plans.end(), Better);
    for (const auto& plan : plans) {
      if (!plan.feasible) continue;
      if (plan.cores_needed > offer.num_cores) continue;
      if (plan.memory_needed > offer.memory_bytes) continue;
      if (plan.disk_bandwidth_needed > offer.disk_bandwidth) continue;
      if (offer.cost_per_hour < best_cost) {
        best_cost = offer.cost_per_hour;
        choice.feasible = true;
        choice.offer = offer;
        choice.plan = plan;
        choice.cost_per_hour = offer.cost_per_hour;
      }
      break;  // cheapest feasible plan for this offer found
    }
  }
  return choice;
}

}  // namespace plumber
