#include "src/core/optimizer.h"

#include <sstream>

namespace plumber {

PipelineOptions OptimizeOptions::MakePipelineOptions() const {
  PipelineOptions popts;
  popts.fs = fs;
  popts.udfs = udfs;
  popts.cpu_scale = machine.cpu_scale;
  popts.work_model = work_model;
  popts.seed = seed;
  popts.tracing_enabled = true;
  popts.memory_budget_bytes = machine.memory_bytes;
  popts.engine_batch_size = engine_batch_size;
  return popts;
}

PlumberOptimizer::PlumberOptimizer(OptimizeOptions options)
    : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Pipeline>> PlumberOptimizer::MakePipeline(
    GraphDef graph) const {
  return Pipeline::Create(std::move(graph), options_.MakePipelineOptions());
}

StatusOr<OptimizeResult> PlumberOptimizer::Optimize(
    const GraphDef& input) const {
  OptimizeResult result;
  result.graph = input;
  for (int pass = 0; pass < std::max(1, options_.passes); ++pass) {
    ASSIGN_OR_RETURN(auto pipeline, MakePipeline(result.graph));
    TraceOptions topts;
    topts.trace_seconds = options_.trace_seconds;
    topts.machine = options_.machine;
    if (rewriter::HasOp(result.graph, "cache")) {
      // Re-tracing a pipeline that now contains a cache: fill briefly,
      // then freeze the cache so the trace reflects steady state and
      // the LP can redistribute the cores the cached subtree frees
      // (paper §4.1 "Optimizer" / §B truncation trick).
      topts.warmup_seconds = options_.cache_warmup_seconds;
      topts.simulate_cache_steady_state = true;
    }
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    ASSIGN_OR_RETURN(
        PipelineModel model,
        PipelineModel::Build(trace, options_.udfs));
    result.traced_rate = model.observed_rate();

    // Pass A: LP parallelism.
    if (options_.enable_parallelism) {
      result.plan = PlanAllocation(model, options_.lp_options);
      RETURN_IF_ERROR(
          rewriter::ApplyParallelismPlan(&result.graph, result.plan));
      std::ostringstream os;
      os << "pass " << pass << ": lp rate=" << result.plan.predicted_rate
         << " bottleneck=" << result.plan.bottleneck;
      result.log.push_back(os.str());
    }

    // Pass B: prefetch injection (first pass only; idempotent anyway).
    if (options_.enable_prefetch && pass == 0) {
      result.prefetch = PlanPrefetch(model);
      RETURN_IF_ERROR(rewriter::EnsureRootPrefetch(
          &result.graph, result.prefetch.root_buffer));
      result.log.push_back("prefetch buffer=" +
                           std::to_string(result.prefetch.root_buffer));
    }

    // Pass C: cache insertion (once; re-tracing after caching lets the
    // next LP pass redistribute the freed cores).
    if (options_.enable_cache && pass == 0 &&
        !rewriter::HasOp(result.graph, "cache")) {
      CachePlanOptions copts;
      copts.memory_bytes = options_.machine.memory_bytes;
      result.cache = options_.enumerate_caches
                         ? PlanCacheByEnumeration(model, copts,
                                                  options_.lp_options)
                         : PlanCache(model, copts);
      if (result.cache.feasible) {
        RETURN_IF_ERROR(
            rewriter::InjectCache(&result.graph, result.cache.node)
                .status());
        result.log.push_back("cache after " + result.cache.node + " (" +
                             std::to_string(result.cache.materialized_bytes) +
                             " bytes)");
      }
    }
  }
  return result;
}

StatusOr<OptimizeResult> PlumberOptimizer::PickBest(
    const std::vector<GraphDef>& variants) const {
  if (variants.empty()) return InvalidArgumentError("no variants");
  StatusOr<OptimizeResult> best = InvalidArgumentError("unset");
  double best_rate = -1;
  for (size_t i = 0; i < variants.size(); ++i) {
    auto result_or = Optimize(variants[i]);
    if (!result_or.ok()) continue;
    // Evaluate the optimized variant under a benchmark run.
    auto pipeline_or = MakePipeline(result_or->graph);
    if (!pipeline_or.ok()) continue;
    auto iterator_or = (*pipeline_or)->MakeIterator();
    if (!iterator_or.ok()) continue;
    auto iterator = std::move(iterator_or).value();
    if (options_.evaluate_warmup_seconds > 0) {
      // Warm any injected cache on the same iterator tree, then freeze
      // it (§B truncation trick) so variants are compared at steady
      // state, not during cache fill.
      RunOptions warmup;
      warmup.max_seconds = options_.evaluate_warmup_seconds;
      RunIterator(iterator.get(), warmup);
      (*pipeline_or)->SimulateSteadyState();
    }
    RunOptions ropts;
    ropts.max_seconds = options_.evaluate_seconds;
    const RunResult run = RunIterator(iterator.get(), ropts);
    (*pipeline_or)->Cancel();
    if (run.batches_per_second > best_rate) {
      best_rate = run.batches_per_second;
      result_or->picked_variant = static_cast<int>(i);
      best = std::move(result_or);
    }
  }
  if (!best.ok()) return InternalError("no variant optimized successfully");
  return best;
}

}  // namespace plumber
