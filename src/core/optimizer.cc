#include "src/core/optimizer.h"

#include <algorithm>
#include <sstream>

#include "src/core/multi_job_planner.h"
#include "src/core/passes/pass_registry.h"
#include "src/util/logging.h"

namespace plumber {

PipelineOptions OptimizeOptions::MakePipelineOptions() const {
  PipelineOptions popts;
  popts.fs = fs;
  popts.udfs = udfs;
  popts.cpu_scale = machine.cpu_scale;
  popts.work_model = work_model;
  popts.seed = seed;
  popts.tracing_enabled = true;
  popts.memory_budget_bytes = machine.memory_bytes;
  popts.engine_batch_size = engine_batch_size;
  popts.scratch = machine.scratch;
  popts.scratch_budget_bytes = machine.scratch_bytes;
  return popts;
}

std::string OptimizeOptions::EffectiveSchedule() const {
  if (schedule == "none") return "";  // explicitly empty: trace only
  if (!schedule.empty()) return schedule;
  // Legacy derivation: `passes` iterations of the original inline loop
  // (parallelism every iteration; prefetch and cache on the first
  // only). All knobs at their defaults yield kDefaultPassSchedule.
  // Known deviation: with parallelism disabled and passes >= 2, the
  // old loop's later iterations re-traced the rewritten graph (its
  // only effect), so traced_rate reflected the rewrite; the derived
  // schedule runs no trailing pass and reports the input's rate.
  std::vector<std::string> derived;
  for (int pass = 0; pass < std::max(1, passes); ++pass) {
    if (enable_parallelism) derived.push_back("parallelism");
    if (pass == 0 && enable_prefetch) derived.push_back("prefetch");
    if (pass == 0 && enable_cache) derived.push_back("cache");
  }
  return JoinPassNames(derived);
}

PlumberOptimizer::PlumberOptimizer(OptimizeOptions options)
    : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Pipeline>> PlumberOptimizer::MakePipeline(
    GraphDef graph) const {
  return Pipeline::Create(std::move(graph), options_.MakePipelineOptions());
}

StatusOr<OptimizeResult> PlumberOptimizer::Optimize(
    const GraphDef& input) const {
  ASSIGN_OR_RETURN(PassSchedule schedule,
                   PassSchedule::Parse(options_.EffectiveSchedule()));
  OptimizationContext ctx(input, options_);
  OptimizeResult result;
  result.pass_reports.reserve(schedule.passes().size());
  for (const std::string& name : schedule.passes()) {
    ASSIGN_OR_RETURN(std::unique_ptr<OptimizerPass> pass,
                     PassRegistry::Global().Create(name));
    ASSIGN_OR_RETURN(PassReport report, pass->Run(ctx));
    // Fold the typed decisions into the flat result fields (last pass
    // of each kind wins, matching the pre-framework optimizer where the
    // final LP plan overwrote earlier ones).
    if (name == "parallelism") result.plan = report.plan;
    if (name == "prefetch") result.prefetch = report.prefetch;
    if (name == "cache" &&
        (report.cache.feasible || !report.cache.candidates.empty())) {
      result.cache = report.cache;
    }
    if (name == "cache_tiers" && (report.tiered_cache.feasible ||
                                  !report.tiered_cache.candidates.empty())) {
      result.tiered_cache = report.tiered_cache;
    }
    if (name == "shard_sources" && report.shard_count > 0) {
      result.shard_count = report.shard_count;
    }
    result.log.push_back(report.pass + ": " + report.summary);
    result.pass_reports.push_back(std::move(report));
  }
  if (!ctx.has_model()) {
    // Nothing in the schedule consulted a model (e.g. empty schedule /
    // all legacy knobs disabled): still trace once so traced_rate
    // reports the input's observed rate, as the pre-framework
    // optimizer did with every pass disabled.
    RETURN_IF_ERROR(ctx.LatestModel().status());
  } else {
    // Record the measured per-core stage rates in the graph so the
    // multi-job arbiter can water-fill from real demand instead of its
    // uniform fallback when this program is later Submit()ed alongside
    // others. Only after a real schedule: the empty ("none") schedule
    // contracts to return the input byte-for-byte unchanged.
    ASSIGN_OR_RETURN(const PipelineModel* model, ctx.LatestModel());
    for (const MaxMinStage& stage : model->LpStages()) {
      if (ctx.graph().FindNode(stage.name) != nullptr &&
          stage.rate_per_core > 0) {
        RETURN_IF_ERROR(
            rewriter::SetTracedRate(&ctx.graph(), stage.name,
                                    stage.rate_per_core));
      }
    }
    // Traced demand is all-or-nothing per graph (see the
    // DemandFromGraph contract): if the model's stages didn't cover
    // every tunable node, the uncovered ones will dodge multi-job
    // arbitration later. Surface that here, at stamping time, through
    // the pass report path.
    std::string warning;
    (void)DemandFromGraph("optimize", ctx.graph(), &warning);
    if (!warning.empty()) {
      PLOG(Warning) << "optimizer: " << warning;
      result.log.push_back("traced-rates: WARNING " + warning);
    }
  }
  result.graph = std::move(ctx.graph());
  result.traced_rate = ctx.last_traced_rate();
  return result;
}

StatusOr<OptimizeResult> PlumberOptimizer::PickBest(
    const std::vector<GraphDef>& variants) const {
  if (variants.empty()) return InvalidArgumentError("no variants");
  StatusOr<OptimizeResult> best = InvalidArgumentError("unset");
  double best_rate = -1;
  // Failed variants are recorded, not silently skipped: the winner's
  // log carries every failure, and if nothing survives the error below
  // names each variant's failure instead of a generic "none worked".
  std::vector<std::string> failures;
  Status richest = OkStatus();
  const auto record_failure = [&](size_t variant, const char* stage,
                                  const Status& status) {
    failures.push_back("variant " + std::to_string(variant) + " " + stage +
                       " failed: " + status.ToString());
    // Keep the most informative status for the all-failed error: the
    // one with the longest message (ties: first seen).
    if (richest.ok() ||
        status.message().size() > richest.message().size()) {
      richest = status;
    }
  };
  for (size_t i = 0; i < variants.size(); ++i) {
    auto result_or = Optimize(variants[i]);
    if (!result_or.ok()) {
      record_failure(i, "optimize", result_or.status());
      continue;
    }
    // Evaluate the optimized variant under a benchmark run.
    auto pipeline_or = MakePipeline(result_or->graph);
    if (!pipeline_or.ok()) {
      record_failure(i, "instantiation", pipeline_or.status());
      continue;
    }
    auto iterator_or = (*pipeline_or)->MakeIterator();
    if (!iterator_or.ok()) {
      record_failure(i, "iterator creation", iterator_or.status());
      continue;
    }
    auto iterator = std::move(iterator_or).value();
    if (options_.evaluate_warmup_seconds > 0) {
      // Warm any injected cache on the same iterator tree, then freeze
      // it (§B truncation trick) so variants are compared at steady
      // state, not during cache fill.
      RunOptions warmup;
      warmup.max_seconds = options_.evaluate_warmup_seconds;
      RunIterator(iterator.get(), warmup);
      (*pipeline_or)->SimulateSteadyState();
    }
    RunOptions ropts;
    ropts.max_seconds = options_.evaluate_seconds;
    const RunResult run = RunIterator(iterator.get(), ropts);
    (*pipeline_or)->Cancel();
    if (run.batches_per_second > best_rate) {
      best_rate = run.batches_per_second;
      result_or->picked_variant = static_cast<int>(i);
      best = std::move(result_or);
    }
  }
  if (!best.ok()) {
    std::ostringstream os;
    os << "all " << variants.size() << " variants failed to optimize";
    for (const std::string& failure : failures) os << "; " << failure;
    return Status(richest.ok() ? StatusCode::kInternal : richest.code(),
                  os.str());
  }
  for (std::string& failure : failures) {
    best->log.push_back(std::move(failure));
  }
  return best;
}

}  // namespace plumber
