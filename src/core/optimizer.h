// The Plumber optimizer: trace -> model -> LP/cache/prefetch -> rewrite.
//
// This is the "automatic front-end to the tracer" of paper §1/§4.1 and
// the pipeline-optimizer tool of §B: three logical passes (LP
// parallelism, prefetch insertion, cache insertion) iterated (default
// 2x) so the empirical rates reflect the rewritten pipeline. PickBest
// implements the pick_best annotation (§B, Fig. 11): trace several
// signature-equivalent pipelines, optimize each, return the fastest.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/core/rewriter.h"
#include "src/core/tracer.h"

namespace plumber {

struct OptimizeOptions {
  MachineSpec machine;
  // Execution environment. The optimizer derives the PipelineOptions
  // for every pipeline it instantiates from these fields plus `machine`
  // in exactly one place (MakePipelineOptions below), so cpu_scale,
  // seed, and the memory budget cannot diverge between the traced
  // pipeline and the planned machine.
  SimFilesystem* fs = nullptr;
  const UdfRegistry* udfs = nullptr;
  uint64_t seed = 42;
  CpuWorkModel work_model = CpuWorkModel::kTimed;
  // Engine batch size for every pipeline the optimizer instantiates
  // (traces and evaluations), so it measures the same engine the tuned
  // pipeline will run on. 0 = inherit the Session's value when going
  // through Flow::Optimize / Session::OptimizeBest (and behave as 1 —
  // element-at-a-time — when the optimizer is driven directly); >0 is
  // an explicit override that ApplyEnvironment leaves alone. See
  // PipelineOptions::engine_batch_size.
  int engine_batch_size = 0;
  double trace_seconds = 0.3;
  int passes = 2;
  bool enable_parallelism = true;
  bool enable_prefetch = true;
  bool enable_cache = true;
  // Use PlanCacheByEnumeration instead of the greedy chain rule.
  bool enumerate_caches = false;
  LpPlanOptions lp_options;
  // Evaluation window used by PickBest to compare variants.
  double evaluate_seconds = 0.3;
  // Warmup window run on the same iterator before the PickBest
  // evaluation. The paper (§B) notes cache cold-start masks the benefit
  // of a cacheable variant during one epoch; Plumber compares variants
  // at steady state, which the warmup establishes here.
  double evaluate_warmup_seconds = 0.3;
  // Cache-fill window before a steady-state re-trace of a pipeline
  // with an injected cache (§B truncation trick).
  double cache_warmup_seconds = 0.4;

  // The single place instantiation options are derived from the
  // machine + environment (tracing on, cache budget = machine memory).
  PipelineOptions MakePipelineOptions() const;
};

struct OptimizeResult {
  GraphDef graph;
  LpPlan plan;                 // final-pass LP plan
  CacheDecision cache;         // cache decision (pass 1)
  PrefetchDecision prefetch;   // prefetch decision (pass 1)
  double traced_rate = 0;      // observed rate in the final trace
  std::vector<std::string> log;
  int picked_variant = 0;      // PickBest only
};

class PlumberOptimizer {
 public:
  explicit PlumberOptimizer(OptimizeOptions options);

  // Optimizes a single pipeline program.
  StatusOr<OptimizeResult> Optimize(const GraphDef& input) const;

  // Traces and optimizes each signature-equivalent variant, then picks
  // the fastest under a benchmark run.
  StatusOr<OptimizeResult> PickBest(
      const std::vector<GraphDef>& variants) const;

 private:
  StatusOr<std::unique_ptr<Pipeline>> MakePipeline(GraphDef graph) const;

  OptimizeOptions options_;
};

}  // namespace plumber
