// The Plumber optimizer: trace -> model -> pass schedule -> rewrite.
//
// This is the "automatic front-end to the tracer" of paper §1/§4.1 and
// the pipeline-optimizer tool of §B. The rewrites themselves live in
// src/core/passes/ (OptimizerPass implementations resolved through
// PassRegistry); Optimize parses a PassSchedule — by default
// "parallelism,prefetch,cache,parallelism", which reproduces the
// original 2x-iterated three-pass loop — and runs it against an
// OptimizationContext. PickBest implements the pick_best annotation
// (§B, Fig. 11): trace several signature-equivalent pipelines, optimize
// each, return the fastest.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/passes/pass.h"
#include "src/core/planner.h"
#include "src/core/rewriter.h"
#include "src/core/tracer.h"

namespace plumber {

struct OptimizeOptions {
  MachineSpec machine;
  // Execution environment. The optimizer derives the PipelineOptions
  // for every pipeline it instantiates from these fields plus `machine`
  // in exactly one place (MakePipelineOptions below), so cpu_scale,
  // seed, and the memory budget cannot diverge between the traced
  // pipeline and the planned machine.
  SimFilesystem* fs = nullptr;
  const UdfRegistry* udfs = nullptr;
  uint64_t seed = 42;
  CpuWorkModel work_model = CpuWorkModel::kTimed;
  // Engine batch size for every pipeline the optimizer instantiates
  // (traces and evaluations), so it measures the same engine the tuned
  // pipeline will run on. 0 = inherit the Session's value when going
  // through Flow::Optimize / Session::OptimizeBest (and behave as 1 —
  // element-at-a-time — when the optimizer is driven directly); >0 is
  // an explicit override that ApplyEnvironment leaves alone and the
  // "batch" autotuning pass respects (it only tunes the unset
  // default). See PipelineOptions::engine_batch_size.
  int engine_batch_size = 0;
  double trace_seconds = 0.3;
  // Pass schedule, e.g. "parallelism,prefetch,cache,parallelism,batch"
  // (names resolved through PassRegistry::Global()). When empty, the
  // schedule is derived from the legacy knobs below — `passes`
  // iterations of [parallelism, prefetch (first iteration), cache
  // (first iteration)], which with the defaults is exactly
  // kDefaultPassSchedule. When set, it wins and the legacy knobs are
  // ignored; the sentinel "none" means the explicitly empty schedule
  // (run no passes: trace the input once and return it unchanged).
  // See EffectiveSchedule().
  std::string schedule;
  int passes = 2;
  bool enable_parallelism = true;
  bool enable_prefetch = true;
  bool enable_cache = true;
  // Use PlanCacheByEnumeration instead of the greedy chain rule.
  bool enumerate_caches = false;
  LpPlanOptions lp_options;
  // Evaluation window used by PickBest to compare variants.
  double evaluate_seconds = 0.3;
  // Warmup window run on the same iterator before the PickBest
  // evaluation. The paper (§B) notes cache cold-start masks the benefit
  // of a cacheable variant during one epoch; Plumber compares variants
  // at steady state, which the warmup establishes here.
  double evaluate_warmup_seconds = 0.3;
  // Cache-fill window before a steady-state re-trace of a pipeline
  // with an injected cache (§B truncation trick).
  double cache_warmup_seconds = 0.4;

  // The single place instantiation options are derived from the
  // machine + environment (tracing on, cache budget = machine memory).
  PipelineOptions MakePipelineOptions() const;

  // The schedule Optimize will run: `schedule` if set, otherwise the
  // derivation from the legacy enable_*/passes knobs described above.
  std::string EffectiveSchedule() const;
};

struct OptimizeResult {
  GraphDef graph;
  LpPlan plan;                 // last parallelism pass's LP plan
  CacheDecision cache;         // last cache pass's decision
  PrefetchDecision prefetch;   // last prefetch pass's decision
  TieredCacheDecision tiered_cache;  // last cache_tiers pass's decision
  int shard_count = 0;         // shard_sources pass (0 = unsharded)
  double traced_rate = 0;      // observed rate in the final trace
  // One report per scheduled pass, in execution order: what each pass
  // decided and whether it rewrote the graph.
  std::vector<PassReport> pass_reports;
  std::vector<std::string> log;
  int picked_variant = 0;      // PickBest only
};

class PlumberOptimizer {
 public:
  explicit PlumberOptimizer(OptimizeOptions options);

  // Optimizes a single pipeline program.
  StatusOr<OptimizeResult> Optimize(const GraphDef& input) const;

  // Traces and optimizes each signature-equivalent variant, then picks
  // the fastest under a benchmark run.
  StatusOr<OptimizeResult> PickBest(
      const std::vector<GraphDef>& variants) const;

 private:
  StatusOr<std::unique_ptr<Pipeline>> MakePipeline(GraphDef graph) const;

  OptimizeOptions options_;
};

}  // namespace plumber
