// Plumber's operational model of a traced pipeline (paper §4.4, App. A).
//
// Joins a TraceSnapshot with the UDF registry to derive, per Dataset:
//   - visit ratio Vi (completions per root minibatch),
//   - resource-accounted CPU rate Ri (minibatches/sec/core),
//   - disk cost (bytes per minibatch) for sources,
//   - materialization cost (cardinality ni x bytes/element bi),
//   - cacheability (random-UDF transitive closure + finiteness).
// These feed the LP planner, the cache planner, and the bottleneck
// ranking used by the step tuner.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/tracer.h"
#include "src/lp/maximin_allocator.h"
#include "src/pipeline/udf.h"

namespace plumber {

// Sentinel cardinalities (mirroring dataset.h but as doubles).
inline constexpr double kModelInfinite = -1.0;
inline constexpr double kModelUnknown = -2.0;

struct NodeModel {
  std::string name;
  std::string op;
  std::string udf_name;
  std::vector<std::string> inputs;

  uint64_t completions = 0;      // Ci in the trace window
  double cpu_seconds = 0;        // attributed thread-CPU time
  double service_seconds = 0;    // cpu_seconds / Ci (per element)
  double visit_ratio = 0;        // Vi
  double local_ratio = 0;        // ri = Ci / C_consumer
  double rate_per_core = 0;      // Ri, minibatches/sec/core
  double observed_cores = 0;     // cpu_seconds / wall_seconds
  double bytes_per_element = 0;  // bi
  double cardinality = kModelUnknown;     // ni (negative sentinels above)
  double materialized_bytes = -1;         // ni * bi; -1 if unknown/infinite
  double disk_bytes_per_minibatch = 0;    // sources only
  double network_bytes_per_minibatch = 0; // remote_read sources only
  uint64_t bytes_read = 0;
  uint64_t network_bytes = 0;

  int parallelism = 1;
  bool parallelizable = false;  // has a tunable parallelism knob
  bool is_source = false;
  bool negligible_cost = false;  // too little CPU to constrain the LP
  bool random_tainted = false;   // at/after a transitively random UDF
  bool below_cache = false;      // upstream of an existing cache node
  bool cacheable = false;
};

class PipelineModel {
 public:
  // Builds the model; fails if the trace's graph is invalid.
  static StatusOr<PipelineModel> Build(const TraceSnapshot& trace,
                                       const UdfRegistry* udfs);

  // Nodes ordered root-first (consumers before producers).
  const std::vector<NodeModel>& nodes() const { return nodes_; }
  const NodeModel* Find(const std::string& name) const;

  double observed_rate() const { return trace_.observed_rate; }
  double wall_seconds() const { return trace_.wall_seconds; }
  const MachineSpec& machine() const { return trace_.machine; }
  const TraceSnapshot& trace() const { return trace_; }

  // Parallelizable, non-free nodes ranked by ascending current
  // aggregate capacity Ri * parallelism: index 0 is the bottleneck the
  // step tuner should parallelize next (paper §5.1).
  std::vector<std::string> RankBottlenecks() const;

  // CPU LP stages (paper §4.3); excludes negligible-cost and
  // below-cache nodes. Order matches nodes().
  std::vector<MaxMinStage> LpStages() const;

  // Aggregate disk demand: bytes per minibatch across sources.
  double DiskBytesPerMinibatch() const;

  // Aggregate network demand: bytes per minibatch crossing the wire
  // (remote_read sources). Feeds the LP's network rate cap exactly as
  // DiskBytesPerMinibatch feeds the disk cap.
  double NetworkBytesPerMinibatch() const;

  // Dataset-size estimate for a source prefix via subsampled file
  // sizes rescaled by m/n (App. A); also an aggregate over all sources.
  struct SourceSizeEstimate {
    double estimated_bytes = 0;
    uint64_t files_seen = 0;
    uint64_t files_total = 0;
  };
  std::map<std::string, SourceSizeEstimate> EstimateSourceSizes() const;
  double EstimateTotalSourceBytes() const;

  std::string ToString() const;

 private:
  TraceSnapshot trace_;
  std::vector<NodeModel> nodes_;
  std::map<std::string, size_t> index_;
};

}  // namespace plumber
