// Map (sequential + parallel) and filter operators.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <thread>

#include "src/pipeline/channels.h"
#include "src/pipeline/ops.h"
#include "src/util/reorder_ring.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

uint64_t NodeSeed(const PipelineContext* ctx, const NodeDef& def) {
  uint64_t h = ctx->seed;
  for (char c : def.name) h = SplitMix64(h ^ static_cast<uint8_t>(c));
  return h;
}

// ------------------------------------------------------------------ map
class MapDataset : public DatasetBase {
 public:
  MapDataset(NodeDef def, std::vector<DatasetPtr> inputs, const UdfSpec* udf)
      : DatasetBase(std::move(def), std::move(inputs)), udf_(udf) {}

  int64_t Cardinality() const override { return inputs_[0]->Cardinality(); }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

  const UdfSpec* udf() const { return udf_; }
  int parallelism() const {
    return static_cast<int>(def_.GetInt(kAttrParallelism, 1));
  }
  bool deterministic() const { return def_.GetBool(kAttrDeterministic, true); }

 private:
  const UdfSpec* udf_;
};

class SequentialMapIterator : public IteratorBase {
 public:
  SequentialMapIterator(PipelineContext* ctx, IteratorStats* stats,
                        std::unique_ptr<IteratorBase> input,
                        const UdfSpec* udf, uint64_t seed)
      : IteratorBase(ctx, stats), input_(std::move(input)), udf_(udf),
        seed_(seed) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    Element in;
    RETURN_IF_ERROR(input_->GetNext(&in, end));
    if (*end) return OkStatus();
    stats_->RecordConsumed();
    const uint64_t seed = SplitMix64(seed_ ^ in.sequence);
    *out = ExecuteMapUdf(*udf_, std::move(in), ctx_->cpu_scale, seed,
                         ctx_->work_model);
    return OkStatus();
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  const UdfSpec* udf_;
  const uint64_t seed_;
};

// Parallel map: N workers pull from the (serialized) child, execute the
// UDF, and push to a bounded output queue. Deterministic mode restores
// input order with a reorder buffer keyed by a pull-time ticket.
//
// With engine_batch_size > 1 each worker claims a whole vector of
// inputs under one input-lock acquisition, executes the UDF per
// element, and hands the results off in one PushBatch; the consumer
// drains whole batches per queue lock. batch size 1 degenerates to the
// classic element-at-a-time engine.
//
// The worker pool is retargetable while running (multi-tenant
// arbitration): when the pipeline carries a ParallelismGovernor, the
// iterator registers a resize listener and Resize() parks workers
// above the target (they sleep off the input lock) or spawns new ones
// up to it. Order tickets are claimed under the input lock exactly as
// before, so deterministic output is unchanged by any resize history.
class ParallelMapIterator : public IteratorBase {
 public:
  ParallelMapIterator(PipelineContext* ctx, IteratorStats* stats,
                      std::unique_ptr<IteratorBase> input, const UdfSpec* udf,
                      int parallelism, int initial_target, bool deterministic,
                      uint64_t seed)
      : IteratorBase(ctx, stats),
        input_(std::move(input)),
        udf_(udf),
        configured_(parallelism),
        deterministic_(deterministic),
        seed_(seed),
        // Deep enough to ride out bursty consumers (a shuffle refill or
        // batch assembly drains several items back-to-back) AND to
        // absorb at least two engine batches, so a requested batch size
        // is never clamped down by the channel and a worker can publish
        // a full batch while the consumer still drains the previous
        // one. Sized once for the larger of the configured and initial
        // worker counts; a later resize beyond that still works, just
        // with more queue blocking. Multi-producer (and governor-
        // retargetable when one is attached), so the edge is MPMC.
        queue_(MakeEdgeChannel<Item>(
            EdgeTopology{std::max(parallelism, initial_target), 1,
                         ctx->governor != nullptr},
            static_cast<size_t>(std::max(
                {8, std::max(parallelism, initial_target) * 4,
                 2 * std::max(1, ctx->engine_batch_size)})))),
        batch_size_(
            ClampBatchToCapacity(ctx->engine_batch_size, queue_->capacity())),
        consumer_(queue_.get(), batch_size_),
        pending_(queue_->capacity() * 2) {
    stats_->SetParallelism(initial_target);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      target_.store(initial_target, std::memory_order_relaxed);
      SpawnLocked(initial_target);
    }
    if (ctx_->governor != nullptr) {
      governor_id_ = ctx_->governor->Register(
          stats_->name(), configured_, [this](int t) { Resize(t); });
    }
  }

  ~ParallelMapIterator() override {
    // Unregister first: after this returns no Resize callback can run,
    // so the worker vector is stable for the joins below.
    if (ctx_->governor != nullptr) ctx_->governor->Unregister(governor_id_);
    SignalDone();
    queue_->Cancel();
    {
      std::lock_guard<std::mutex> lock(input_mu_);
      input_done_ = true;
    }
    for (auto& w : workers_) w.join();
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    if (!first_error_.ok()) {
      *end = true;
      return first_error_;
    }
    for (;;) {
      if (deterministic_) {
        if (pending_.TakeIfPresent(expected_, out)) {
          ++expected_;
          *end = false;
          return OkStatus();
        }
        if (end_received_ && pending_.empty()) {
          *end = true;
          return OkStatus();
        }
      }
      Item item;
      if (!consumer_.Next(&item)) {  // cancelled
        *end = true;
        return OkStatus();
      }
      if (!item.status.ok()) {
        first_error_ = item.status;
        *end = true;
        return first_error_;
      }
      if (item.end) {
        end_received_ = true;
        if (!deterministic_ || pending_.empty()) {
          if (deterministic_) continue;  // drain pending via loop head
          *end = true;
          return OkStatus();
        }
        continue;
      }
      if (!deterministic_) {
        *out = std::move(item.element);
        *end = false;
        return OkStatus();
      }
      pending_.Insert(expected_, item.order, std::move(item.element));
    }
  }

 private:
  struct Item {
    uint64_t order = 0;
    Element element;
    Status status;
    bool end = false;
  };

  // Grows or shrinks the live worker target. Called from the
  // governor's SetTarget (under the governor lock); never runs
  // concurrently with the destructor, which unregisters first.
  void Resize(int target) {
    target = std::max(1, target);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      target_.store(target, std::memory_order_relaxed);
      // No new workers once the input side finished: they would exit
      // immediately and could double-push the end sentinel.
      if (!done_.load(std::memory_order_acquire)) SpawnLocked(target);
    }
    park_cv_.notify_all();
    stats_->SetParallelism(target);
  }

  void SpawnLocked(int target) {
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      active_workers_.fetch_add(1);
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
  }

  // Marks the input side finished and wakes parked workers so they can
  // exit (and release the end sentinel).
  void SignalDone() {
    done_.store(true, std::memory_order_release);
    park_cv_.notify_all();
  }

  // Blocks while this worker's slot is above the live target. Returns
  // false when the worker should exit instead of claiming. Cancellation
  // has no wakeup channel into the park, so re-check on a short tick.
  bool ParkUntilActive(int index) {
    std::unique_lock<std::mutex> lock(park_mu_);
    for (;;) {
      if (done_.load(std::memory_order_acquire) || ctx_->is_cancelled()) {
        return false;
      }
      if (index < target_.load(std::memory_order_relaxed)) return true;
      park_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  void WorkerLoop(int index) {
    for (;;) {
      if (ctx_->is_cancelled()) break;
      if (index >= target_.load(std::memory_order_relaxed) &&
          !ParkUntilActive(index)) {
        break;
      }
      std::vector<Element> claimed;
      claimed.reserve(batch_size_);
      bool end = false;
      uint64_t order_base = 0;
      Status status;
      {
        // One lock acquisition claims the whole batch and its
        // consecutive order tickets (so deterministic reordering is
        // unchanged by batching).
        std::lock_guard<std::mutex> lock(input_mu_);
        if (input_done_) break;
        status = input_->GetNextBatch(&claimed, batch_size_, &end);
        if (!status.ok() || end) input_done_ = true;
        if (!claimed.empty()) {
          order_base = next_order_;
          next_order_ += claimed.size();
          stats_->RecordConsumedBatch(claimed.size());
        }
      }
      if (!status.ok() || end) SignalDone();
      if (!claimed.empty()) {
        std::vector<Item> results;
        results.reserve(claimed.size());
        {
          std::optional<CpuAccountingScope> scope;
          if (ctx_->tracing_enabled) scope.emplace(stats_);
          for (size_t i = 0; i < claimed.size(); ++i) {
            const uint64_t seed = SplitMix64(seed_ ^ claimed[i].sequence);
            Element result =
                ExecuteMapUdf(*udf_, std::move(claimed[i]), ctx_->cpu_scale,
                              seed, ctx_->work_model);
            results.push_back(
                Item{order_base + i, std::move(result), OkStatus(), false});
          }
        }
        if (!queue_->PushBatch(std::move(results))) break;  // cancelled
      }
      if (!status.ok()) {
        queue_->Push(Item{0, {}, status, false});
        break;
      }
      if (end) break;
    }
    if (active_workers_.fetch_sub(1) == 1) {
      queue_->Push(Item{~0ULL, {}, OkStatus(), true});
    }
  }

  std::unique_ptr<IteratorBase> input_;
  const UdfSpec* udf_;
  const int configured_;
  const bool deterministic_;
  const uint64_t seed_;

  std::mutex input_mu_;
  bool input_done_ = false;
  uint64_t next_order_ = 0;

  std::unique_ptr<Channel<Item>> queue_;
  const size_t batch_size_;
  std::atomic<int> active_workers_{0};
  // Live worker control: workers_ grows under park_mu_ (Resize), never
  // shrinks until destruction; workers indexed >= target_ park.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> target_{0};
  std::atomic<bool> done_{false};
  uint64_t governor_id_ = 0;
  std::vector<std::thread> workers_;

  // Consumer-side state (accessed only from GetNext).
  BatchedChannelConsumer<Item> consumer_;
  // Deterministic reorder buffer: flat O(1) ring, not a std::map — the
  // lookup runs once per emitted element.
  ReorderRing<Element> pending_;
  uint64_t expected_ = 0;
  bool end_received_ = false;
  Status first_error_;
};

StatusOr<std::unique_ptr<IteratorBase>> MapDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  const uint64_t seed = NodeSeed(ctx, def_);
  IteratorStats* stats = StatsFor(ctx);
  stats->SetUdfName(udf_->name);
  const int p = parallelism();
  if (p <= 1) {
    stats->SetParallelism(1);
    return std::unique_ptr<IteratorBase>(new SequentialMapIterator(
        ctx, stats, std::move(input), udf_, seed));
  }
  // A published governor target (multi-tenant grant) bounds the live
  // worker count from the start; the graph attr stays the configured
  // demand a later resize can grow back to.
  int initial = p;
  if (ctx->governor != nullptr) {
    const int t = ctx->governor->Target(def_.name);
    if (t > 0) initial = t;
  }
  return std::unique_ptr<IteratorBase>(new ParallelMapIterator(
      ctx, stats, std::move(input), udf_, p, initial, deterministic(), seed));
}

// ---------------------------------------------------------------- filter
class FilterDataset : public DatasetBase {
 public:
  FilterDataset(NodeDef def, std::vector<DatasetPtr> inputs,
                const UdfSpec* udf)
      : DatasetBase(std::move(def), std::move(inputs)), udf_(udf) {}

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

 private:
  const UdfSpec* udf_;
};

// Sequential filter. With engine_batch_size > 1 a consumer claiming a
// batch (a parallel map worker, batch assembly) drives the overridden
// GetNextBatchInternal below, which claims whole batches from the input
// in turn — one cancellation check and CPU scope per claimed batch on
// both sides, and the predicate runs once per element either way.
// Decisions are deterministic in (seed, element.sequence), so batching
// never changes which elements survive.
class FilterIterator : public IteratorBase {
 public:
  FilterIterator(PipelineContext* ctx, IteratorStats* stats,
                 std::unique_ptr<IteratorBase> input, const UdfSpec* udf,
                 uint64_t seed)
      : IteratorBase(ctx, stats), input_(std::move(input)), udf_(udf),
        seed_(seed) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      Element in;
      RETURN_IF_ERROR(input_->GetNext(&in, end));
      if (*end) return OkStatus();
      stats_->RecordConsumed();
      if (ExecuteFilterUdf(*udf_, in, ctx_->cpu_scale, seed_,
                           ctx_->work_model)) {
        *out = std::move(in);
        return OkStatus();
      }
    }
  }

  Status GetNextBatchInternal(std::vector<Element>* out, size_t max_elements,
                              bool* end) override {
    size_t produced = 0;
    while (produced < max_elements) {
      // Claim only as many inputs as outputs still owed: survivors never
      // exceed the claim, so no kept element has to be buffered across
      // calls (GetNext and GetNextBatch stay freely interleavable).
      claimed_.clear();
      bool input_end = false;
      RETURN_IF_ERROR(input_->GetNextBatch(
          &claimed_, max_elements - produced, &input_end));
      if (!claimed_.empty()) stats_->RecordConsumedBatch(claimed_.size());
      for (Element& element : claimed_) {
        if (ExecuteFilterUdf(*udf_, element, ctx_->cpu_scale, seed_,
                             ctx_->work_model)) {
          out->push_back(std::move(element));
          ++produced;
        }
      }
      if (input_end) {
        *end = true;
        return OkStatus();
      }
    }
    return OkStatus();
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  const UdfSpec* udf_;
  const uint64_t seed_;
  std::vector<Element> claimed_;  // reused claim buffer
};

StatusOr<std::unique_ptr<IteratorBase>> FilterDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  IteratorStats* stats = StatsFor(ctx);
  stats->SetUdfName(udf_->name);
  return std::unique_ptr<IteratorBase>(new FilterIterator(
      ctx, stats, std::move(input), udf_, NodeSeed(ctx, def_)));
}

const UdfSpec* LookupUdf(const NodeDef& def, PipelineContext* ctx,
                         Status* status) {
  if (ctx->udfs == nullptr) {
    *status = FailedPreconditionError("no udf registry");
    return nullptr;
  }
  const std::string udf_name = def.GetString(kAttrUdf);
  const UdfSpec* spec = ctx->udfs->Find(udf_name);
  if (spec == nullptr) {
    *status = NotFoundError("no such udf: " + udf_name);
  }
  return spec;
}

}  // namespace

StatusOr<DatasetPtr> MakeMapDataset(NodeDef def,
                                    std::vector<DatasetPtr> inputs,
                                    PipelineContext* ctx) {
  if (inputs.size() != 1) return InvalidArgumentError("map takes one input");
  Status status;
  const UdfSpec* udf = LookupUdf(def, ctx, &status);
  if (udf == nullptr) return status;
  return DatasetPtr(new MapDataset(std::move(def), std::move(inputs), udf));
}

StatusOr<DatasetPtr> MakeFilterDataset(NodeDef def,
                                       std::vector<DatasetPtr> inputs,
                                       PipelineContext* ctx) {
  if (inputs.size() != 1) {
    return InvalidArgumentError("filter takes one input");
  }
  Status status;
  const UdfSpec* udf = LookupUdf(def, ctx, &status);
  if (udf == nullptr) return status;
  return DatasetPtr(new FilterDataset(std::move(def), std::move(inputs), udf));
}

}  // namespace plumber
