// Modeled user-defined functions (UDFs).
//
// Real pipelines spend most of their time inside UDFs (JPEG decode,
// parsing, augmentation, tokenization). We model a UDF by its observable
// cost profile: CPU time per element/byte, output-size ratio, optional
// internal parallelism (the RCNN hazard from paper §5.1 where one
// logical call transparently uses ~3 cores), and whether it reads a
// random seed. Randomness is declared through a call graph so Plumber's
// cacheability check (§B.1) can compute the transitive closure
// f -+-> seed exactly as described.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/element.h"
#include "src/util/status.h"

namespace plumber {

// How modeled UDF cost executes at runtime.
//
// kTimed (default): the cost occupies one core of the *modeled* machine
// for its duration, implemented as a timed wait. Concurrent modeled
// work overlaps on any host — including hosts with fewer physical cores
// than MachineSpec::num_cores — so measured speedups reflect the
// machine being simulated, not the machine running the simulation. The
// wait is charged to the virtual thread-CPU clock (it is not a
// BlockedRegion), so tracing and the LP see the same per-element cost
// a physical burn would produce. Costs too small to wait on precisely
// still spin.
//
// kPhysical: the cost burns a physical core (calibrated spin rounds).
// Use for experiments that need real core contention (oversubscription
// and affinity studies); requires the host to actually have the cores
// the machine spec claims.
enum class CpuWorkModel { kTimed, kPhysical };

struct UdfSpec {
  std::string name;
  // CPU cost model: burned thread-CPU nanoseconds per call.
  double cost_ns_per_element = 0;
  double cost_ns_per_byte = 0;
  // Output bytes = input bytes * size_ratio + size_offset.
  double size_ratio = 1.0;
  double size_offset_bytes = 0;
  // The UDF's own internal parallelism: a single logical call fans its
  // work out over this many threads (>=1).
  int internal_parallelism = 1;
  // Directly accesses a random seed.
  bool accesses_random_seed = false;
  // For predicates (filter): fraction of elements kept.
  double keep_fraction = 1.0;
  // Names of other UDFs this function calls (for the transitive
  // randomness closure).
  std::vector<std::string> calls;
};

class UdfRegistry {
 public:
  Status Register(UdfSpec spec);
  const UdfSpec* Find(const std::string& name) const;

  // True if `name` or anything it transitively calls accesses a random
  // seed (paper §B.1: f -+-> s).
  bool IsTransitivelyRandom(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, UdfSpec> udfs_;
};

// Executes a map-style UDF: executes the modeled CPU cost (splitting it
// over internal_parallelism threads) and produces the transformed
// element. `cpu_scale` multiplies the cost (machine speed modeling).
Element ExecuteMapUdf(const UdfSpec& spec, const Element& input,
                      double cpu_scale, uint64_t seed,
                      CpuWorkModel model = CpuWorkModel::kTimed);

// Move-aware variant for hot paths that own their input: the output
// buffer is drawn from the BufferPool arena and the consumed input's
// component buffers are recycled into it, so the steady-state element
// stream stops hitting the global allocator. Identical output bytes to
// the const& overload.
Element ExecuteMapUdf(const UdfSpec& spec, Element&& input, double cpu_scale,
                      uint64_t seed,
                      CpuWorkModel model = CpuWorkModel::kTimed);

// Executes a filter-style UDF; returns the keep decision. Executes the
// modeled predicate cost. Decisions are deterministic in (seed,
// element.sequence) so reruns keep the same elements.
bool ExecuteFilterUdf(const UdfSpec& spec, const Element& input,
                      double cpu_scale, uint64_t seed,
                      CpuWorkModel model = CpuWorkModel::kTimed);

}  // namespace plumber
