// Flow-control operators: shuffle, shuffle_and_repeat, repeat, take, skip.
#include "src/pipeline/ops.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

// --------------------------------------------------------------- shuffle
class ShuffleDataset : public DatasetBase {
 public:
  ShuffleDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override { return inputs_[0]->Cardinality(); }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class ShuffleIterator : public IteratorBase {
 public:
  ShuffleIterator(PipelineContext* ctx, IteratorStats* stats,
                  std::unique_ptr<IteratorBase> input, size_t buffer_size,
                  uint64_t seed)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        buffer_size_(buffer_size == 0 ? 1 : buffer_size), rng_(seed) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    // Fill phase: top the buffer up to capacity, claiming the whole
    // deficit per GetNextBatch call — one cancellation check and CPU
    // scope on the input per refill, and a queue-backed input (parallel
    // map, prefetch) hands the batch over under one lock. Elements
    // arrive in the same order repeated GetNext would deliver, so the
    // shuffle draws (and therefore the output) are unchanged.
    while (!input_exhausted_ && buffer_.size() < buffer_size_) {
      const size_t before = buffer_.size();
      bool in_end = false;
      RETURN_IF_ERROR(
          input_->GetNextBatch(&buffer_, buffer_size_ - before, &in_end));
      if (buffer_.size() > before) {
        stats_->RecordConsumedBatch(buffer_.size() - before);
      }
      if (in_end) {
        input_exhausted_ = true;
        break;
      }
    }
    if (buffer_.empty()) {
      *end = true;
      return OkStatus();
    }
    const size_t idx = rng_.UniformInt(buffer_.size());
    *out = std::move(buffer_[idx]);
    buffer_[idx] = std::move(buffer_.back());
    buffer_.pop_back();
    *end = false;
    return OkStatus();
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  const size_t buffer_size_;
  Rng rng_;
  std::vector<Element> buffer_;
  bool input_exhausted_ = false;
};

StatusOr<std::unique_ptr<IteratorBase>> ShuffleDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  return std::unique_ptr<IteratorBase>(new ShuffleIterator(
      ctx, StatsFor(ctx), std::move(input),
      static_cast<size_t>(def_.GetInt(kAttrBufferSize, 1024)),
      ctx->seed ^ static_cast<uint64_t>(def_.GetInt(kAttrSeed, 7))));
}

// ---------------------------------------------------------------- repeat
class RepeatDataset : public DatasetBase {
 public:
  RepeatDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override {
    const int64_t count = def_.GetInt(kAttrCount, -1);
    if (count < 0) return kInfiniteCardinality;
    const int64_t child = inputs_[0]->Cardinality();
    if (child < 0) return child;
    return child * count;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class RepeatIterator : public IteratorBase {
 public:
  RepeatIterator(PipelineContext* ctx, IteratorStats* stats,
                 const DatasetBase* input_dataset, int64_t count)
      : IteratorBase(ctx, stats), input_dataset_(input_dataset),
        count_(count) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      if (count_ >= 0 && epoch_ >= count_) {
        *end = true;
        return OkStatus();
      }
      if (input_ == nullptr) {
        ASSIGN_OR_RETURN(input_, input_dataset_->MakeIterator(ctx_));
      }
      bool in_end = false;
      RETURN_IF_ERROR(input_->GetNext(out, &in_end));
      if (!in_end) {
        stats_->RecordConsumed();
        produced_this_epoch_ = true;
        *end = false;
        return OkStatus();
      }
      input_.reset();
      ++epoch_;
      if (!produced_this_epoch_ && count_ < 0) {
        // An infinitely repeated empty dataset would spin forever.
        *end = true;
        return OkStatus();
      }
      produced_this_epoch_ = false;
    }
  }

 private:
  const DatasetBase* input_dataset_;
  const int64_t count_;
  std::unique_ptr<IteratorBase> input_;
  int64_t epoch_ = 0;
  bool produced_this_epoch_ = false;
};

StatusOr<std::unique_ptr<IteratorBase>> RepeatDataset::MakeIterator(
    PipelineContext* ctx) const {
  return std::unique_ptr<IteratorBase>(
      new RepeatIterator(ctx, StatsFor(ctx), inputs_[0].get(),
                         def_.GetInt(kAttrCount, -1)));
}

// ---------------------------------------------------- shuffle_and_repeat
// Fused shuffle+repeat (as used by GNMT): reshuffles each epoch with a
// different derived seed.
class ShuffleAndRepeatDataset : public DatasetBase {
 public:
  ShuffleAndRepeatDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override {
    const int64_t count = def_.GetInt(kAttrCount, -1);
    if (count < 0) return kInfiniteCardinality;
    const int64_t child = inputs_[0]->Cardinality();
    return child < 0 ? child : child * count;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class ShuffleAndRepeatIterator : public IteratorBase {
 public:
  ShuffleAndRepeatIterator(PipelineContext* ctx, IteratorStats* stats,
                           const DatasetBase* input_dataset,
                           size_t buffer_size, uint64_t seed, int64_t count)
      : IteratorBase(ctx, stats), input_dataset_(input_dataset),
        buffer_size_(buffer_size == 0 ? 1 : buffer_size), seed_(seed),
        count_(count), rng_(seed) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      if (count_ >= 0 && epoch_ >= count_) {
        *end = true;
        return OkStatus();
      }
      if (input_ == nullptr && !input_exhausted_) {
        ASSIGN_OR_RETURN(input_, input_dataset_->MakeIterator(ctx_));
        rng_ = Rng(SplitMix64(seed_ ^ static_cast<uint64_t>(epoch_)));
      }
      // Whole-deficit refill claims, same as ShuffleIterator above;
      // identical element order keeps the per-epoch draws unchanged.
      while (!input_exhausted_ && buffer_.size() < buffer_size_) {
        const size_t before = buffer_.size();
        bool in_end = false;
        RETURN_IF_ERROR(
            input_->GetNextBatch(&buffer_, buffer_size_ - before, &in_end));
        if (buffer_.size() > before) {
          stats_->RecordConsumedBatch(buffer_.size() - before);
          saw_elements_this_run_ = true;
        }
        if (in_end) {
          input_exhausted_ = true;
          input_.reset();
          break;
        }
      }
      if (!buffer_.empty()) {
        const size_t idx = rng_.UniformInt(buffer_.size());
        *out = std::move(buffer_[idx]);
        buffer_[idx] = std::move(buffer_.back());
        buffer_.pop_back();
        *end = false;
        return OkStatus();
      }
      // Epoch boundary.
      ++epoch_;
      if (!saw_elements_this_run_) {
        *end = true;  // empty child: avoid infinite spin
        return OkStatus();
      }
      saw_elements_this_run_ = false;
      input_exhausted_ = false;
    }
  }

 private:
  const DatasetBase* input_dataset_;
  const size_t buffer_size_;
  const uint64_t seed_;
  const int64_t count_;
  std::unique_ptr<IteratorBase> input_;
  std::vector<Element> buffer_;
  Rng rng_;
  bool input_exhausted_ = false;
  int64_t epoch_ = 0;
  bool saw_elements_this_run_ = false;
};

StatusOr<std::unique_ptr<IteratorBase>> ShuffleAndRepeatDataset::MakeIterator(
    PipelineContext* ctx) const {
  return std::unique_ptr<IteratorBase>(new ShuffleAndRepeatIterator(
      ctx, StatsFor(ctx), inputs_[0].get(),
      static_cast<size_t>(def_.GetInt(kAttrBufferSize, 1024)),
      ctx->seed ^ static_cast<uint64_t>(def_.GetInt(kAttrSeed, 11)),
      def_.GetInt(kAttrCount, -1)));
}

// ------------------------------------------------------------ take/skip
class TakeDataset : public DatasetBase {
 public:
  TakeDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override {
    const int64_t count = def_.GetInt(kAttrCount, 0);
    const int64_t child = inputs_[0]->Cardinality();
    if (child == kUnknownCardinality) return count;
    if (child == kInfiniteCardinality) return count;
    return std::min(child, count);
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class TakeIterator : public IteratorBase {
 public:
  TakeIterator(PipelineContext* ctx, IteratorStats* stats,
               std::unique_ptr<IteratorBase> input, int64_t count)
      : IteratorBase(ctx, stats), input_(std::move(input)), count_(count) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    if (taken_ >= count_) {
      *end = true;
      return OkStatus();
    }
    RETURN_IF_ERROR(input_->GetNext(out, end));
    if (!*end) {
      stats_->RecordConsumed();
      ++taken_;
    }
    return OkStatus();
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  const int64_t count_;
  int64_t taken_ = 0;
};

StatusOr<std::unique_ptr<IteratorBase>> TakeDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  return std::unique_ptr<IteratorBase>(new TakeIterator(
      ctx, StatsFor(ctx), std::move(input), def_.GetInt(kAttrCount, 0)));
}

class SkipDataset : public DatasetBase {
 public:
  SkipDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class SkipIterator : public IteratorBase {
 public:
  SkipIterator(PipelineContext* ctx, IteratorStats* stats,
               std::unique_ptr<IteratorBase> input, int64_t count)
      : IteratorBase(ctx, stats), input_(std::move(input)), count_(count) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    while (skipped_ < count_) {
      Element scratch;
      RETURN_IF_ERROR(input_->GetNext(&scratch, end));
      if (*end) return OkStatus();
      stats_->RecordConsumed();
      ++skipped_;
    }
    RETURN_IF_ERROR(input_->GetNext(out, end));
    if (!*end) stats_->RecordConsumed();
    return OkStatus();
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  const int64_t count_;
  int64_t skipped_ = 0;
};

StatusOr<std::unique_ptr<IteratorBase>> SkipDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  return std::unique_ptr<IteratorBase>(new SkipIterator(
      ctx, StatsFor(ctx), std::move(input), def_.GetInt(kAttrCount, 0)));
}

Status RequireOneInput(const std::vector<DatasetPtr>& inputs,
                       const char* op) {
  if (inputs.size() != 1) {
    return InvalidArgumentError(std::string(op) + " takes one input");
  }
  return OkStatus();
}

}  // namespace

StatusOr<DatasetPtr> MakeShuffleDataset(NodeDef def,
                                        std::vector<DatasetPtr> inputs,
                                        PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "shuffle"));
  return DatasetPtr(new ShuffleDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeShuffleAndRepeatDataset(
    NodeDef def, std::vector<DatasetPtr> inputs, PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "shuffle_and_repeat"));
  return DatasetPtr(
      new ShuffleAndRepeatDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeRepeatDataset(NodeDef def,
                                       std::vector<DatasetPtr> inputs,
                                       PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "repeat"));
  return DatasetPtr(new RepeatDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeTakeDataset(NodeDef def,
                                     std::vector<DatasetPtr> inputs,
                                     PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "take"));
  return DatasetPtr(new TakeDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeSkipDataset(NodeDef def,
                                     std::vector<DatasetPtr> inputs,
                                     PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "skip"));
  return DatasetPtr(new SkipDataset(std::move(def), std::move(inputs)));
}

}  // namespace plumber
