// Operator factories. Each creates a DatasetBase for one GraphDef node.
//
// Supported ops and their attributes:
//   range              count:int (-1 = infinite)
//   file_list          prefix:string (lists SimFilesystem files)
//   tfrecord           input: file_list; sequential record reader
//   interleave         input: file_list; cycle_length:int, block_length:int,
//                      parallelism:int — parallel record readers
//   map                input; udf:string, parallelism:int (1 = sequential),
//                      deterministic:bool
//   filter             input; udf:string
//   shuffle            input; buffer_size:int, seed:int
//   shuffle_and_repeat input; buffer_size:int, seed:int, count:int
//   repeat             input; count:int (-1 = infinite)
//   take               input; count:int
//   skip               input; count:int
//   batch              input; batch_size:int, drop_remainder:bool
//   prefetch           input; buffer_size:int
//   cache              input; (bounded by PipelineContext memory budget)
//   zip                2+ inputs; pairs one element from each per output
//   concatenate        2+ inputs; drains them in order
//   map_and_batch      input; udf:string, parallelism:int,
//                      batch_size:int, drop_remainder:bool — fused
//                      parallel map + batch (one handoff per batch)
#pragma once

#include "src/pipeline/dataset.h"

namespace plumber {

using DatasetFactory = StatusOr<DatasetPtr> (*)(NodeDef,
                                                std::vector<DatasetPtr>,
                                                PipelineContext*);

StatusOr<DatasetPtr> MakeRangeDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx);
StatusOr<DatasetPtr> MakeFileListDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx);
StatusOr<DatasetPtr> MakeTfRecordDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx);
StatusOr<DatasetPtr> MakeInterleaveDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx);
StatusOr<DatasetPtr> MakeMapDataset(NodeDef def,
                                    std::vector<DatasetPtr> inputs,
                                    PipelineContext* ctx);
StatusOr<DatasetPtr> MakeFilterDataset(NodeDef def,
                                       std::vector<DatasetPtr> inputs,
                                       PipelineContext* ctx);
StatusOr<DatasetPtr> MakeShuffleDataset(NodeDef def,
                                        std::vector<DatasetPtr> inputs,
                                        PipelineContext* ctx);
StatusOr<DatasetPtr> MakeShuffleAndRepeatDataset(NodeDef def,
                                                 std::vector<DatasetPtr> inputs,
                                                 PipelineContext* ctx);
StatusOr<DatasetPtr> MakeRepeatDataset(NodeDef def,
                                       std::vector<DatasetPtr> inputs,
                                       PipelineContext* ctx);
StatusOr<DatasetPtr> MakeTakeDataset(NodeDef def,
                                     std::vector<DatasetPtr> inputs,
                                     PipelineContext* ctx);
StatusOr<DatasetPtr> MakeSkipDataset(NodeDef def,
                                     std::vector<DatasetPtr> inputs,
                                     PipelineContext* ctx);
StatusOr<DatasetPtr> MakeBatchDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx);
StatusOr<DatasetPtr> MakePrefetchDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx);
StatusOr<DatasetPtr> MakeCacheDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx);
StatusOr<DatasetPtr> MakeZipDataset(NodeDef def,
                                    std::vector<DatasetPtr> inputs,
                                    PipelineContext* ctx);
StatusOr<DatasetPtr> MakeConcatenateDataset(NodeDef def,
                                            std::vector<DatasetPtr> inputs,
                                            PipelineContext* ctx);
StatusOr<DatasetPtr> MakeMapAndBatchDataset(NodeDef def,
                                            std::vector<DatasetPtr> inputs,
                                            PipelineContext* ctx);

// Well-known attribute keys shared by the rewriter and the tuners.
inline constexpr char kAttrParallelism[] = "parallelism";
inline constexpr char kAttrBufferSize[] = "buffer_size";
inline constexpr char kAttrCycleLength[] = "cycle_length";
inline constexpr char kAttrUdf[] = "udf";
inline constexpr char kAttrCount[] = "count";
inline constexpr char kAttrBatchSize[] = "batch_size";
inline constexpr char kAttrPrefix[] = "prefix";
inline constexpr char kAttrSeed[] = "seed";
inline constexpr char kAttrDeterministic[] = "deterministic";
inline constexpr char kAttrBlockLength[] = "block_length";
inline constexpr char kAttrDropRemainder[] = "drop_remainder";
// When false, tuners must not touch this node's parallelism (models
// stages the framework cannot parallelize, e.g. sequential packing).
inline constexpr char kAttrTunable[] = "tunable";
// Engine batch size recorded in the graph by the optimizer's batch
// pass (set via rewriter::SetEngineBatchSize on the output node);
// applies at instantiation when PipelineOptions leaves the knob unset
// (an explicit options value wins).
inline constexpr char kAttrEngineBatchSize[] = "engine_batch_size";
// Traced per-core processing rate (minibatches/sec/core) recorded by
// the optimizer after a successful trace (rewriter::SetTracedRate).
// Consumed by the multi-job arbiter: DemandFromGraph prefers these
// measured rates over its uniform-rate fallback, so unequal-demand
// jobs get unequal water-fill shares (see src/core/multi_job_planner).
inline constexpr char kAttrTracedRate[] = "traced_rate";

// True if the op kind supports a tunable `parallelism` attribute.
bool OpSupportsParallelism(const std::string& op);
// True if the op kind is a data source (reads from storage).
bool OpIsSource(const std::string& op);
// The engine batch size recorded in the graph (max over nodes'
// kAttrEngineBatchSize); 0 if none was recorded. Shared by
// Pipeline::Create (which honors it when PipelineOptions leaves the
// knob unset) and the rewriter's Get/SetEngineBatchSize primitives.
int GraphEngineBatchSize(const GraphDef& graph);

}  // namespace plumber
