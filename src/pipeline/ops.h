// Operator factories. Each creates a DatasetBase for one GraphDef node.
//
// Supported ops and their attributes:
//   range              count:int (-1 = infinite)
//   file_list          prefix:string (lists SimFilesystem files)
//   tfrecord           input: file_list; sequential record reader
//   remote_read        input: file_list; tfrecord semantics, but every
//                      record is also charged through the remote host's
//                      NIC (remote_nic_bandwidth/remote_nic_latency
//                      attrs) and this host's NIC (PipelineContext::nic)
//   interleave         input: file_list; cycle_length:int, block_length:int,
//                      parallelism:int — parallel record readers
//   map                input; udf:string, parallelism:int (1 = sequential),
//                      deterministic:bool
//   filter             input; udf:string
//   shuffle            input; buffer_size:int, seed:int
//   shuffle_and_repeat input; buffer_size:int, seed:int, count:int
//   repeat             input; count:int (-1 = infinite)
//   take               input; count:int
//   skip               input; count:int
//   batch              input; batch_size:int, drop_remainder:bool
//   prefetch           input; buffer_size:int
//   cache              input; cache_tier:string ("memory" default |
//                      "disk"). Memory caches are bounded by the
//                      PipelineContext memory budget; disk caches by
//                      scratch_budget_bytes, and their serve path is
//                      metered through the modeled scratch device.
//   zip                2+ inputs; pairs one element from each per output
//   concatenate        2+ inputs; drains them in order
//   map_and_batch      input; udf:string, parallelism:int,
//                      batch_size:int, drop_remainder:bool — fused
//                      parallel map + batch (one handoff per batch)
//   shard_merge        N inputs (one per source shard); merges them
//                      with one worker per shard, order nondeterministic
//                      (like parallel interleave)
#pragma once

#include "src/pipeline/dataset.h"

namespace plumber {

using DatasetFactory = StatusOr<DatasetPtr> (*)(NodeDef,
                                                std::vector<DatasetPtr>,
                                                PipelineContext*);

StatusOr<DatasetPtr> MakeRangeDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx);
StatusOr<DatasetPtr> MakeFileListDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx);
StatusOr<DatasetPtr> MakeTfRecordDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx);
StatusOr<DatasetPtr> MakeRemoteReadDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx);
StatusOr<DatasetPtr> MakeInterleaveDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx);
StatusOr<DatasetPtr> MakeMapDataset(NodeDef def,
                                    std::vector<DatasetPtr> inputs,
                                    PipelineContext* ctx);
StatusOr<DatasetPtr> MakeFilterDataset(NodeDef def,
                                       std::vector<DatasetPtr> inputs,
                                       PipelineContext* ctx);
StatusOr<DatasetPtr> MakeShuffleDataset(NodeDef def,
                                        std::vector<DatasetPtr> inputs,
                                        PipelineContext* ctx);
StatusOr<DatasetPtr> MakeShuffleAndRepeatDataset(NodeDef def,
                                                 std::vector<DatasetPtr> inputs,
                                                 PipelineContext* ctx);
StatusOr<DatasetPtr> MakeRepeatDataset(NodeDef def,
                                       std::vector<DatasetPtr> inputs,
                                       PipelineContext* ctx);
StatusOr<DatasetPtr> MakeTakeDataset(NodeDef def,
                                     std::vector<DatasetPtr> inputs,
                                     PipelineContext* ctx);
StatusOr<DatasetPtr> MakeSkipDataset(NodeDef def,
                                     std::vector<DatasetPtr> inputs,
                                     PipelineContext* ctx);
StatusOr<DatasetPtr> MakeBatchDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx);
StatusOr<DatasetPtr> MakePrefetchDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx);
StatusOr<DatasetPtr> MakeCacheDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx);
StatusOr<DatasetPtr> MakeZipDataset(NodeDef def,
                                    std::vector<DatasetPtr> inputs,
                                    PipelineContext* ctx);
StatusOr<DatasetPtr> MakeConcatenateDataset(NodeDef def,
                                            std::vector<DatasetPtr> inputs,
                                            PipelineContext* ctx);
StatusOr<DatasetPtr> MakeMapAndBatchDataset(NodeDef def,
                                            std::vector<DatasetPtr> inputs,
                                            PipelineContext* ctx);
StatusOr<DatasetPtr> MakeShardMergeDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx);

// Well-known attribute keys shared by the rewriter and the tuners.
inline constexpr char kAttrParallelism[] = "parallelism";
inline constexpr char kAttrBufferSize[] = "buffer_size";
inline constexpr char kAttrCycleLength[] = "cycle_length";
inline constexpr char kAttrUdf[] = "udf";
inline constexpr char kAttrCount[] = "count";
inline constexpr char kAttrBatchSize[] = "batch_size";
inline constexpr char kAttrPrefix[] = "prefix";
inline constexpr char kAttrSeed[] = "seed";
inline constexpr char kAttrDeterministic[] = "deterministic";
inline constexpr char kAttrBlockLength[] = "block_length";
inline constexpr char kAttrDropRemainder[] = "drop_remainder";
// When false, tuners must not touch this node's parallelism (models
// stages the framework cannot parallelize, e.g. sequential packing).
inline constexpr char kAttrTunable[] = "tunable";
// Engine batch size recorded in the graph by the optimizer's batch
// pass (set via rewriter::SetEngineBatchSize on the output node);
// applies at instantiation when PipelineOptions leaves the knob unset
// (an explicit options value wins).
inline constexpr char kAttrEngineBatchSize[] = "engine_batch_size";
// Traced per-core processing rate (minibatches/sec/core) recorded by
// the optimizer after a successful trace (rewriter::SetTracedRate).
// Consumed by the multi-job arbiter: DemandFromGraph prefers these
// measured rates over its uniform-rate fallback, so unequal-demand
// jobs get unequal water-fill shares (see src/core/multi_job_planner).
inline constexpr char kAttrTracedRate[] = "traced_rate";
// Cache placement tier chosen by CachePlacementPass: absent or
// "memory" = DRAM materialization (the classic cache op), "disk" =
// materialize to the scratch tier and meter serves at its bandwidth.
inline constexpr char kAttrCacheTier[] = "cache_tier";
// Shard identity stamped by rewriter::ShardSource: which partition of
// the file list this source reads (i of shard_count, files taken
// round-robin), and how many partitions exist. FleetSession derives a
// locality pin from shard_index; readers under a sharded source meter
// against shard_devices->DeviceFor(shard_index).
inline constexpr char kAttrShardIndex[] = "shard_index";
inline constexpr char kAttrShardCount[] = "shard_count";
// remote_read's modeled remote endpoint: the serving host's NIC
// bandwidth (bytes/sec, 0 = unlimited) and fixed per-record latency
// (seconds). Attributes, not session state, so the remote environment
// travels with the serialized program.
inline constexpr char kAttrRemoteNicBandwidth[] = "remote_nic_bandwidth";
inline constexpr char kAttrRemoteNicLatency[] = "remote_nic_latency";

// The per-shard storage device a reader under `def` should charge, or
// null to use the filesystem's attached device (unsharded sources, or
// no shard pool in the context).
StorageDevice* ShardDeviceFor(const NodeDef& def, PipelineContext* ctx);

// True if the op kind supports a tunable `parallelism` attribute.
bool OpSupportsParallelism(const std::string& op);
// True if the op kind is a data source (reads from storage).
bool OpIsSource(const std::string& op);
// The engine batch size recorded in the graph (max over nodes'
// kAttrEngineBatchSize); 0 if none was recorded. Shared by
// Pipeline::Create (which honors it when PipelineOptions leaves the
// knob unset) and the rewriter's Get/SetEngineBatchSize primitives.
int GraphEngineBatchSize(const GraphDef& graph);

}  // namespace plumber
