#include "src/pipeline/parallelism_governor.h"

namespace plumber {

void ParallelismGovernor::SetTarget(const std::string& node, int target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (target <= 0) {
    targets_.erase(node);
  } else {
    targets_[node] = target;
  }
  for (auto& [id, listener] : listeners_) {
    (void)id;
    if (listener.node != node) continue;
    listener.on_resize(target > 0 ? target : listener.configured);
  }
}

int ParallelismGovernor::Target(const std::string& node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = targets_.find(node);
  return it == targets_.end() ? 0 : it->second;
}

std::map<std::string, int> ParallelismGovernor::Targets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return targets_;
}

uint64_t ParallelismGovernor::Register(const std::string& node,
                                       int configured,
                                       std::function<void(int)> on_resize) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  listeners_[id] = Listener{node, configured, std::move(on_resize)};
  return id;
}

void ParallelismGovernor::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(id);
}

}  // namespace plumber
