// Multi-input and fused operators: zip, concatenate, map_and_batch.
//
// zip pairs one element from each input per output (the (image, label)
// tuple construction the paper's §2.1 describes); concatenate chains
// datasets end to end; map_and_batch is the classic tf.data fusion of
// a parallel map with batching — workers each assemble a whole batch,
// amortizing per-element queue handoffs, which matters exactly for the
// tiny-element text pipelines of §5.1 ("motivating a batched execution
// engine", App. C.3).
#include <algorithm>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/pipeline/channels.h"
#include "src/pipeline/ops.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

uint64_t NodeSeed(const PipelineContext* ctx, const NodeDef& def) {
  uint64_t h = ctx->seed;
  for (char c : def.name) h = SplitMix64(h ^ static_cast<uint8_t>(c));
  return h;
}

// ------------------------------------------------------------------ zip
class ZipDataset : public DatasetBase {
 public:
  ZipDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  // Ends when the shortest input ends.
  int64_t Cardinality() const override {
    int64_t result = kInfiniteCardinality;
    for (const auto& input : inputs_) {
      const int64_t c = input->Cardinality();
      if (c == kUnknownCardinality) return kUnknownCardinality;
      if (c == kInfiniteCardinality) continue;
      result = result == kInfiniteCardinality ? c : std::min(result, c);
    }
    return result;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class ZipIterator : public IteratorBase {
 public:
  ZipIterator(PipelineContext* ctx, IteratorStats* stats,
              std::vector<std::unique_ptr<IteratorBase>> inputs)
      : IteratorBase(ctx, stats), inputs_(std::move(inputs)) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    out->components.clear();
    for (size_t i = 0; i < inputs_.size(); ++i) {
      Element in;
      bool in_end = false;
      RETURN_IF_ERROR(inputs_[i]->GetNext(&in, &in_end));
      if (in_end) {
        *end = true;
        return OkStatus();
      }
      stats_->RecordConsumed();
      if (i == 0) out->sequence = in.sequence;
      for (auto& c : in.components) out->components.push_back(std::move(c));
    }
    *end = false;
    return OkStatus();
  }

  // Batched zip: claim a vector from every input, pair them up to the
  // shortest claim. Elements past the shortest input's end are
  // unobservable downstream either way, so output matches the
  // element-at-a-time path.
  Status GetNextBatchInternal(std::vector<Element>* out, size_t max_elements,
                              bool* end) override {
    if (max_elements <= 1) {
      return IteratorBase::GetNextBatchInternal(out, max_elements, end);
    }
    std::vector<std::vector<Element>> claims(inputs_.size());
    size_t take = max_elements;
    for (size_t i = 0; i < inputs_.size(); ++i) {
      bool in_end = false;
      RETURN_IF_ERROR(inputs_[i]->GetNextBatch(&claims[i], take, &in_end));
      take = std::min(take, claims[i].size());
    }
    if (take > 0) {
      stats_->RecordConsumedBatch(take * inputs_.size());
    }
    for (size_t row = 0; row < take; ++row) {
      Element zipped;
      zipped.sequence = claims[0][row].sequence;
      for (auto& claim : claims) {
        for (auto& c : claim[row].components) {
          zipped.components.push_back(std::move(c));
        }
      }
      out->push_back(std::move(zipped));
    }
    if (take < max_elements) *end = true;
    return OkStatus();
  }

 private:
  std::vector<std::unique_ptr<IteratorBase>> inputs_;
};

StatusOr<std::unique_ptr<IteratorBase>> ZipDataset::MakeIterator(
    PipelineContext* ctx) const {
  std::vector<std::unique_ptr<IteratorBase>> iterators;
  iterators.reserve(inputs_.size());
  for (const auto& input : inputs_) {
    ASSIGN_OR_RETURN(auto it, input->MakeIterator(ctx));
    iterators.push_back(std::move(it));
  }
  return std::unique_ptr<IteratorBase>(
      new ZipIterator(ctx, StatsFor(ctx), std::move(iterators)));
}

// ---------------------------------------------------------- concatenate
class ConcatenateDataset : public DatasetBase {
 public:
  ConcatenateDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override {
    int64_t total = 0;
    for (const auto& input : inputs_) {
      const int64_t c = input->Cardinality();
      if (c == kUnknownCardinality) return kUnknownCardinality;
      if (c == kInfiniteCardinality) return kInfiniteCardinality;
      total += c;
    }
    return total;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class ConcatenateIterator : public IteratorBase {
 public:
  ConcatenateIterator(PipelineContext* ctx, IteratorStats* stats,
                      const ConcatenateDataset* dataset)
      : IteratorBase(ctx, stats), dataset_(dataset) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      if (current_ == nullptr) {
        if (index_ >= dataset_->inputs().size()) {
          *end = true;
          return OkStatus();
        }
        ASSIGN_OR_RETURN(current_,
                         dataset_->inputs()[index_]->MakeIterator(ctx_));
      }
      bool in_end = false;
      RETURN_IF_ERROR(current_->GetNext(out, &in_end));
      if (!in_end) {
        stats_->RecordConsumed();
        *end = false;
        return OkStatus();
      }
      current_.reset();
      ++index_;
    }
  }

  // Batched concatenate: drain the current child a whole batch at a
  // time, rolling over to the next child mid-batch.
  Status GetNextBatchInternal(std::vector<Element>* out, size_t max_elements,
                              bool* end) override {
    if (max_elements <= 1) {
      return IteratorBase::GetNextBatchInternal(out, max_elements, end);
    }
    size_t taken = 0;
    while (taken < max_elements) {
      if (current_ == nullptr) {
        if (index_ >= dataset_->inputs().size()) {
          *end = true;
          return OkStatus();
        }
        ASSIGN_OR_RETURN(current_,
                         dataset_->inputs()[index_]->MakeIterator(ctx_));
      }
      const size_t before = out->size();
      bool in_end = false;
      RETURN_IF_ERROR(
          current_->GetNextBatch(out, max_elements - taken, &in_end));
      const size_t claimed = out->size() - before;
      taken += claimed;
      if (claimed > 0) stats_->RecordConsumedBatch(claimed);
      if (in_end) {
        current_.reset();
        ++index_;
      }
    }
    return OkStatus();
  }

 private:
  const ConcatenateDataset* dataset_;
  std::unique_ptr<IteratorBase> current_;
  size_t index_ = 0;
};

StatusOr<std::unique_ptr<IteratorBase>> ConcatenateDataset::MakeIterator(
    PipelineContext* ctx) const {
  return std::unique_ptr<IteratorBase>(
      new ConcatenateIterator(ctx, StatsFor(ctx), this));
}

// --------------------------------------------------------- map_and_batch
class MapAndBatchDataset : public DatasetBase {
 public:
  MapAndBatchDataset(NodeDef def, std::vector<DatasetPtr> inputs,
                     const UdfSpec* udf)
      : DatasetBase(std::move(def), std::move(inputs)), udf_(udf) {}

  int64_t Cardinality() const override {
    const int64_t child = inputs_[0]->Cardinality();
    const int64_t batch = def_.GetInt(kAttrBatchSize, 1);
    if (child < 0 || batch <= 0) return child;
    return def_.GetBool(kAttrDropRemainder, true)
               ? child / batch
               : (child + batch - 1) / batch;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

  const UdfSpec* udf() const { return udf_; }

 private:
  const UdfSpec* udf_;
};

// Workers each assemble a full batch: pull batch_size inputs under the
// input lock, run the UDF per element outside it, emit the batch. One
// queue handoff per batch instead of per element.
class MapAndBatchIterator : public IteratorBase {
 public:
  MapAndBatchIterator(PipelineContext* ctx, IteratorStats* stats,
                      std::unique_ptr<IteratorBase> input,
                      const UdfSpec* udf, int parallelism,
                      int64_t batch_size, bool drop_remainder,
                      uint64_t seed)
      : IteratorBase(ctx, stats),
        input_(std::move(input)),
        udf_(udf),
        batch_size_(batch_size < 1 ? 1 : batch_size),
        drop_remainder_(drop_remainder),
        seed_(seed),
        // Fixed worker pool (no governor registration, so never
        // retargeted): parallelism 1 is a structural 1:1 edge and gets
        // the lock-free SPSC ring; larger pools stay MPMC.
        queue_(MakeEdgeChannel<Element>(
            EdgeTopology{std::max(parallelism, 1), 1, false},
            static_cast<size_t>(std::max(parallelism, 1)) * 2)) {
    const int workers = std::max(parallelism, 1);
    stats_->SetParallelism(workers);
    active_workers_.store(workers);
    workers_.reserve(workers);
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~MapAndBatchIterator() override {
    queue_->Cancel();
    {
      std::lock_guard<std::mutex> lock(input_mu_);
      input_done_ = true;
    }
    for (auto& w : workers_) w.join();
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    auto item = queue_->Pop();
    if (!item.has_value()) {
      {
        std::lock_guard<std::mutex> lock(input_mu_);
        if (!first_error_.ok()) {
          *end = true;
          return first_error_;
        }
      }
      *end = true;
      return OkStatus();
    }
    *out = std::move(*item);
    *end = false;
    return OkStatus();
  }

 private:
  void WorkerLoop() {
    // Inside the input lock, claim in engine-batch chunks: one child
    // call (one lock/scope) per chunk instead of per element.
    const size_t chunk =
        static_cast<size_t>(std::max(1, ctx_->engine_batch_size));
    for (;;) {
      std::vector<Element> raw;
      raw.reserve(batch_size_);
      bool saw_end = false;
      {
        std::lock_guard<std::mutex> lock(input_mu_);
        if (input_done_) break;
        while (static_cast<int64_t>(raw.size()) < batch_size_) {
          const size_t want = std::min(
              chunk, static_cast<size_t>(batch_size_) - raw.size());
          bool in_end = false;
          const Status status = input_->GetNextBatch(&raw, want, &in_end);
          if (!status.ok()) {
            if (first_error_.ok()) first_error_ = status;
            input_done_ = true;
            saw_end = true;
            break;
          }
          if (in_end) {
            input_done_ = true;
            saw_end = true;
            break;
          }
        }
        if (!raw.empty()) stats_->RecordConsumedBatch(raw.size());
      }
      const bool drop =
          drop_remainder_ && static_cast<int64_t>(raw.size()) < batch_size_;
      if (!raw.empty() && !drop) {
        Element batch;
        batch.sequence = raw.front().sequence;
        for (Element& in : raw) {
          const uint64_t seed = SplitMix64(seed_ ^ in.sequence);
          Element mapped = ExecuteMapUdf(*udf_, std::move(in),
                                         ctx_->cpu_scale, seed,
                                         ctx_->work_model);
          for (auto& c : mapped.components) {
            batch.components.push_back(std::move(c));
          }
        }
        if (!queue_->Push(std::move(batch))) break;
      }
      if (saw_end) break;
    }
    if (active_workers_.fetch_sub(1) == 1) queue_->Cancel();
  }

  std::unique_ptr<IteratorBase> input_;
  const UdfSpec* udf_;
  const int64_t batch_size_;
  const bool drop_remainder_;
  const uint64_t seed_;
  std::unique_ptr<Channel<Element>> queue_;
  std::mutex input_mu_;
  bool input_done_ = false;
  Status first_error_ = OkStatus();
  std::atomic<int> active_workers_{0};
  std::vector<std::thread> workers_;
};

StatusOr<std::unique_ptr<IteratorBase>> MapAndBatchDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  return std::unique_ptr<IteratorBase>(new MapAndBatchIterator(
      ctx, StatsFor(ctx), std::move(input), udf_,
      static_cast<int>(def_.GetInt(kAttrParallelism, 1)),
      def_.GetInt(kAttrBatchSize, 1),
      def_.GetBool(kAttrDropRemainder, true), NodeSeed(ctx, def_)));
}

}  // namespace

StatusOr<DatasetPtr> MakeZipDataset(NodeDef def,
                                    std::vector<DatasetPtr> inputs,
                                    PipelineContext* ctx) {
  (void)ctx;
  if (inputs.size() < 2) {
    return InvalidArgumentError("zip takes at least two inputs");
  }
  return DatasetPtr(new ZipDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeConcatenateDataset(NodeDef def,
                                            std::vector<DatasetPtr> inputs,
                                            PipelineContext* ctx) {
  (void)ctx;
  if (inputs.size() < 2) {
    return InvalidArgumentError("concatenate takes at least two inputs");
  }
  return DatasetPtr(
      new ConcatenateDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeMapAndBatchDataset(NodeDef def,
                                            std::vector<DatasetPtr> inputs,
                                            PipelineContext* ctx) {
  if (inputs.size() != 1) {
    return InvalidArgumentError("map_and_batch takes one input");
  }
  const std::string udf_name = def.GetString(kAttrUdf);
  const UdfSpec* udf =
      ctx->udfs != nullptr ? ctx->udfs->Find(udf_name) : nullptr;
  if (udf == nullptr) {
    return NotFoundError("map_and_batch udf not registered: " + udf_name);
  }
  return DatasetPtr(
      new MapAndBatchDataset(std::move(def), std::move(inputs), udf));
}

}  // namespace plumber
