// The unit of data flowing through a pipeline.
//
// An Element is a list of byte buffers ("components"): one buffer for a
// single training example, or one buffer per example after batching.
// Buffers carry real bytes so cache memory accounting, transform
// amplification ratios, and copy costs behave like the real system.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace plumber {

using Buffer = std::vector<uint8_t>;

struct Element {
  std::vector<Buffer> components;
  // Monotone sequence number assigned by the producing source; used for
  // deterministic filtering and by tests to check ordering.
  uint64_t sequence = 0;

  size_t TotalBytes() const {
    size_t total = 0;
    for (const auto& c : components) total += c.size();
    return total;
  }

  bool empty() const { return components.empty(); }

  static Element FromBuffer(Buffer b, uint64_t sequence = 0) {
    Element e;
    e.components.push_back(std::move(b));
    e.sequence = sequence;
    return e;
  }

  // Deep copy (buffers duplicated). Elements are otherwise moved
  // end-to-end through the data plane; the only callers are the cache
  // op's store/serve paths (src/pipeline/sink_ops.cc), which
  // semantically need a retained copy. Don't add hot-path callers —
  // recycle via BufferPool (src/util/buffer_pool.h) instead.
  Element Clone() const {
    Element e;
    e.components = components;
    e.sequence = sequence;
    return e;
  }
};

}  // namespace plumber
