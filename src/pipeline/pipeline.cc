#include "src/pipeline/pipeline.h"

#include <algorithm>

#include "src/pipeline/ops.h"

namespace plumber {

Pipeline::Pipeline(GraphDef graph, const PipelineOptions& options)
    : graph_(std::move(graph)) {
  ctx_.fs = options.fs;
  ctx_.udfs = options.udfs;
  ctx_.stats = &stats_;
  ctx_.cpu_scale = options.cpu_scale;
  ctx_.work_model = options.work_model;
  ctx_.seed = options.seed;
  ctx_.tracing_enabled = options.tracing_enabled;
  ctx_.memory_budget_bytes = options.memory_budget_bytes;
  // Engine batch precedence: an explicit options value (>0, including
  // 1 = element-at-a-time) always wins; when the options leave the
  // knob unset, a batch size recorded in the graph (the optimizer's
  // batch pass, via rewriter::SetEngineBatchSize) travels with the
  // program; otherwise the classic element-at-a-time engine.
  int batch = options.engine_batch_size;
  if (batch <= 0) batch = GraphEngineBatchSize(graph_);
  ctx_.engine_batch_size = std::max(1, batch);
  ctx_.governor = options.governor;
}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Create(
    GraphDef graph, const PipelineOptions& options) {
  RETURN_IF_ERROR(graph.Validate());
  std::unique_ptr<Pipeline> pipeline(
      new Pipeline(std::move(graph), options));
  ASSIGN_OR_RETURN(pipeline->root_,
                   InstantiateGraph(pipeline->graph_, &pipeline->ctx_));
  return pipeline;
}

StatusOr<std::unique_ptr<IteratorBase>> Pipeline::MakeIterator() {
  return root_->MakeIterator(&ctx_);
}

namespace {

void SimulateSteadyStateRecursive(DatasetBase* dataset) {
  dataset->SimulateSteadyState();
  for (const auto& input : dataset->inputs()) {
    SimulateSteadyStateRecursive(input.get());
  }
}

}  // namespace

void Pipeline::SimulateSteadyState() {
  SimulateSteadyStateRecursive(root_.get());
}

}  // namespace plumber
