#include "src/pipeline/pipeline.h"

#include <algorithm>

#include "src/pipeline/ops.h"

namespace plumber {

Pipeline::Pipeline(GraphDef graph, const PipelineOptions& options)
    : graph_(std::move(graph)) {
  ctx_.fs = options.fs;
  ctx_.udfs = options.udfs;
  ctx_.stats = &stats_;
  ctx_.cpu_scale = options.cpu_scale;
  ctx_.work_model = options.work_model;
  ctx_.seed = options.seed;
  ctx_.tracing_enabled = options.tracing_enabled;
  ctx_.memory_budget_bytes = options.memory_budget_bytes;
  // Engine batch precedence: an explicit options value (>0, including
  // 1 = element-at-a-time) always wins; when the options leave the
  // knob unset, a batch size recorded in the graph (the optimizer's
  // batch pass, via rewriter::SetEngineBatchSize) travels with the
  // program; otherwise the classic element-at-a-time engine.
  int batch = options.engine_batch_size;
  if (batch <= 0) batch = GraphEngineBatchSize(graph_);
  ctx_.engine_batch_size = std::max(1, batch);
  ctx_.governor = options.governor;
  // Disk-tier scratch: only model the device when the tier is enabled
  // (a capacity and a bandwidth); disk caches degrade to unmetered
  // otherwise.
  if (options.scratch_budget_bytes > 0 && options.scratch.max_bandwidth > 0) {
    scratch_device_ = std::make_unique<StorageDevice>(options.scratch);
    ctx_.scratch_device = scratch_device_.get();
  }
  ctx_.scratch_budget_bytes = options.scratch_budget_bytes;
  ctx_.nic = options.nic;
  // Per-shard source disks, cloned from the filesystem's attached
  // device: a shard-split source reads each partition at the full
  // modeled device bandwidth (that is what sharding across disks buys).
  if (ctx_.fs != nullptr && ctx_.fs->device() != nullptr) {
    shard_devices_ =
        std::make_unique<ShardDevicePool>(ctx_.fs->device()->spec());
    ctx_.shard_devices = shard_devices_.get();
  }
}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Create(
    GraphDef graph, const PipelineOptions& options) {
  RETURN_IF_ERROR(graph.Validate());
  std::unique_ptr<Pipeline> pipeline(
      new Pipeline(std::move(graph), options));
  ASSIGN_OR_RETURN(pipeline->root_,
                   InstantiateGraph(pipeline->graph_, &pipeline->ctx_));
  return pipeline;
}

StatusOr<std::unique_ptr<IteratorBase>> Pipeline::MakeIterator() {
  return root_->MakeIterator(&ctx_);
}

namespace {

void SimulateSteadyStateRecursive(DatasetBase* dataset) {
  dataset->SimulateSteadyState();
  for (const auto& input : dataset->inputs()) {
    SimulateSteadyStateRecursive(input.get());
  }
}

}  // namespace

void Pipeline::SimulateSteadyState() {
  SimulateSteadyStateRecursive(root_.get());
}

}  // namespace plumber
