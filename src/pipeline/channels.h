// Topology-aware channel selection for pipeline edges.
//
// Every inter-operator edge declares its structure at iterator
// instantiation — how many threads push, how many pop, and whether the
// ParallelismGovernor may retarget the producing pool above one worker
// during the iterator's lifetime. The factory then picks the cheapest
// channel that is safe for that structure:
//
//   * 1 producer : 1 consumer, not retargetable  ->  SpscRing (lock-free)
//   * anything else                              ->  BoundedQueue (MPMC)
//
// Retargetable edges stay MPMC even when they currently run one worker:
// the governor can raise the worker count mid-stream, and swapping the
// channel under live producers cannot preserve element identity and
// deterministic ordering across arbitrary resize histories. The
// structural 1:1 cases (prefetch fill threads, fixed single-worker
// pools) are proven at construction and never change.
#pragma once

#include <memory>

#include "src/util/bounded_queue.h"
#include "src/util/channel.h"
#include "src/util/spsc_ring.h"

namespace plumber {

// Structure of one pipeline edge, known at iterator construction.
struct EdgeTopology {
  int producers = 1;
  int consumers = 1;
  // True when the ParallelismGovernor may raise the producer count
  // above one during the edge's lifetime.
  bool retargetable = false;

  bool IsSpsc() const {
    return producers == 1 && consumers == 1 && !retargetable;
  }
};

// Picks the channel implementation for an edge. SpscRing rounds the
// capacity up to a power of two; BoundedQueue uses it exactly.
template <typename T>
std::unique_ptr<Channel<T>> MakeEdgeChannel(const EdgeTopology& topology,
                                            size_t capacity) {
  if (topology.IsSpsc()) {
    return std::make_unique<SpscRing<T>>(capacity);
  }
  return std::make_unique<BoundedQueue<T>>(capacity);
}

}  // namespace plumber
