// Serializable pipeline programs.
//
// A GraphDef is the declarative "Dataset view" of a pipeline (paper
// Fig. 2): a DAG (in practice a tree) of operator nodes with attributes.
// Plumber's contract is that every trace is a valid program that can be
// rewritten and re-instantiated, so GraphDef round-trips through a text
// format and supports the rewrite primitives from paper §B: get/set a
// performance parameter and insert a node after a selected node.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace plumber {

class AttrValue {
 public:
  AttrValue() : value_(int64_t{0}) {}
  AttrValue(int64_t v) : value_(v) {}
  AttrValue(int v) : value_(static_cast<int64_t>(v)) {}
  AttrValue(double v) : value_(v) {}
  AttrValue(bool v) : value_(v) {}
  AttrValue(std::string v) : value_(std::move(v)) {}
  AttrValue(const char* v) : value_(std::string(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }

  int64_t AsInt(int64_t fallback = 0) const;
  double AsDouble(double fallback = 0) const;
  bool AsBool(bool fallback = false) const;
  std::string AsString(const std::string& fallback = "") const;

  std::string Serialize() const;
  static StatusOr<AttrValue> Parse(const std::string& text);

 private:
  std::variant<int64_t, double, bool, std::string> value_;
};

struct NodeDef {
  std::string name;                 // unique within the graph
  std::string op;                   // operator kind, e.g. "parallel_map"
  std::vector<std::string> inputs;  // child node names
  std::map<std::string, AttrValue> attrs;

  bool HasAttr(const std::string& key) const { return attrs.count(key) > 0; }
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
};

class GraphDef {
 public:
  // Nodes are stored in insertion order; instantiation resolves inputs
  // by name, so order is not semantically significant.
  Status AddNode(NodeDef node);
  const NodeDef* FindNode(const std::string& name) const;
  NodeDef* MutableNode(const std::string& name);

  void SetOutput(std::string name) { output_ = std::move(name); }
  const std::string& output() const { return output_; }

  const std::vector<NodeDef>& nodes() const { return nodes_; }
  std::vector<NodeDef>& mutable_nodes() { return nodes_; }

  // Names of nodes that list `name` as an input.
  std::vector<std::string> Consumers(const std::string& name) const;

  // Rewrite primitive: inserts `node` between `after` and its consumers
  // (node.inputs is set to {after}; consumers and/or the graph output
  // are redirected to `node`).
  Status InsertAfter(const std::string& after, NodeDef node);

  // Removes a single-input pass-through node, reconnecting consumers to
  // its input. Fails for multi-input nodes or sources.
  Status RemoveNode(const std::string& name);

  // Topological order from sources to the output (children first).
  StatusOr<std::vector<std::string>> TopologicalOrder() const;

  // Validates name uniqueness, input resolution, output presence, and
  // acyclicity.
  Status Validate() const;

  std::string Serialize() const;
  static StatusOr<GraphDef> Parse(const std::string& text);

  // Returns a unique name with the given prefix.
  std::string UniqueName(const std::string& prefix) const;

 private:
  std::vector<NodeDef> nodes_;
  std::string output_;
};

}  // namespace plumber
