// Grouping and buffering operators: batch, prefetch, cache.
#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "src/pipeline/channels.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

// ----------------------------------------------------------------- batch
class BatchDataset : public DatasetBase {
 public:
  BatchDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override {
    const int64_t child = inputs_[0]->Cardinality();
    const int64_t batch = def_.GetInt(kAttrBatchSize, 1);
    if (child < 0 || batch <= 0) return child;
    return def_.GetBool(kAttrDropRemainder, true)
               ? child / batch
               : (child + batch - 1) / batch;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class BatchIterator : public IteratorBase {
 public:
  BatchIterator(PipelineContext* ctx, IteratorStats* stats,
                std::unique_ptr<IteratorBase> input, int64_t batch_size,
                bool drop_remainder)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        batch_size_(batch_size < 1 ? 1 : batch_size),
        drop_remainder_(drop_remainder) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    out->components.clear();
    // Claim from the child in engine-batch chunks: one child call (one
    // lock/scope) per chunk instead of per element. Chunk size 1 is
    // the classic per-element pull.
    const size_t chunk =
        static_cast<size_t>(std::max(1, ctx_->engine_batch_size));
    std::vector<Element> claimed;
    claimed.reserve(static_cast<size_t>(batch_size_));
    bool in_end = false;
    while (static_cast<int64_t>(claimed.size()) < batch_size_ && !in_end) {
      const size_t want =
          std::min(chunk, static_cast<size_t>(batch_size_) - claimed.size());
      RETURN_IF_ERROR(input_->GetNextBatch(&claimed, want, &in_end));
    }
    if (!claimed.empty()) stats_->RecordConsumedBatch(claimed.size());
    const int64_t gathered = static_cast<int64_t>(claimed.size());
    if (gathered == 0 || (drop_remainder_ && gathered < batch_size_)) {
      *end = true;
      return OkStatus();
    }
    out->sequence = claimed.front().sequence;
    for (Element& in : claimed) {
      for (auto& c : in.components) out->components.push_back(std::move(c));
    }
    *end = false;
    return OkStatus();
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  const int64_t batch_size_;
  const bool drop_remainder_;
};

StatusOr<std::unique_ptr<IteratorBase>> BatchDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  return std::unique_ptr<IteratorBase>(new BatchIterator(
      ctx, StatsFor(ctx), std::move(input), def_.GetInt(kAttrBatchSize, 1),
      def_.GetBool(kAttrDropRemainder, true)));
}

// --------------------------------------------------------------- prefetch
// A background thread keeps a bounded buffer of upstream elements so
// upstream production overlaps downstream consumption.
class PrefetchDataset : public DatasetBase {
 public:
  PrefetchDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override { return inputs_[0]->Cardinality(); }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class PrefetchIterator : public IteratorBase {
 public:
  PrefetchIterator(PipelineContext* ctx, IteratorStats* stats,
                   std::unique_ptr<IteratorBase> input, size_t buffer_size)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        // One fill thread, one GetNext thread, never retargeted: the
        // structurally 1:1 edge, so the factory picks the lock-free
        // SPSC ring (capacity rounds up to a power of two).
        queue_(MakeEdgeChannel<Item>(EdgeTopology{1, 1, false}, buffer_size)),
        // Clamped to the prefetch depth. Note batching widens the
        // look-ahead bound: besides the buffer_size elements in the
        // queue, up to one claimed batch sits in the fill thread and
        // one drained batch in the consumer's local buffer — at most
        // ~3x buffer_size elements materialized ahead, vs the classic
        // engine's buffer_size + 1.
        batch_size_(
            ClampBatchToCapacity(ctx->engine_batch_size, queue_->capacity())),
        consumer_(queue_.get(), batch_size_) {
    stats_->SetParallelism(static_cast<int>(buffer_size));
    thread_ = std::thread([this] { FillLoop(); });
  }

  ~PrefetchIterator() override {
    queue_->Cancel();
    thread_.join();
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    if (consumer_.NeedsRefill()) {
      const bool ok = consumer_.Refill();
      stats_->RecordQueueEmptyFraction(queue_->EmptyPopFraction());
      if (!ok) {  // cancelled before any sentinel
        *end = true;
        return OkStatus();
      }
    }
    Item item;
    consumer_.Take(&item);
    if (!item.status.ok()) {
      *end = true;
      return item.status;
    }
    if (item.end) {
      *end = true;
      return OkStatus();
    }
    *out = std::move(item.element);
    *end = false;
    return OkStatus();
  }

 private:
  struct Item {
    Element element;
    Status status;
    bool end = false;
  };

  void FillLoop() {
    for (;;) {
      if (ctx_->is_cancelled()) return;
      std::vector<Element> claimed;
      claimed.reserve(batch_size_);
      bool end = false;
      Status status = input_->GetNextBatch(&claimed, batch_size_, &end);
      if (!claimed.empty()) stats_->RecordConsumedBatch(claimed.size());
      std::vector<Item> items;
      items.reserve(claimed.size() + 1);
      for (Element& in : claimed) {
        items.push_back(Item{std::move(in), OkStatus(), false});
      }
      if (!status.ok()) {
        items.push_back(Item{{}, status, false});
        queue_->PushBatch(std::move(items));
        return;
      }
      if (end) {
        items.push_back(Item{{}, OkStatus(), true});
        queue_->PushBatch(std::move(items));
        return;
      }
      if (!queue_->PushBatch(std::move(items))) return;
    }
  }

  std::unique_ptr<IteratorBase> input_;
  std::unique_ptr<Channel<Item>> queue_;
  const size_t batch_size_;
  // Consumer-side batch buffer (accessed only from GetNext).
  BatchedChannelConsumer<Item> consumer_;
  std::thread thread_;
};

StatusOr<std::unique_ptr<IteratorBase>> PrefetchDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  return std::unique_ptr<IteratorBase>(new PrefetchIterator(
      ctx, StatsFor(ctx), std::move(input),
      static_cast<size_t>(def_.GetInt(kAttrBufferSize, 2))));
}

// ------------------------------------------------------------------ cache
// Materialization, in memory or on the scratch disk tier. The cache
// lives on the Dataset (not the iterator) so it persists across
// epochs: the first complete pass fills it, later iterators serve from
// the materialization, eliminating all upstream work (the steady state
// Plumber's cache planner reasons about). A disk-tier cache
// (kAttrCacheTier = "disk") differs in two ways: its capacity check is
// against the scratch budget rather than the DRAM budget, and every
// serve-path read is charged through the modeled scratch
// StorageDevice, so a warm disk cache delivers at SSD bandwidth — the
// economics PlanCacheTiered decides by.
class CacheDataset : public DatasetBase {
 public:
  CacheDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override { return inputs_[0]->Cardinality(); }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

  // Steady-state simulation (paper §B): treat whatever is materialized
  // so far as the whole dataset. Serving a truncated dataset preserves
  // per-element rates, which is all the tracer compares.
  void SimulateSteadyState() override {
    std::lock_guard<std::mutex> lock(state_.mu);
    if (!state_.elements.empty()) state_.complete = true;
  }

  struct State {
    std::mutex mu;
    std::vector<Element> elements;
    uint64_t bytes = 0;
    bool complete = false;
  };

  State* state() const { return &state_; }

 private:
  mutable State state_;
};

class CacheIterator : public IteratorBase {
 public:
  CacheIterator(PipelineContext* ctx, IteratorStats* stats,
                const DatasetBase* input_dataset, CacheDataset::State* state,
                bool disk_tier)
      : IteratorBase(ctx, stats), input_dataset_(input_dataset),
        state_(state), disk_tier_(disk_tier) {
    std::lock_guard<std::mutex> lock(state_->mu);
    serving_ = state_->complete;
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    if (serving_) {
      {
        std::lock_guard<std::mutex> lock(state_->mu);
        if (serve_index_ >= state_->elements.size()) {
          *end = true;
          return OkStatus();
        }
        // Clone is semantically required here (and at materialization
        // below): the cache keeps its elements across epochs while the
        // consumer takes ownership of what it is handed.
        *out = state_->elements[serve_index_++].Clone();
      }
      // A disk-tier serve reads the element back from scratch: meter
      // it against the modeled device outside the state lock so the
      // token-bucket wait never serializes other cache iterators.
      if (disk_tier_ && ctx_->scratch_device != nullptr) {
        if (serve_stream_ == nullptr) {
          serve_stream_ = ctx_->scratch_device->OpenStream();
        }
        serve_stream_->Charge(out->TotalBytes());
      }
      *end = false;
      return OkStatus();
    }
    if (input_ == nullptr) {
      ASSIGN_OR_RETURN(input_, input_dataset_->MakeIterator(ctx_));
    }
    Element in;
    bool in_end = false;
    RETURN_IF_ERROR(input_->GetNext(&in, &in_end));
    if (in_end) {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->complete = true;
      input_.reset();
      *end = true;
      return OkStatus();
    }
    stats_->RecordConsumed();
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      const uint64_t bytes = in.TotalBytes();
      // Each tier materializes against its own capacity: DRAM caches
      // against the memory budget, disk caches against the scratch
      // budget (a disk cache exists precisely because DRAM is full).
      const uint64_t budget = disk_tier_ ? ctx_->scratch_budget_bytes
                                         : ctx_->memory_budget_bytes;
      if (budget > 0 && state_->bytes + bytes > budget) {
        return ResourceExhaustedError(
            std::string("cache exceeds ") +
            (disk_tier_ ? "scratch" : "memory") + " budget at node " +
            stats_->name());
      }
      state_->elements.push_back(in.Clone());
      state_->bytes += bytes;
      stats_->AddCachedBytes(static_cast<int64_t>(bytes));
    }
    *out = std::move(in);
    *end = false;
    return OkStatus();
  }

 private:
  const DatasetBase* input_dataset_;
  CacheDataset::State* state_;
  const bool disk_tier_;
  std::unique_ptr<IteratorBase> input_;
  std::unique_ptr<ReadStream> serve_stream_;  // disk tier, lazily opened
  bool serving_ = false;
  size_t serve_index_ = 0;
};

StatusOr<std::unique_ptr<IteratorBase>> CacheDataset::MakeIterator(
    PipelineContext* ctx) const {
  const bool disk_tier = def_.GetString(kAttrCacheTier, "memory") == "disk";
  return std::unique_ptr<IteratorBase>(new CacheIterator(
      ctx, StatsFor(ctx), inputs_[0].get(), state(), disk_tier));
}

Status RequireOneInput(const std::vector<DatasetPtr>& inputs,
                       const char* op) {
  if (inputs.size() != 1) {
    return InvalidArgumentError(std::string(op) + " takes one input");
  }
  return OkStatus();
}

}  // namespace

StatusOr<DatasetPtr> MakeBatchDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "batch"));
  return DatasetPtr(new BatchDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakePrefetchDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "prefetch"));
  return DatasetPtr(new PrefetchDataset(std::move(def), std::move(inputs)));
}

StatusOr<DatasetPtr> MakeCacheDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx) {
  (void)ctx;
  RETURN_IF_ERROR(RequireOneInput(inputs, "cache"));
  return DatasetPtr(new CacheDataset(std::move(def), std::move(inputs)));
}

}  // namespace plumber
