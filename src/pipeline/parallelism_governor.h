// ParallelismGovernor: live worker-count control for one pipeline.
//
// Multi-tenant execution (src/runtime/Executor) re-plans the machine's
// core budget whenever a job arrives or departs, and the new grants
// must reach pipelines that are already running — rewriting the
// GraphDef only helps the next instantiation. The governor is the
// channel: the executor publishes a per-node worker target with
// SetTarget, and a running iterator that registered a resize listener
// (today: the parallel map, where modeled UDF cost — and therefore the
// LP's core demand — concentrates) grows or parks its worker pool in
// place. Other parallel ops (interleave, map_and_batch) pick their
// grant up at the next instantiation via ApplyParallelismPlan.
//
// A target also survives re-instantiation: iterators created later
// (e.g. per-epoch children under `repeat`) read Target() at
// construction, so a retargeted pipeline stays retargeted across
// epochs. Target 0 means "no override": use the graph-configured
// parallelism.
//
// Thread-safety: all methods are safe to call concurrently. Listeners
// run under the governor lock — they must not call back into the
// governor. Listener identity is a registration id, not the node name,
// because one node can briefly have two live iterators (the old
// epoch's being torn down while the new one registers).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace plumber {

class ParallelismGovernor {
 public:
  // Publishes a live worker target for `node` (>= 1) and synchronously
  // invokes every listener registered for it. Target 0 clears the
  // override (listeners are told the graph-configured fallback the
  // iterator registered with).
  void SetTarget(const std::string& node, int target);

  // The published target for `node`; 0 if none.
  int Target(const std::string& node) const;

  // Snapshot of every live override (node -> target). The executor's
  // SLO preemption is observable here: a parked batch job shows its
  // floor targets while an interactive job is resident, and the map
  // empties again when the override is cleared on restore.
  std::map<std::string, int> Targets() const;

  // Registers a resize listener for `node`; returns a registration id
  // for Unregister. `configured` is the iterator's graph-configured
  // parallelism, reported back to the listener when a target is
  // cleared. The callback runs under the governor lock (possibly
  // concurrently with the caller's own threads, never after
  // Unregister returns).
  uint64_t Register(const std::string& node, int configured,
                    std::function<void(int)> on_resize);
  void Unregister(uint64_t id);

 private:
  struct Listener {
    std::string node;
    int configured = 1;
    std::function<void(int)> on_resize;
  };

  mutable std::mutex mu_;
  std::map<std::string, int> targets_;
  std::map<uint64_t, Listener> listeners_;
  uint64_t next_id_ = 1;
};

using GovernorPtr = std::shared_ptr<ParallelismGovernor>;

}  // namespace plumber
