// shard_merge: merges N shard sources produced by
// rewriter::ShardSource into one stream.
//
// One worker thread per input pulls whole engine batches from its
// shard subtree and pushes them into a bounded MPMC channel, so N
// shards read concurrently — each against its own modeled shard disk
// (see ShardDeviceFor) — and their aggregate bandwidth is N x one
// device. Merge order across shards is nondeterministic, exactly like
// parallel interleave; the element *multiset* equals the unsharded
// source's because the shards partition the file list.
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/pipeline/channels.h"
#include "src/pipeline/ops.h"

namespace plumber {
namespace {

class ShardMergeDataset : public DatasetBase {
 public:
  ShardMergeDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  int64_t Cardinality() const override {
    int64_t total = 0;
    for (const auto& input : inputs_) {
      const int64_t c = input->Cardinality();
      if (c == kUnknownCardinality) return kUnknownCardinality;
      if (c == kInfiniteCardinality) return kInfiniteCardinality;
      total += c;
    }
    return total;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;
};

class ShardMergeIterator : public IteratorBase {
 public:
  ShardMergeIterator(PipelineContext* ctx, IteratorStats* stats,
                     std::vector<std::unique_ptr<IteratorBase>> inputs)
      : IteratorBase(ctx, stats), inputs_(std::move(inputs)),
        queue_(MakeEdgeChannel<Item>(
            EdgeTopology{static_cast<int>(inputs_.size()), 1, false},
            static_cast<size_t>(
                std::max(static_cast<int>(inputs_.size()) * 4,
                         2 * std::max(1, ctx->engine_batch_size))))),
        batch_size_(
            ClampBatchToCapacity(ctx->engine_batch_size, queue_->capacity())),
        consumer_(queue_.get(), batch_size_) {
    stats_->SetParallelism(static_cast<int>(inputs_.size()));
    active_workers_.store(static_cast<int>(inputs_.size()));
    workers_.reserve(inputs_.size());
    for (size_t i = 0; i < inputs_.size(); ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(inputs_[i].get()); });
    }
  }

  ~ShardMergeIterator() override {
    queue_->Cancel();
    for (auto& w : workers_) w.join();
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    Item item;
    if (!consumer_.Next(&item)) {
      *end = true;
      return OkStatus();
    }
    if (!item.status.ok()) {
      *end = true;
      return item.status;
    }
    if (item.end) {
      *end = true;
      return OkStatus();
    }
    *out = std::move(item.element);
    *end = false;
    return OkStatus();
  }

 private:
  struct Item {
    Element element;
    Status status;
    bool end = false;
  };

  // Drains one shard's subtree. Each worker owns its input iterator
  // exclusively, so shard pulls need no lock; only the merge channel
  // is shared.
  void WorkerLoop(IteratorBase* input) {
    for (;;) {
      if (ctx_->is_cancelled()) break;
      std::vector<Element> claimed;
      claimed.reserve(batch_size_);
      bool end = false;
      const Status status = input->GetNextBatch(&claimed, batch_size_, &end);
      if (!claimed.empty()) stats_->RecordConsumedBatch(claimed.size());
      std::vector<Item> items;
      items.reserve(claimed.size() + 1);
      for (Element& in : claimed) {
        items.push_back(Item{std::move(in), OkStatus(), false});
      }
      if (!status.ok()) {
        items.push_back(Item{{}, status, false});
        queue_->PushBatch(std::move(items));
        break;
      }
      if (end) {
        if (!items.empty()) queue_->PushBatch(std::move(items));
        break;
      }
      if (!queue_->PushBatch(std::move(items))) break;  // cancelled
    }
    // The merged stream ends only when every shard has drained.
    if (active_workers_.fetch_sub(1) == 1) {
      queue_->Push(Item{{}, OkStatus(), true});
    }
  }

  std::vector<std::unique_ptr<IteratorBase>> inputs_;
  std::unique_ptr<Channel<Item>> queue_;
  const size_t batch_size_;
  std::atomic<int> active_workers_{0};
  std::vector<std::thread> workers_;

  // Consumer-side batch buffer (accessed only from GetNext).
  BatchedChannelConsumer<Item> consumer_;
};

StatusOr<std::unique_ptr<IteratorBase>> ShardMergeDataset::MakeIterator(
    PipelineContext* ctx) const {
  std::vector<std::unique_ptr<IteratorBase>> inputs;
  inputs.reserve(inputs_.size());
  for (const auto& input : inputs_) {
    ASSIGN_OR_RETURN(auto it, input->MakeIterator(ctx));
    inputs.push_back(std::move(it));
  }
  return std::unique_ptr<IteratorBase>(
      new ShardMergeIterator(ctx, StatsFor(ctx), std::move(inputs)));
}

}  // namespace

StatusOr<DatasetPtr> MakeShardMergeDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx) {
  (void)ctx;
  if (inputs.empty()) {
    return InvalidArgumentError("shard_merge takes at least one input");
  }
  return DatasetPtr(new ShardMergeDataset(std::move(def), std::move(inputs)));
}

}  // namespace plumber
