// Pipeline execution harness: the "training loop" consumer.
//
// Drives a pipeline's root iterator, optionally simulating an
// accelerator by pausing model_step_time between batches (the pipeline's
// prefetch threads keep working during the pause). Reports throughput
// and average Next-call latency — the per-step fetch latency that the
// paper's fleet analysis (§3) uses to detect input-bound jobs.
#pragma once

#include <cstdint>
#include <functional>

#include "src/pipeline/pipeline.h"

namespace plumber {

struct RunOptions {
  // Stop conditions (whichever comes first; 0 disables a condition, but
  // at least one must be set).
  double max_seconds = 0;
  int64_t max_batches = 0;
  // Simulated accelerator step time per batch (seconds).
  double model_step_seconds = 0;
  // Batches to discard before measuring (pipeline warmup).
  int64_t warmup_batches = 0;
  // Wall-clock window driven on the same iterator before the measured
  // window (so caches fill and threads spin up), excluded from the
  // measurement. Runs after warmup_batches if both are set.
  double warmup_seconds = 0;
  // Engine batch size for this run (see PipelineOptions). 0 keeps the
  // pipeline's configured value. An iterator-creation knob: honored by
  // entry points that build the pipeline (Flow::Run); RunIterator
  // drives an already-built iterator tree and cannot apply it.
  int engine_batch_size = 0;
};

struct RunResult {
  Status status;
  int64_t batches = 0;
  int64_t examples = 0;  // total components across batches
  double wall_seconds = 0;
  double batches_per_second = 0;
  double examples_per_second = 0;
  // Mean wall time blocked inside GetNext (fetch latency).
  double mean_next_latency_seconds = 0;
  // Process CPU consumed during the measured window, in core-seconds.
  double process_cpu_seconds = 0;
  // Mean cores in use = process_cpu_seconds / wall_seconds.
  double mean_cores_used = 0;
  bool reached_end = false;
};

// Live observation and control of a run in flight. Default-constructed
// hooks are no-ops: RunIterator(it, options) == RunIterator(it,
// options, {}) batch for batch. The async executor (src/runtime/) uses
// these to surface JobHandle::Progress() and to stop a job promptly on
// Cancel without waiting for a stop condition.
struct RunHooks {
  // Called after every measured batch with the running totals.
  std::function<void(int64_t batches, int64_t elements)> on_batch;
  // Extra stop condition, checked before every GetNext (including
  // warmup). Returning true ends the run like a deadline would.
  std::function<bool()> should_stop;
};

// Creates a fresh iterator from the pipeline and drives it.
RunResult RunPipeline(Pipeline& pipeline, const RunOptions& options);

// Drives an existing iterator (keeps caches/progress across calls).
RunResult RunIterator(IteratorBase* iterator, const RunOptions& options,
                      const RunHooks& hooks = {});

}  // namespace plumber
