#include "src/pipeline/udf.h"

#include <algorithm>
#include <set>

#include "src/util/buffer_pool.h"
#include "src/util/busy_work.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace plumber {

Status UdfRegistry::Register(UdfSpec spec) {
  if (spec.name.empty()) return InvalidArgumentError("udf name empty");
  if (udfs_.count(spec.name)) {
    return AlreadyExistsError("duplicate udf: " + spec.name);
  }
  udfs_.emplace(spec.name, std::move(spec));
  return OkStatus();
}

const UdfSpec* UdfRegistry::Find(const std::string& name) const {
  auto it = udfs_.find(name);
  return it == udfs_.end() ? nullptr : &it->second;
}

bool UdfRegistry::IsTransitivelyRandom(const std::string& name) const {
  std::set<std::string> visited;
  std::vector<std::string> stack{name};
  while (!stack.empty()) {
    const std::string current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    const UdfSpec* spec = Find(current);
    if (spec == nullptr) continue;
    if (spec->accesses_random_seed) return true;
    for (const auto& callee : spec->calls) stack.push_back(callee);
  }
  return false;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(udfs_.size());
  for (const auto& [name, spec] : udfs_) out.push_back(name);
  return out;
}

namespace {

double TotalCostNs(const UdfSpec& spec, size_t input_bytes, double cpu_scale) {
  return cpu_scale *
         (spec.cost_ns_per_element + spec.cost_ns_per_byte * input_bytes);
}

// Under kTimed, costs below this still spin: a timed wait cannot hit
// sub-100us targets precisely (timer slack), and costs that small
// cannot meaningfully oversubscribe a host either.
constexpr double kTimedWorkMinNs = 100e3;

void ExecuteCostNs(double ns, uint64_t seed, bool timed) {
  if (timed) {
    OccupyWallNanos(static_cast<int64_t>(ns), seed);
  } else {
    BurnCpuNanos(static_cast<int64_t>(ns), seed);
  }
}

void ExecuteWithInternalParallelism(const UdfSpec& spec, double total_ns,
                                    uint64_t seed, CpuWorkModel model) {
  // Timed-vs-spin is decided on the call's total cost, not the
  // per-thread slice: an internally-parallel UDF must not fall back to
  // burning k physical cores just because each slice is small.
  const bool timed =
      model == CpuWorkModel::kTimed && total_ns >= kTimedWorkMinNs;
  const int k = std::max(1, spec.internal_parallelism);
  if (k == 1) {
    ExecuteCostNs(total_ns, seed, timed);
    return;
  }
  // The logical call's work is split across k threads; wall time shrinks
  // but total CPU consumed stays (roughly) the same, reproducing the
  // "1 parallelism uses nearly 3 cores" hazard.
  const double per_thread = total_ns / k;
  ParallelFor(k, k, [&](int i) {
    ExecuteCostNs(per_thread, SplitMix64(seed ^ static_cast<uint64_t>(i)),
                  timed);
  });
}

}  // namespace

namespace {

// Shared body of both overloads. `pooled_output` draws the output (and
// any concat scratch) from the BufferPool; the transform itself is
// byte-identical either way.
Element ExecuteMapUdfImpl(const UdfSpec& spec, const Element& input,
                          double cpu_scale, uint64_t seed, CpuWorkModel model,
                          bool pooled_output) {
  const size_t input_bytes = input.TotalBytes();
  ExecuteWithInternalParallelism(
      spec, TotalCostNs(spec, input_bytes, cpu_scale), seed, model);
  const size_t output_bytes = static_cast<size_t>(
      std::max(0.0, input_bytes * spec.size_ratio + spec.size_offset_bytes));
  Element out;
  out.sequence = input.sequence;
  // TransformBuffer fully overwrites [0, output_bytes), so a recycled
  // buffer's stale contents are unobservable.
  Buffer merged =
      pooled_output ? BufferPool::Get()->Acquire(output_bytes) : Buffer();
  if (input.components.size() == 1) {
    TransformBuffer(input.components[0], output_bytes, seed, &merged);
  } else {
    // Multi-component input (e.g. post-batch): concatenate then
    // transform, producing a single component.
    Buffer concat;
    concat.reserve(input_bytes);
    for (const auto& c : input.components) {
      concat.insert(concat.end(), c.begin(), c.end());
    }
    TransformBuffer(concat, output_bytes, seed, &merged);
    if (pooled_output) BufferPool::Get()->Release(std::move(concat));
  }
  out.components.push_back(std::move(merged));
  return out;
}

}  // namespace

Element ExecuteMapUdf(const UdfSpec& spec, const Element& input,
                      double cpu_scale, uint64_t seed, CpuWorkModel model) {
  return ExecuteMapUdfImpl(spec, input, cpu_scale, seed, model,
                           /*pooled_output=*/false);
}

Element ExecuteMapUdf(const UdfSpec& spec, Element&& input, double cpu_scale,
                      uint64_t seed, CpuWorkModel model) {
  Element out = ExecuteMapUdfImpl(spec, input, cpu_scale, seed, model,
                                  /*pooled_output=*/true);
  BufferPool::Get()->ReleaseElement(std::move(input));
  return out;
}

bool ExecuteFilterUdf(const UdfSpec& spec, const Element& input,
                      double cpu_scale, uint64_t seed, CpuWorkModel model) {
  ExecuteWithInternalParallelism(
      spec, TotalCostNs(spec, input.TotalBytes(), cpu_scale), seed, model);
  if (spec.keep_fraction >= 1.0) return true;
  const uint64_t h = SplitMix64(seed ^ (input.sequence * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < spec.keep_fraction;
}

}  // namespace plumber
