// Source operators: range, file_list, tfrecord.
#include <atomic>

#include "src/pipeline/ops.h"
#include "src/util/buffer_pool.h"
#include "src/util/busy_work.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

// ---------------------------------------------------------------- range
class RangeDataset : public DatasetBase {
 public:
  RangeDataset(NodeDef def) : DatasetBase(std::move(def), {}) {
    count_ = def_.GetInt(kAttrCount, -1);
  }

  int64_t Cardinality() const override {
    return count_ < 0 ? kInfiniteCardinality : count_;
  }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

 private:
  int64_t count_;
};

class RangeIterator : public IteratorBase {
 public:
  RangeIterator(PipelineContext* ctx, IteratorStats* stats, int64_t count)
      : IteratorBase(ctx, stats), count_(count) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    if (count_ >= 0 && next_ >= count_) {
      *end = true;
      return OkStatus();
    }
    *end = false;
    // Range is the head of every synthetic hot path: recycle the
    // 8-byte counter buffers instead of allocating one per element.
    Buffer b = BufferPool::Get()->Acquire(sizeof(int64_t));
    const int64_t v = next_;
    for (size_t i = 0; i < sizeof(int64_t); ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    *out = Element::FromBuffer(std::move(b), static_cast<uint64_t>(next_));
    ++next_;
    return OkStatus();
  }

 private:
  const int64_t count_;
  int64_t next_ = 0;
};

StatusOr<std::unique_ptr<IteratorBase>> RangeDataset::MakeIterator(
    PipelineContext* ctx) const {
  return std::unique_ptr<IteratorBase>(
      new RangeIterator(ctx, StatsFor(ctx), count_));
}

// ------------------------------------------------------------ file_list
class FileListDataset : public DatasetBase {
 public:
  FileListDataset(NodeDef def, PipelineContext* ctx)
      : DatasetBase(std::move(def), {}) {
    files_ = ctx->fs->List(def_.GetString(kAttrPrefix));
    // Shard-stamped lists (rewriter::ShardSource) keep only their
    // round-robin partition; the shards' partitions are disjoint and
    // their union is the full list, so a shard_merge over all shards
    // reproduces exactly the unsharded element multiset.
    const int64_t shards = def_.GetInt(kAttrShardCount, 1);
    const int64_t index = def_.GetInt(kAttrShardIndex, 0);
    if (shards > 1) {
      std::vector<std::string> mine;
      for (size_t i = 0; i < files_.size(); ++i) {
        if (static_cast<int64_t>(i) % shards == index) {
          mine.push_back(files_[i]);
        }
      }
      files_ = std::move(mine);
    }
  }

  int64_t Cardinality() const override {
    return static_cast<int64_t>(files_.size());
  }

  const std::vector<std::string>& files() const { return files_; }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

 private:
  std::vector<std::string> files_;
};

class FileListIterator : public IteratorBase {
 public:
  FileListIterator(PipelineContext* ctx, IteratorStats* stats,
                   const std::vector<std::string>* files)
      : IteratorBase(ctx, stats), files_(files) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    if (next_ >= files_->size()) {
      *end = true;
      return OkStatus();
    }
    *end = false;
    const std::string& name = (*files_)[next_];
    Buffer b(name.begin(), name.end());
    *out = Element::FromBuffer(std::move(b), next_);
    ++next_;
    return OkStatus();
  }

 private:
  const std::vector<std::string>* files_;
  size_t next_ = 0;
};

StatusOr<std::unique_ptr<IteratorBase>> FileListDataset::MakeIterator(
    PipelineContext* ctx) const {
  return std::unique_ptr<IteratorBase>(
      new FileListIterator(ctx, StatsFor(ctx), &files_));
}

// -------------------------------------------------------------- tfrecord
// Sequential reader over the files produced by a file_list child: pulls
// a filename, streams its records, then moves to the next file.
class TfRecordDataset : public DatasetBase {
 public:
  TfRecordDataset(NodeDef def, std::vector<DatasetPtr> inputs,
                  PipelineContext* ctx)
      : DatasetBase(std::move(def), std::move(inputs)) {
    // Cardinality = total records across the child's files, known from
    // filesystem metadata (used as ground truth in tests).
    if (auto* fl = dynamic_cast<const FileListDataset*>(inputs_[0].get())) {
      int64_t total = 0;
      for (const auto& f : fl->files()) {
        const SimFileMeta* meta = ctx->fs->FindMeta(f);
        if (meta == nullptr) {
          total = kUnknownCardinality;
          break;
        }
        total += static_cast<int64_t>(meta->NumRecords());
      }
      cardinality_ = total;
    }
  }

  int64_t Cardinality() const override { return cardinality_; }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

 private:
  int64_t cardinality_ = kUnknownCardinality;
};

class TfRecordIterator : public IteratorBase {
 public:
  TfRecordIterator(PipelineContext* ctx, IteratorStats* stats,
                   std::unique_ptr<IteratorBase> input,
                   StorageDevice* shard_device)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        shard_device_(shard_device) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      if (reader_ == nullptr) {
        Element filename_elem;
        bool files_end = false;
        RETURN_IF_ERROR(input_->GetNext(&filename_elem, &files_end));
        if (files_end) {
          *end = true;
          return OkStatus();
        }
        stats_->RecordConsumed();
        const std::string name(filename_elem.components[0].begin(),
                               filename_elem.components[0].end());
        if (shard_device_ != nullptr) {
          ASSIGN_OR_RETURN(reader_, ctx_->fs->OpenRecord(name, shard_device_));
        } else {
          ASSIGN_OR_RETURN(reader_, ctx_->fs->OpenRecord(name));
        }
      }
      // Acquire at the previous record's size: records in a file are
      // near-uniform, so ReadRecord's resize stays within capacity and
      // the per-record allocation disappears in steady state.
      Buffer payload = BufferPool::Get()->Acquire(last_payload_bytes_);
      bool file_end = false;
      RETURN_IF_ERROR(reader_->ReadRecord(&payload, &file_end));
      if (file_end) {
        BufferPool::Get()->Release(std::move(payload));
        reader_.reset();
        continue;
      }
      last_payload_bytes_ = payload.size();
      stats_->AddBytesRead(payload.size() + kRecordFramingBytes);
      *out = Element::FromBuffer(std::move(payload), sequence_++);
      *end = false;
      return OkStatus();
    }
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  StorageDevice* shard_device_;  // null = the filesystem's device
  std::unique_ptr<RecordReader> reader_;
  uint64_t sequence_ = 0;
  size_t last_payload_bytes_ = 64;
};

StatusOr<std::unique_ptr<IteratorBase>> TfRecordDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  StorageDevice* shard_device = ShardDeviceFor(def_, ctx);
  if (shard_device == nullptr) {
    shard_device = ShardDeviceFor(inputs_[0]->def(), ctx);
  }
  return std::unique_ptr<IteratorBase>(new TfRecordIterator(
      ctx, StatsFor(ctx), std::move(input), shard_device));
}

// ----------------------------------------------------------- remote_read
// Like tfrecord, but the files live on a remote host: every record's
// bytes are metered through the remote host's storage device (the
// filesystem/shard device, exactly as a local read would be), then
// through the remote host's NIC (owned by the dataset, modeled from the
// node's remote-NIC attrs), then through this host's NIC (ctx->nic).
// Element content and order are identical to a local tfrecord read —
// the network model only adds time and accounting.
class RemoteReadDataset : public DatasetBase {
 public:
  RemoteReadDataset(NodeDef def, std::vector<DatasetPtr> inputs,
                    PipelineContext* ctx)
      : DatasetBase(std::move(def), std::move(inputs)) {
    NicSpec remote;
    remote.name = "remote";
    remote.max_bandwidth = def_.GetDouble(kAttrRemoteNicBandwidth, 0);
    remote.latency_s = def_.GetDouble(kAttrRemoteNicLatency, 0);
    remote_nic_ = std::make_unique<NetworkDevice>(remote);
    if (auto* fl = dynamic_cast<const FileListDataset*>(inputs_[0].get())) {
      int64_t total = 0;
      for (const auto& f : fl->files()) {
        const SimFileMeta* meta = ctx->fs->FindMeta(f);
        if (meta == nullptr) {
          total = kUnknownCardinality;
          break;
        }
        total += static_cast<int64_t>(meta->NumRecords());
      }
      cardinality_ = total;
    }
  }

  int64_t Cardinality() const override { return cardinality_; }

  NetworkDevice* remote_nic() const { return remote_nic_.get(); }

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

 private:
  // The remote endpoint's NIC: shared by every iterator of this dataset
  // (all readers of one remote source contend for one remote uplink).
  std::unique_ptr<NetworkDevice> remote_nic_;
  int64_t cardinality_ = kUnknownCardinality;
};

class RemoteReadIterator : public IteratorBase {
 public:
  RemoteReadIterator(PipelineContext* ctx, IteratorStats* stats,
                     std::unique_ptr<IteratorBase> input,
                     StorageDevice* shard_device, NetworkDevice* remote_nic)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        shard_device_(shard_device), remote_nic_(remote_nic) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      if (reader_ == nullptr) {
        Element filename_elem;
        bool files_end = false;
        RETURN_IF_ERROR(input_->GetNext(&filename_elem, &files_end));
        if (files_end) {
          *end = true;
          return OkStatus();
        }
        stats_->RecordConsumed();
        const std::string name(filename_elem.components[0].begin(),
                               filename_elem.components[0].end());
        if (shard_device_ != nullptr) {
          ASSIGN_OR_RETURN(reader_, ctx_->fs->OpenRecord(name, shard_device_));
        } else {
          ASSIGN_OR_RETURN(reader_, ctx_->fs->OpenRecord(name));
        }
      }
      Buffer payload = BufferPool::Get()->Acquire(last_payload_bytes_);
      bool file_end = false;
      RETURN_IF_ERROR(reader_->ReadRecord(&payload, &file_end));
      if (file_end) {
        BufferPool::Get()->Release(std::move(payload));
        reader_.reset();
        continue;
      }
      last_payload_bytes_ = payload.size();
      const uint64_t wire_bytes = payload.size() + kRecordFramingBytes;
      stats_->AddBytesRead(wire_bytes);
      // The record crosses the wire once; both endpoints' NICs carry it.
      remote_nic_->Transfer(wire_bytes);
      if (ctx_->nic != nullptr) ctx_->nic->Transfer(wire_bytes);
      stats_->AddNetworkBytes(wire_bytes);
      *out = Element::FromBuffer(std::move(payload), sequence_++);
      *end = false;
      return OkStatus();
    }
  }

 private:
  std::unique_ptr<IteratorBase> input_;
  StorageDevice* shard_device_;  // null = the filesystem's device
  NetworkDevice* remote_nic_;
  std::unique_ptr<RecordReader> reader_;
  uint64_t sequence_ = 0;
  size_t last_payload_bytes_ = 64;
};

StatusOr<std::unique_ptr<IteratorBase>> RemoteReadDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  StorageDevice* shard_device = ShardDeviceFor(def_, ctx);
  if (shard_device == nullptr) {
    shard_device = ShardDeviceFor(inputs_[0]->def(), ctx);
  }
  return std::unique_ptr<IteratorBase>(
      new RemoteReadIterator(ctx, StatsFor(ctx), std::move(input),
                             shard_device, remote_nic_.get()));
}

}  // namespace

StatusOr<DatasetPtr> MakeRangeDataset(NodeDef def,
                                      std::vector<DatasetPtr> inputs,
                                      PipelineContext* ctx) {
  (void)ctx;
  if (!inputs.empty()) return InvalidArgumentError("range takes no inputs");
  return DatasetPtr(new RangeDataset(std::move(def)));
}

StatusOr<DatasetPtr> MakeFileListDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx) {
  if (!inputs.empty()) {
    return InvalidArgumentError("file_list takes no inputs");
  }
  if (ctx->fs == nullptr) {
    return FailedPreconditionError("file_list requires a filesystem");
  }
  return DatasetPtr(new FileListDataset(std::move(def), ctx));
}

StatusOr<DatasetPtr> MakeTfRecordDataset(NodeDef def,
                                         std::vector<DatasetPtr> inputs,
                                         PipelineContext* ctx) {
  if (inputs.size() != 1) {
    return InvalidArgumentError("tfrecord takes one input");
  }
  if (ctx->fs == nullptr) {
    return FailedPreconditionError("tfrecord requires a filesystem");
  }
  return DatasetPtr(
      new TfRecordDataset(std::move(def), std::move(inputs), ctx));
}

StatusOr<DatasetPtr> MakeRemoteReadDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx) {
  if (inputs.size() != 1) {
    return InvalidArgumentError("remote_read takes one input");
  }
  if (ctx->fs == nullptr) {
    return FailedPreconditionError("remote_read requires a filesystem");
  }
  return DatasetPtr(
      new RemoteReadDataset(std::move(def), std::move(inputs), ctx));
}

}  // namespace plumber
