// Interleave: parallel reading of record files.
//
// Sequential mode (parallelism == 1) implements true cycle/block
// round-robin over up to cycle_length open files, matching tf.data
// semantics. Parallel mode assigns whole files to `parallelism` reader
// workers feeding a bounded queue — the read-parallelism knob that
// drives the parallelism->bandwidth curve for throttled storage.
#include <algorithm>
#include <atomic>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "src/pipeline/channels.h"
#include "src/pipeline/ops.h"
#include "src/util/buffer_pool.h"

namespace plumber {
namespace {

class InterleaveDataset : public DatasetBase {
 public:
  InterleaveDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

  int parallelism() const {
    return static_cast<int>(def_.GetInt(kAttrParallelism, 1));
  }
  int cycle_length() const {
    return static_cast<int>(def_.GetInt(kAttrCycleLength, 4));
  }
  int block_length() const {
    return static_cast<int>(def_.GetInt(kAttrBlockLength, 1));
  }
};

// Pulls the next filename from the (serialized) child iterator.
Status NextFilename(IteratorBase* input, IteratorStats* stats,
                    std::string* name, bool* end) {
  Element elem;
  RETURN_IF_ERROR(input->GetNext(&elem, end));
  if (*end) return OkStatus();
  stats->RecordConsumed();
  name->assign(elem.components[0].begin(), elem.components[0].end());
  return OkStatus();
}

class SequentialInterleaveIterator : public IteratorBase {
 public:
  SequentialInterleaveIterator(PipelineContext* ctx, IteratorStats* stats,
                               std::unique_ptr<IteratorBase> input,
                               int cycle_length, int block_length,
                               StorageDevice* shard_device)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        cycle_length_(cycle_length < 1 ? 1 : cycle_length),
        block_length_(block_length < 1 ? 1 : block_length),
        shard_device_(shard_device) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      // Top up the cycle with open readers.
      while (!files_done_ &&
             static_cast<int>(cycle_.size()) < cycle_length_) {
        std::string name;
        bool files_end = false;
        RETURN_IF_ERROR(NextFilename(input_.get(), stats_, &name, &files_end));
        if (files_end) {
          files_done_ = true;
          break;
        }
        auto reader_or = shard_device_ != nullptr
                             ? ctx_->fs->OpenRecord(name, shard_device_)
                             : ctx_->fs->OpenRecord(name);
        RETURN_IF_ERROR(reader_or.status());
        cycle_.push_back(Slot{std::move(reader_or).value(), 0});
      }
      if (cycle_.empty()) {
        *end = true;
        return OkStatus();
      }
      if (cursor_ >= cycle_.size()) cursor_ = 0;
      Slot& slot = cycle_[cursor_];
      // Recycled record buffer: sized at the previous record so the
      // reader's resize stays within capacity in steady state.
      Buffer payload = BufferPool::Get()->Acquire(last_payload_bytes_);
      bool file_end = false;
      RETURN_IF_ERROR(slot.reader->ReadRecord(&payload, &file_end));
      if (file_end) {
        BufferPool::Get()->Release(std::move(payload));
        cycle_.erase(cycle_.begin() + static_cast<long>(cursor_));
        continue;
      }
      last_payload_bytes_ = payload.size();
      stats_->AddBytesRead(payload.size() + kRecordFramingBytes);
      *out = Element::FromBuffer(std::move(payload), sequence_++);
      *end = false;
      if (++slot.emitted_in_block >= block_length_) {
        slot.emitted_in_block = 0;
        ++cursor_;
      }
      return OkStatus();
    }
  }

 private:
  struct Slot {
    std::unique_ptr<RecordReader> reader;
    int emitted_in_block = 0;
  };

  std::unique_ptr<IteratorBase> input_;
  const int cycle_length_;
  const int block_length_;
  StorageDevice* shard_device_;  // null = the filesystem's device
  std::vector<Slot> cycle_;
  size_t cursor_ = 0;
  bool files_done_ = false;
  uint64_t sequence_ = 0;
  size_t last_payload_bytes_ = 64;
};

// With engine_batch_size > 1 each reader accumulates a vector of
// records and hands it off in one PushBatch, and the consumer drains
// whole batches per queue lock; batch size 1 is the classic
// record-at-a-time handoff.
class ParallelInterleaveIterator : public IteratorBase {
 public:
  ParallelInterleaveIterator(PipelineContext* ctx, IteratorStats* stats,
                             std::unique_ptr<IteratorBase> input,
                             int parallelism, StorageDevice* shard_device)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        parallelism_(parallelism), shard_device_(shard_device),
        // Fixed reader pool (never governor-retargeted); parallel mode
        // implies >= 2 readers, so the factory keeps this edge MPMC.
        // Capacity absorbs at least two engine batches so a requested
        // batch size is never clamped by the channel.
        queue_(MakeEdgeChannel<Item>(
            EdgeTopology{parallelism, 1, false},
            static_cast<size_t>(
                std::max(parallelism * 4,
                         2 * std::max(1, ctx->engine_batch_size))))),
        batch_size_(
            ClampBatchToCapacity(ctx->engine_batch_size, queue_->capacity())),
        consumer_(queue_.get(), batch_size_) {
    stats_->SetParallelism(parallelism_);
    active_workers_.store(parallelism_);
    workers_.reserve(parallelism_);
    for (int i = 0; i < parallelism_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ParallelInterleaveIterator() override {
    queue_->Cancel();
    {
      std::lock_guard<std::mutex> lock(input_mu_);
      files_done_ = true;
    }
    for (auto& w : workers_) w.join();
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      Item item;
      if (!consumer_.Next(&item)) {
        *end = true;
        return OkStatus();
      }
      if (!item.status.ok()) {
        *end = true;
        return item.status;
      }
      if (item.end) {
        *end = true;
        return OkStatus();
      }
      *out = std::move(item.element);
      *end = false;
      return OkStatus();
    }
  }

 private:
  struct Item {
    Element element;
    Status status;
    bool end = false;
  };

  void WorkerLoop() {
    std::vector<Item> pending;
    pending.reserve(batch_size_);
    size_t last_payload_bytes = 64;
    // Hands accumulated records to the queue; false when cancelled.
    auto flush = [&]() -> bool {
      if (pending.empty()) return true;
      std::vector<Item> batch;
      batch.swap(pending);
      pending.reserve(batch_size_);
      return queue_->PushBatch(std::move(batch));
    };
    for (;;) {
      if (ctx_->is_cancelled()) break;
      std::string name;
      bool done = false;
      Status status;
      {
        std::lock_guard<std::mutex> lock(input_mu_);
        if (files_done_) break;
        status = NextFilename(input_.get(), stats_, &name, &done);
        if (!status.ok() || done) files_done_ = true;
      }
      if (!status.ok()) {
        pending.push_back(Item{{}, status, false});
        flush();
        break;
      }
      if (done) break;
      auto reader_or = shard_device_ != nullptr
                           ? ctx_->fs->OpenRecord(name, shard_device_)
                           : ctx_->fs->OpenRecord(name);
      if (!reader_or.ok()) {
        pending.push_back(Item{{}, reader_or.status(), false});
        flush();
        break;
      }
      auto reader = std::move(reader_or).value();
      bool stop = false;
      for (;;) {
        // Per-worker recycled record buffer (see SequentialInterleave).
        Buffer payload = BufferPool::Get()->Acquire(last_payload_bytes);
        bool file_end = false;
        Status read_status;
        {
          std::optional<CpuAccountingScope> scope;
          if (ctx_->tracing_enabled) scope.emplace(stats_);
          read_status = reader->ReadRecord(&payload, &file_end);
        }
        if (!read_status.ok()) {
          pending.push_back(Item{{}, read_status, false});
          flush();
          stop = true;
          break;
        }
        if (file_end) {
          BufferPool::Get()->Release(std::move(payload));
          break;
        }
        last_payload_bytes = payload.size();
        stats_->AddBytesRead(payload.size() + kRecordFramingBytes);
        Element elem = Element::FromBuffer(
            std::move(payload),
            sequence_.fetch_add(1, std::memory_order_relaxed));
        pending.push_back(Item{std::move(elem), OkStatus(), false});
        if (pending.size() >= batch_size_ && !flush()) {
          stop = true;  // cancelled
          break;
        }
      }
      if (stop) break;
      // Flush the file's tail so a slow next file cannot strand records.
      if (!flush()) break;
    }
    flush();
    if (active_workers_.fetch_sub(1) == 1) {
      queue_->Push(Item{{}, OkStatus(), true});
    }
  }

  std::unique_ptr<IteratorBase> input_;
  const int parallelism_;
  StorageDevice* shard_device_;  // null = the filesystem's device

  std::mutex input_mu_;
  bool files_done_ = false;

  std::unique_ptr<Channel<Item>> queue_;
  const size_t batch_size_;
  std::atomic<int> active_workers_{0};
  std::atomic<uint64_t> sequence_{0};
  std::vector<std::thread> workers_;

  // Consumer-side batch buffer (accessed only from GetNext).
  BatchedChannelConsumer<Item> consumer_;
};

StatusOr<std::unique_ptr<IteratorBase>> InterleaveDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  IteratorStats* stats = StatsFor(ctx);
  // A shard-stamped interleave (or one whose file_list child carries
  // the stamp) reads through its own modeled shard disk.
  StorageDevice* shard_device = ShardDeviceFor(def_, ctx);
  if (shard_device == nullptr && !inputs_.empty()) {
    shard_device = ShardDeviceFor(inputs_[0]->def(), ctx);
  }
  const int p = parallelism();
  if (p <= 1) {
    stats->SetParallelism(1);
    return std::unique_ptr<IteratorBase>(new SequentialInterleaveIterator(
        ctx, stats, std::move(input), cycle_length(), block_length(),
        shard_device));
  }
  return std::unique_ptr<IteratorBase>(new ParallelInterleaveIterator(
      ctx, stats, std::move(input), p, shard_device));
}

}  // namespace

StatusOr<DatasetPtr> MakeInterleaveDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx) {
  if (inputs.size() != 1) {
    return InvalidArgumentError("interleave takes one input");
  }
  if (ctx->fs == nullptr) {
    return FailedPreconditionError("interleave requires a filesystem");
  }
  return DatasetPtr(new InterleaveDataset(std::move(def), std::move(inputs)));
}

}  // namespace plumber
