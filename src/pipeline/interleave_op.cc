// Interleave: parallel reading of record files.
//
// Sequential mode (parallelism == 1) implements true cycle/block
// round-robin over up to cycle_length open files, matching tf.data
// semantics. Parallel mode assigns whole files to `parallelism` reader
// workers feeding a bounded queue — the read-parallelism knob that
// drives the parallelism->bandwidth curve for throttled storage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "src/pipeline/channels.h"
#include "src/pipeline/ops.h"
#include "src/util/buffer_pool.h"

namespace plumber {
namespace {

class InterleaveDataset : public DatasetBase {
 public:
  InterleaveDataset(NodeDef def, std::vector<DatasetPtr> inputs)
      : DatasetBase(std::move(def), std::move(inputs)) {}

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const override;

  int parallelism() const {
    return static_cast<int>(def_.GetInt(kAttrParallelism, 1));
  }
  int cycle_length() const {
    return static_cast<int>(def_.GetInt(kAttrCycleLength, 4));
  }
  int block_length() const {
    return static_cast<int>(def_.GetInt(kAttrBlockLength, 1));
  }
};

// Pulls the next filename from the (serialized) child iterator.
Status NextFilename(IteratorBase* input, IteratorStats* stats,
                    std::string* name, bool* end) {
  Element elem;
  RETURN_IF_ERROR(input->GetNext(&elem, end));
  if (*end) return OkStatus();
  stats->RecordConsumed();
  name->assign(elem.components[0].begin(), elem.components[0].end());
  return OkStatus();
}

class SequentialInterleaveIterator : public IteratorBase {
 public:
  SequentialInterleaveIterator(PipelineContext* ctx, IteratorStats* stats,
                               std::unique_ptr<IteratorBase> input,
                               int cycle_length, int block_length,
                               StorageDevice* shard_device)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        cycle_length_(cycle_length < 1 ? 1 : cycle_length),
        block_length_(block_length < 1 ? 1 : block_length),
        shard_device_(shard_device) {}

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      // Top up the cycle with open readers.
      while (!files_done_ &&
             static_cast<int>(cycle_.size()) < cycle_length_) {
        std::string name;
        bool files_end = false;
        RETURN_IF_ERROR(NextFilename(input_.get(), stats_, &name, &files_end));
        if (files_end) {
          files_done_ = true;
          break;
        }
        auto reader_or = shard_device_ != nullptr
                             ? ctx_->fs->OpenRecord(name, shard_device_)
                             : ctx_->fs->OpenRecord(name);
        RETURN_IF_ERROR(reader_or.status());
        cycle_.push_back(Slot{std::move(reader_or).value(), 0});
      }
      if (cycle_.empty()) {
        *end = true;
        return OkStatus();
      }
      if (cursor_ >= cycle_.size()) cursor_ = 0;
      Slot& slot = cycle_[cursor_];
      // Recycled record buffer: sized at the previous record so the
      // reader's resize stays within capacity in steady state.
      Buffer payload = BufferPool::Get()->Acquire(last_payload_bytes_);
      bool file_end = false;
      RETURN_IF_ERROR(slot.reader->ReadRecord(&payload, &file_end));
      if (file_end) {
        BufferPool::Get()->Release(std::move(payload));
        cycle_.erase(cycle_.begin() + static_cast<long>(cursor_));
        continue;
      }
      last_payload_bytes_ = payload.size();
      stats_->AddBytesRead(payload.size() + kRecordFramingBytes);
      *out = Element::FromBuffer(std::move(payload), sequence_++);
      *end = false;
      if (++slot.emitted_in_block >= block_length_) {
        slot.emitted_in_block = 0;
        ++cursor_;
      }
      return OkStatus();
    }
  }

 private:
  struct Slot {
    std::unique_ptr<RecordReader> reader;
    int emitted_in_block = 0;
  };

  std::unique_ptr<IteratorBase> input_;
  const int cycle_length_;
  const int block_length_;
  StorageDevice* shard_device_;  // null = the filesystem's device
  std::vector<Slot> cycle_;
  size_t cursor_ = 0;
  bool files_done_ = false;
  uint64_t sequence_ = 0;
  size_t last_payload_bytes_ = 64;
};

// With engine_batch_size > 1 each reader accumulates a vector of
// records and hands it off in one PushBatch, and the consumer drains
// whole batches per queue lock; batch size 1 is the classic
// record-at-a-time handoff.
//
// The reader pool is retargetable while running, the same protocol as
// ParallelMapIterator: with a ParallelismGovernor attached the iterator
// registers a resize listener; workers whose index is at or above the
// live target park off the input lock (at file boundaries — a reader
// always finishes the file it holds, so no records are stranded), and
// Resize() wakes parked workers or spawns new ones up to the target.
// File-to-worker assignment is already nondeterministic, so a resize
// history changes element order but never the element multiset.
class ParallelInterleaveIterator : public IteratorBase {
 public:
  ParallelInterleaveIterator(PipelineContext* ctx, IteratorStats* stats,
                             std::unique_ptr<IteratorBase> input,
                             int parallelism, int initial_target,
                             StorageDevice* shard_device)
      : IteratorBase(ctx, stats), input_(std::move(input)),
        configured_(parallelism), shard_device_(shard_device),
        // Parallel mode implies >= 2 readers (and a governor can grow
        // the pool), so the factory keeps this edge MPMC. Capacity
        // absorbs at least two engine batches so a requested batch size
        // is never clamped by the channel.
        queue_(MakeEdgeChannel<Item>(
            EdgeTopology{std::max(parallelism, initial_target), 1,
                         ctx->governor != nullptr},
            static_cast<size_t>(
                std::max(std::max(parallelism, initial_target) * 4,
                         2 * std::max(1, ctx->engine_batch_size))))),
        batch_size_(
            ClampBatchToCapacity(ctx->engine_batch_size, queue_->capacity())),
        consumer_(queue_.get(), batch_size_) {
    stats_->SetParallelism(initial_target);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      target_.store(initial_target, std::memory_order_relaxed);
      SpawnLocked(initial_target);
    }
    if (ctx_->governor != nullptr) {
      governor_id_ = ctx_->governor->Register(
          stats_->name(), configured_, [this](int t) { Resize(t); });
    }
  }

  ~ParallelInterleaveIterator() override {
    // Unregister first: after this returns no Resize callback can run,
    // so the worker vector is stable for the joins below.
    if (ctx_->governor != nullptr) ctx_->governor->Unregister(governor_id_);
    SignalDone();
    queue_->Cancel();
    {
      std::lock_guard<std::mutex> lock(input_mu_);
      files_done_ = true;
    }
    for (auto& w : workers_) w.join();
  }

 protected:
  Status GetNextInternal(Element* out, bool* end) override {
    for (;;) {
      Item item;
      if (!consumer_.Next(&item)) {
        *end = true;
        return OkStatus();
      }
      if (!item.status.ok()) {
        *end = true;
        return item.status;
      }
      if (item.end) {
        *end = true;
        return OkStatus();
      }
      *out = std::move(item.element);
      *end = false;
      return OkStatus();
    }
  }

 private:
  struct Item {
    Element element;
    Status status;
    bool end = false;
  };

  // Grows or shrinks the live worker target. Called from the
  // governor's SetTarget (under the governor lock); never runs
  // concurrently with the destructor, which unregisters first.
  void Resize(int target) {
    target = std::max(1, target);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      target_.store(target, std::memory_order_relaxed);
      // No new workers once the file list finished: they would exit
      // immediately and could double-push the end sentinel.
      if (!done_.load(std::memory_order_acquire)) SpawnLocked(target);
    }
    park_cv_.notify_all();
    stats_->SetParallelism(target);
  }

  void SpawnLocked(int target) {
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      active_workers_.fetch_add(1);
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
  }

  // Marks the file list finished and wakes parked workers so they can
  // exit (and release the end sentinel).
  void SignalDone() {
    done_.store(true, std::memory_order_release);
    park_cv_.notify_all();
  }

  // Blocks while this worker's slot is above the live target. Returns
  // false when the worker should exit instead of claiming. Cancellation
  // has no wakeup channel into the park, so re-check on a short tick.
  bool ParkUntilActive(int index) {
    std::unique_lock<std::mutex> lock(park_mu_);
    for (;;) {
      if (done_.load(std::memory_order_acquire) || ctx_->is_cancelled()) {
        return false;
      }
      if (index < target_.load(std::memory_order_relaxed)) return true;
      park_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  void WorkerLoop(int index) {
    std::vector<Item> pending;
    pending.reserve(batch_size_);
    size_t last_payload_bytes = 64;
    // Hands accumulated records to the queue; false when cancelled.
    auto flush = [&]() -> bool {
      if (pending.empty()) return true;
      std::vector<Item> batch;
      batch.swap(pending);
      pending.reserve(batch_size_);
      return queue_->PushBatch(std::move(batch));
    };
    for (;;) {
      if (ctx_->is_cancelled()) break;
      if (index >= target_.load(std::memory_order_relaxed) &&
          !ParkUntilActive(index)) {
        break;
      }
      std::string name;
      bool done = false;
      Status status;
      {
        std::lock_guard<std::mutex> lock(input_mu_);
        if (files_done_) {
          done = true;
        } else {
          status = NextFilename(input_.get(), stats_, &name, &done);
          if (!status.ok() || done) files_done_ = true;
        }
      }
      if (!status.ok() || done) SignalDone();
      if (!status.ok()) {
        pending.push_back(Item{{}, status, false});
        flush();
        break;
      }
      if (done) break;
      auto reader_or = shard_device_ != nullptr
                           ? ctx_->fs->OpenRecord(name, shard_device_)
                           : ctx_->fs->OpenRecord(name);
      if (!reader_or.ok()) {
        pending.push_back(Item{{}, reader_or.status(), false});
        flush();
        break;
      }
      auto reader = std::move(reader_or).value();
      bool stop = false;
      for (;;) {
        // Per-worker recycled record buffer (see SequentialInterleave).
        Buffer payload = BufferPool::Get()->Acquire(last_payload_bytes);
        bool file_end = false;
        Status read_status;
        {
          std::optional<CpuAccountingScope> scope;
          if (ctx_->tracing_enabled) scope.emplace(stats_);
          read_status = reader->ReadRecord(&payload, &file_end);
        }
        if (!read_status.ok()) {
          pending.push_back(Item{{}, read_status, false});
          flush();
          stop = true;
          break;
        }
        if (file_end) {
          BufferPool::Get()->Release(std::move(payload));
          break;
        }
        last_payload_bytes = payload.size();
        stats_->AddBytesRead(payload.size() + kRecordFramingBytes);
        Element elem = Element::FromBuffer(
            std::move(payload),
            sequence_.fetch_add(1, std::memory_order_relaxed));
        pending.push_back(Item{std::move(elem), OkStatus(), false});
        if (pending.size() >= batch_size_ && !flush()) {
          stop = true;  // cancelled
          break;
        }
      }
      if (stop) break;
      // Flush the file's tail so a slow next file cannot strand records.
      if (!flush()) break;
    }
    flush();
    if (active_workers_.fetch_sub(1) == 1) {
      queue_->Push(Item{{}, OkStatus(), true});
    }
  }

  std::unique_ptr<IteratorBase> input_;
  const int configured_;
  StorageDevice* shard_device_;  // null = the filesystem's device

  std::mutex input_mu_;
  bool files_done_ = false;

  std::unique_ptr<Channel<Item>> queue_;
  const size_t batch_size_;
  std::atomic<int> active_workers_{0};
  std::atomic<uint64_t> sequence_{0};
  // Live worker control: workers_ grows under park_mu_ (Resize), never
  // shrinks until destruction; workers indexed >= target_ park.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> target_{0};
  std::atomic<bool> done_{false};
  uint64_t governor_id_ = 0;
  std::vector<std::thread> workers_;

  // Consumer-side batch buffer (accessed only from GetNext).
  BatchedChannelConsumer<Item> consumer_;
};

StatusOr<std::unique_ptr<IteratorBase>> InterleaveDataset::MakeIterator(
    PipelineContext* ctx) const {
  ASSIGN_OR_RETURN(auto input, inputs_[0]->MakeIterator(ctx));
  IteratorStats* stats = StatsFor(ctx);
  // A shard-stamped interleave (or one whose file_list child carries
  // the stamp) reads through its own modeled shard disk.
  StorageDevice* shard_device = ShardDeviceFor(def_, ctx);
  if (shard_device == nullptr && !inputs_.empty()) {
    shard_device = ShardDeviceFor(inputs_[0]->def(), ctx);
  }
  const int p = parallelism();
  if (p <= 1) {
    stats->SetParallelism(1);
    return std::unique_ptr<IteratorBase>(new SequentialInterleaveIterator(
        ctx, stats, std::move(input), cycle_length(), block_length(),
        shard_device));
  }
  // A published governor target (multi-tenant grant) bounds the live
  // reader count from the start; the graph attr stays the configured
  // demand a later resize can grow back to.
  int initial = p;
  if (ctx->governor != nullptr) {
    const int t = ctx->governor->Target(def_.name);
    if (t > 0) initial = t;
  }
  return std::unique_ptr<IteratorBase>(new ParallelInterleaveIterator(
      ctx, stats, std::move(input), p, initial, shard_device));
}

}  // namespace

StatusOr<DatasetPtr> MakeInterleaveDataset(NodeDef def,
                                           std::vector<DatasetPtr> inputs,
                                           PipelineContext* ctx) {
  if (inputs.size() != 1) {
    return InvalidArgumentError("interleave takes one input");
  }
  if (ctx->fs == nullptr) {
    return FailedPreconditionError("interleave requires a filesystem");
  }
  return DatasetPtr(new InterleaveDataset(std::move(def), std::move(inputs)));
}

}  // namespace plumber
