// Pipeline: an instantiated GraphDef plus its runtime context.
//
// Owns the stats registry and cancellation token; MakeIterator unrolls
// the Dataset tree into an Iterator tree (any number of times — epochs,
// retracing). A Pipeline corresponds to one "@optimize entry point"
// instantiation in the paper.
#pragma once

#include <memory>

#include "src/pipeline/dataset.h"

namespace plumber {

struct PipelineOptions {
  SimFilesystem* fs = nullptr;
  const UdfRegistry* udfs = nullptr;
  double cpu_scale = 1.0;
  // How modeled UDF cost executes (see CpuWorkModel in udf.h). kTimed
  // keeps measurements faithful to the modeled machine on any host;
  // kPhysical burns real cores for contention experiments.
  CpuWorkModel work_model = CpuWorkModel::kTimed;
  uint64_t seed = 42;
  bool tracing_enabled = true;
  uint64_t memory_budget_bytes = 0;
  // Elements parallel operators claim/hand off per lock acquisition.
  // 0 = unset: element-at-a-time unless the graph carries a recorded
  // batch size (the optimizer's batch pass). >0 = explicit choice
  // (1 = classic element-at-a-time engine) that wins over any
  // graph-recorded value. See PipelineContext::engine_batch_size.
  int engine_batch_size = 0;
  // Live parallelism control for multi-tenant execution (see
  // PipelineContext::governor). Null = fixed worker counts.
  GovernorPtr governor;
  // Local scratch tier for disk-tier caches: when scratch_budget_bytes
  // > 0 and scratch.max_bandwidth > 0 the pipeline owns a
  // StorageDevice with this spec and disk-tier cache serves are
  // metered through it (see PipelineContext::scratch_device).
  DeviceSpec scratch = DeviceSpec::Unlimited();
  uint64_t scratch_budget_bytes = 0;
  // This host's NIC, borrowed like `fs` so a Session or FleetRuntime
  // can share one device (and its byte counters) across pipelines.
  // Null = local transfers are unmetered (no network model).
  NetworkDevice* nic = nullptr;
};

class Pipeline {
 public:
  static StatusOr<std::unique_ptr<Pipeline>> Create(
      GraphDef graph, const PipelineOptions& options);

  StatusOr<std::unique_ptr<IteratorBase>> MakeIterator();

  const GraphDef& graph() const { return graph_; }
  StatsRegistry& stats() { return stats_; }
  const StatsRegistry& stats() const { return stats_; }
  PipelineContext* context() { return &ctx_; }

  // Requests cooperative cancellation of all iterators.
  void Cancel() { ctx_.cancelled->store(true); }

  // Applies SimulateSteadyState to every dataset in the tree (paper §B:
  // simulate warm caches by truncating the materialized data).
  void SimulateSteadyState();

 private:
  Pipeline(GraphDef graph, const PipelineOptions& options);

  GraphDef graph_;
  StatsRegistry stats_;
  // Owned modeled devices referenced by ctx_: the disk-cache scratch
  // tier and the per-shard source disks (cloned from the filesystem's
  // attached device spec). Declared before ctx_ users would need them;
  // destroyed after all iterators (callers drop iterators first).
  std::unique_ptr<StorageDevice> scratch_device_;
  std::unique_ptr<ShardDevicePool> shard_devices_;
  PipelineContext ctx_;
  DatasetPtr root_;
};

}  // namespace plumber
