#include "src/pipeline/iterator_stats.h"

#include "src/util/cpu_timer.h"

namespace plumber {
namespace internal {

size_t ThreadStatShard() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

void IteratorStats::Reset() {
  for (Shard& s : shards_) {
    s.elements_produced.store(0, std::memory_order_relaxed);
    s.elements_consumed.store(0, std::memory_order_relaxed);
    s.bytes_produced.store(0, std::memory_order_relaxed);
    s.bytes_read.store(0, std::memory_order_relaxed);
    s.network_bytes.store(0, std::memory_order_relaxed);
    s.cpu_ns.store(0, std::memory_order_relaxed);
    s.cached_bytes.store(0, std::memory_order_relaxed);
  }
  queue_empty_fraction_.store(0, std::memory_order_relaxed);
}

IteratorStats* StatsRegistry::GetOrCreate(const std::string& name,
                                          const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(name, std::make_unique<IteratorStats>(name, op))
             .first;
  }
  return it->second.get();
}

IteratorStats* StatsRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : it->second.get();
}

std::vector<IteratorStatsSnapshot> StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IteratorStatsSnapshot> out;
  out.reserve(stats_.size());
  for (const auto& [name, s] : stats_) {
    IteratorStatsSnapshot snap;
    snap.name = s->name();
    snap.op = s->op();
    snap.elements_produced = s->elements_produced();
    snap.elements_consumed = s->elements_consumed();
    snap.bytes_produced = s->bytes_produced();
    snap.bytes_read = s->bytes_read();
    snap.network_bytes = s->network_bytes();
    snap.cpu_ns = s->cpu_ns();
    snap.parallelism = s->parallelism();
    snap.udf_name = s->udf_name();
    snap.queue_empty_fraction = s->queue_empty_fraction();
    snap.cached_bytes = s->cached_bytes();
    out.push_back(std::move(snap));
  }
  return out;
}

void StatsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : stats_) s->Reset();
}

namespace {

struct AccountingState {
  std::vector<IteratorStats*> stack;
  int64_t last_mark = 0;
};

thread_local AccountingState t_accounting;

}  // namespace

CpuAccountingScope::CpuAccountingScope(IteratorStats* stats) {
  auto& state = t_accounting;
  const int64_t now = ThreadVirtualCpuNanos();
  if (!state.stack.empty()) {
    state.stack.back()->AddCpuNanos(now - state.last_mark);
  }
  state.stack.push_back(stats);
  state.last_mark = now;
}

CpuAccountingScope::~CpuAccountingScope() {
  auto& state = t_accounting;
  const int64_t now = ThreadVirtualCpuNanos();
  if (!state.stack.empty()) {
    state.stack.back()->AddCpuNanos(now - state.last_mark);
    state.stack.pop_back();
  }
  state.last_mark = now;
}

}  // namespace plumber
