#include "src/pipeline/graph_builder.h"

#include "src/pipeline/ops.h"

namespace plumber {

std::string GraphBuilder::Add(NodeDef def) {
  const std::string name = def.name;
  if (status_.ok()) {
    const Status status = graph_.AddNode(std::move(def));
    if (!status.ok()) status_ = InvalidArgumentError(status.message());
  }
  return name;
}

std::string GraphBuilder::Range(const std::string& name, int64_t count) {
  NodeDef def;
  def.name = name;
  def.op = "range";
  def.attrs[kAttrCount] = AttrValue(count);
  return Add(std::move(def));
}

std::string GraphBuilder::FileList(const std::string& name,
                                   const std::string& prefix) {
  NodeDef def;
  def.name = name;
  def.op = "file_list";
  def.attrs[kAttrPrefix] = AttrValue(prefix);
  return Add(std::move(def));
}

std::string GraphBuilder::TfRecord(const std::string& name,
                                   const std::string& input) {
  NodeDef def;
  def.name = name;
  def.op = "tfrecord";
  def.inputs = {input};
  return Add(std::move(def));
}

std::string GraphBuilder::RemoteRead(const std::string& name,
                                     const std::string& input,
                                     double remote_nic_bandwidth,
                                     double remote_nic_latency) {
  NodeDef def;
  def.name = name;
  def.op = "remote_read";
  def.inputs = {input};
  def.attrs[kAttrRemoteNicBandwidth] = AttrValue(remote_nic_bandwidth);
  def.attrs[kAttrRemoteNicLatency] = AttrValue(remote_nic_latency);
  return Add(std::move(def));
}

std::string GraphBuilder::Interleave(const std::string& name,
                                     const std::string& input,
                                     int cycle_length, int parallelism,
                                     int block_length) {
  NodeDef def;
  def.name = name;
  def.op = "interleave";
  def.inputs = {input};
  def.attrs[kAttrCycleLength] = AttrValue(cycle_length);
  def.attrs[kAttrParallelism] = AttrValue(parallelism);
  def.attrs[kAttrBlockLength] = AttrValue(block_length);
  return Add(std::move(def));
}

std::string GraphBuilder::Map(const std::string& name,
                              const std::string& input,
                              const std::string& udf, int parallelism,
                              bool deterministic) {
  NodeDef def;
  def.name = name;
  def.op = "map";
  def.inputs = {input};
  def.attrs[kAttrUdf] = AttrValue(udf);
  def.attrs[kAttrParallelism] = AttrValue(parallelism);
  def.attrs[kAttrDeterministic] = AttrValue(deterministic);
  return Add(std::move(def));
}

std::string GraphBuilder::SequentialMap(const std::string& name,
                                        const std::string& input,
                                        const std::string& udf) {
  NodeDef def;
  def.name = name;
  def.op = "map";
  def.inputs = {input};
  def.attrs[kAttrUdf] = AttrValue(udf);
  def.attrs[kAttrParallelism] = AttrValue(1);
  def.attrs[kAttrTunable] = AttrValue(false);
  return Add(std::move(def));
}

std::string GraphBuilder::Filter(const std::string& name,
                                 const std::string& input,
                                 const std::string& udf) {
  NodeDef def;
  def.name = name;
  def.op = "filter";
  def.inputs = {input};
  def.attrs[kAttrUdf] = AttrValue(udf);
  return Add(std::move(def));
}

std::string GraphBuilder::Shuffle(const std::string& name,
                                  const std::string& input,
                                  int64_t buffer_size, int64_t seed) {
  NodeDef def;
  def.name = name;
  def.op = "shuffle";
  def.inputs = {input};
  def.attrs[kAttrBufferSize] = AttrValue(buffer_size);
  def.attrs[kAttrSeed] = AttrValue(seed);
  return Add(std::move(def));
}

std::string GraphBuilder::ShuffleAndRepeat(const std::string& name,
                                           const std::string& input,
                                           int64_t buffer_size, int64_t count,
                                           int64_t seed) {
  NodeDef def;
  def.name = name;
  def.op = "shuffle_and_repeat";
  def.inputs = {input};
  def.attrs[kAttrBufferSize] = AttrValue(buffer_size);
  def.attrs[kAttrCount] = AttrValue(count);
  def.attrs[kAttrSeed] = AttrValue(seed);
  return Add(std::move(def));
}

std::string GraphBuilder::Repeat(const std::string& name,
                                 const std::string& input, int64_t count) {
  NodeDef def;
  def.name = name;
  def.op = "repeat";
  def.inputs = {input};
  def.attrs[kAttrCount] = AttrValue(count);
  return Add(std::move(def));
}

std::string GraphBuilder::Take(const std::string& name,
                               const std::string& input, int64_t count) {
  NodeDef def;
  def.name = name;
  def.op = "take";
  def.inputs = {input};
  def.attrs[kAttrCount] = AttrValue(count);
  return Add(std::move(def));
}

std::string GraphBuilder::Skip(const std::string& name,
                               const std::string& input, int64_t count) {
  NodeDef def;
  def.name = name;
  def.op = "skip";
  def.inputs = {input};
  def.attrs[kAttrCount] = AttrValue(count);
  return Add(std::move(def));
}

std::string GraphBuilder::Batch(const std::string& name,
                                const std::string& input, int64_t batch_size,
                                bool drop_remainder) {
  NodeDef def;
  def.name = name;
  def.op = "batch";
  def.inputs = {input};
  def.attrs[kAttrBatchSize] = AttrValue(batch_size);
  def.attrs[kAttrDropRemainder] = AttrValue(drop_remainder);
  return Add(std::move(def));
}

std::string GraphBuilder::Prefetch(const std::string& name,
                                   const std::string& input,
                                   int64_t buffer_size) {
  NodeDef def;
  def.name = name;
  def.op = "prefetch";
  def.inputs = {input};
  def.attrs[kAttrBufferSize] = AttrValue(buffer_size);
  return Add(std::move(def));
}

std::string GraphBuilder::Cache(const std::string& name,
                                const std::string& input) {
  NodeDef def;
  def.name = name;
  def.op = "cache";
  def.inputs = {input};
  return Add(std::move(def));
}

std::string GraphBuilder::Zip(const std::string& name,
                              const std::vector<std::string>& inputs) {
  NodeDef node;
  node.name = name;
  node.op = "zip";
  node.inputs = inputs;
  Add(std::move(node));
  return name;
}

std::string GraphBuilder::Concatenate(
    const std::string& name, const std::vector<std::string>& inputs) {
  NodeDef node;
  node.name = name;
  node.op = "concatenate";
  node.inputs = inputs;
  Add(std::move(node));
  return name;
}

std::string GraphBuilder::MapAndBatch(const std::string& name,
                                      const std::string& input,
                                      const std::string& udf,
                                      int64_t batch_size, int parallelism,
                                      bool drop_remainder) {
  NodeDef node;
  node.name = name;
  node.op = "map_and_batch";
  node.inputs = {input};
  node.attrs[kAttrUdf] = AttrValue(udf);
  node.attrs[kAttrBatchSize] = AttrValue(batch_size);
  node.attrs[kAttrParallelism] = AttrValue(static_cast<int64_t>(parallelism));
  node.attrs[kAttrDropRemainder] = AttrValue(drop_remainder);
  Add(std::move(node));
  return name;
}

StatusOr<GraphDef> GraphBuilder::Build(const std::string& output) const {
  RETURN_IF_ERROR(status_);
  GraphDef graph = graph_;
  graph.SetOutput(output);
  RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace plumber
